//! End-to-end integration: dataset generation → split → filter pre-training
//! → model training → evaluation, across all crates.

use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::SeedableRng;
use chainsformer::{evaluate_model, ChainsFormer, ChainsFormerConfig, Trainer};

fn rng(seed: u64) -> cf_rand::rngs::StdRng {
    cf_rand::rngs::StdRng::seed_from_u64(seed)
}

#[test]
fn full_pipeline_trains_and_evaluates() {
    let mut rng = rng(0);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let cfg = ChainsFormerConfig {
        epochs: 8,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);

    // Loss decreases and stays finite.
    let first = result.epochs.first().expect("epochs").train_loss;
    let last = result.epochs.last().expect("epochs").train_loss;
    assert!(first.is_finite() && last.is_finite());
    assert!(last < first, "no learning: {first} -> {last}");

    // Parameters survived training.
    assert!(model.params.all_finite());

    // Evaluation produces a sane report.
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    assert!(
        report.norm_mae > 0.0 && report.norm_mae < 1.0,
        "MAE {}",
        report.norm_mae
    );
    assert!(
        report.norm_rmse >= report.norm_mae - 1e-9,
        "RMSE ≥ MAE must hold per class mix"
    );
}

#[test]
fn no_label_leakage_into_evidence() {
    let mut rng = rng(1);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let cfg = ChainsFormerConfig {
        epochs: 1,
        ..ChainsFormerConfig::tiny()
    };
    let model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    for t in split.test.iter().chain(split.valid.iter()) {
        // The visible graph must not contain the answer at all.
        assert_eq!(visible.value_of(t.entity, t.attr), None);
        let q = cf_chains::Query {
            entity: t.entity,
            attr: t.attr,
        };
        let detail = model.predict(&visible, q, &mut rng);
        for c in &detail.chains {
            assert!(
                !(c.source == t.entity && c.chain.known_attr == t.attr),
                "query's own fact used as evidence"
            );
        }
    }
}

#[test]
fn training_is_deterministic_per_seed() {
    let build = || {
        let mut rng = rng(33);
        let graph = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&graph, &mut rng);
        let visible = split.visible_graph(&graph);
        let cfg = ChainsFormerConfig {
            epochs: 3,
            ..ChainsFormerConfig::tiny()
        };
        let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        Trainer::new(&mut model, &visible).train(&split, &mut rng);
        let report = evaluate_model(&model, &visible, &split.test, &mut rng);
        report.norm_mae
    };
    let a = build();
    let b = build();
    assert_eq!(a, b, "same seed must give identical results");
}

#[test]
fn training_loss_trajectory_is_bitwise_deterministic() {
    // Stronger than equal final metrics: the entire per-epoch loss
    // trajectory must be bit-for-bit identical across two runs from the
    // same seed. Any hidden nondeterminism (iteration order, uncontrolled
    // RNG, time-dependent branching) shows up here as a first-divergence
    // epoch index, which makes regressions easy to localize.
    let run = || {
        let mut rng = rng(17);
        let graph = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&graph, &mut rng);
        let visible = split.visible_graph(&graph);
        let cfg = ChainsFormerConfig {
            epochs: 4,
            ..ChainsFormerConfig::tiny()
        };
        let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
        result
            .epochs
            .iter()
            .map(|e| {
                (
                    e.train_loss.to_bits(),
                    e.valid_mae.map(f64::to_bits),
                    e.skipped,
                )
            })
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "training produced no epochs");
    for (i, (ea, eb)) in a.iter().zip(&b).enumerate() {
        assert_eq!(ea, eb, "first divergence at epoch {i}");
    }
    assert_eq!(a.len(), b.len(), "runs trained different epoch counts");
}

#[test]
fn restricted_settings_degrade_gracefully() {
    // 1-hop same-attribute reasoning must still run end to end (Figure 4's
    // most restricted arm).
    let mut rng = rng(2);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let cfg = ChainsFormerConfig {
        setting: chainsformer::ReasoningSetting {
            max_hops: 1,
            multi_attribute: false,
        },
        epochs: 3,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    assert!(report.norm_mae.is_finite());
}

#[test]
fn every_ablation_variant_trains() {
    let mut rng = rng(3);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    for v in chainsformer::Variant::all() {
        let cfg = v.apply(&ChainsFormerConfig {
            epochs: 1,
            ..ChainsFormerConfig::tiny()
        });
        let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
        assert!(
            result.epochs.iter().all(|e| e.train_loss.is_finite()),
            "{v:?} produced non-finite loss"
        );
        assert!(model.params.all_finite(), "{v:?} corrupted parameters");
    }
}
