//! Cross-crate integration for the baseline suite: every Table-III method
//! fits and evaluates on both synthetic datasets, and the structure-aware
//! methods beat the structure-blind mean on spatial attributes.

use cf_baselines::{
    evaluate_baseline, AttributeMean, HyntLite, Kga, LlmSim, LlmTier, MrAP, NapPlusPlus,
    NumericPredictor, PlmReg, TogConfig, TogR, TransE, TransEConfig,
};
use cf_kg::synth::{fb15k_sim, yago15k_sim, SynthScale};
use cf_kg::{MinMaxNormalizer, Split};
use cf_rand::SeedableRng;

#[test]
fn all_baselines_run_on_both_datasets() {
    for fb in [false, true] {
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(9);
        let graph = if fb {
            fb15k_sim(SynthScale::small(), &mut rng)
        } else {
            yago15k_sim(SynthScale::small(), &mut rng)
        };
        let split = Split::paper_811(&graph, &mut rng);
        let visible = split.visible_graph(&graph);
        let norm = MinMaxNormalizer::fit(graph.num_attributes(), &split.train);
        let te_cfg = TransEConfig {
            epochs: 8,
            ..Default::default()
        };
        let transe = TransE::fit(&visible, te_cfg, &mut rng);

        let na = graph.num_attributes();
        let predictors: Vec<Box<dyn NumericPredictor>> = vec![
            Box::new(NapPlusPlus::new(transe.clone(), 5, na, &split.train)),
            Box::new(MrAP::fit(&visible, &split.train, 3)),
            Box::new(PlmReg::fit(&visible, &split.train, 10, &mut rng)),
            Box::new(Kga::fit(&visible, &split.train, 8, te_cfg, &mut rng)),
            Box::new(HyntLite::fit(&visible, &transe, &split.train, 10, &mut rng)),
            Box::new(TogR::fit(&visible, &split.train, TogConfig::default())),
            Box::new(LlmSim::new(&visible, &split.train, LlmTier::Gpt35)),
            Box::new(LlmSim::new(&visible, &split.train, LlmTier::Gpt40)),
            Box::new(AttributeMean::fit(na, &split.train)),
        ];
        for p in &predictors {
            let report = evaluate_baseline(p.as_ref(), &visible, &split.test, &norm, &mut rng);
            assert!(
                report.norm_mae.is_finite() && report.norm_mae < 2.0,
                "{} degenerate on {}: {}",
                p.name(),
                if fb { "FB" } else { "YAGO" },
                report.norm_mae
            );
        }
    }
}

#[test]
fn structure_aware_methods_beat_mean_on_spatial() {
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(10);
    let graph = yago15k_sim(SynthScale::default_scale(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let norm = MinMaxNormalizer::fit(graph.num_attributes(), &split.train);
    let lat = graph.attribute_by_name("latitude").expect("latitude");
    let lon = graph.attribute_by_name("longitude").expect("longitude");
    let spatial: Vec<_> = split
        .test
        .iter()
        .filter(|t| t.attr == lat || t.attr == lon)
        .copied()
        .collect();
    assert!(spatial.len() > 10, "not enough spatial tests");

    let mean = AttributeMean::fit(graph.num_attributes(), &split.train);
    let mrap = MrAP::fit(&visible, &split.train, 3);
    let r_mean = evaluate_baseline(&mean, &visible, &spatial, &norm, &mut rng);
    let r_mrap = evaluate_baseline(&mrap, &visible, &spatial, &norm, &mut rng);
    assert!(
        r_mrap.norm_mae < r_mean.norm_mae,
        "MrAP ({}) should beat mean ({}) on spatial",
        r_mrap.norm_mae,
        r_mean.norm_mae
    );
}

#[test]
fn kga_quantization_tradeoff_is_observable() {
    // More bins → finer quantization. With enough training signal the
    // 1-bin KGA (just the mean of one big bucket) must be no better than a
    // many-bin KGA on train-set reconstruction.
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(11);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let norm = MinMaxNormalizer::fit(graph.num_attributes(), &split.train);
    let te_cfg = TransEConfig {
        epochs: 10,
        ..Default::default()
    };
    let coarse = Kga::fit(&visible, &split.train, 1, te_cfg, &mut rng);
    let fine = Kga::fit(&visible, &split.train, 32, te_cfg, &mut rng);
    let r_coarse = evaluate_baseline(&coarse, &visible, &split.train, &norm, &mut rng);
    let r_fine = evaluate_baseline(&fine, &visible, &split.train, &norm, &mut rng);
    assert!(
        r_fine.norm_mae <= r_coarse.norm_mae + 1e-9,
        "finer bins should not reconstruct training data worse: fine {} vs coarse {}",
        r_fine.norm_mae,
        r_coarse.norm_mae
    );
}
