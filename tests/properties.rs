//! Property-based invariants across the workspace (cf-check).

use cf_check::prelude::*;
use cf_hyperbolic::PoincareBall;
use cf_kg::norm::MinMaxNormalizer;
use cf_kg::{AttributeId, EntityId, KnowledgeGraph, NumTriple};
use cf_tensor::{Tape, Tensor};

fn ball_point(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(-0.35f64..0.35, dim)
}

property! {
    #![config(cases = 64)]

    /// Möbius addition keeps points inside the ball and has 0 as identity.
    #[test]
    fn mobius_add_stays_in_ball(x in ball_point(4), y in ball_point(4)) {
        let ball = PoincareBall::default();
        let sum = ball.mobius_add(&x, &y);
        check_assert!(ball.contains(&sum));
        let zero = vec![0.0; 4];
        let idl = ball.mobius_add(&zero, &x);
        for (a, b) in idl.iter().zip(&x) {
            check_assert!((a - b).abs() < 1e-9);
        }
    }

    /// Hyperbolic distance is symmetric, non-negative and zero on the
    /// diagonal; the two closed forms agree.
    #[test]
    fn hyperbolic_distance_is_a_premetric(x in ball_point(4), y in ball_point(4)) {
        let ball = PoincareBall::default();
        let dxy = ball.distance_arcosh(&x, &y);
        let dyx = ball.distance_arcosh(&y, &x);
        check_assert!(dxy >= 0.0);
        check_assert!((dxy - dyx).abs() < 1e-9);
        check_assert!(ball.distance_arcosh(&x, &x) < 1e-9);
        check_assert!((dxy - ball.distance(&x, &y)).abs() < 1e-7);
    }

    /// exp0/log0 are inverse on the ball.
    #[test]
    fn exp_log_inverse(v in ball_point(5)) {
        let ball = PoincareBall::default();
        let p = ball.exp0(&v);
        let back = ball.log0(&p);
        for (a, b) in back.iter().zip(&v) {
            check_assert!((a - b).abs() < 1e-8);
        }
    }

    /// Min-max normalization round-trips for any finite values.
    #[test]
    fn normalizer_round_trips(values in vec(-1e6f64..1e6, 2..20), probe in -1e6f64..1e6) {
        let triples: Vec<NumTriple> = values
            .iter()
            .map(|&v| NumTriple { entity: EntityId(0), attr: AttributeId(0), value: v })
            .collect();
        let norm = MinMaxNormalizer::fit(1, &triples);
        let a = AttributeId(0);
        let rt = norm.denormalize(a, norm.normalize(a, probe));
        check_assert!((rt - probe).abs() < 1e-6 * (1.0 + probe.abs()));
    }

    /// Softmax output is a distribution for any finite logits.
    #[test]
    fn softmax_is_distribution(logits in vec(-50f32..50.0, 1..16)) {
        let mut t = Tape::new();
        let n = logits.len();
        let x = t.leaf(Tensor::new([n], logits));
        let y = t.softmax_last(x);
        let data = t.value(y).data();
        let sum: f32 = data.iter().sum();
        check_assert!((sum - 1.0).abs() < 1e-4);
        check_assert!(data.iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
    }

    /// Retrieval never exceeds the hop budget, never reuses the query fact,
    /// and never revisits nodes, on arbitrary random graphs.
    #[test]
    fn retrieval_invariants(
        n_entities in 3usize..20,
        edges in vec((0usize..20, 0usize..20), 1..40),
        seed in 0u64..1000,
    ) {
        use cf_rand::SeedableRng;
        let mut g = KnowledgeGraph::new();
        for i in 0..n_entities {
            g.add_entity(format!("e{i}"));
        }
        let r = g.add_relation_type("r");
        let a = g.add_attribute_type("a");
        for (h, t) in edges {
            let h = EntityId((h % n_entities) as u32);
            let t = EntityId((t % n_entities) as u32);
            if h != t {
                g.add_triple(h, r, t);
            }
        }
        for i in 0..n_entities {
            g.add_numeric(EntityId(i as u32), a, i as f64);
        }
        g.build_index();
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(seed);
        let q = cf_chains::Query { entity: EntityId(0), attr: a };
        let cfg = cf_chains::RetrievalConfig { num_walks: 32, max_hops: 3, ..Default::default() };
        let toc = cf_chains::retrieve(&g, q, &cfg, &mut rng);
        for ci in &toc.chains {
            check_assert!(ci.chain.hops() <= 3);
            check_assert!(!(ci.source == q.entity && ci.chain.known_attr == q.attr));
            check_assert_eq!(ci.chain.query_attr, q.attr);
        }
        check_assert!(toc.len() <= 32 + 1); // walks + possible 0-hop extras (1 attr type here)
    }

    /// Regression metrics are non-negative and RMSE ≥ MAE per attribute.
    #[test]
    fn metrics_are_sane(pairs in vec((-1e3f64..1e3, -1e3f64..1e3), 1..30)) {
        let triples: Vec<NumTriple> = vec![
            NumTriple { entity: EntityId(0), attr: AttributeId(0), value: -1e3 },
            NumTriple { entity: EntityId(0), attr: AttributeId(0), value: 1e3 },
        ];
        let norm = MinMaxNormalizer::fit(1, &triples);
        let preds: Vec<cf_kg::Prediction> = pairs
            .iter()
            .map(|&(truth, pred)| cf_kg::Prediction { attr: AttributeId(0), truth, pred })
            .collect();
        let rep = cf_kg::RegressionReport::compute(&preds, &norm);
        let e = rep.per_attribute[&0];
        check_assert!(e.mae >= 0.0);
        check_assert!(e.rmse + 1e-12 >= e.mae, "RMSE {} < MAE {}", e.rmse, e.mae);
        check_assert!(rep.norm_mae >= 0.0);
    }
}
