//! Integration tests for the extension features: parameter checkpointing
//! and the chain-quality evaluation mechanism (paper §VI future work).

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::SeedableRng;
use chainsformer::{evaluate_model, ChainsFormer, ChainsFormerConfig, Trainer};

fn setup(
    cfg: ChainsFormerConfig,
    seed: u64,
) -> (
    cf_kg::KnowledgeGraph,
    Split,
    ChainsFormer,
    cf_rand::rngs::StdRng,
) {
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(seed);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);
    (visible, split, model, rng)
}

#[test]
fn checkpoint_round_trip_preserves_predictions() {
    let cfg = ChainsFormerConfig {
        epochs: 3,
        ..ChainsFormerConfig::tiny()
    };
    let (visible, split, model, _) = setup(cfg.clone(), 5);
    let path = std::env::temp_dir().join("cf_ckpt_test.bin");
    model.save_params_to(&path).expect("save");

    // Fresh model with identical construction inputs, untrained.
    let mut rng2 = cf_rand::rngs::StdRng::seed_from_u64(5);
    let graph2 = yago15k_sim(SynthScale::small(), &mut rng2);
    let split2 = Split::paper_811(&graph2, &mut rng2);
    let visible2 = split2.visible_graph(&graph2);
    let mut fresh = ChainsFormer::new(&visible2, &split2.train, cfg, &mut rng2);
    fresh.load_params_from(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // With identical params and identical RNG streams, predictions agree.
    let q = Query {
        entity: split.test[0].entity,
        attr: split.test[0].attr,
    };
    let mut ra = cf_rand::rngs::StdRng::seed_from_u64(99);
    let mut rb = cf_rand::rngs::StdRng::seed_from_u64(99);
    let a = model.predict(&visible, q, &mut ra);
    let b = fresh.predict(&visible, q, &mut rb);
    assert_eq!(a.value, b.value, "loaded checkpoint predicts differently");
}

#[test]
fn checkpoint_rejects_foreign_architecture() {
    let cfg_a = ChainsFormerConfig {
        epochs: 1,
        ..ChainsFormerConfig::tiny()
    };
    let (_, _, model, _) = setup(cfg_a, 6);
    let path = std::env::temp_dir().join("cf_ckpt_mismatch.bin");
    model.save_params_to(&path).expect("save");

    // Different dim → different shapes → load must fail cleanly.
    let cfg_b = ChainsFormerConfig {
        dim: 32,
        ff_dim: 64,
        epochs: 1,
        ..ChainsFormerConfig::tiny()
    };
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(6);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let mut other = ChainsFormer::new(&visible, &split.train, cfg_b, &mut rng);
    assert!(other.load_params_from(&path).is_err());
    assert!(other.params.all_finite(), "failed load corrupted the model");
    std::fs::remove_file(&path).ok();
}

#[test]
fn chain_quality_tracker_populates_and_runs() {
    let cfg = ChainsFormerConfig {
        chain_quality: true,
        epochs: 4,
        ..ChainsFormerConfig::tiny()
    };
    let (visible, split, model, mut rng) = setup(cfg, 7);
    let tracker = model
        .quality
        .as_ref()
        .expect("tracker populated by trainer");
    assert!(!tracker.is_empty(), "no chain patterns tracked");
    // Inference still works end-to-end with pruning enabled.
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    assert!(report.norm_mae.is_finite() && report.norm_mae < 1.0);
}

#[test]
fn chain_quality_never_empties_the_toc() {
    let cfg = ChainsFormerConfig {
        chain_quality: true,
        epochs: 3,
        ..ChainsFormerConfig::tiny()
    };
    let (visible, split, model, mut rng) = setup(cfg, 8);
    for t in split.test.iter().take(15) {
        let q = Query {
            entity: t.entity,
            attr: t.attr,
        };
        let (toc, retrieved) = model.gather_chains(&visible, q, &mut rng);
        if retrieved > 0 {
            assert!(
                !toc.is_empty() || retrieved == 0,
                "pruning removed all evidence"
            );
        }
    }
}
