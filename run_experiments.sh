#!/bin/bash
# Regenerates every table and figure of the paper (see DESIGN.md §3 and
# EXPERIMENTS.md). Knobs: CF_SCALE, CF_SEED, CF_EPOCHS, CF_OUT.
#
# Epoch budgets below target a single CPU core (~2 h total). The sweep
# experiments (table6/7, fig4/7/8) are *budgeted for shape, not convergence*;
# raise their CF_EPOCHS to 15 for sharper, paper-shaped separations
# (roughly 3x the wall time).
set -u
cd "$(dirname "$0")"
OUT=${CF_OUT:-results}
mkdir -p "$OUT"
# The workspace has no crates.io dependencies, so the build never needs
# the network; --offline makes that a hard guarantee. --workspace is
# required: the root manifest is also a package, and a bare build would
# not produce the chainsformer-bench binaries invoked below.
cargo build --release --offline --workspace
run() {
  local name="$1"; shift
  echo "=== $name ($(date +%H:%M:%S)) ==="
  "$@" 2>&1 | tee "$OUT/$name.log"
}
B=./target/release
run table1 env CF_SCALE=default $B/table1_dataset_stats
run table2 env CF_SCALE=default $B/table2_attribute_stats
run fig2   env CF_SCALE=default $B/fig2_chain_explosion
run table3 env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-15} $B/table3_main_comparison
run table4 env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-5} $B/table4_capabilities
run table5 env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-8} $B/table5_key_chains
run fig5   env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-8} $B/fig5_case_study
run fig6   env CF_SCALE=default $B/fig6_filter_effect
run table8 env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-10} $B/table8_llm
run table7 env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-8} $B/table7_projection
run fig4   env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-8} $B/fig4_reasoning_settings
run table6 env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-8} $B/table6_ablation
run fig7   env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-5} $B/fig7_filter_spaces
run fig8   env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-5} $B/fig8_hyperparams
run ext_quality env CF_SCALE=default CF_EPOCHS=${CF_EPOCHS:-8} $B/ext_chain_quality
echo "=== all experiments done ($(date +%H:%M:%S)) ==="
