#!/bin/bash
# Tier-1 verification, fully offline: release build, whole test suite,
# formatting. Run from the repository root; exits non-zero on the first
# failure. No network access is required at any point — the workspace has
# zero crates.io dependencies (see DESIGN.md "Offline substrate").
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release (offline) =="
# --workspace: the root manifest is also a package, so a bare build would
# skip members like crates/cli (cfkg) and the bench binaries.
cargo build --release --offline --workspace

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== quantized accuracy gate (offline, release) =="
# The int8 serving path is accuracy-gated, not assumed: per-attribute MAE
# drift of QuantInferCtx vs the f32 path must stay under the pinned
# threshold on the simulated twins (DESIGN.md §15). Run it in release so
# the gate exercises the same SIMD dispatch tiers production serving uses.
cargo test -q --release --offline -p chainsformer --test quant_accuracy

echo "== bench build + smoke (offline) =="
# Keep the micro-benchmarks compiling and runnable: a 1-sample pass of the
# tensor benches catches kernel regressions that only manifest in release
# bench binaries. CF_BENCH_JSON stays unset so results/BENCH_*.json are
# not clobbered by smoke numbers.
cargo build --offline --benches --workspace
CF_BENCH_SAMPLES=1 cargo bench --offline -p chainsformer-bench \
    --bench tensor_ops --bench tensor_kernels --bench serve_throughput \
    --bench kg_retrieval --bench kg_mutate >/dev/null

echo "== zero-allocation gate (offline) =="
# The buffer pool's steady-state contract on the real model: after warm-up,
# a train step (tape forward + loss + backward + Adam) and a served predict
# (warm InferCtx forward, f32 and quantized int8) must perform exactly 0
# heap allocations. The gate binary runs under a counting global allocator
# and starts with a 2-epoch toy training run, so "training still converges
# with recycled buffers" is covered on the way to the counters. See
# DESIGN.md §10 and §15.
./target/release/alloc_gate

echo "== serve smoke (offline) =="
# End-to-end check of the cf-serve subsystem: train a tiny checkpoint,
# start the TCP server on an ephemeral port, exercise a valid query, a
# malformed request (must get a structured error, not a dropped
# connection), a metrics scrape, overload shedding, and a clean SIGTERM
# shutdown with exit 0.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
CFKG=./target/release/cfkg
"$CFKG" generate --dataset yago --scale small --seed 3 --out "$SMOKE_DIR" >/dev/null
SMOKE_FLAGS=(--triples "$SMOKE_DIR/yago15k_sim_triples.tsv" \
             --numerics "$SMOKE_DIR/yago15k_sim_numerics.tsv" \
             --ckpt "$SMOKE_DIR/model.ckpt" \
             --dim 16 --layers 1 --walks 32 --top-k 8 --seed 3)
"$CFKG" train "${SMOKE_FLAGS[@]}" --epochs 1 >/dev/null

# One CLI predict through the resident engine (the path the alloc gate
# measures in-process) — must answer without error on the toy checkpoint.
"$CFKG" predict "${SMOKE_FLAGS[@]}" --entity person_0 --attr birth >/dev/null

# The server treats stdin close as a shutdown request, so hold its stdin
# open on a FIFO for the lifetime of the smoke test (fd 5).
mkfifo "$SMOKE_DIR/serve_stdin"
"$CFKG" serve "${SMOKE_FLAGS[@]}" --port 0 \
    < "$SMOKE_DIR/serve_stdin" > "$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
exec 5>"$SMOKE_DIR/serve_stdin"
for _ in $(seq 1 100); do
    grep -q '^listening on ' "$SMOKE_DIR/serve.log" && break
    sleep 0.1
done
SERVE_ADDR="$(sed -n 's/^listening on //p' "$SMOKE_DIR/serve.log" | head -1)"
SERVE_PORT="${SERVE_ADDR##*:}"
[ -n "$SERVE_PORT" ] || { echo "serve smoke: no listening line"; exit 1; }

exec 3<>"/dev/tcp/127.0.0.1/$SERVE_PORT"
printf '%s\n' '{"entity":"person_0","attr":"birth","id":1}' >&3
read -r -t 30 REPLY_OK <&3 || { echo "serve smoke: no reply to query 1"; exit 1; }
echo "$REPLY_OK" | grep -q '"ok":true' \
    || { echo "serve smoke: expected ok reply, got: $REPLY_OK"; exit 1; }
printf '%s\n' 'this is not json' >&3
read -r -t 30 REPLY_BAD <&3 || { echo "serve smoke: no reply to bad query"; exit 1; }
echo "$REPLY_BAD" | grep -q '"ok":false' \
    || { echo "serve smoke: expected structured error, got: $REPLY_BAD"; exit 1; }
printf '%s\n' '{"entity":"person_0","attr":"birth","id":2}' >&3
read -r -t 30 REPLY_OK2 <&3 || { echo "serve smoke: no reply to query 2"; exit 1; }
echo "$REPLY_OK2" | grep -q '"ok":true' \
    || { echo "serve smoke: expected second ok reply, got: $REPLY_OK2"; exit 1; }
# Hot-reload: a valid checkpoint swaps in over the same connection without
# dropping traffic; a corrupt one is rejected with a structured error and
# the old model keeps serving.
cp "$SMOKE_DIR/model.ckpt" "$SMOKE_DIR/reload.ckpt"
printf '%s\n' "{\"reload\":\"$SMOKE_DIR/reload.ckpt\",\"id\":3}" >&3
read -r -t 30 REPLY_RELOAD <&3 || { echo "serve smoke: no reply to reload"; exit 1; }
echo "$REPLY_RELOAD" | grep -q '"reloaded":true' \
    || { echo "serve smoke: expected reload ack, got: $REPLY_RELOAD"; exit 1; }
head -c 100 "$SMOKE_DIR/model.ckpt" > "$SMOKE_DIR/corrupt.ckpt"
printf '%s\n' "{\"reload\":\"$SMOKE_DIR/corrupt.ckpt\",\"id\":4}" >&3
read -r -t 30 REPLY_CORRUPT <&3 || { echo "serve smoke: no reply to corrupt reload"; exit 1; }
echo "$REPLY_CORRUPT" | grep -q '"ok":false' \
    || { echo "serve smoke: corrupt checkpoint was accepted: $REPLY_CORRUPT"; exit 1; }
printf '%s\n' '{"entity":"person_0","attr":"birth","id":6}' >&3
read -r -t 30 REPLY_OK3 <&3 || { echo "serve smoke: no reply after rejected reload"; exit 1; }
echo "$REPLY_OK3" | grep -q '"ok":true' \
    || { echo "serve smoke: server broken after rejected reload: $REPLY_OK3"; exit 1; }
printf '%s\n' 'GET /metrics' >&3
METRICS=""
while read -r -t 30 LINE <&3; do
    [ -z "$LINE" ] && break
    METRICS+="$LINE"$'\n'
done
echo "$METRICS" | grep -q '^cf_serve_ok_total 3' \
    || { echo "serve smoke: metrics missing ok_total 3:"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '^cf_serve_latency_us_p50 ' \
    || { echo "serve smoke: metrics missing latency p50"; exit 1; }
echo "$METRICS" | grep -q '^cf_serve_reloads_ok_total 1' \
    || { echo "serve smoke: metrics missing reloads_ok 1:"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -q '^cf_serve_reloads_rejected_total 1' \
    || { echo "serve smoke: metrics missing reloads_rejected 1:"; echo "$METRICS"; exit 1; }
exec 3<&- 3>&-

kill -TERM "$SERVE_PID"
wait "$SERVE_PID" || { echo "serve smoke: server exited non-zero"; exit 1; }
exec 5>&-
grep -q 'shutdown complete' "$SMOKE_DIR/serve.log" \
    || { echo "serve smoke: no graceful shutdown message"; exit 1; }

# Overload shedding: a zero-capacity queue must reject with "overloaded".
mkfifo "$SMOKE_DIR/shed_stdin"
"$CFKG" serve "${SMOKE_FLAGS[@]}" --port 0 --queue-cap 0 \
    < "$SMOKE_DIR/shed_stdin" > "$SMOKE_DIR/shed.log" 2>&1 &
SHED_PID=$!
exec 5>"$SMOKE_DIR/shed_stdin"
for _ in $(seq 1 100); do
    grep -q '^listening on ' "$SMOKE_DIR/shed.log" && break
    sleep 0.1
done
SHED_PORT="$(sed -n 's/^listening on .*://p' "$SMOKE_DIR/shed.log" | head -1)"
[ -n "$SHED_PORT" ] || { echo "serve smoke: no shed listening line"; exit 1; }
exec 4<>"/dev/tcp/127.0.0.1/$SHED_PORT"
printf '%s\n' '{"entity":"person_0","attr":"birth","id":5}' >&4
read -r -t 30 REPLY_SHED <&4 || { echo "serve smoke: no reply from shed server"; exit 1; }
echo "$REPLY_SHED" | grep -q 'overloaded' \
    || { echo "serve smoke: expected overloaded, got: $REPLY_SHED"; exit 1; }
exec 4<&- 4>&-
kill -TERM "$SHED_PID"
wait "$SHED_PID" || { echo "serve smoke: shed server exited non-zero"; exit 1; }
exec 5>&-
echo "serve smoke: ok"

echo "== crash-recovery smoke (offline) =="
# The durability contract end to end, with a real kill -9: a run killed
# mid-training and resumed with --resume must produce a final checkpoint
# byte-identical to an uninterrupted control run (the in-process version of
# this property is pinned by crates/core/tests/resume_parity.rs; this
# exercises it across an actual process death).
CRASH_FLAGS=(--triples "$SMOKE_DIR/yago15k_sim_triples.tsv" \
             --numerics "$SMOKE_DIR/yago15k_sim_numerics.tsv" \
             --dim 16 --layers 1 --walks 32 --top-k 8 --seed 3 --epochs 5)
"$CFKG" train "${CRASH_FLAGS[@]}" --ckpt "$SMOKE_DIR/control.ckpt" >/dev/null
"$CFKG" train "${CRASH_FLAGS[@]}" --ckpt "$SMOKE_DIR/crash.ckpt" \
    > "$SMOKE_DIR/crash.log" 2>&1 &
CRASH_PID=$!
# The first epoch-boundary checkpoint appearing means the run is mid-epoch
# 2 of 5 — kill it there, as unceremoniously as possible.
for _ in $(seq 1 3000); do
    [ -f "$SMOKE_DIR/crash.ckpt" ] && break
    kill -0 "$CRASH_PID" 2>/dev/null || break
    sleep 0.02
done
kill -9 "$CRASH_PID" 2>/dev/null \
    || { echo "crash smoke: run finished before kill -9 landed"; exit 1; }
wait "$CRASH_PID" 2>/dev/null || true
[ -f "$SMOKE_DIR/crash.ckpt" ] \
    || { echo "crash smoke: no checkpoint on disk at kill time"; exit 1; }
"$CFKG" train "${CRASH_FLAGS[@]}" --resume --ckpt "$SMOKE_DIR/crash.ckpt" >/dev/null
cmp "$SMOKE_DIR/control.ckpt" "$SMOKE_DIR/crash.ckpt" \
    || { echo "crash smoke: resumed checkpoint differs from control"; exit 1; }
echo "crash-recovery smoke: ok"

echo "== thread-matrix gate (offline) =="
# Deterministic parallelism end to end: the same training run at --threads 1
# and --threads 4 must produce byte-identical checkpoints and epoch-loss
# trajectories (the in-process version is
# crates/core/tests/thread_invariance.rs; this pins it across the CLI,
# including the --threads/CF_THREADS plumbing), and the zero-allocation
# steady-state contract must keep holding with the pool fanned out.
"$CFKG" train "${CRASH_FLAGS[@]}" --threads 1 --ckpt "$SMOKE_DIR/t1.ckpt" \
    > "$SMOKE_DIR/t1.log"
"$CFKG" train "${CRASH_FLAGS[@]}" --threads 4 --ckpt "$SMOKE_DIR/t4.ckpt" \
    > "$SMOKE_DIR/t4.log"
cmp "$SMOKE_DIR/t1.ckpt" "$SMOKE_DIR/t4.ckpt" \
    || { echo "thread matrix: checkpoints differ between 1 and 4 threads"; exit 1; }
# The control run above used the default width (CF_THREADS / auto-detect):
# it must match the pinned widths too.
cmp "$SMOKE_DIR/t1.ckpt" "$SMOKE_DIR/control.ckpt" \
    || { echo "thread matrix: default-width checkpoint differs from --threads 1"; exit 1; }
grep '^epoch' "$SMOKE_DIR/t1.log" > "$SMOKE_DIR/t1.epochs"
grep '^epoch' "$SMOKE_DIR/t4.log" > "$SMOKE_DIR/t4.epochs"
[ -s "$SMOKE_DIR/t1.epochs" ] \
    || { echo "thread matrix: no epoch lines in training output"; exit 1; }
cmp "$SMOKE_DIR/t1.epochs" "$SMOKE_DIR/t4.epochs" \
    || { echo "thread matrix: epoch-loss dumps differ between 1 and 4 threads"; exit 1; }
CF_THREADS=1 ./target/release/alloc_gate >/dev/null \
    || { echo "thread matrix: alloc gate failed at 1 thread"; exit 1; }
CF_THREADS=4 ./target/release/alloc_gate >/dev/null \
    || { echo "thread matrix: alloc gate failed at 4 threads"; exit 1; }
echo "thread-matrix gate: ok"

echo "== kg_store gate (offline) =="
# The CFKG1/CFCI1 contracts end to end through the CLI (DESIGN.md §13):
# ingest is a pure function of the graph (byte-identical re-ingest), a
# flipped body byte yields a typed error naming the failing section (never
# a panic or a garbage graph), the chain index is bitwise identical at
# every thread count, and serving retrieval from the index answers
# queries end to end.
KG_DIR="$SMOKE_DIR/kg"
mkdir -p "$KG_DIR"
"$CFKG" gen --entities 3000 --avg-degree 4 --seed 11 --out "$KG_DIR" \
    --store "$KG_DIR/gen.cfkg" >/dev/null
KG_TSV=(--triples "$KG_DIR/large_triples.tsv" --numerics "$KG_DIR/large_numerics.tsv")
"$CFKG" ingest "${KG_TSV[@]}" --out "$KG_DIR/a.cfkg" >/dev/null
"$CFKG" ingest "${KG_TSV[@]}" --out "$KG_DIR/b.cfkg" >/dev/null
cmp "$KG_DIR/a.cfkg" "$KG_DIR/b.cfkg" \
    || { echo "kg_store: re-ingested store is not byte-identical"; exit 1; }
cmp "$KG_DIR/a.cfkg" "$KG_DIR/gen.cfkg" \
    || { echo "kg_store: TSV-ingested store differs from gen --store"; exit 1; }
"$CFKG" stats --store "$KG_DIR/a.cfkg" >/dev/null \
    || { echo "kg_store: stats over the store failed"; exit 1; }
# Flip one byte inside the first section body (offset 24: past the 8-byte
# magic and the 16-byte section header) — the load must fail with a typed
# error naming the section, not panic or succeed.
cp "$KG_DIR/a.cfkg" "$KG_DIR/corrupt.cfkg"
printf '\xff' | dd of="$KG_DIR/corrupt.cfkg" bs=1 seek=24 conv=notrunc status=none
if "$CFKG" stats --store "$KG_DIR/corrupt.cfkg" > "$KG_DIR/corrupt.log" 2>&1; then
    echo "kg_store: corrupted store loaded successfully"; exit 1
fi
grep -q 'section "counts" failed its CRC32 check' "$KG_DIR/corrupt.log" \
    || { echo "kg_store: corruption error does not name the section:"; \
         cat "$KG_DIR/corrupt.log"; exit 1; }
# Chain index: bitwise identical across pool widths.
"$CFKG" index --store "$KG_DIR/a.cfkg" --full --threads 1 \
    --out "$KG_DIR/t1.cfci" >/dev/null
"$CFKG" index --store "$KG_DIR/a.cfkg" --full --threads 4 \
    --out "$KG_DIR/t4.cfci" >/dev/null
cmp "$KG_DIR/t1.cfci" "$KG_DIR/t4.cfci" \
    || { echo "kg_store: chain index differs between 1 and 4 threads"; exit 1; }
# Indexed-retrieval smoke: ingest the serve-smoke graph, index its visible
# split, and answer a query through `serve --store --index`.
"$CFKG" ingest --triples "$SMOKE_DIR/yago15k_sim_triples.tsv" \
    --numerics "$SMOKE_DIR/yago15k_sim_numerics.tsv" \
    --out "$KG_DIR/yago.cfkg" >/dev/null
"$CFKG" index --store "$KG_DIR/yago.cfkg" --seed 3 \
    --out "$KG_DIR/yago.cfci" >/dev/null
mkfifo "$KG_DIR/ix_stdin"
"$CFKG" serve --store "$KG_DIR/yago.cfkg" --index "$KG_DIR/yago.cfci" \
    --ckpt "$SMOKE_DIR/model.ckpt" \
    --dim 16 --layers 1 --walks 32 --top-k 8 --seed 3 --port 0 \
    < "$KG_DIR/ix_stdin" > "$KG_DIR/ix.log" 2>&1 &
IX_PID=$!
exec 5>"$KG_DIR/ix_stdin"
for _ in $(seq 1 100); do
    grep -q '^listening on ' "$KG_DIR/ix.log" && break
    sleep 0.1
done
IX_PORT="$(sed -n 's/^listening on .*://p' "$KG_DIR/ix.log" | head -1)"
[ -n "$IX_PORT" ] || { echo "kg_store: no listening line from indexed serve"; exit 1; }
exec 6<>"/dev/tcp/127.0.0.1/$IX_PORT"
printf '%s\n' '{"entity":"person_0","attr":"birth","id":1}' >&6
read -r -t 30 REPLY_IX <&6 || { echo "kg_store: no reply from indexed serve"; exit 1; }
echo "$REPLY_IX" | grep -q '"ok":true' \
    || { echo "kg_store: expected ok reply, got: $REPLY_IX"; exit 1; }
exec 6<&- 6>&-
kill -TERM "$IX_PID"
wait "$IX_PID" || { echo "kg_store: indexed serve exited non-zero"; exit 1; }
exec 5>&-
echo "kg_store gate: ok"

echo "== shard-matrix gate (offline) =="
# The sharded-serving contract end to end through the CLI (DESIGN.md §14):
# servers at --shards 1 and --shards 4 driven by the same deterministic
# open-loop plan must return byte-identical responses (entity-hash routing
# + per-query retrieval RNG make answers independent of shard count), and
# the metrics text must carry shard-labeled counters without disturbing
# the unlabeled global names. The matrix runs once per quantize mode
# (DESIGN.md §15): int8 serving is integer math under the hood, so its
# responses must be exactly as shard-count-invariant as f32's, and the
# scraped metrics must report the active mode.
SHARD_DIR="$SMOKE_DIR/shards"
mkdir -p "$SHARD_DIR"
for QZ in f32 int8; do
  for SH in 1 4; do
    mkfifo "$SHARD_DIR/stdin_${QZ}_$SH"
    "$CFKG" serve "${SMOKE_FLAGS[@]}" --port 0 --shards "$SH" --quantize "$QZ" \
        < "$SHARD_DIR/stdin_${QZ}_$SH" > "$SHARD_DIR/serve_${QZ}_$SH.log" 2>&1 &
    SH_PID=$!
    exec 5>"$SHARD_DIR/stdin_${QZ}_$SH"
    for _ in $(seq 1 100); do
        grep -q '^listening on ' "$SHARD_DIR/serve_${QZ}_$SH.log" && break
        sleep 0.1
    done
    SH_PORT="$(sed -n 's/^listening on .*://p' "$SHARD_DIR/serve_${QZ}_$SH.log" | head -1)"
    [ -n "$SH_PORT" ] || { echo "shard matrix: no listening line at $QZ/$SH shards"; exit 1; }
    grep -q "serving with $SH shard" "$SHARD_DIR/serve_${QZ}_$SH.log" \
        || { echo "shard matrix: server did not report $SH shards"; exit 1; }
    grep -q "$QZ inference" "$SHARD_DIR/serve_${QZ}_$SH.log" \
        || { echo "shard matrix: server did not report $QZ inference"; exit 1; }
    "$CFKG" loadtest --addr "127.0.0.1:$SH_PORT" \
        --triples "$SMOKE_DIR/yago15k_sim_triples.tsv" \
        --numerics "$SMOKE_DIR/yago15k_sim_numerics.tsv" \
        --rate 500 --requests 120 --warmup 20 --conns 4 --seed 5 \
        --dump "$SHARD_DIR/responses_${QZ}_$SH.dump" > "$SHARD_DIR/load_${QZ}_$SH.log" \
        || { echo "shard matrix: loadtest failed at $QZ/$SH shards"; exit 1; }
    grep -q 'shed 0 ' "$SHARD_DIR/load_${QZ}_$SH.log" \
        || { echo "shard matrix: light load shed requests at $QZ/$SH shards:"; \
             cat "$SHARD_DIR/load_${QZ}_$SH.log"; exit 1; }
    # Scrape shard-labeled metrics: every shard row present, globals intact,
    # quantize-mode gauge reporting the configured mode.
    exec 7<>"/dev/tcp/127.0.0.1/$SH_PORT"
    printf '%s\n' 'GET /metrics' >&7
    SH_METRICS=""
    while read -r -t 30 LINE <&7; do
        [ -z "$LINE" ] && break
        SH_METRICS+="$LINE"$'\n'
    done
    exec 7<&- 7>&-
    echo "$SH_METRICS" | grep -q '^cf_serve_ok_total ' \
        || { echo "shard matrix: global counters missing at $QZ/$SH shards"; exit 1; }
    echo "$SH_METRICS" | grep -q "^cf_serve_quantize_mode{mode=\"$QZ\"} 1" \
        || { echo "shard matrix: metrics do not report mode $QZ:"; \
             echo "$SH_METRICS"; exit 1; }
    for S in $(seq 0 $((SH - 1))); do
        echo "$SH_METRICS" | grep -q "^cf_serve_shard_requests_total{shard=\"$S\"} " \
            || { echo "shard matrix: no metrics row for shard $S of $SH"; exit 1; }
    done
    echo "$SH_METRICS" | grep -q "^cf_serve_shard_requests_total{shard=\"$SH\"} " \
        && { echo "shard matrix: phantom shard row at $SH shards"; exit 1; }
    kill -TERM "$SH_PID"
    wait "$SH_PID" || { echo "shard matrix: server exited non-zero at $QZ/$SH shards"; exit 1; }
    exec 5>&-
  done
  cmp "$SHARD_DIR/responses_${QZ}_1.dump" "$SHARD_DIR/responses_${QZ}_4.dump" \
      || { echo "shard matrix: $QZ response bytes differ between 1 and 4 shards"; exit 1; }
  [ -s "$SHARD_DIR/responses_${QZ}_1.dump" ] \
      || { echo "shard matrix: empty $QZ response dump"; exit 1; }
done
echo "shard-matrix gate: ok"

echo "== live-mutation gate (offline) =="
# The live-mutation durability contract end to end with a real kill -9
# (DESIGN.md §16): two servers over the same base store receive an
# identical mutation stream — a deterministic --mutate-every loadtest on a
# single connection, then an explicit acked batch over /dev/tcp. The
# control server stops gracefully; the crash server is kill -9'd after the
# acks and its journal grows a synthetic torn tail (a partial CFJ1 frame,
# what a mid-append power cut leaves behind). On restart the journal must
# replay — torn tail truncated, every acked mutation preserved — and keep
# serving, including the entity that only exists in the overlay. Offline
# compaction of both journals must then produce byte-identical stores.
MUT_DIR="$SMOKE_DIR/mut"
mkdir -p "$MUT_DIR"
MUT_FLAGS=(--store "$KG_DIR/yago.cfkg" --ckpt "$SMOKE_DIR/model.ckpt" \
           --dim 16 --layers 1 --walks 32 --top-k 8 --seed 3)
MUT_BATCH='{"mutate":[{"op":"upsert","entity":"person_0","attr":"birth","value":1984.5},{"op":"add_entity","name":"smoke_probe"},{"op":"add_edge","head":"smoke_probe","rel":"is_citizen_of","tail":"person_0"}],"id":2}'
mutation_arm() { # $1 = arm name; starts the server, drives traffic + batch
    local ARM="$1"
    mkfifo "$MUT_DIR/${ARM}_stdin"
    "$CFKG" serve "${MUT_FLAGS[@]}" --port 0 --journal "$MUT_DIR/$ARM.cfj" \
        < "$MUT_DIR/${ARM}_stdin" > "$MUT_DIR/$ARM.log" 2>&1 &
    MUT_PID=$!
    exec 5>"$MUT_DIR/${ARM}_stdin"
    for _ in $(seq 1 100); do
        grep -q '^listening on ' "$MUT_DIR/$ARM.log" && break
        sleep 0.1
    done
    MUT_PORT="$(sed -n 's/^listening on .*://p' "$MUT_DIR/$ARM.log" | head -1)"
    [ -n "$MUT_PORT" ] || { echo "mutation gate: no listening line ($ARM)"; exit 1; }
    # Mutations mid-traffic: every 10th planned request carries an upsert.
    # One connection keeps the mutation order identical across arms; the
    # retry budget exercises the shed-then-resend client path.
    "$CFKG" loadtest --addr "127.0.0.1:$MUT_PORT" \
        --triples "$SMOKE_DIR/yago15k_sim_triples.tsv" \
        --numerics "$SMOKE_DIR/yago15k_sim_numerics.tsv" \
        --rate 500 --requests 100 --warmup 0 --conns 1 --seed 7 \
        --mutate-every 10 --retries 2 > "$MUT_DIR/load_$ARM.log" \
        || { echo "mutation gate: loadtest failed ($ARM)"; exit 1; }
    grep -q 'mutations 10+0' "$MUT_DIR/load_$ARM.log" \
        || { echo "mutation gate: expected 10 acked mutations ($ARM):"; \
             cat "$MUT_DIR/load_$ARM.log"; exit 1; }
    exec 8<>"/dev/tcp/127.0.0.1/$MUT_PORT"
    printf '%s\n' "$MUT_BATCH" >&8
    read -r -t 30 REPLY_MUT <&8 || { echo "mutation gate: no mutate ack ($ARM)"; exit 1; }
    echo "$REPLY_MUT" | grep -q '"mutated":true' \
        || { echo "mutation gate: mutate rejected ($ARM): $REPLY_MUT"; exit 1; }
    # A malformed mutation must fail with a typed per-field error line.
    printf '%s\n' '{"mutate":{"op":"upsert","entity":"e","attr":"a","value":"x"},"id":3}' >&8
    read -r -t 30 REPLY_BADMUT <&8 || { echo "mutation gate: no bad-mutate reply ($ARM)"; exit 1; }
    echo "$REPLY_BADMUT" | grep -q 'mutate.value\\" must be a finite number' \
        || { echo "mutation gate: untyped mutate error ($ARM): $REPLY_BADMUT"; exit 1; }
    # A well-formed mutation naming an attribute outside the serving
    # vocabulary is rejected by the engine (and counted as such) without
    # touching the journal or the overlay.
    printf '%s\n' '{"mutate":{"op":"upsert","entity":"person_0","attr":"no_such_attr","value":1.0},"id":9}' >&8
    read -r -t 30 REPLY_VOCAB <&8 || { echo "mutation gate: no vocab-reject reply ($ARM)"; exit 1; }
    echo "$REPLY_VOCAB" | grep -q 'not in the serving vocabulary' \
        || { echo "mutation gate: vocab rejection missing ($ARM): $REPLY_VOCAB"; exit 1; }
    # The overlay-only entity must be servable, and the mutation counters
    # must be scrapable (10 loadtest upserts + 1 batch, 1 rejected).
    printf '%s\n' '{"entity":"smoke_probe","attr":"birth","id":4}' >&8
    read -r -t 30 REPLY_PROBE <&8 || { echo "mutation gate: no probe reply ($ARM)"; exit 1; }
    echo "$REPLY_PROBE" | grep -q '"ok":true' \
        || { echo "mutation gate: overlay entity not served ($ARM): $REPLY_PROBE"; exit 1; }
    printf '%s\n' 'GET /metrics' >&8
    MUT_METRICS=""
    while read -r -t 30 LINE <&8; do
        [ -z "$LINE" ] && break
        MUT_METRICS+="$LINE"$'\n'
    done
    exec 8<&- 8>&-
    echo "$MUT_METRICS" | grep -q '^cf_serve_mutations_ok_total 11' \
        || { echo "mutation gate: metrics missing mutations_ok 11 ($ARM):"; \
             echo "$MUT_METRICS"; exit 1; }
    echo "$MUT_METRICS" | grep -q '^cf_serve_mutations_rejected_total 1' \
        || { echo "mutation gate: metrics missing mutations_rejected 1 ($ARM)"; exit 1; }
}

mutation_arm control
kill -TERM "$MUT_PID"
wait "$MUT_PID" || { echo "mutation gate: control server exited non-zero"; exit 1; }
exec 5>&-

mutation_arm crash
kill -9 "$MUT_PID"
wait "$MUT_PID" 2>/dev/null || true
exec 5>&-
# A partial CFJ1 frame (length word + 1 crc byte) on the tail: the torn
# write a power cut leaves. Replay must truncate it, not fail.
printf '\x20\x00\x00\x00\x99' >> "$MUT_DIR/crash.cfj"
mkfifo "$MUT_DIR/restart_stdin"
"$CFKG" serve "${MUT_FLAGS[@]}" --port 0 --journal "$MUT_DIR/crash.cfj" \
    < "$MUT_DIR/restart_stdin" > "$MUT_DIR/restart.log" 2>&1 &
RESTART_PID=$!
exec 5>"$MUT_DIR/restart_stdin"
for _ in $(seq 1 100); do
    grep -q '^listening on ' "$MUT_DIR/restart.log" && break
    sleep 0.1
done
RESTART_PORT="$(sed -n 's/^listening on .*://p' "$MUT_DIR/restart.log" | head -1)"
[ -n "$RESTART_PORT" ] || { echo "mutation gate: no listening line after restart"; exit 1; }
grep -q 'replayed 13 mutation(s)' "$MUT_DIR/restart.log" \
    || { echo "mutation gate: restart did not replay 13 mutations:"; \
         cat "$MUT_DIR/restart.log"; exit 1; }
exec 8<>"/dev/tcp/127.0.0.1/$RESTART_PORT"
printf '%s\n' '{"entity":"smoke_probe","attr":"birth","id":5}' >&8
read -r -t 30 REPLY_REPLAY <&8 || { echo "mutation gate: no reply after replay"; exit 1; }
echo "$REPLY_REPLAY" | grep -q '"ok":true' \
    || { echo "mutation gate: replayed overlay entity not served: $REPLY_REPLAY"; exit 1; }
exec 8<&- 8>&-
kill -TERM "$RESTART_PID"
wait "$RESTART_PID" || { echo "mutation gate: restarted server exited non-zero"; exit 1; }
exec 5>&-

# Fold both journals into stores offline: identical mutation histories must
# compact to byte-identical CFKG1 files — the crash changed nothing.
for ARM in control crash; do
    "$CFKG" compact --store "$KG_DIR/yago.cfkg" --journal "$MUT_DIR/$ARM.cfj" \
        --out "$MUT_DIR/$ARM.kg" > "$MUT_DIR/compact_$ARM.log" \
        || { echo "mutation gate: compact failed ($ARM)"; exit 1; }
done
cmp "$MUT_DIR/control.kg" "$MUT_DIR/crash.kg" \
    || { echo "mutation gate: crash-recovered store differs from control"; exit 1; }
echo "live-mutation gate: ok"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== ci.sh: all green =="
