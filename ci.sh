#!/bin/bash
# Tier-1 verification, fully offline: release build, whole test suite,
# formatting. Run from the repository root; exits non-zero on the first
# failure. No network access is required at any point — the workspace has
# zero crates.io dependencies (see DESIGN.md "Offline substrate").
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release (offline) =="
# --workspace: the root manifest is also a package, so a bare build would
# skip members like crates/cli (cfkg) and the bench binaries.
cargo build --release --offline --workspace

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== cargo fmt --check =="
cargo fmt --check

echo "== ci.sh: all green =="
