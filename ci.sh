#!/bin/bash
# Tier-1 verification, fully offline: release build, whole test suite,
# formatting. Run from the repository root; exits non-zero on the first
# failure. No network access is required at any point — the workspace has
# zero crates.io dependencies (see DESIGN.md "Offline substrate").
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release (offline) =="
# --workspace: the root manifest is also a package, so a bare build would
# skip members like crates/cli (cfkg) and the bench binaries.
cargo build --release --offline --workspace

echo "== cargo test (offline) =="
cargo test -q --workspace --offline

echo "== bench build + smoke (offline) =="
# Keep the micro-benchmarks compiling and runnable: a 1-sample pass of the
# tensor benches catches kernel regressions that only manifest in release
# bench binaries. CF_BENCH_JSON stays unset so results/BENCH_tensor.json is
# not clobbered by smoke numbers.
cargo build --offline --benches --workspace
CF_BENCH_SAMPLES=1 cargo bench --offline -p chainsformer-bench \
    --bench tensor_ops --bench tensor_kernels >/dev/null

echo "== cargo fmt --check =="
cargo fmt --check

echo "== ci.sh: all green =="
