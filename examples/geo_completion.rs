//! Spatial attribute completion: latitude/longitude of places inferred from
//! containment and adjacency chains (`located_in`, `has_capital`,
//! `has_neighbor`) — the attribute family where the paper reports
//! ChainsFormer's largest gains.
//!
//! ```bash
//! cargo run --release --example geo_completion
//! ```

use cf_baselines::{evaluate_baseline, MrAP, NapPlusPlus, TransE, TransEConfig};
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{MinMaxNormalizer, NumTriple, Split};
use cf_rand::SeedableRng;
use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};

fn main() {
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(5);
    let graph = yago15k_sim(SynthScale::default_scale(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let norm = MinMaxNormalizer::fit(graph.num_attributes(), &split.train);

    let lat = graph.attribute_by_name("latitude").expect("latitude");
    let lon = graph.attribute_by_name("longitude").expect("longitude");
    let spatial: Vec<NumTriple> = split
        .test
        .iter()
        .filter(|t| t.attr == lat || t.attr == lon)
        .copied()
        .collect();
    println!("{} held-out coordinates to predict", spatial.len());

    // Baselines.
    let transe = TransE::fit(&visible, TransEConfig::default(), &mut rng);
    let nap = NapPlusPlus::new(transe, 8, graph.num_attributes(), &split.train);
    let mrap = MrAP::fit(&visible, &split.train, 3);
    let r_nap = evaluate_baseline(&nap, &visible, &spatial, &norm, &mut rng);
    let r_mrap = evaluate_baseline(&mrap, &visible, &spatial, &norm, &mut rng);

    // ChainsFormer (multi-hop chains matter for places whose direct
    // container has no recorded coordinates).
    let cfg = ChainsFormerConfig {
        epochs: 10,
        ..ChainsFormerConfig::default()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);
    let r_ours = chainsformer::evaluate_model(&model, &visible, &spatial, &mut rng);

    println!("\nMAE in degrees:");
    println!("              latitude  longitude");
    println!(
        "  NAP++      {:>8.2}  {:>9.2}",
        r_nap.mae(lat),
        r_nap.mae(lon)
    );
    println!(
        "  MrAP       {:>8.2}  {:>9.2}",
        r_mrap.mae(lat),
        r_mrap.mae(lon)
    );
    println!(
        "  ChainsFormer {:>6.2}  {:>9.2}",
        r_ours.mae(lat),
        r_ours.mae(lon)
    );

    // What chains does the model lean on? (Paper Table V: has_capital,
    // located_in, has_neighbor.)
    let keys =
        chainsformer::explain::key_chains_per_attribute(&model, &visible, &spatial, 3, &mut rng);
    for (attr, name) in [(lat, "latitude"), (lon, "longitude")] {
        if let Some(ranked) = keys.get(&attr) {
            println!("\nkey chains for {name}:");
            for k in ranked {
                println!(
                    "  {}  (total weight {:.2} across {} queries)",
                    k.chain.render(&graph),
                    k.total_weight,
                    k.occurrences
                );
            }
        }
    }
}
