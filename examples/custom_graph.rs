//! Bring-your-own knowledge graph: build a small family/work graph by hand
//! (or load one from MMKG-style TSV), train ChainsFormer on it and predict a
//! missing birth year. Demonstrates the full public API surface without the
//! synthetic generators.
//!
//! ```bash
//! cargo run --release --example custom_graph
//! ```

use cf_chains::Query;
use cf_kg::io::{write_numerics, write_triples, TsvLoader};
use cf_kg::{KnowledgeGraph, Split};
use cf_rand::{Rng, SeedableRng};
use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};

/// Builds a family/film world where birth years follow the generation
/// structure: siblings are close, children are ~28 years after parents, and
/// directors are ~40 years older than their films.
fn build_graph(rng: &mut impl Rng) -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new();
    let sibling = g.add_relation_type("sibling");
    let child_of = g.add_relation_type("child_of");
    let directed = g.add_relation_type("directed");
    let birth = g.add_attribute_type("birth_year");
    let release = g.add_attribute_type("release_year");

    let mut people = Vec::new();
    // Three generations of families.
    for fam in 0..30 {
        let base = 1880.0 + rng.gen_range(0.0..40.0);
        let parent = g.add_entity(format!("fam{fam}_parent"));
        g.add_numeric(parent, birth, base + rng.gen_range(-2.0..2.0));
        people.push(parent);
        let mut prev_child: Option<cf_kg::EntityId> = None;
        for c in 0..3 {
            let child = g.add_entity(format!("fam{fam}_child{c}"));
            g.add_numeric(child, birth, base + 28.0 + rng.gen_range(-4.0..4.0));
            g.add_triple(child, child_of, parent);
            if let Some(p) = prev_child {
                g.add_triple(child, sibling, p);
            }
            prev_child = Some(child);
            people.push(child);
        }
    }
    // Films directed by random people ~40 years after their birth.
    for f in 0..40 {
        let film = g.add_entity(format!("film{f}"));
        let d = people[rng.gen_range(0..people.len())];
        g.add_triple(d, directed, film);
        let d_birth = g
            .numerics()
            .iter()
            .find(|t| t.entity == d && t.attr == birth)
            .map(|t| t.value)
            .expect("director has birth");
        g.add_numeric(film, release, d_birth + 40.0 + rng.gen_range(-5.0..5.0));
    }
    g.build_index();
    g
}

fn main() {
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(3);
    let graph = build_graph(&mut rng);

    // Round-trip through the MMKG-style TSV format, proving the IO path a
    // real dataset would use.
    let mut triples_tsv = Vec::new();
    write_triples(&graph, &mut triples_tsv).expect("serialize triples");
    let mut numerics_tsv = Vec::new();
    write_numerics(&graph, &mut numerics_tsv).expect("serialize numerics");
    let mut loader = TsvLoader::new();
    loader
        .load_triples(&triples_tsv[..])
        .expect("parse triples");
    loader
        .load_numerics(&numerics_tsv[..])
        .expect("parse numerics");
    let graph = loader.finish();
    println!(
        "loaded {} entities / {} triples / {} numeric facts via TSV round-trip",
        graph.num_entities(),
        graph.triples().len(),
        graph.numerics().len()
    );

    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let cfg = ChainsFormerConfig {
        epochs: 15,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);

    let report = chainsformer::evaluate_model(&model, &visible, &split.test, &mut rng);
    let birth = graph.attribute_by_name("birth_year").expect("birth_year");
    println!("\nheld-out birth_year MAE: {:.1} years", report.mae(birth));

    if let Some(t) = split.test.iter().find(|t| t.attr == birth) {
        let d = model.predict(
            &visible,
            Query {
                entity: t.entity,
                attr: t.attr,
            },
            &mut rng,
        );
        println!(
            "{}: predicted {:.1}, actual {:.1}",
            graph.entity_name(t.entity),
            d.value,
            t.value
        );
        let mut chains = d.chains;
        chains.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite"));
        for c in chains.iter().take(4) {
            println!("  ω={:.3}  {}", c.weight, c.chain.render(&graph));
        }
    }
}
