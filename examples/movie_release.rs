//! The paper's motivating scenario (Figure 1): predicting temporal film
//! attributes from the people around a film — director/actor birth dates,
//! collaborators, siblings — on the FB15K-237-like twin.
//!
//! ```bash
//! cargo run --release --example movie_release
//! ```

use cf_baselines::{evaluate_baseline, AttributeMean, MrAP};
use cf_chains::Query;
use cf_kg::synth::{fb15k_sim, SynthScale};
use cf_kg::{MinMaxNormalizer, Split};
use cf_rand::SeedableRng;
use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};

fn main() {
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(11);
    let graph = fb15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let norm = MinMaxNormalizer::fit(graph.num_attributes(), &split.train);

    let release = graph
        .attribute_by_name("film_release")
        .expect("film_release attribute");
    let release_tests: Vec<_> = split
        .test
        .iter()
        .filter(|t| t.attr == release)
        .copied()
        .collect();
    println!(
        "{} held-out film_release facts to predict",
        release_tests.len()
    );

    // Baselines for context.
    let mean = AttributeMean::fit(graph.num_attributes(), &split.train);
    let mrap = MrAP::fit(&visible, &split.train, 3);
    let r_mean = evaluate_baseline(&mean, &visible, &release_tests, &norm, &mut rng);
    let r_mrap = evaluate_baseline(&mrap, &visible, &release_tests, &norm, &mut rng);

    // ChainsFormer.
    let cfg = ChainsFormerConfig {
        epochs: 12,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);
    let r_ours = chainsformer::evaluate_model(&model, &visible, &release_tests, &mut rng);

    println!("\nfilm_release MAE (years):");
    println!("  attribute mean : {:.2}", r_mean.mae(release));
    println!("  MrAP           : {:.2}", r_mrap.mae(release));
    println!("  ChainsFormer   : {:.2}", r_ours.mae(release));

    // Show how a single film's release year is reasoned about.
    if let Some(t) = release_tests
        .iter()
        .max_by_key(|t| visible.degree(t.entity))
    {
        let detail = model.predict(
            &visible,
            Query {
                entity: t.entity,
                attr: t.attr,
            },
            &mut rng,
        );
        println!(
            "\n{} — predicted release {:.1}, actual {:.1}",
            graph.entity_name(t.entity),
            detail.value,
            t.value
        );
        let mut chains = detail.chains;
        chains.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite"));
        println!("top evidence chains:");
        for c in chains.iter().take(5) {
            println!(
                "  ω={:.3}  {}  (known value {:.1})",
                c.weight,
                c.chain.render(&graph),
                c.known_value
            );
        }
    }
}
