//! Train once, save the parameters, reload into a fresh process-equivalent
//! model and keep serving predictions — plus the chain-quality pruning
//! extension in action.
//!
//! ```bash
//! cargo run --release --example checkpointing
//! ```

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::SeedableRng;
use chainsformer::{evaluate_model, ChainsFormer, ChainsFormerConfig, Trainer};

fn main() {
    let cfg = ChainsFormerConfig {
        epochs: 10,
        chain_quality: true, // §VI future-work extension: prune bad patterns
        ..ChainsFormerConfig::tiny()
    };

    // Train.
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(21);
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let mut model = ChainsFormer::new(&visible, &split.train, cfg.clone(), &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    println!("trained model: test normalized MAE {:.4}", report.norm_mae);
    if let Some(q) = &model.quality {
        println!(
            "chain-quality tracker learned {} RA-Chain patterns",
            q.len()
        );
    }

    // Save.
    let path = std::env::temp_dir().join("chainsformer_demo.ckpt");
    model.save_params_to(&path).expect("save checkpoint");
    println!("saved checkpoint to {}", path.display());

    // Reload into a freshly constructed (untrained) model. Architecture is
    // rebuilt from the same config/graph/seed; only the weights load.
    let mut rng2 = cf_rand::rngs::StdRng::seed_from_u64(21);
    let graph2 = yago15k_sim(SynthScale::small(), &mut rng2);
    let split2 = Split::paper_811(&graph2, &mut rng2);
    let visible2 = split2.visible_graph(&graph2);
    let mut served = ChainsFormer::new(&visible2, &split2.train, cfg, &mut rng2);
    served.load_params_from(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();

    // Same query, same RNG stream → same answer from the reloaded model.
    let t = split.test[0];
    let q = Query {
        entity: t.entity,
        attr: t.attr,
    };
    let mut ra = cf_rand::rngs::StdRng::seed_from_u64(77);
    let mut rb = cf_rand::rngs::StdRng::seed_from_u64(77);
    let a = model.predict(&visible, q, &mut ra);
    let b = served.predict(&visible2, q, &mut rb);
    println!("original model predicts {:.3}", a.value);
    println!("reloaded model predicts {:.3}", b.value);
    assert_eq!(a.value, b.value, "checkpoint round-trip must be exact");
    println!("round-trip exact ✓");
}
