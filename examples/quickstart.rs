//! Quickstart: generate a synthetic knowledge graph, train ChainsFormer,
//! and predict a missing numerical attribute with a reasoning trace.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::SeedableRng;
use chainsformer::{evaluate_model, ChainsFormer, ChainsFormerConfig, Trainer};

fn main() {
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(42);

    // 1. A knowledge graph with numerical attributes (YAGO15K-like twin).
    let graph = yago15k_sim(SynthScale::small(), &mut rng);
    println!(
        "graph: {} entities, {} relations, {} attributes, {} triples, {} numeric facts",
        graph.num_entities(),
        graph.num_relations(),
        graph.num_attributes(),
        graph.triples().len(),
        graph.numerics().len()
    );

    // 2. The paper's 8:1:1 split; evaluation answers are hidden from the
    //    graph the model sees.
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);

    // 3. Train (small config for a fast demo; `ChainsFormerConfig::paper()`
    //    is the full-scale setting).
    let cfg = ChainsFormerConfig {
        epochs: 12,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
    println!(
        "trained {} epochs; final train loss {:.4}",
        result.epochs.len(),
        result.epochs.last().expect("at least one epoch").train_loss
    );

    // 4. Evaluate on the held-out test triples.
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    println!(
        "test normalized MAE {:.4}, RMSE {:.4}",
        report.norm_mae, report.norm_rmse
    );

    // 5. Predict one test query and show the reasoning chains — prefer a
    //    birth query on a well-connected person, the paper's Figure-1 demo.
    let birth = graph.attribute_by_name("birth");
    let t = split
        .test
        .iter()
        .filter(|t| Some(t.attr) == birth)
        .max_by_key(|t| visible.degree(t.entity))
        .or_else(|| split.test.iter().max_by_key(|t| visible.degree(t.entity)))
        .expect("non-empty test split");
    let query = Query {
        entity: t.entity,
        attr: t.attr,
    };
    let detail = model.predict(&visible, query, &mut rng);
    println!(
        "\nquery: {} of {:?} ({})",
        graph.attribute_name(t.attr),
        t.entity,
        graph.entity_name(t.entity)
    );
    println!("prediction {:.2}   truth {:.2}", detail.value, t.value);
    let mut chains = detail.chains.clone();
    chains.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite"));
    for c in chains.iter().take(5) {
        println!(
            "  ω={:.3}  {}  n_p={:.1} → n̂={:.1}",
            c.weight,
            c.chain.render(&graph),
            c.known_value,
            c.prediction
        );
    }
}
