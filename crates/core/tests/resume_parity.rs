//! The crash-safety contract, end to end: (train, crash, resume) must
//! reproduce the uninterrupted run's trajectory bit for bit.
//!
//! The "crash" is `TrainOptions::stop_after_epochs`, which returns right
//! after the epoch-boundary checkpoint lands on disk and skips the
//! best-restore/final-save a killed process would never have reached —
//! byte-for-byte what `kill -9` leaves behind (the ci.sh smoke test does
//! the real kill).

use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::config::ChainsFormerConfig;
use chainsformer::model::ChainsFormer;
use chainsformer::train::{TrainError, TrainOptions, Trainer};

fn cfg(epochs: usize) -> ChainsFormerConfig {
    ChainsFormerConfig {
        epochs,
        ..ChainsFormerConfig::tiny()
    }
}

/// Deterministic world + freshly initialized model for a given seed.
fn setup(
    cfg: &ChainsFormerConfig,
    seed: u64,
) -> (cf_kg::KnowledgeGraph, Split, ChainsFormer, StdRng) {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, cfg.clone(), &mut rng);
    (visible, split, model, rng)
}

fn tmp_ckpt(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cf_resume_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("train.ckpt")
}

fn assert_params_bitwise_equal(a: &cf_tensor::ParamStore, b: &cf_tensor::ParamStore) {
    for ((_, name, ta), (_, _, tb)) in a.iter().zip(b.iter()) {
        assert_eq!(ta.shape(), tb.shape(), "{name}: shape diverged");
        for (i, (x, y)) in ta.data().iter().zip(tb.data()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{name}[{i}]: {x} vs {y} — resumed run diverged"
            );
        }
    }
}

#[test]
fn crash_and_resume_matches_uninterrupted_run_bitwise() {
    let cfg = cfg(5);
    let ckpt = tmp_ckpt("parity");

    // Control: 5 epochs straight through, no checkpointing at all (proves
    // checkpoint writes themselves don't perturb the trajectory).
    let (visible, split, mut control, mut rng) = setup(&cfg, 42);
    let control_result = Trainer::new(&mut control, &visible).train(&split, &mut rng);

    // Crashed run: same world, crash after epoch 2's checkpoint.
    let (visible2, split2, mut crashed, mut rng2) = setup(&cfg, 42);
    let first = Trainer::new(&mut crashed, &visible2)
        .train_opts(
            &split2,
            &mut rng2,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                stop_after_epochs: Some(2),
                ..TrainOptions::default()
            },
        )
        .unwrap();
    assert!(first.interrupted);
    assert_eq!(first.epochs.len(), 2);

    // Resume in a *fresh process image*: new model from the same seed, new
    // RNG whose position is irrelevant (resume rewinds it from the file).
    let (visible3, split3, mut resumed, _) = setup(&cfg, 42);
    let mut stale_rng = StdRng::seed_from_u64(999);
    let second = Trainer::new(&mut resumed, &visible3)
        .train_opts(
            &split3,
            &mut stale_rng,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                resume: true,
                ..TrainOptions::default()
            },
        )
        .unwrap();
    assert!(!second.interrupted);

    // Trajectory: epochs 3..5 of the resumed run must equal the control's,
    // to the last bit of the loss.
    assert_eq!(second.epochs.first().unwrap().epoch, 2);
    for (c, r) in control_result.epochs[2..].iter().zip(&second.epochs) {
        assert_eq!(c.epoch, r.epoch);
        assert_eq!(
            c.train_loss.to_bits(),
            r.train_loss.to_bits(),
            "epoch {}: control loss {} vs resumed {}",
            c.epoch,
            c.train_loss,
            r.train_loss
        );
        assert_eq!(
            c.valid_mae.map(f64::to_bits),
            r.valid_mae.map(f64::to_bits),
            "epoch {}: validation diverged",
            c.epoch
        );
        assert_eq!(c.skipped, r.skipped);
    }
    assert_eq!(control_result.best_epoch, second.best_epoch);
    assert_params_bitwise_equal(&control.params, &resumed.params);

    std::fs::remove_dir_all(ckpt.parent().unwrap()).unwrap();
}

#[test]
fn resume_refuses_config_mismatch_and_finished_runs() {
    let ckpt = tmp_ckpt("refuse");
    let cfg5 = cfg(3);
    let (visible, split, mut model, mut rng) = setup(&cfg5, 7);
    Trainer::new(&mut model, &visible)
        .train_opts(
            &split,
            &mut rng,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                stop_after_epochs: Some(1),
                ..TrainOptions::default()
            },
        )
        .unwrap();

    // Different config (lr changed) → fingerprint mismatch.
    let mut other_cfg = cfg5.clone();
    other_cfg.lr *= 2.0;
    let (visible2, split2, mut model2, mut rng2) = setup(&other_cfg, 7);
    let err = Trainer::new(&mut model2, &visible2)
        .train_opts(
            &split2,
            &mut rng2,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                resume: true,
                ..TrainOptions::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, TrainError::ConfigMismatch { .. }), "{err}");

    // Finish the run; the final artifact is params-only and not resumable.
    let (visible3, split3, mut model3, mut rng3) = setup(&cfg5, 7);
    Trainer::new(&mut model3, &visible3)
        .train_opts(
            &split3,
            &mut rng3,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                resume: true,
                ..TrainOptions::default()
            },
        )
        .unwrap();
    let (visible4, split4, mut model4, mut rng4) = setup(&cfg5, 7);
    let err = Trainer::new(&mut model4, &visible4)
        .train_opts(
            &split4,
            &mut rng4,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                resume: true,
                ..TrainOptions::default()
            },
        )
        .unwrap_err();
    assert!(matches!(err, TrainError::NotResumable), "{err}");

    std::fs::remove_dir_all(ckpt.parent().unwrap()).unwrap();
}

#[test]
fn interrupt_flag_stops_training_and_ships_best_params() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let ckpt = tmp_ckpt("interrupt");
    let cfg = cfg(4);
    let (visible, split, mut model, mut rng) = setup(&cfg, 11);
    // Raised before training starts: the first batch check trips, so zero
    // epochs run — and the final save must still produce a loadable file.
    let flag = Arc::new(AtomicBool::new(true));
    let result = Trainer::new(&mut model, &visible)
        .train_opts(
            &split,
            &mut rng,
            &TrainOptions {
                checkpoint_path: Some(ckpt.clone()),
                interrupt: Some(flag.clone()),
                ..TrainOptions::default()
            },
        )
        .unwrap();
    assert!(result.interrupted);
    assert!(result.epochs.is_empty());
    flag.store(false, Ordering::Relaxed);

    let (_, _, mut fresh, _) = setup(&cfg, 11);
    fresh.load_params_from(&ckpt).unwrap();
    assert_params_bitwise_equal(&model.params, &fresh.params);

    std::fs::remove_dir_all(ckpt.parent().unwrap()).unwrap();
}
