//! Bitwise parity pins for the tape-free serving path (ISSUE 3):
//!
//! 1. the tape-free forward ([`cf_tensor::InferCtx`]) is bit-equal to the
//!    taped forward at the full model shape;
//! 2. `predict_batch(B)` is bit-identical to `B` sequential `predict`s.
//!
//! These are the contracts the serving engine relies on: micro-batching and
//! tape elimination are pure performance moves, never accuracy moves.

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::{Forward, InferCtx, Tape};
use chainsformer::{ChainsFormer, ChainsFormerConfig};

fn setup() -> (cf_kg::KnowledgeGraph, Split, ChainsFormer) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
    (visible, split, model)
}

#[test]
fn tape_free_forward_is_bitwise_equal_to_taped() {
    let (visible, split, model) = setup();
    let mut checked = 0;
    for t in split.test.iter().take(8) {
        let q = Query {
            entity: t.entity,
            attr: t.attr,
        };
        // Same rng state for both gathers so both paths see the same chains.
        let mut rng_a = StdRng::seed_from_u64(170);
        let mut rng_b = StdRng::seed_from_u64(170);
        let (toc_a, _) = model.gather_chains(&visible, q, &mut rng_a);
        let (toc_b, _) = model.gather_chains(&visible, q, &mut rng_b);
        if toc_a.is_empty() {
            continue;
        }
        let mut tape = Tape::new();
        let taped = model.forward(&mut tape, &toc_a.chains, q);
        let mut ctx = InferCtx::new();
        let free = model.forward(&mut ctx, &toc_b.chains, q);
        assert_eq!(
            tape.value(taped.prediction).item().to_bits(),
            ctx.value(free.prediction).item().to_bits(),
            "prediction bits diverged for {q:?}"
        );
        assert_eq!(
            tape.value(taped.weights)
                .data()
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>(),
            ctx.value(free.weights)
                .data()
                .iter()
                .map(|w| w.to_bits())
                .collect::<Vec<_>>(),
            "weights diverged for {q:?}"
        );
        assert_eq!(
            tape.value(taped.chain_predictions)
                .data()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            ctx.value(free.chain_predictions)
                .data()
                .iter()
                .map(|p| p.to_bits())
                .collect::<Vec<_>>(),
            "chain predictions diverged for {q:?}"
        );
        checked += 1;
    }
    assert!(
        checked >= 3,
        "only {checked} non-fallback queries exercised"
    );
}

#[test]
fn predict_batch_bitwise_matches_sequential_predicts() {
    let (visible, split, model) = setup();
    let queries: Vec<Query> = split
        .test
        .iter()
        .take(6)
        .map(|t| Query {
            entity: t.entity,
            attr: t.attr,
        })
        .collect();

    let mut rng_seq = StdRng::seed_from_u64(1717);
    let sequential: Vec<_> = queries
        .iter()
        .map(|&q| model.predict(&visible, q, &mut rng_seq))
        .collect();

    let mut rng_batch = StdRng::seed_from_u64(1717);
    let batched = model.predict_batch(&visible, &queries, &mut rng_batch);

    assert_eq!(batched.len(), sequential.len());
    let mut evidenced = 0;
    for (s, b) in sequential.iter().zip(&batched) {
        assert_eq!(s.query, b.query);
        assert_eq!(s.used_fallback, b.used_fallback);
        assert_eq!(s.retrieved, b.retrieved);
        assert_eq!(
            s.value.to_bits(),
            b.value.to_bits(),
            "value bits diverged for {:?}",
            s.query
        );
        assert_eq!(s.chains.len(), b.chains.len());
        for (cs, cb) in s.chains.iter().zip(&b.chains) {
            assert_eq!(cs.weight.to_bits(), cb.weight.to_bits());
            assert_eq!(cs.prediction.to_bits(), cb.prediction.to_bits());
            assert_eq!(cs.known_value.to_bits(), cb.known_value.to_bits());
            assert_eq!(cs.source, cb.source);
        }
        if !s.used_fallback {
            evidenced += 1;
        }
    }
    assert!(
        evidenced >= 2,
        "only {evidenced} evidence-backed predictions"
    );
}
