//! Accuracy gate for the int8 inference path (ISSUE 9).
//!
//! The bitstream value encoding makes the numeric heads precision-sensitive,
//! so quantized serving is only shippable if its accuracy cost is pinned, not
//! assumed. This gate trains a small model on the simulated twins, resolves
//! one shared set of evidence chains, runs the identical batch through the
//! f32 path ([`InferCtx`]) and the quantized path ([`QuantInferCtx`]), and
//! asserts the *per-attribute* MAE drift — measured in each attribute's
//! normalized [0, 1] training scale so attributes with wildly different units
//! are comparable — stays under a fixed threshold.
//!
//! Threshold rationale (DESIGN.md §15): per-tensor symmetric int8 bounds each
//! weight's relative error by ~1/254 of its max; through the encoder/reasoner
//! stack (attention, softmax and heads all f32) the observed end-to-end drift
//! on the twins is an order of magnitude under 0.01 normalized MAE. The gate
//! is set at 0.01 — loose enough to survive retuning, tight enough that a
//! broken scale or a saturating kernel (drift ≫ 0.1) can never pass.

use cf_chains::{ChainInstance, Query};
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::{InferCtx, QuantInferCtx, QuantizedParamStore};
use chainsformer::{ChainsFormer, ChainsFormerConfig, ResolvedQuery, Trainer};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maximum allowed |MAE_int8 − MAE_f32| per attribute, in normalized units.
const MAE_DRIFT_GATE: f64 = 0.01;

fn trained_setup() -> (cf_kg::KnowledgeGraph, Split, ChainsFormer) {
    let mut rng = StdRng::seed_from_u64(23);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let cfg = ChainsFormerConfig {
        epochs: 4,
        ..ChainsFormerConfig::tiny()
    };
    let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Trainer::new(&mut model, &visible).train(&split, &mut rng);
    (visible, split, model)
}

/// Resolves chains once so both paths score the exact same evidence.
fn resolve_jobs<'a>(
    model: &ChainsFormer,
    visible: &cf_kg::KnowledgeGraph,
    split: &Split,
    storage: &'a mut Vec<(Query, Vec<ChainInstance>, usize, f64)>,
) -> Vec<(ResolvedQuery<'a>, f64)> {
    let mut rng = StdRng::seed_from_u64(2323);
    for t in split.test.iter().take(24) {
        let q = Query {
            entity: t.entity,
            attr: t.attr,
        };
        let (toc, retrieved) = model.gather_chains(visible, q, &mut rng);
        storage.push((q, toc.chains, retrieved, t.value));
    }
    storage
        .iter()
        .map(|(q, chains, retrieved, truth)| ((*q, chains.as_slice(), *retrieved), *truth))
        .collect()
}

/// Per-attribute MAE in normalized units over evidence-backed predictions.
fn per_attribute_mae(
    model: &ChainsFormer,
    details: &[chainsformer::PredictionDetail],
    truths: &[f64],
) -> BTreeMap<u32, (f64, usize)> {
    let mut acc: BTreeMap<u32, (f64, usize)> = BTreeMap::new();
    for (d, &truth) in details.iter().zip(truths) {
        if d.used_fallback {
            continue; // identical on both paths: no quantized op runs
        }
        let range = model.normalizer().range(d.query.attr).max(1e-9);
        let e = acc.entry(d.query.attr.0).or_insert((0.0, 0));
        e.0 += (d.value - truth).abs() / range;
        e.1 += 1;
    }
    acc
}

#[test]
fn quantized_per_attribute_mae_drift_is_under_gate() {
    let (visible, split, model) = trained_setup();
    let mut storage = Vec::new();
    let jobs_with_truth = resolve_jobs(&model, &visible, &split, &mut storage);
    let jobs: Vec<ResolvedQuery<'_>> = jobs_with_truth.iter().map(|(j, _)| *j).collect();
    let truths: Vec<f64> = jobs_with_truth.iter().map(|(_, t)| *t).collect();

    let mut fctx = InferCtx::new();
    let f32_details = model.predict_batch_with_chains_in(&jobs, &mut fctx);

    let q = Arc::new(QuantizedParamStore::from_store(&model.params));
    assert!(
        q.num_quantized() >= 4,
        "expected the encoder/reasoner weight matrices to quantize, got {}",
        q.num_quantized()
    );
    let mut qctx = QuantInferCtx::new();
    qctx.set_weights(q);
    let q_details = model.predict_batch_with_chains_in(&jobs, &mut qctx);

    // The quantized path must genuinely diverge bitwise somewhere (otherwise
    // this gate is testing f32 against itself)...
    let any_diff = f32_details
        .iter()
        .zip(&q_details)
        .any(|(a, b)| a.value.to_bits() != b.value.to_bits());
    assert!(any_diff, "quantized path produced f32-identical bits");

    // ...while staying within the per-attribute accuracy budget.
    let f32_mae = per_attribute_mae(&model, &f32_details, &truths);
    let q_mae = per_attribute_mae(&model, &q_details, &truths);
    assert_eq!(
        f32_mae.keys().collect::<Vec<_>>(),
        q_mae.keys().collect::<Vec<_>>(),
        "paths disagreed on which queries are evidence-backed"
    );
    let mut checked = 0;
    for (attr, &(fsum, fcount)) in &f32_mae {
        let (qsum, qcount) = q_mae[attr];
        assert_eq!(fcount, qcount);
        let drift = (qsum / qcount as f64 - fsum / fcount as f64).abs();
        assert!(
            drift <= MAE_DRIFT_GATE,
            "attribute {attr}: normalized MAE drift {drift:.5} exceeds gate {MAE_DRIFT_GATE}"
        );
        checked += 1;
    }
    assert!(checked >= 2, "only {checked} attributes exercised");
}

#[test]
fn quantized_predictions_are_independent_of_batch_composition() {
    // Serving concatenates every batched query's chains into one encoder
    // forward, and micro-batch composition varies with shard count and
    // traffic — so a query's quantized bits must not depend on who shares
    // its batch. The per-row activation scales in the int8 GEMM are what
    // makes this hold (DESIGN.md §15.1).
    let (visible, split, model) = trained_setup();
    let mut storage = Vec::new();
    let jobs_with_truth = resolve_jobs(&model, &visible, &split, &mut storage);
    let jobs: Vec<ResolvedQuery<'_>> = jobs_with_truth.iter().map(|(j, _)| *j).collect();

    let q = Arc::new(QuantizedParamStore::from_store(&model.params));
    let mut ctx = QuantInferCtx::new();
    ctx.set_weights(Arc::clone(&q));
    let together = model.predict_batch_with_chains_in(&jobs, &mut ctx);
    for (i, job) in jobs.iter().enumerate() {
        let solo = model.predict_batch_with_chains_in(&[*job], &mut ctx);
        assert_eq!(
            solo[0].value.to_bits(),
            together[i].value.to_bits(),
            "job {i}: prediction bits depend on batch composition"
        );
    }
}

#[test]
fn quantized_batch_is_bitwise_deterministic_run_to_run() {
    let (visible, split, model) = trained_setup();
    let mut storage = Vec::new();
    let jobs_with_truth = resolve_jobs(&model, &visible, &split, &mut storage);
    let jobs: Vec<ResolvedQuery<'_>> = jobs_with_truth.iter().map(|(j, _)| *j).collect();

    let q = Arc::new(QuantizedParamStore::from_store(&model.params));
    let mut runs: Vec<Vec<u64>> = Vec::new();
    for _ in 0..2 {
        // Fresh context each run: determinism must not depend on arena warmth.
        let mut ctx = QuantInferCtx::new();
        ctx.set_weights(Arc::clone(&q));
        let details = model.predict_batch_with_chains_in(&jobs, &mut ctx);
        runs.push(details.iter().map(|d| d.value.to_bits()).collect());
    }
    assert_eq!(runs[0], runs[1], "quantized predictions varied run-to-run");

    // Rebuilding the quantized store from the same params is also bitwise
    // stable — the property shard-count invariance rests on (every shard
    // quantizes its own replica).
    let q2 = Arc::new(QuantizedParamStore::from_store(&model.params));
    let mut ctx = QuantInferCtx::new();
    ctx.set_weights(q2);
    let details = model.predict_batch_with_chains_in(&jobs, &mut ctx);
    let bits: Vec<u64> = details.iter().map(|d| d.value.to_bits()).collect();
    assert_eq!(runs[0], bits, "re-quantized store changed prediction bits");
}
