//! End-to-end thread invariance: a full training run — retrieval, sharded
//! forward/backward, the fixed-order gradient merge, clipping, Adam — must
//! produce bit-identical loss trajectories and parameters at every thread
//! count. The shard count is a constant of the batch, never of the pool
//! width, so `CF_THREADS=8` replays `CF_THREADS=1` exactly.

use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::Split;
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::pool::set_threads;
use chainsformer::config::ChainsFormerConfig;
use chainsformer::model::ChainsFormer;
use chainsformer::train::Trainer;

/// Trains a tiny model from a fixed seed and returns (per-epoch loss bits,
/// final parameter bits).
fn train_and_fingerprint(cfg: &ChainsFormerConfig) -> (Vec<u64>, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(21);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let mut model = ChainsFormer::new(&visible, &split.train, cfg.clone(), &mut rng);
    let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
    let losses = result
        .epochs
        .iter()
        .map(|e| e.train_loss.to_bits())
        .collect();
    let mut params = Vec::new();
    for (_, _, t) in model.params.iter() {
        params.extend(t.data().iter().map(|x| x.to_bits()));
    }
    (losses, params)
}

#[test]
fn training_is_bitwise_identical_at_every_thread_count() {
    let cfg = ChainsFormerConfig {
        epochs: 2,
        ..ChainsFormerConfig::tiny()
    };
    set_threads(1);
    let (base_losses, base_params) = train_and_fingerprint(&cfg);
    assert!(!base_losses.is_empty());
    for threads in [2, 4, 8] {
        set_threads(threads);
        let (losses, params) = train_and_fingerprint(&cfg);
        assert_eq!(
            base_losses, losses,
            "loss trajectory diverged at {threads} threads"
        );
        assert_eq!(
            base_params, params,
            "trained parameters diverged at {threads} threads"
        );
    }
    set_threads(1);
}

#[test]
fn chain_quality_training_is_bitwise_identical_at_every_thread_count() {
    // Chain-quality tracking adds the per-query prediction capture and the
    // serial in-order prior updates — the pieces most sensitive to shard
    // scheduling — so pin that configuration too.
    let cfg = ChainsFormerConfig {
        epochs: 2,
        chain_quality: true,
        ..ChainsFormerConfig::tiny()
    };
    set_threads(1);
    let (base_losses, base_params) = train_and_fingerprint(&cfg);
    for threads in [4, 8] {
        set_threads(threads);
        let (losses, params) = train_and_fingerprint(&cfg);
        assert_eq!(
            base_losses, losses,
            "quality-tracked trajectory diverged at {threads} threads"
        );
        assert_eq!(
            base_params, params,
            "quality-tracked parameters diverged at {threads} threads"
        );
    }
    set_threads(1);
}
