//! Live-mutation equivalence at the model layer: predictions over an
//! [`OverlayGraph`] (base store + applied mutations) must be bitwise
//! identical to predictions over the *compacted* store holding the same
//! content — at every thread-pool width. This is what makes compaction a
//! pure storage operation: it can never change an answer.

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{read_store, GraphStore, GraphView, Mutation, OverlayGraph, Split};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::pool::set_threads;
use chainsformer::config::ChainsFormerConfig;
use chainsformer::model::ChainsFormer;

#[test]
fn overlay_and_compacted_store_predict_identically_at_every_width() {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);

    // Mutate: overwrite a served fact, add an entity, wire it in. The new
    // entity keeps the base vocabulary (inductive — no retraining needed).
    let q0 = split.test[0];
    let muts = vec![
        Mutation::UpsertNumeric {
            entity: visible.entity_name(q0.entity).to_string(),
            attr: visible.attribute_name(q0.attr).to_string(),
            value: 777.25,
        },
        Mutation::AddEntity {
            name: "overlay_probe".into(),
        },
        Mutation::AddEdge {
            head: "overlay_probe".into(),
            rel: visible.relation_name(cf_kg::RelationId(0)).to_string(),
            tail: visible.entity_name(q0.entity).to_string(),
        },
    ];
    let mut overlay = OverlayGraph::new(GraphStore::Heap(visible.clone()));
    overlay.apply_all(&muts);

    let store_path = std::env::temp_dir().join(format!(
        "cf_overlay_eq_{}_compacted.cfkg",
        std::process::id()
    ));
    overlay.compact_to(&store_path).expect("compact");
    let compacted = read_store(&store_path).expect("read compacted");
    std::fs::remove_file(&store_path).ok();

    let probe = overlay.entity_by_name("overlay_probe").expect("added");
    let mut queries: Vec<Query> = split
        .test
        .iter()
        .take(10)
        .map(|t| Query {
            entity: t.entity,
            attr: t.attr,
        })
        .collect();
    queries.push(Query {
        entity: probe,
        attr: q0.attr,
    });

    // One fixed seed per query, consumed identically by both views — the
    // serve engine's RNG discipline.
    fn answer_bits(
        model: &ChainsFormer,
        g: &impl GraphView,
        queries: &[Query],
        label: &str,
    ) -> Vec<u64> {
        queries
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mut qrng = StdRng::seed_from_u64(0x0DD5_EED0 + i as u64);
                let d = model.predict(g, q, &mut qrng);
                assert!(d.value.is_finite(), "{label}: query {i} not finite");
                d.value.to_bits()
            })
            .collect()
    }

    let mut answers: Vec<Vec<u64>> = Vec::new();
    for threads in [1usize, 4] {
        set_threads(threads);
        answers.push(answer_bits(&model, &overlay, &queries, "overlay"));
        answers.push(answer_bits(&model, &compacted, &queries, "compacted"));
    }
    set_threads(1);
    // overlay@1 == compacted@1 == overlay@4 == compacted@4, bit for bit.
    for (i, a) in answers.iter().enumerate().skip(1) {
        assert_eq!(
            &answers[0], a,
            "answer set {i} diverged (order: overlay@1, compacted@1, overlay@4, compacted@4)"
        );
    }
    // The upserted fact must actually be visible through both views.
    assert_eq!(overlay.value_of(q0.entity, q0.attr), Some(777.25));
    assert_eq!(compacted.value_of(q0.entity, q0.attr), Some(777.25));
}
