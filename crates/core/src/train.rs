//! Training loop (Algorithm 1) and evaluation.

use crate::config::Loss;
use crate::model::ChainsFormer;
use cf_chains::Query;
use cf_kg::{KnowledgeGraph, NumTriple, Prediction, RegressionReport, Split};
use cf_rand::seq::SliceRandom;
use cf_rand::Rng;
use cf_tensor::optim::{clip_global_norm, Adam};
use cf_tensor::{Tape, Tensor};

/// Per-epoch training telemetry.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over counted queries.
    pub train_loss: f64,
    /// Normalized validation MAE, when a validation pass ran this epoch.
    pub valid_mae: Option<f64>,
    /// Queries skipped because no evidence chains were retrievable.
    pub skipped: usize,
}

/// Result of a full training run.
#[derive(Clone, Debug)]
pub struct TrainResult {
    /// Per-epoch telemetry, in order.
    pub epochs: Vec<EpochStats>,
    /// Epoch index with the best validation MAE (if validation was used).
    pub best_epoch: Option<usize>,
}

/// Trains a [`ChainsFormer`] on a split (Algorithm 1: per query retrieve →
/// filter → encode → reason → accumulate loss; per batch: backprop + Adam).
pub struct Trainer<'a> {
    /// The model being trained.
    pub model: &'a mut ChainsFormer,
    /// The graph visible to the model (eval answers hidden).
    pub visible: &'a KnowledgeGraph,
}

impl<'a> Trainer<'a> {
    /// A trainer borrowing the model and its visible graph.
    pub fn new(model: &'a mut ChainsFormer, visible: &'a KnowledgeGraph) -> Self {
        Trainer { model, visible }
    }

    /// Runs the configured number of epochs with early stopping on
    /// validation normalized MAE (patience from the config; 0 disables).
    pub fn train(&mut self, split: &Split, rng: &mut impl Rng) -> TrainResult {
        let cfg = self.model.cfg.clone();
        if cfg.chain_quality && self.model.quality.is_none() {
            self.model.quality = Some(crate::quality::ChainQualityTracker::default());
        }
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..split.train.len()).collect();
        let mut epochs = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        let mut best_params: Option<cf_tensor::ParamStore> = None;
        let mut bad_epochs = 0usize;

        for epoch in 0..cfg.epochs {
            order.shuffle(rng);
            let mut total_loss = 0.0f64;
            let mut counted = 0usize;
            let mut skipped = 0usize;

            // Hoisted across batches: only grows to the batch size once.
            let mut losses = Vec::with_capacity(cfg.batch_size);
            for batch in order.chunks(cfg.batch_size) {
                let mut tape = Tape::new();
                losses.clear();
                for &qi in batch {
                    let triple = split.train[qi];
                    let query = Query {
                        entity: triple.entity,
                        attr: triple.attr,
                    };
                    let (toc, _) = self.model.gather_chains(self.visible, query, rng);
                    if toc.is_empty() {
                        skipped += 1;
                        continue;
                    }
                    let out = self.model.forward(&mut tape, &toc.chains, query);
                    if cfg.chain_quality {
                        let truth_norm =
                            self.model.normalizer().normalize(query.attr, triple.value);
                        let errs: Vec<(cf_chains::RaChain, f64)> = toc
                            .chains
                            .iter()
                            .zip(tape.value(out.chain_predictions).data())
                            .map(|(ci, &p)| {
                                let pn = self.model.normalizer().normalize(query.attr, p as f64);
                                (ci.chain.clone(), (pn - truth_norm).abs())
                            })
                            .collect();
                        if let Some(q) = &mut self.model.quality {
                            for (chain, err) in errs {
                                q.record(&chain, err);
                            }
                        }
                    }
                    let pred_norm = self
                        .model
                        .normalize_on_tape(&mut tape, out.prediction, query);
                    let target = Tensor::scalar(
                        self.model.normalizer().normalize(query.attr, triple.value) as f32,
                    );
                    let loss = match cfg.loss {
                        Loss::L1 => tape.l1_loss(pred_norm, &target),
                        Loss::Mse => tape.mse_loss(pred_norm, &target),
                    };
                    total_loss += tape.value(loss).item() as f64;
                    counted += 1;
                    losses.push(loss);
                }
                if losses.is_empty() {
                    continue;
                }
                let stacked = tape.stack_rows(&losses);
                let batch_loss = tape.mean_all(stacked);
                let mut grads = tape.backward(batch_loss, self.model.params.len());
                clip_global_norm(&mut grads, cfg.grad_clip);
                opt.step(&mut self.model.params, &grads);
            }

            let train_loss = total_loss / counted.max(1) as f64;
            let valid_mae = if split.valid.is_empty() {
                None
            } else {
                Some(self.evaluate(&split.valid, rng).norm_mae)
            };
            epochs.push(EpochStats {
                epoch,
                train_loss,
                valid_mae,
                skipped,
            });

            if let Some(v) = valid_mae {
                match best {
                    Some((_, b)) if v >= b => {
                        bad_epochs += 1;
                        if cfg.patience > 0 && bad_epochs >= cfg.patience {
                            break;
                        }
                    }
                    _ => {
                        best = Some((epoch, v));
                        best_params = Some(self.model.params.clone());
                        bad_epochs = 0;
                    }
                }
            }
        }
        // Early-stopping semantics: ship the best-validation checkpoint, not
        // whatever the final (possibly overfit/noisy) epoch left behind.
        if let Some(bp) = best_params {
            self.model.params = bp;
        }
        TrainResult {
            epochs,
            best_epoch: best.map(|(e, _)| e),
        }
    }

    /// Evaluates on a set of numeric triples, producing the Table-III style
    /// report (per-attribute MAE/RMSE + normalized averages).
    pub fn evaluate(&self, triples: &[NumTriple], rng: &mut impl Rng) -> RegressionReport {
        evaluate_model(self.model, self.visible, triples, rng)
    }
}

/// Evaluation without holding a mutable trainer borrow.
pub fn evaluate_model(
    model: &ChainsFormer,
    visible: &KnowledgeGraph,
    triples: &[NumTriple],
    rng: &mut impl Rng,
) -> RegressionReport {
    let preds: Vec<Prediction> = triples
        .iter()
        .map(|t| {
            let q = Query {
                entity: t.entity,
                attr: t.attr,
            };
            let detail = model.predict(visible, q, rng);
            Prediction {
                attr: t.attr,
                truth: t.value,
                pred: detail.value,
            }
        })
        .collect();
    RegressionReport::compute(&preds, model.normalizer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChainsFormerConfig;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn train_tiny(
        cfg: ChainsFormerConfig,
        seed: u64,
    ) -> (ChainsFormer, KnowledgeGraph, Split, TrainResult, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
        (model, visible, split, result, rng)
    }

    #[test]
    fn loss_decreases_during_training() {
        let cfg = ChainsFormerConfig {
            epochs: 6,
            ..ChainsFormerConfig::tiny()
        };
        let (_, _, _, result, _) = train_tiny(cfg, 0);
        assert!(result.epochs.len() >= 2);
        let first = result.epochs.first().unwrap().train_loss;
        let last = result.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "training did not reduce loss: {first} -> {last}"
        );
        for e in &result.epochs {
            assert!(e.train_loss.is_finite());
        }
    }

    #[test]
    fn evaluation_beats_mean_predictor() {
        let cfg = ChainsFormerConfig {
            epochs: 20,
            patience: 0,
            ..ChainsFormerConfig::tiny()
        };
        let (model, visible, split, _, mut rng) = train_tiny(cfg, 1);
        let report = evaluate_model(&model, &visible, &split.test, &mut rng);
        // Reference: predicting each attribute's training mean.
        let mut sums = vec![(0.0f64, 0usize); visible.num_attributes()];
        for t in &split.train {
            let s = &mut sums[t.attr.0 as usize];
            s.0 += t.value;
            s.1 += 1;
        }
        let preds: Vec<cf_kg::Prediction> = split
            .test
            .iter()
            .map(|t| {
                let (s, n) = sums[t.attr.0 as usize];
                cf_kg::Prediction {
                    attr: t.attr,
                    truth: t.value,
                    pred: s / n.max(1) as f64,
                }
            })
            .collect();
        let mean_report = cf_kg::RegressionReport::compute(&preds, model.normalizer());
        assert!(
            report.norm_mae < mean_report.norm_mae,
            "model ({}) did not beat the mean predictor ({})",
            report.norm_mae,
            mean_report.norm_mae
        );
    }

    #[test]
    fn params_stay_finite_after_training() {
        let cfg = ChainsFormerConfig {
            epochs: 3,
            ..ChainsFormerConfig::tiny()
        };
        let (model, _, _, _, _) = train_tiny(cfg, 2);
        assert!(model.params.all_finite());
    }

    #[test]
    fn early_stopping_respects_patience() {
        let cfg = ChainsFormerConfig {
            epochs: 50,
            patience: 2,
            ..ChainsFormerConfig::tiny()
        };
        let (_, _, _, result, _) = train_tiny(cfg, 3);
        // With patience 2, training cannot run all 50 epochs unless the
        // validation MAE improves almost monotonically (implausible on this
        // tiny graph).
        assert!(result.epochs.len() <= 50);
        assert!(result.best_epoch.is_some());
    }
}
