//! Training loop (Algorithm 1), evaluation, and crash-safe resume.

use crate::config::Loss;
use crate::model::ChainsFormer;
use cf_chains::{Query, TreeOfChains};
use cf_kg::{KnowledgeGraph, NumTriple, Prediction, RegressionReport, Split};
use cf_rand::seq::SliceRandom;
use cf_rand::{Rng, SnapshotRng};
use cf_tensor::optim::{clip_global_norm, Adam};
use cf_tensor::{pool, CheckpointError, GradStore, ParamId, Shape, Tape, Tensor, TrainState};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Number of gradient shards each batch is split into. Deliberately a
/// constant — never derived from the live thread count — so the per-shard
/// forward/backward graphs and the fixed-order shard merge are the same at
/// `CF_THREADS=1` and `CF_THREADS=64`, making the trained bits a pure
/// function of the data and seed.
const GRAD_SHARDS: usize = 8;

/// One query's pre-gathered evidence, produced by the serial retrieval
/// phase (which owns the data-order RNG) and consumed by a shard worker.
struct GatheredQuery {
    query: Query,
    /// Ground-truth attribute value of the training triple.
    value: f64,
    toc: TreeOfChains,
}

/// Per-query results written by a shard worker and applied serially, in
/// query order, after the parallel phase joins.
#[derive(Default)]
struct QueryOut {
    loss: f64,
    /// Per-chain predictions, captured only when chain-quality tracking is
    /// on (the tracker must observe chains in visit order, on one thread).
    preds: Vec<f32>,
}

/// One shard's gradient contribution: a flat image of every parameter
/// gradient plus per-parameter touch flags. Pre-sized once per run and
/// reused every batch, so steady-state training stays allocation-free.
struct ShardGrad {
    flat: Vec<f32>,
    touched: Vec<bool>,
}

/// Per-epoch training telemetry.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over counted queries.
    pub train_loss: f64,
    /// Normalized validation MAE, when a validation pass ran this epoch.
    pub valid_mae: Option<f64>,
    /// Queries skipped because no evidence chains were retrievable.
    pub skipped: usize,
}

/// Result of a full training run.
#[derive(Clone, Debug)]
pub struct TrainResult {
    /// Per-epoch telemetry, in order. After a resume this holds only the
    /// epochs run by *this* invocation; `EpochStats::epoch` carries the
    /// absolute index, so concatenating invocations reconstructs the full
    /// trajectory.
    pub epochs: Vec<EpochStats>,
    /// Epoch index with the best validation MAE (if validation was used).
    pub best_epoch: Option<usize>,
    /// True when the run stopped early on an interrupt signal (or a
    /// `stop_after_epochs` fault-injection bound) rather than finishing.
    pub interrupted: bool,
}

/// Errors from checkpointed training ([`Trainer::train_opts`]).
#[derive(Debug)]
pub enum TrainError {
    /// Writing or reading the checkpoint file failed.
    Io(std::io::Error),
    /// The checkpoint exists but is rejected (corrupt, CRC failure, or
    /// shape/name mismatch against the freshly built model).
    Checkpoint(CheckpointError),
    /// The checkpoint was written under a different configuration; resuming
    /// it would produce a trajectory matching neither run.
    ConfigMismatch {
        /// Fingerprint of the live configuration.
        expected: u64,
        /// Fingerprint stored in the checkpoint.
        found: u64,
    },
    /// `resume` was requested but the checkpoint carries no training state
    /// (a finished params-only artifact, or legacy CFT1).
    NotResumable,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Io(e) => write!(f, "checkpoint io error: {e}"),
            TrainError::Checkpoint(e) => write!(f, "checkpoint rejected: {e}"),
            TrainError::ConfigMismatch { expected, found } => write!(
                f,
                "checkpoint was written under a different config \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            TrainError::NotResumable => write!(
                f,
                "checkpoint has no training state (finished or legacy artifact) — \
                 it can be served, not resumed"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Io(e)
    }
}

impl From<CheckpointError> for TrainError {
    fn from(e: CheckpointError) -> Self {
        TrainError::Checkpoint(e)
    }
}

/// Knobs for checkpointed training. `Default` disables everything, which
/// makes [`Trainer::train_opts`] behave exactly like [`Trainer::train`].
#[derive(Clone, Debug, Default)]
pub struct TrainOptions {
    /// When set, a full CFT2 checkpoint (params + optimizer + RNG + cursor)
    /// is written atomically here at every epoch boundary, and a final
    /// params-only checkpoint of the shipped (best-validation) model
    /// replaces it when the run finishes.
    pub checkpoint_path: Option<PathBuf>,
    /// Resume from `checkpoint_path` instead of starting at epoch 0. The
    /// checkpoint must carry training state and match the live config's
    /// fingerprint; the caller's RNG is rewound to the stored state, so the
    /// resumed trajectory is bit-identical to the uninterrupted one.
    pub resume: bool,
    /// Cooperative interrupt flag (set from a SIGINT handler): checked at
    /// every batch boundary; when raised, training stops, the best params
    /// are restored, and the final checkpoint is still written durably.
    pub interrupt: Option<Arc<AtomicBool>>,
    /// Fault injection for tests: return (as `interrupted`) after this many
    /// epochs *of this invocation*, skipping the best-restore and final
    /// save — exactly what a `kill -9` after the epoch-boundary checkpoint
    /// looks like.
    pub stop_after_epochs: Option<usize>,
}

/// Trains a [`ChainsFormer`] on a split (Algorithm 1: per query retrieve →
/// filter → encode → reason → accumulate loss; per batch: backprop + Adam).
pub struct Trainer<'a> {
    /// The model being trained.
    pub model: &'a mut ChainsFormer,
    /// The graph visible to the model (eval answers hidden).
    pub visible: &'a KnowledgeGraph,
}

impl<'a> Trainer<'a> {
    /// A trainer borrowing the model and its visible graph.
    pub fn new(model: &'a mut ChainsFormer, visible: &'a KnowledgeGraph) -> Self {
        Trainer { model, visible }
    }

    /// Runs the configured number of epochs with early stopping on
    /// validation normalized MAE (patience from the config; 0 disables).
    pub fn train(&mut self, split: &Split, rng: &mut impl SnapshotRng) -> TrainResult {
        self.train_opts(split, rng, &TrainOptions::default())
            .expect("training without checkpointing cannot fail")
    }

    /// [`Self::train`] with crash safety: epoch-boundary CFT2 checkpoints,
    /// bitwise resume, and cooperative interrupts (see [`TrainOptions`]).
    ///
    /// Resume contract: `(train, crash, resume)` replays the uninterrupted
    /// run bit-for-bit — the checkpoint captures parameters, Adam moments
    /// and step count, the data-order RNG, and the early-stopping cursor at
    /// an epoch boundary, which together determine every subsequent update.
    pub fn train_opts(
        &mut self,
        split: &Split,
        rng: &mut impl SnapshotRng,
        opts: &TrainOptions,
    ) -> Result<TrainResult, TrainError> {
        let cfg = self.model.cfg.clone();
        if cfg.chain_quality && self.model.quality.is_none() {
            self.model.quality = Some(crate::quality::ChainQualityTracker::default());
        }
        let mut opt = Adam::new(cfg.lr);
        let mut order: Vec<usize> = (0..split.train.len()).collect();
        let mut epochs = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        let mut best_params: Option<cf_tensor::ParamStore> = None;
        let mut bad_epochs = 0usize;
        let mut start_epoch = 0usize;
        let fingerprint = cfg.fingerprint();

        if opts.resume {
            let path = opts
                .checkpoint_path
                .as_deref()
                .expect("TrainOptions::resume requires checkpoint_path");
            let f = std::fs::File::open(path)?;
            let state =
                cf_tensor::load_checkpoint(&mut self.model.params, std::io::BufReader::new(f))?
                    .ok_or(TrainError::NotResumable)?;
            if state.config_fingerprint != fingerprint {
                return Err(TrainError::ConfigMismatch {
                    expected: fingerprint,
                    found: state.config_fingerprint,
                });
            }
            opt.restore(state.adam);
            rng.restore_state_words(state.rng);
            start_epoch = state.next_epoch as usize;
            bad_epochs = state.bad_epochs as usize;
            best = state
                .best_epoch
                .zip(state.best_val)
                .map(|(e, v)| (e as usize, v));
            best_params = state.best_params;
        }

        // Data-parallel scaffolding, hoisted across the whole run: the flat
        // parameter layout for per-shard gradient images, the shard buffers
        // themselves, and the gather/output staging vectors.
        let num_params = self.model.params.len();
        let mut param_meta: Vec<(ParamId, Shape, usize, usize)> = Vec::with_capacity(num_params);
        let mut total_elems = 0usize;
        for (pid, _, t) in self.model.params.iter() {
            param_meta.push((pid, *t.shape(), total_elems, t.numel()));
            total_elems += t.numel();
        }
        let mut shard_grads: Vec<ShardGrad> = (0..GRAD_SHARDS)
            .map(|_| ShardGrad {
                flat: vec![0.0f32; total_elems],
                touched: vec![false; num_params],
            })
            .collect();
        let mut gathered: Vec<GatheredQuery> = Vec::with_capacity(cfg.batch_size);
        let mut outs: Vec<QueryOut> = Vec::new();

        let mut interrupted = false;
        'epochs: for epoch in start_epoch..cfg.epochs {
            // Reset to identity before shuffling: the epoch's visit order is
            // then a pure function of the RNG state at the epoch boundary
            // (what the checkpoint stores), not of the accumulated in-place
            // permutation history a resumed process wouldn't have.
            order.clear();
            order.extend(0..split.train.len());
            order.shuffle(rng);
            let mut total_loss = 0.0f64;
            let mut counted = 0usize;
            let mut skipped = 0usize;

            for batch in order.chunks(cfg.batch_size) {
                if let Some(flag) = &opts.interrupt {
                    if flag.load(Ordering::Relaxed) {
                        // Stop at a batch boundary. The disk checkpoint
                        // still holds the last epoch boundary, so the
                        // partial epoch in memory never taints resumability.
                        interrupted = true;
                        break 'epochs;
                    }
                }

                // Phase 1 — serial gather. Retrieval consumes the data-order
                // RNG exactly as a single-threaded loop would, so the stored
                // RNG state keeps determining the trajectory (resume safety).
                gathered.clear();
                for &qi in batch {
                    let triple = split.train[qi];
                    let query = Query {
                        entity: triple.entity,
                        attr: triple.attr,
                    };
                    let (toc, _) = self.model.gather_chains(self.visible, query, rng);
                    if toc.is_empty() {
                        skipped += 1;
                        continue;
                    }
                    gathered.push(GatheredQuery {
                        query,
                        value: triple.value,
                        toc,
                    });
                }
                if gathered.is_empty() {
                    continue;
                }
                let n = gathered.len();
                // Upstream gradient per query loss. Each shard's objective
                // is `sum(shard losses) * inv_b`, so summed over shards the
                // batch objective is the batch mean — and the per-loss seed
                // is bitwise the `g / n` that `mean_all`'s backward emits.
                let inv_b = 1.0f32 / n as f32;
                let shards = GRAD_SHARDS.min(n);
                if outs.len() < n {
                    outs.resize_with(n, QueryOut::default);
                }

                // Phase 2 — parallel shards. Shard s owns the contiguous
                // query range `slice_range(n, shards, s)`; each worker runs
                // its shard's forward/backward on a private tape and writes
                // gradients into its own pre-sized flat buffer. Inner
                // kernels see the pool as busy and run serially, so the
                // per-shard float-op sequence never depends on scheduling.
                {
                    let model: &ChainsFormer = self.model;
                    let record_preds = cfg.chain_quality;
                    let loss_kind = cfg.loss;
                    let gathered = &gathered[..];
                    let param_meta = &param_meta[..];
                    let outs_sh = pool::SharedMut::new(&mut outs[..n]);
                    let grads_sh = pool::SharedMut::new(&mut shard_grads[..shards]);
                    pool::parallel_for(shards, |sr| {
                        for s in sr {
                            // SAFETY: each shard index is visited exactly
                            // once, so the per-shard borrow never aliases.
                            let sg = &mut unsafe { grads_sh.get(s, 1) }[0];
                            for t in sg.touched.iter_mut() {
                                *t = false;
                            }
                            let qr = pool::slice_range(n, shards, s);
                            if qr.is_empty() {
                                continue;
                            }
                            // SAFETY: shard query ranges are disjoint.
                            let shard_outs = unsafe { outs_sh.get(qr.start, qr.len()) };
                            let mut tape = Tape::new();
                            let mut losses = Vec::with_capacity(qr.len());
                            for (gq, o) in gathered[qr].iter().zip(shard_outs) {
                                let out = model.forward(&mut tape, &gq.toc.chains, gq.query);
                                if record_preds {
                                    o.preds.clear();
                                    o.preds.extend_from_slice(
                                        tape.value(out.chain_predictions).data(),
                                    );
                                }
                                let pred_norm =
                                    model.normalize_on_tape(&mut tape, out.prediction, gq.query);
                                let target = Tensor::scalar(
                                    model.normalizer().normalize(gq.query.attr, gq.value) as f32,
                                );
                                let loss = match loss_kind {
                                    Loss::L1 => tape.l1_loss(pred_norm, &target),
                                    Loss::Mse => tape.mse_loss(pred_norm, &target),
                                };
                                o.loss = tape.value(loss).item() as f64;
                                losses.push(loss);
                            }
                            let stacked = tape.stack_rows(&losses);
                            let summed = tape.sum_all(stacked);
                            let objective = tape.mul_scalar(summed, inv_b);
                            let grads = tape.backward(objective, num_params);
                            for (i, (pid, _, off, len)) in param_meta.iter().enumerate() {
                                if let Some(g) = grads.param_grad(*pid) {
                                    sg.flat[*off..*off + *len].copy_from_slice(g.data());
                                    sg.touched[i] = true;
                                }
                            }
                            // `grads` and `tape` drop here, on the worker
                            // that built them: each worker's tape and
                            // gradient stashes stay warm across batches.
                        }
                    });
                }

                // Phase 3 — fixed-order reduction tree: parameters outer
                // (ascending id), shards inner (ascending index), serial
                // adds. The float-op sequence is a pure function of the
                // batch content, not of how shards were scheduled.
                let mut grads = GradStore::for_params(num_params);
                for (i, (pid, shape, off, len)) in param_meta.iter().enumerate() {
                    for sg in &shard_grads[..shards] {
                        if sg.touched[i] {
                            grads.add_param_grad(*pid, shape, &sg.flat[*off..*off + *len]);
                        }
                    }
                }
                clip_global_norm(&mut grads, cfg.grad_clip);
                opt.step(&mut self.model.params, &grads);

                // Phase 4 — serial epilogue in query order: loss bookkeeping
                // and the chain-quality prior observe queries exactly as the
                // single-threaded loop visited them.
                for (gq, o) in gathered.iter().zip(&outs) {
                    total_loss += o.loss;
                    counted += 1;
                    if cfg.chain_quality {
                        let truth_norm = self.model.normalizer().normalize(gq.query.attr, gq.value);
                        let errs: Vec<(cf_chains::RaChain, f64)> = gq
                            .toc
                            .chains
                            .iter()
                            .zip(&o.preds)
                            .map(|(ci, &p)| {
                                let pn = self.model.normalizer().normalize(gq.query.attr, p as f64);
                                (ci.chain.clone(), (pn - truth_norm).abs())
                            })
                            .collect();
                        if let Some(q) = &mut self.model.quality {
                            for (chain, err) in errs {
                                q.record(&chain, err);
                            }
                        }
                    }
                }
            }

            let train_loss = total_loss / counted.max(1) as f64;
            let valid_mae = if split.valid.is_empty() {
                None
            } else {
                Some(self.evaluate(&split.valid, rng).norm_mae)
            };
            epochs.push(EpochStats {
                epoch,
                train_loss,
                valid_mae,
                skipped,
            });

            let mut out_of_patience = false;
            if let Some(v) = valid_mae {
                match best {
                    Some((_, b)) if v >= b => {
                        bad_epochs += 1;
                        out_of_patience = cfg.patience > 0 && bad_epochs >= cfg.patience;
                    }
                    _ => {
                        best = Some((epoch, v));
                        best_params = Some(self.model.params.clone());
                        bad_epochs = 0;
                    }
                }
            }

            // Epoch-boundary checkpoint: the RNG was last consumed by the
            // validation pass above, so the stored state words are exactly
            // what the uninterrupted run would carry into the next epoch.
            if let Some(path) = &opts.checkpoint_path {
                let state = TrainState {
                    adam: opt.snapshot(),
                    rng: rng.state_words(),
                    next_epoch: (epoch + 1) as u64,
                    bad_epochs: bad_epochs as u64,
                    best_epoch: best.map(|(e, _)| e as u64),
                    best_val: best.map(|(_, v)| v),
                    config_fingerprint: fingerprint,
                    best_params: best_params.clone(),
                };
                cf_tensor::save_checkpoint_atomic(&self.model.params, Some(&state), path)?;
            }

            if out_of_patience {
                break;
            }
            if let Some(n) = opts.stop_after_epochs {
                if epoch + 1 - start_epoch >= n {
                    // Simulated crash: the epoch-boundary checkpoint is on
                    // disk, but skip the best-restore and final save the
                    // process would never have reached.
                    return Ok(TrainResult {
                        epochs,
                        best_epoch: best.map(|(e, _)| e),
                        interrupted: true,
                    });
                }
            }
        }
        // Early-stopping semantics: ship the best-validation checkpoint, not
        // whatever the final (possibly overfit/noisy) epoch left behind.
        if let Some(bp) = best_params {
            self.model.params = bp;
        }
        // Replace the resumable epoch-boundary checkpoint with the finished
        // artifact: params only, durably written. Resuming a finished run is
        // rejected with `TrainError::NotResumable` rather than silently
        // retraining from a non-boundary state.
        if let Some(path) = &opts.checkpoint_path {
            cf_tensor::save_params_atomic(&self.model.params, path)?;
        }
        Ok(TrainResult {
            epochs,
            best_epoch: best.map(|(e, _)| e),
            interrupted,
        })
    }

    /// Evaluates on a set of numeric triples, producing the Table-III style
    /// report (per-attribute MAE/RMSE + normalized averages).
    pub fn evaluate(&self, triples: &[NumTriple], rng: &mut impl Rng) -> RegressionReport {
        evaluate_model(self.model, self.visible, triples, rng)
    }
}

/// Evaluation without holding a mutable trainer borrow.
pub fn evaluate_model(
    model: &ChainsFormer,
    visible: &KnowledgeGraph,
    triples: &[NumTriple],
    rng: &mut impl Rng,
) -> RegressionReport {
    let preds: Vec<Prediction> = triples
        .iter()
        .map(|t| {
            let q = Query {
                entity: t.entity,
                attr: t.attr,
            };
            let detail = model.predict(visible, q, rng);
            Prediction {
                attr: t.attr,
                truth: t.value,
                pred: detail.value,
            }
        })
        .collect();
    RegressionReport::compute(&preds, model.normalizer())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChainsFormerConfig;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn train_tiny(
        cfg: ChainsFormerConfig,
        seed: u64,
    ) -> (ChainsFormer, KnowledgeGraph, Split, TrainResult, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
        (model, visible, split, result, rng)
    }

    #[test]
    fn loss_decreases_during_training() {
        let cfg = ChainsFormerConfig {
            epochs: 6,
            ..ChainsFormerConfig::tiny()
        };
        let (_, _, _, result, _) = train_tiny(cfg, 0);
        assert!(result.epochs.len() >= 2);
        let first = result.epochs.first().unwrap().train_loss;
        let last = result.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "training did not reduce loss: {first} -> {last}"
        );
        for e in &result.epochs {
            assert!(e.train_loss.is_finite());
        }
    }

    #[test]
    fn evaluation_beats_mean_predictor() {
        let cfg = ChainsFormerConfig {
            epochs: 20,
            patience: 0,
            ..ChainsFormerConfig::tiny()
        };
        let (model, visible, split, _, mut rng) = train_tiny(cfg, 1);
        let report = evaluate_model(&model, &visible, &split.test, &mut rng);
        // Reference: predicting each attribute's training mean.
        let mut sums = vec![(0.0f64, 0usize); visible.num_attributes()];
        for t in &split.train {
            let s = &mut sums[t.attr.0 as usize];
            s.0 += t.value;
            s.1 += 1;
        }
        let preds: Vec<cf_kg::Prediction> = split
            .test
            .iter()
            .map(|t| {
                let (s, n) = sums[t.attr.0 as usize];
                cf_kg::Prediction {
                    attr: t.attr,
                    truth: t.value,
                    pred: s / n.max(1) as f64,
                }
            })
            .collect();
        let mean_report = cf_kg::RegressionReport::compute(&preds, model.normalizer());
        assert!(
            report.norm_mae < mean_report.norm_mae,
            "model ({}) did not beat the mean predictor ({})",
            report.norm_mae,
            mean_report.norm_mae
        );
    }

    #[test]
    fn params_stay_finite_after_training() {
        let cfg = ChainsFormerConfig {
            epochs: 3,
            ..ChainsFormerConfig::tiny()
        };
        let (model, _, _, _, _) = train_tiny(cfg, 2);
        assert!(model.params.all_finite());
    }

    #[test]
    fn early_stopping_respects_patience() {
        let cfg = ChainsFormerConfig {
            epochs: 50,
            patience: 2,
            ..ChainsFormerConfig::tiny()
        };
        let (_, _, _, result, _) = train_tiny(cfg, 3);
        // With patience 2, training cannot run all 50 epochs unless the
        // validation MAE improves almost monotonically (implausible on this
        // tiny graph).
        assert!(result.epochs.len() <= 50);
        assert!(result.best_epoch.is_some());
    }
}
