#![warn(missing_docs)]

//! # chainsformer
//!
//! A from-scratch Rust reproduction of **ChainsFormer: Numerical Reasoning on
//! Knowledge Graphs from a Chain Perspective** (ICDE 2025): chain-based
//! numerical attribute prediction with query-guided retrieval, a hyperbolic
//! chain filter, a Transformer chain encoder with numerical-aware affine
//! transfer, and an attention-based numerical reasoner.
//!
//! Pipeline (Figure 3 of the paper):
//! 1. [`cf_chains::retrieve`] — random-walk Query Retrieval builds a Tree of
//!    Chains;
//! 2. [`filter::ChainFilter`] — hyperbolic affinity scoring keeps the top-k
//!    relevant RA-Chains;
//! 3. [`encoder::ChainEncoder`] — in-context Transformer encoding +
//!    Numerical-Aware Affine Transfer;
//! 4. [`reasoner::NumericalReasoner`] — per-chain numerical projection and
//!    Treeformer chain weighting.
//!
//! ```
//! use chainsformer::{ChainsFormer, ChainsFormerConfig, Trainer};
//! use cf_kg::synth::{yago15k_sim, SynthScale};
//! use cf_kg::Split;
//! use cf_rand::SeedableRng;
//!
//! let mut rng = cf_rand::rngs::StdRng::seed_from_u64(0);
//! let graph = yago15k_sim(SynthScale::small(), &mut rng);
//! let split = Split::paper_811(&graph, &mut rng);
//! let visible = split.visible_graph(&graph);
//! let mut cfg = ChainsFormerConfig::tiny();
//! cfg.epochs = 1;
//! let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
//! let result = Trainer::new(&mut model, &visible).train(&split, &mut rng);
//! assert!(result.epochs[0].train_loss.is_finite());
//! ```

pub mod ablation;
pub mod config;
pub mod encoder;
pub mod explain;
pub mod filter;
pub mod model;
pub mod quality;
pub mod reasoner;
pub mod train;
pub mod value_encoding;

pub use ablation::Variant;
pub use config::{
    ChainsFormerConfig, EncoderKind, FilterSpace, Loss, Projection, ReasoningSetting, ValueEncoding,
};
pub use filter::ChainFilter;
pub use model::{ChainsFormer, ExplainedChain, PredictionDetail, ResolvedQuery};
pub use quality::ChainQualityTracker;
pub use train::{evaluate_model, EpochStats, TrainError, TrainOptions, TrainResult, Trainer};
