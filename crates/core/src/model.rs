//! The assembled ChainsFormer model: Query Retrieval → Hyperbolic Filter →
//! Chain Encoder → Numerical Reasoner (Figure 3).

use crate::config::ChainsFormerConfig;
use crate::encoder::ChainEncoder;
use crate::filter::ChainFilter;
use crate::quality::ChainQualityTracker;
use crate::reasoner::{NumericalReasoner, ReasonerOutput};
use cf_chains::{
    retrieve, retrieve_indexed, ChainInstance, ChainVocab, Query, RaChain, TreeOfChains,
};
use cf_kg::{ChainIndexView, GraphView, KnowledgeGraph, MinMaxNormalizer, NumTriple};
use cf_rand::Rng;
use cf_tensor::{Forward, ForwardArena, InferCtx, ParamStore, Tape, Var};

/// One explained evidence chain in a prediction.
#[derive(Clone, Debug)]
pub struct ExplainedChain {
    /// The chain pattern.
    pub chain: RaChain,
    /// Entity carrying the known value (`v_p`).
    pub source: cf_kg::EntityId,
    /// The known value `n_p`.
    pub known_value: f64,
    /// Importance score `ω` from the Treeformer.
    pub weight: f32,
    /// This chain's own prediction `n̂_{p_i}`.
    pub prediction: f32,
}

/// A prediction with its reasoning trace (for Table V / Figure 5 analyses).
#[derive(Clone, Debug)]
pub struct PredictionDetail {
    /// The answered query.
    pub query: Query,
    /// The predicted value `n̂_q` (raw units).
    pub value: f64,
    /// True when no chains were retrievable and the train-mean fallback was
    /// used.
    pub used_fallback: bool,
    /// ToC size before filtering.
    pub retrieved: usize,
    /// Evidence chains with weights and per-chain predictions.
    pub chains: Vec<ExplainedChain>,
}

/// The ChainsFormer model. Construction pre-trains (and freezes) the filter
/// embeddings; the encoder/reasoner parameters live in [`Self::params`] and
/// are trained by [`crate::train::Trainer`].
///
/// `Clone` exists for multi-replica serving: each `cf-serve` shard owns a
/// full clone (its own `ParamStore`), so shards never contend on parameter
/// reads and hot-reload can swap them one shard at a time.
#[derive(Clone)]
pub struct ChainsFormer {
    /// The configuration the model was built with.
    pub cfg: ChainsFormerConfig,
    /// Learnable parameters (encoder + reasoner).
    pub params: ParamStore,
    filter: ChainFilter,
    encoder: ChainEncoder,
    reasoner: NumericalReasoner,
    vocab: ChainVocab,
    norm: MinMaxNormalizer,
    /// Per-attribute training mean, the fallback for evidence-free queries.
    fallback: Vec<f64>,
    /// Chain-quality prior (populated by the trainer when
    /// `cfg.chain_quality` is on; see [`crate::quality`]).
    pub quality: Option<ChainQualityTracker>,
}

impl ChainsFormer {
    /// Builds the model against a *visible* graph (evaluation answers
    /// already hidden) and the training triples (for normalization ranges
    /// and fallback means).
    pub fn new(
        visible: &KnowledgeGraph,
        train: &[NumTriple],
        cfg: ChainsFormerConfig,
        rng: &mut impl Rng,
    ) -> Self {
        cfg.validate().expect("invalid configuration");
        let vocab = ChainVocab::for_graph(visible);
        let filter = ChainFilter::fit(
            visible,
            cfg.filter_space,
            cfg.filter_dim,
            cfg.lambda,
            cfg.filter_epochs,
            rng,
        );
        let mut params = ParamStore::new();
        let encoder = ChainEncoder::new(&mut params, &cfg, vocab, Some(&filter), rng);
        let reasoner = NumericalReasoner::new(&mut params, &cfg, rng);
        let norm = MinMaxNormalizer::fit(visible.num_attributes(), train);
        let mut sums = vec![(0.0f64, 0usize); visible.num_attributes()];
        for t in train {
            let s = &mut sums[t.attr.0 as usize];
            s.0 += t.value;
            s.1 += 1;
        }
        let fallback = sums
            .iter()
            .map(|&(s, n)| if n > 0 { s / n as f64 } else { 0.0 })
            .collect();
        ChainsFormer {
            cfg,
            params,
            filter,
            encoder,
            reasoner,
            vocab,
            norm,
            fallback,
            quality: None,
        }
    }

    /// The chain token vocabulary.
    pub fn vocab(&self) -> &ChainVocab {
        &self.vocab
    }

    /// Min-max normalizer fitted on the training triples.
    pub fn normalizer(&self) -> &MinMaxNormalizer {
        &self.norm
    }

    /// The (frozen) chain filter.
    pub fn filter(&self) -> &ChainFilter {
        &self.filter
    }

    /// Retrieval + setting restriction + filter: produces the Enhanced ToC
    /// `T_q^k` for a query.
    pub fn gather_chains(
        &self,
        graph: &impl GraphView,
        query: Query,
        rng: &mut impl Rng,
    ) -> (TreeOfChains, usize) {
        let mut toc = retrieve(graph, query, &self.cfg.retrieval(), rng);
        let retrieved = toc.len();
        if !self.cfg.setting.multi_attribute {
            toc.chains.retain(|c| c.chain.known_attr == query.attr);
        }
        let mut selected = self.filter.select_top_k(&toc, self.cfg.top_k, rng);
        if self.cfg.chain_quality {
            if let Some(q) = &self.quality {
                selected.chains = q.prune(selected.chains, self.cfg.quality_prune_factor);
            }
        }
        (selected, retrieved)
    }

    /// [`Self::gather_chains`] over a precomputed chain index instead of
    /// graph walks (`cf_chains::retrieve_indexed`): same setting
    /// restriction, filter and quality pruning, but the candidate chains
    /// come from an index lookup rather than `num_walks` random walks.
    pub fn gather_chains_indexed(
        &self,
        index: &impl ChainIndexView,
        query: Query,
        rng: &mut impl Rng,
    ) -> (TreeOfChains, usize) {
        let mut toc = retrieve_indexed(index, query, &self.cfg.retrieval(), rng);
        let retrieved = toc.len();
        if !self.cfg.setting.multi_attribute {
            toc.chains.retain(|c| c.chain.known_attr == query.attr);
        }
        let mut selected = self.filter.select_top_k(&toc, self.cfg.top_k, rng);
        if self.cfg.chain_quality {
            if let Some(q) = &self.quality {
                selected.chains = q.prune(selected.chains, self.cfg.quality_prune_factor);
            }
        }
        (selected, retrieved)
    }

    /// Runs the forward pass for one query's chains on any evaluation
    /// context — a [`Tape`] when gradients are needed, an [`InferCtx`] for
    /// the tape-free serving path. The prediction var is in raw attribute
    /// units.
    pub fn forward<F: Forward>(
        &self,
        ctx: &mut F,
        chains: &[ChainInstance],
        query: Query,
    ) -> ReasonerOutput {
        let e_tilde = self.encoder.forward(ctx, &self.params, chains);
        self.reasoner
            .forward(ctx, &self.params, e_tilde, chains, &self.norm, query.attr)
    }

    /// Normalizes a raw-unit prediction var to the query attribute's [0, 1]
    /// training scale (Eq. 23) on the tape.
    pub fn normalize_on_tape(&self, tape: &mut Tape, pred: Var, query: Query) -> Var {
        let min = self.norm.min(query.attr) as f32;
        let range = self.norm.range(query.attr) as f32;
        let shifted = tape.add_scalar(pred, -min);
        tape.mul_scalar(shifted, 1.0 / range)
    }

    /// The train-mean fallback for a query attribute.
    pub fn fallback_value(&self, query: Query) -> f64 {
        self.fallback[query.attr.0 as usize]
    }

    /// Saves the trained parameters to `path` as a CRC-protected CFT2
    /// checkpoint, written atomically and durably (tmp + fsync + rename;
    /// see [`cf_tensor::serialize`]) — a crash mid-save leaves the previous
    /// file intact, never a torn one. The architecture itself is
    /// reconstructed from configuration — rebuild the model with the same
    /// config, graph and seed, then [`Self::load_params_from`].
    pub fn save_params_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        cf_tensor::save_params_atomic(&self.params, path)
    }

    /// Loads parameters saved by [`Self::save_params_to`] (CFT2) or by
    /// older releases (CFT1) into this model; any training state in the
    /// file is validated and discarded. Fails (without corrupting the
    /// model) on any corruption or name/shape mismatch.
    pub fn load_params_from(
        &mut self,
        path: impl AsRef<std::path::Path>,
    ) -> Result<(), cf_tensor::CheckpointError> {
        let f = std::fs::File::open(path).map_err(cf_tensor::CheckpointError::Io)?;
        cf_tensor::load_params(&mut self.params, std::io::BufReader::new(f))
    }

    /// Full inference for one query, with the reasoning trace.
    pub fn predict(
        &self,
        graph: &impl GraphView,
        query: Query,
        rng: &mut impl Rng,
    ) -> PredictionDetail {
        let (toc, retrieved) = self.gather_chains(graph, query, rng);
        if toc.is_empty() {
            return PredictionDetail {
                query,
                value: self.fallback_value(query),
                used_fallback: true,
                retrieved,
                chains: Vec::new(),
            };
        }
        let mut tape = Tape::new();
        let out = self.forward(&mut tape, &toc.chains, query);
        let value = tape.value(out.prediction).item() as f64;
        let weights = tape.value(out.weights).data();
        let chain_preds = tape.value(out.chain_predictions).data();
        let chains = toc
            .chains
            .iter()
            .zip(weights.iter().zip(chain_preds))
            .map(|(ci, (&weight, &prediction))| ExplainedChain {
                chain: ci.chain.clone(),
                source: ci.source,
                known_value: ci.value,
                weight,
                prediction,
            })
            .collect();
        PredictionDetail {
            query,
            value,
            used_fallback: false,
            retrieved,
            chains,
        }
    }

    /// Batched inference for several queries on the tape-free path.
    ///
    /// Retrieval runs sequentially (consuming `rng` exactly as `B` calls to
    /// [`Self::predict`] would); the chain encoder then runs **once** over
    /// the concatenation of every query's chains. Because chain encoding is
    /// row-local and padding is softmax-inert, the result is bitwise
    /// identical to predicting each query separately — pinned by
    /// `predict_batch_bitwise_matches_sequential_predicts`.
    pub fn predict_batch(
        &self,
        graph: &impl GraphView,
        queries: &[Query],
        rng: &mut impl Rng,
    ) -> Vec<PredictionDetail> {
        let gathered: Vec<(TreeOfChains, usize)> = queries
            .iter()
            .map(|&q| self.gather_chains(graph, q, rng))
            .collect();
        let jobs: Vec<ResolvedQuery<'_>> = queries
            .iter()
            .zip(&gathered)
            .map(|(&q, (toc, retrieved))| (q, toc.chains.as_slice(), *retrieved))
            .collect();
        self.predict_batch_with_chains(&jobs)
    }

    /// Batched tape-free inference over queries whose chains are already
    /// resolved (the serving engine resolves them through its chain cache).
    ///
    /// Convenience wrapper around [`Self::predict_batch_with_chains_in`]
    /// with a throwaway context; long-lived callers (serve workers, benches)
    /// should hold one [`InferCtx`] and reuse it so the numeric substrate
    /// stops allocating after the first batch.
    pub fn predict_batch_with_chains(&self, jobs: &[ResolvedQuery<'_>]) -> Vec<PredictionDetail> {
        let mut ctx = InferCtx::new();
        self.predict_batch_with_chains_in(jobs, &mut ctx)
    }

    /// [`Self::predict_batch_with_chains`] running on a caller-owned
    /// forward arena — an [`InferCtx`] for the f32 path or a
    /// [`cf_tensor::QuantInferCtx`] for int8 serving. The context is cleared
    /// on entry; its value arena (and, through the tensor buffer pool, every
    /// op's scratch) is reused across calls, so a warm worker serves
    /// predictions without touching the heap in the model forward.
    pub fn predict_batch_with_chains_in<C: ForwardArena>(
        &self,
        jobs: &[ResolvedQuery<'_>],
        ctx: &mut C,
    ) -> Vec<PredictionDetail> {
        ctx.clear();
        let mut all_chains: Vec<ChainInstance> = Vec::new();
        // Per job: start row of its chains in the concatenated batch.
        let mut starts = cf_tensor::pool::ScratchUsize::with_capacity(jobs.len());
        for (_, chains, _) in jobs {
            starts.push(all_chains.len());
            all_chains.extend_from_slice(chains);
        }
        let e_all = if all_chains.is_empty() {
            None
        } else {
            Some(self.encoder.forward(ctx, &self.params, &all_chains))
        };
        jobs.iter()
            .zip(starts.iter())
            .map(|(&(query, chains, retrieved), &start)| {
                if chains.is_empty() {
                    return PredictionDetail {
                        query,
                        value: self.fallback_value(query),
                        used_fallback: true,
                        retrieved,
                        chains: Vec::new(),
                    };
                }
                let mut idx = cf_tensor::pool::ScratchUsize::with_capacity(chains.len());
                idx.extend(start..start + chains.len());
                let e_q = ctx.select_rows(e_all.expect("non-empty batch"), &idx);
                let out =
                    self.reasoner
                        .forward(ctx, &self.params, e_q, chains, &self.norm, query.attr);
                let value = ctx.value(out.prediction).item() as f64;
                let weights = ctx.value(out.weights).data();
                let chain_preds = ctx.value(out.chain_predictions).data();
                let explained = chains
                    .iter()
                    .zip(weights.iter().zip(chain_preds))
                    .map(|(ci, (&weight, &prediction))| ExplainedChain {
                        chain: ci.chain.clone(),
                        source: ci.source,
                        known_value: ci.value,
                        weight,
                        prediction,
                    })
                    .collect();
                PredictionDetail {
                    query,
                    value,
                    used_fallback: false,
                    retrieved,
                    chains: explained,
                }
            })
            .collect()
    }
}

/// One query's resolved evidence for
/// [`ChainsFormer::predict_batch_with_chains`]: the query, its filtered
/// chains (possibly empty), and the pre-filter retrieval count.
pub type ResolvedQuery<'a> = (Query, &'a [ChainInstance], usize);

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn setup() -> (KnowledgeGraph, Split, ChainsFormer, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        (visible, split, model, rng)
    }

    #[test]
    fn predict_returns_finite_value_with_trace() {
        let (visible, split, model, mut rng) = setup();
        let q = Query {
            entity: split.test[0].entity,
            attr: split.test[0].attr,
        };
        let detail = model.predict(&visible, q, &mut rng);
        assert!(detail.value.is_finite());
        if !detail.used_fallback {
            let wsum: f32 = detail.chains.iter().map(|c| c.weight).sum();
            assert!((wsum - 1.0).abs() < 1e-4, "weights sum to {wsum}");
        }
    }

    #[test]
    fn fallback_used_for_isolated_entity() {
        let (_, split, model, mut rng) = setup();
        // Build a graph with an isolated entity carrying the same vocab.
        let mut g2 = KnowledgeGraph::new();
        for _ in 0..1 {
            g2.add_entity("iso");
        }
        // Vocabulary must match the model's graph; reuse attribute count by
        // adding the same number of attribute types.
        for i in 0..7 {
            g2.add_attribute_type(format!("a{i}"));
        }
        g2.build_index();
        let q = Query {
            entity: cf_kg::EntityId(0),
            attr: split.test[0].attr,
        };
        let detail = model.predict(&g2, q, &mut rng);
        assert!(detail.used_fallback);
        assert_eq!(detail.value, model.fallback_value(q));
    }

    #[test]
    fn gather_respects_top_k() {
        let (visible, split, model, mut rng) = setup();
        let q = Query {
            entity: split.train[0].entity,
            attr: split.train[0].attr,
        };
        let (toc, _) = model.gather_chains(&visible, q, &mut rng);
        assert!(toc.len() <= model.cfg.top_k);
    }

    #[test]
    fn single_attribute_setting_filters_chains() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let cfg = ChainsFormerConfig {
            setting: crate::config::ReasoningSetting {
                max_hops: 3,
                multi_attribute: false,
            },
            ..ChainsFormerConfig::tiny()
        };
        let model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        for t in split.train.iter().take(10) {
            let q = Query {
                entity: t.entity,
                attr: t.attr,
            };
            let (toc, _) = model.gather_chains(&visible, q, &mut rng);
            for c in &toc.chains {
                assert_eq!(c.chain.known_attr, q.attr);
            }
        }
    }

    #[test]
    fn normalize_on_tape_matches_normalizer() {
        let (_, split, model, _) = setup();
        let q = Query {
            entity: split.train[0].entity,
            attr: split.train[0].attr,
        };
        let mut tape = Tape::new();
        let raw = tape.scalar(1234.5);
        let normed = model.normalize_on_tape(&mut tape, raw, q);
        let expect = model.normalizer().normalize(q.attr, 1234.5);
        assert!((tape.value(normed).item() as f64 - expect).abs() < 1e-3);
    }
}
