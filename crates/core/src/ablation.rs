//! Ablation variants (Table VI) as named configuration transforms.

use crate::config::{ChainsFormerConfig, EncoderKind, FilterSpace, Projection, ValueEncoding};

/// The rows of Table VI, plus the full model.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Variant {
    /// The complete model.
    Full,
    /// "w/o Hyperbolic Filter": random chain sampling.
    NoHyperbolicFilter,
    /// "w/o Chain Encoder": mean token embedding.
    NoChainEncoder,
    /// "w LSTM as Chain Encoder".
    LstmEncoder,
    /// "w/o Numerical-Aware": no affine transfer.
    NoNumericalAware,
    /// "w Numerical-Aware by Log": log-magnitude value encoding.
    NumericalAwareByLog,
    /// "w/o Numerical Projection": direct regression from embeddings.
    NoNumericalProjection,
    /// "w/o Chain Weighting": uniform chain averaging.
    NoChainWeighting,
}

impl Variant {
    /// Every Table-VI row in paper order (including the full model last).
    pub fn all() -> [Variant; 8] {
        [
            Variant::NoHyperbolicFilter,
            Variant::NoChainEncoder,
            Variant::LstmEncoder,
            Variant::NoNumericalAware,
            Variant::NumericalAwareByLog,
            Variant::NoNumericalProjection,
            Variant::NoChainWeighting,
            Variant::Full,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Full => "ChainsFormer(Ours)",
            Variant::NoHyperbolicFilter => "w/o Hyperbolic Filter",
            Variant::NoChainEncoder => "w/o Chain Encoder",
            Variant::LstmEncoder => "w LSTM as Chain Encoder",
            Variant::NoNumericalAware => "w/o Numerical-Aware",
            Variant::NumericalAwareByLog => "w Numerical-Aware by Log",
            Variant::NoNumericalProjection => "w/o Numerical Projection",
            Variant::NoChainWeighting => "w/o Chain Weighting",
        }
    }

    /// Applies the ablation to a base configuration.
    pub fn apply(&self, base: &ChainsFormerConfig) -> ChainsFormerConfig {
        let mut cfg = base.clone();
        match self {
            Variant::Full => {}
            Variant::NoHyperbolicFilter => cfg.filter_space = FilterSpace::Random,
            Variant::NoChainEncoder => cfg.encoder = EncoderKind::MeanPool,
            Variant::LstmEncoder => cfg.encoder = EncoderKind::Lstm,
            Variant::NoNumericalAware => cfg.value_encoding = ValueEncoding::Disabled,
            Variant::NumericalAwareByLog => cfg.value_encoding = ValueEncoding::Log,
            Variant::NoNumericalProjection => cfg.projection = Projection::Direct,
            Variant::NoChainWeighting => cfg.chain_weighting = false,
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_yield_valid_configs() {
        let base = ChainsFormerConfig::default();
        for v in Variant::all() {
            v.apply(&base)
                .validate()
                .unwrap_or_else(|e| panic!("{v:?}: {e}"));
        }
    }

    #[test]
    fn full_variant_is_identity() {
        let base = ChainsFormerConfig::default();
        let applied = Variant::Full.apply(&base);
        assert_eq!(format!("{base:?}"), format!("{applied:?}"));
    }

    #[test]
    fn each_ablation_changes_exactly_its_knob() {
        let base = ChainsFormerConfig::default();
        assert_eq!(
            Variant::NoHyperbolicFilter.apply(&base).filter_space,
            FilterSpace::Random
        );
        assert_eq!(
            Variant::NoChainEncoder.apply(&base).encoder,
            EncoderKind::MeanPool
        );
        assert_eq!(Variant::LstmEncoder.apply(&base).encoder, EncoderKind::Lstm);
        assert_eq!(
            Variant::NoNumericalAware.apply(&base).value_encoding,
            ValueEncoding::Disabled
        );
        assert_eq!(
            Variant::NumericalAwareByLog.apply(&base).value_encoding,
            ValueEncoding::Log
        );
        assert_eq!(
            Variant::NoNumericalProjection.apply(&base).projection,
            Projection::Direct
        );
        assert!(!Variant::NoChainWeighting.apply(&base).chain_weighting);
    }

    #[test]
    fn labels_match_table6() {
        assert_eq!(Variant::Full.label(), "ChainsFormer(Ours)");
        assert_eq!(Variant::LstmEncoder.label(), "w LSTM as Chain Encoder");
    }
}
