//! Chain quality evaluation — the paper's stated future work ("we will
//! introduce a chain quality evaluation mechanism to address low-quality
//! RA-Chains", §VI), implemented as an extension.
//!
//! During training we observe, for every RA-Chain pattern, how far its
//! per-chain prediction landed from the truth (in normalized units). An
//! exponential moving average of that error is a *quality prior* over chain
//! patterns; at inference, chains whose pattern has a reliably bad history
//! are pruned from the Enhanced ToC before encoding.

use cf_chains::{ChainInstance, RaChain};
use std::collections::HashMap;

/// Running quality statistics for one RA-Chain pattern.
#[derive(Copy, Clone, Debug)]
pub struct QualityStat {
    /// EMA of the normalized absolute prediction error of this pattern.
    pub ema_abs_err: f64,
    /// Number of observations behind the EMA.
    pub count: usize,
}

/// Tracks per-pattern prediction quality across training.
#[derive(Clone, Debug)]
pub struct ChainQualityTracker {
    stats: HashMap<RaChain, QualityStat>,
    /// EMA decay: `ema ← (1-α)·ema + α·err`.
    alpha: f64,
    /// Patterns with fewer observations than this are never pruned.
    min_count: usize,
}

impl Default for ChainQualityTracker {
    fn default() -> Self {
        ChainQualityTracker {
            stats: HashMap::new(),
            alpha: 0.2,
            min_count: 3,
        }
    }
}

impl ChainQualityTracker {
    /// A tracker with the given EMA decay and pruning threshold count.
    pub fn new(alpha: f64, min_count: usize) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        ChainQualityTracker {
            stats: HashMap::new(),
            alpha,
            min_count,
        }
    }

    /// Records one observation: the chain pattern produced a per-chain
    /// prediction with the given normalized absolute error.
    pub fn record(&mut self, chain: &RaChain, normalized_abs_err: f64) {
        if !normalized_abs_err.is_finite() {
            return;
        }
        match self.stats.get_mut(chain) {
            Some(s) => {
                s.ema_abs_err =
                    (1.0 - self.alpha) * s.ema_abs_err + self.alpha * normalized_abs_err;
                s.count += 1;
            }
            None => {
                self.stats.insert(
                    chain.clone(),
                    QualityStat {
                        ema_abs_err: normalized_abs_err,
                        count: 1,
                    },
                );
            }
        }
    }

    /// The tracked quality of a pattern, if observed often enough.
    pub fn stat(&self, chain: &RaChain) -> Option<QualityStat> {
        self.stats.get(chain).copied()
    }

    /// Number of tracked patterns.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// True when no patterns have been observed.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Prunes reliably low-quality chains from a candidate set: a chain is
    /// dropped when its pattern has ≥ `min_count` observations and an EMA
    /// error worse than `factor ×` the median EMA among the candidates.
    /// At least a quarter of the candidates (and at least one) survive.
    pub fn prune(&self, chains: Vec<ChainInstance>, factor: f64) -> Vec<ChainInstance> {
        if chains.len() <= 1 {
            return chains;
        }
        let mut emas: Vec<f64> = chains
            .iter()
            .filter_map(|c| self.stats.get(&c.chain))
            .filter(|s| s.count >= self.min_count)
            .map(|s| s.ema_abs_err)
            .collect();
        if emas.len() < 2 {
            return chains; // not enough history to judge anything
        }
        emas.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = emas[emas.len() / 2];
        let threshold = factor * median.max(1e-6);
        let keep_at_least = (chains.len() / 4).max(1);
        let mut kept: Vec<ChainInstance> = Vec::with_capacity(chains.len());
        let mut dropped: Vec<(f64, ChainInstance)> = Vec::new();
        for c in chains {
            match self.stats.get(&c.chain) {
                Some(s) if s.count >= self.min_count && s.ema_abs_err > threshold => {
                    dropped.push((s.ema_abs_err, c));
                }
                _ => kept.push(c),
            }
        }
        // Backfill from the least-bad dropped chains if pruning went too far.
        if kept.len() < keep_at_least {
            dropped.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for (_, c) in dropped.into_iter().take(keep_at_least - kept.len()) {
                kept.push(c);
            }
        }
        kept
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::{AttributeId, Dir, DirRel, EntityId, RelationId};

    fn chain(rel: u32) -> RaChain {
        RaChain {
            known_attr: AttributeId(0),
            rels: vec![DirRel {
                rel: RelationId(rel),
                dir: Dir::Forward,
            }],
            query_attr: AttributeId(0),
        }
    }

    fn inst(rel: u32) -> ChainInstance {
        ChainInstance {
            chain: chain(rel),
            source: EntityId(0),
            value: 1.0,
        }
    }

    #[test]
    fn ema_moves_toward_recent_errors() {
        let mut t = ChainQualityTracker::new(0.5, 1);
        t.record(&chain(0), 1.0);
        t.record(&chain(0), 0.0);
        let s = t.stat(&chain(0)).unwrap();
        assert_eq!(s.count, 2);
        assert!((s.ema_abs_err - 0.5).abs() < 1e-9);
    }

    #[test]
    fn prune_drops_reliably_bad_patterns() {
        let mut t = ChainQualityTracker::new(0.5, 3);
        for _ in 0..5 {
            t.record(&chain(0), 0.01); // good pattern
            t.record(&chain(1), 0.9); // bad pattern
        }
        let survivors = t.prune(vec![inst(0), inst(0), inst(0), inst(1)], 2.0);
        assert!(
            survivors.iter().all(|c| c.chain == chain(0)),
            "bad chain survived"
        );
        assert_eq!(survivors.len(), 3);
    }

    #[test]
    fn under_observed_patterns_are_never_pruned() {
        let mut t = ChainQualityTracker::new(0.5, 10);
        for _ in 0..5 {
            t.record(&chain(0), 0.01);
            t.record(&chain(1), 0.9);
        }
        // counts (5) below min_count (10): nothing qualifies for judgement.
        let survivors = t.prune(vec![inst(0), inst(1)], 2.0);
        assert_eq!(survivors.len(), 2);
    }

    #[test]
    fn prune_keeps_at_least_a_quarter() {
        let mut t = ChainQualityTracker::new(0.5, 1);
        t.record(&chain(0), 0.001);
        for r in 1..8 {
            for _ in 0..3 {
                t.record(&chain(r), 10.0);
            }
        }
        // One good observation sets a tiny median-scaled threshold... but
        // backfill must still keep >= 2 of 8.
        let cands: Vec<ChainInstance> = (0..8).map(inst).collect();
        let survivors = t.prune(cands, 2.0);
        assert!(survivors.len() >= 2, "kept only {}", survivors.len());
    }

    #[test]
    fn non_finite_errors_are_ignored() {
        let mut t = ChainQualityTracker::default();
        t.record(&chain(0), f64::NAN);
        assert!(t.is_empty());
    }

    #[test]
    fn single_candidate_is_untouched() {
        let mut t = ChainQualityTracker::new(0.5, 1);
        for _ in 0..5 {
            t.record(&chain(0), 100.0);
        }
        assert_eq!(t.prune(vec![inst(0)], 2.0).len(), 1);
    }
}
