//! Transparency tooling: key RA-Chain extraction (Table V), the query-level
//! case study (Figure 5) and the filter-effect histograms (Figure 6).

use crate::model::ChainsFormer;
use cf_chains::{Query, RaChain};
use cf_kg::{AttributeId, KnowledgeGraph, NumTriple};
use cf_rand::Rng;
use std::collections::HashMap;

/// A key RA-Chain for an attribute with its accumulated importance.
#[derive(Clone, Debug)]
pub struct KeyChain {
    /// The chain pattern.
    pub chain: RaChain,
    /// Sum of Treeformer weights this chain received across queries.
    pub total_weight: f64,
    /// Number of queries in which the chain appeared.
    pub occurrences: usize,
}

/// Statistically extracts the highest-weight RA-Chains per attribute
/// (Table V): runs the model over `queries` and aggregates chain weights.
pub fn key_chains_per_attribute(
    model: &ChainsFormer,
    graph: &KnowledgeGraph,
    queries: &[NumTriple],
    top_n: usize,
    rng: &mut impl Rng,
) -> HashMap<AttributeId, Vec<KeyChain>> {
    let mut acc: HashMap<AttributeId, HashMap<RaChain, (f64, usize)>> = HashMap::new();
    for t in queries {
        let q = Query {
            entity: t.entity,
            attr: t.attr,
        };
        let detail = model.predict(graph, q, rng);
        let per_attr = acc.entry(t.attr).or_default();
        for c in detail.chains {
            let slot = per_attr.entry(c.chain).or_insert((0.0, 0));
            slot.0 += c.weight as f64;
            slot.1 += 1;
        }
    }
    acc.into_iter()
        .map(|(attr, chains)| {
            let mut ranked: Vec<KeyChain> = chains
                .into_iter()
                .map(|(chain, (total_weight, occurrences))| KeyChain {
                    chain,
                    total_weight,
                    occurrences,
                })
                .collect();
            ranked.sort_by(|a, b| b.total_weight.partial_cmp(&a.total_weight).expect("finite"));
            ranked.truncate(top_n);
            (attr, ranked)
        })
        .collect()
}

/// The Figure-5 funnel for one query: candidate population at each stage
/// plus the top chains and their weights.
#[derive(Clone, Debug)]
pub struct CaseStudy {
    /// The analysed query.
    pub query: Query,
    /// Estimated total chains in the graph for this query (capped count).
    pub total_chains: u64,
    /// Chains retrieved into the ToC.
    pub retrieved: usize,
    /// Chains surviving the filter.
    pub filtered: usize,
    /// The model's final prediction.
    pub prediction: f64,
    /// Ground truth, when known.
    pub truth: Option<f64>,
    /// `(rendered chain, n_p, weight)`, sorted by weight descending.
    pub top_chains: Vec<(String, f64, f32)>,
    /// Combined weight of the top 4 chains (the paper reports > 80%).
    pub top4_weight: f32,
}

/// Runs the Figure-5 style walk-through for one query.
pub fn case_study(
    model: &ChainsFormer,
    graph: &KnowledgeGraph,
    query: Query,
    truth: Option<f64>,
    rng: &mut impl Rng,
) -> CaseStudy {
    let total_chains =
        cf_chains::exact_chain_count(graph, query.entity, model.cfg.setting.max_hops, 10_000_000);
    let detail = model.predict(graph, query, rng);
    let mut ranked: Vec<(String, f64, f32)> = detail
        .chains
        .iter()
        .map(|c| (c.chain.render(graph), c.known_value, c.weight))
        .collect();
    ranked.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite"));
    let top4_weight = ranked.iter().take(4).map(|r| r.2).sum();
    CaseStudy {
        query,
        total_chains,
        retrieved: detail.retrieved,
        filtered: detail.chains.len(),
        prediction: detail.value,
        truth,
        top_chains: ranked.into_iter().take(8).collect(),
        top4_weight,
    }
}

/// Figure 6: fraction of ToC chains per known attribute, before and after
/// the filter, averaged over queries of a given attribute.
#[derive(Clone, Debug)]
pub struct FilterEffect {
    /// The attribute whose queries were analysed.
    pub query_attr: AttributeId,
    /// attribute id → share before filtering.
    pub before: HashMap<u32, f64>,
    /// attribute id → share after filtering.
    pub after: HashMap<u32, f64>,
}

/// Measures the attribute mix entering and leaving the filter.
pub fn filter_effect(
    model: &ChainsFormer,
    graph: &KnowledgeGraph,
    queries: &[NumTriple],
    rng: &mut impl Rng,
) -> Vec<FilterEffect> {
    let mut per_attr: HashMap<u32, (HashMap<u32, f64>, HashMap<u32, f64>, usize)> = HashMap::new();
    for t in queries {
        let q = Query {
            entity: t.entity,
            attr: t.attr,
        };
        let toc = cf_chains::retrieve(graph, q, &model.cfg.retrieval(), rng);
        if toc.is_empty() {
            continue;
        }
        let selected = model.filter().select_top_k(&toc, model.cfg.top_k, rng);
        let entry = per_attr.entry(t.attr.0).or_default();
        let total_before = toc.len() as f64;
        for c in &toc.chains {
            *entry.0.entry(c.chain.known_attr.0).or_default() += 1.0 / total_before;
        }
        let total_after = selected.len().max(1) as f64;
        for c in &selected.chains {
            *entry.1.entry(c.chain.known_attr.0).or_default() += 1.0 / total_after;
        }
        entry.2 += 1;
    }
    per_attr
        .into_iter()
        .map(|(attr, (mut before, mut after, n))| {
            let n = n.max(1) as f64;
            for v in before.values_mut() {
                *v /= n;
            }
            for v in after.values_mut() {
                *v /= n;
            }
            FilterEffect {
                query_attr: AttributeId(attr),
                before,
                after,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ChainsFormerConfig;
    use crate::train::Trainer;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn trained() -> (ChainsFormer, KnowledgeGraph, Split, StdRng) {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let cfg = ChainsFormerConfig {
            epochs: 2,
            ..ChainsFormerConfig::tiny()
        };
        let mut model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
        Trainer::new(&mut model, &visible).train(&split, &mut rng);
        (model, visible, split, rng)
    }

    #[test]
    fn key_chains_are_ranked_by_weight() {
        let (model, visible, split, mut rng) = trained();
        let keys = key_chains_per_attribute(&model, &visible, &split.test, 3, &mut rng);
        for ranked in keys.values() {
            assert!(ranked.len() <= 3);
            for w in ranked.windows(2) {
                assert!(w[0].total_weight >= w[1].total_weight);
            }
        }
    }

    #[test]
    fn case_study_funnel_shrinks() {
        let (model, visible, split, mut rng) = trained();
        let t = split
            .test
            .iter()
            .find(|t| visible.degree(t.entity) > 0)
            .copied()
            .unwrap();
        let cs = case_study(
            &model,
            &visible,
            Query {
                entity: t.entity,
                attr: t.attr,
            },
            Some(t.value),
            &mut rng,
        );
        assert!(cs.filtered <= cs.retrieved);
        assert!(cs.total_chains >= cs.retrieved as u64 || cs.retrieved == 0 || cs.total_chains > 0);
        assert!(cs.prediction.is_finite());
        assert!(cs.top4_weight >= 0.0 && cs.top4_weight <= 1.0 + 1e-4);
    }

    #[test]
    fn filter_effect_shares_are_distributions() {
        let (model, visible, split, mut rng) = trained();
        let effects = filter_effect(&model, &visible, &split.test, &mut rng);
        for e in effects {
            let before: f64 = e.before.values().sum();
            let after: f64 = e.after.values().sum();
            assert!((before - 1.0).abs() < 1e-6, "before shares sum to {before}");
            assert!((after - 1.0).abs() < 1e-6, "after shares sum to {after}");
        }
    }
}
