//! The Chain Encoder (§IV-D): In-Context Chain Representation via an
//! encoder-only Transformer (Eq. 11–13) and the Numerical-Aware Affine
//! Transfer (Eq. 14–16). Also hosts the Table-VI encoder ablations (LSTM,
//! mean pooling).

use crate::config::{ChainsFormerConfig, EncoderKind, ValueEncoding};
use crate::filter::ChainFilter;
use crate::value_encoding::{float_bits_into, log_features_into, FLOAT_BITS, LOG_FEATURES};
use cf_chains::{ChainInstance, ChainVocab};
use cf_rand::Rng;
use cf_tensor::nn::{Embedding, KeyMask, Lstm, Mlp, TransformerEncoder};
use cf_tensor::{pool, Forward, ParamStore, Tensor, Var};

/// Encodes a batch of RA-Chains into value-aware chain representations
/// `ẽ_c ∈ R^d` (one row per chain).
#[derive(Clone, Debug)]
pub struct ChainEncoder {
    dim: usize,
    max_len: usize,
    kind: EncoderKind,
    token_emb: Embedding,
    pos_emb: Option<Embedding>,
    transformer: Option<TransformerEncoder>,
    lstm: Option<Lstm>,
    value_encoding: ValueEncoding,
    mlp_alpha: Option<Mlp>,
    mlp_beta: Option<Mlp>,
    vocab: ChainVocab,
}

impl ChainEncoder {
    /// Builds the encoder; when `filter` carries a trained hyperbolic table,
    /// token embeddings are initialised from its log-map (Eq. 12) so the
    /// Euclidean table starts where the hyperbolic pre-training ended.
    pub fn new(
        ps: &mut ParamStore,
        cfg: &ChainsFormerConfig,
        vocab: ChainVocab,
        filter: Option<&ChainFilter>,
        rng: &mut impl Rng,
    ) -> Self {
        let dim = cfg.dim;
        let max_len = cfg.setting.max_hops + 3; // a_p + rels + a_q + end
        let token_emb = Embedding::new(ps, "encoder.tokens", vocab.size(), dim, rng);
        if let Some(f) = filter {
            // Seed the Euclidean table with log-mapped hyperbolic points
            // (pad/end rows keep their random init).
            let table = ps.get_mut(token_emb.table);
            let seedable = vocab.num_rel_tokens() + vocab.num_attributes();
            for tok in 0..seedable {
                let v = f.log0_token(tok, dim);
                let row = &mut table.data_mut()[tok * dim..(tok + 1) * dim];
                for (slot, (&seed, existing)) in v
                    .iter()
                    .zip(row.iter().copied().collect::<Vec<_>>())
                    .enumerate()
                {
                    // Blend: keep a little noise so identical hyperbolic rows
                    // don't collapse the table.
                    row[slot] = seed + 0.1 * existing;
                }
            }
        }
        let pos_emb = cfg
            .positional
            .then(|| Embedding::new(ps, "encoder.positions", max_len, dim, rng));
        let (transformer, lstm) = match cfg.encoder {
            EncoderKind::Transformer => (
                Some(TransformerEncoder::new(
                    ps,
                    "encoder.tf",
                    dim,
                    cfg.heads,
                    cfg.layers,
                    cfg.ff_dim,
                    rng,
                )),
                None,
            ),
            EncoderKind::Lstm => (None, Some(Lstm::new(ps, "encoder.lstm", dim, dim, rng))),
            EncoderKind::MeanPool => (None, None),
        };
        let feat = match cfg.value_encoding {
            ValueEncoding::FloatBits => FLOAT_BITS,
            ValueEncoding::Log => LOG_FEATURES,
            ValueEncoding::Disabled => 0,
        };
        let (mlp_alpha, mlp_beta) = if feat > 0 {
            (
                Some(Mlp::new(
                    ps,
                    "encoder.alpha",
                    &[feat, dim, dim * dim],
                    cf_tensor::nn::Activation::Tanh,
                    rng,
                )),
                Some(Mlp::new(
                    ps,
                    "encoder.beta",
                    &[feat, dim, dim],
                    cf_tensor::nn::Activation::Tanh,
                    rng,
                )),
            )
        } else {
            (None, None)
        };
        ChainEncoder {
            dim,
            max_len,
            kind: cfg.encoder,
            token_emb,
            pos_emb,
            transformer,
            lstm,
            value_encoding: cfg.value_encoding,
            mlp_alpha,
            mlp_beta,
            vocab,
        }
    }

    /// Hidden dimension `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Maximum supported token length (hops + framing).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Encodes `chains` into `[k, d]` value-aware representations `ẽ_c`.
    ///
    /// Generic over the evaluation context: a [`cf_tensor::Tape`] for
    /// training or an [`cf_tensor::InferCtx`] for the tape-free serving
    /// path. The batch may concatenate the chains of several queries —
    /// every row's encoding depends only on that chain's own tokens (padded
    /// keys are softmax-inert), so per-query rows can be `select_rows`'d
    /// back out bitwise-unchanged.
    ///
    /// Panics on an empty batch — the caller (the model) handles empty
    /// Enhanced ToCs with a fallback predictor.
    pub fn forward<F: Forward>(&self, t: &mut F, ps: &ParamStore, chains: &[ChainInstance]) -> Var {
        assert!(
            !chains.is_empty(),
            "ChainEncoder::forward on an empty batch"
        );
        let k = chains.len();
        // Tokenize with padding, straight into pooled flat buffers — the
        // steady-state training loop re-enters here every step, so no
        // per-chain or per-row vectors.
        let mut lens = pool::ScratchUsize::with_capacity(k);
        lens.extend(chains.iter().map(|c| c.chain.token_len()));
        let t_max = lens.iter().copied().max().expect("non-empty");
        assert!(
            t_max <= self.max_len,
            "chain of {t_max} tokens exceeds configured max_len {}",
            self.max_len
        );
        let pad = self.vocab.pad_token();
        let mut flat_ids = pool::ScratchUsize::with_capacity(k * t_max);
        flat_ids.resize(k * t_max, pad);
        {
            // Chains tokenize independently into disjoint pre-padded rows,
            // so they fan out across the thread pool (pure index writes —
            // trivially bitwise invariant).
            let shared = pool::SharedMut::new(&mut flat_ids[..]);
            pool::parallel_for(k, |r| {
                for i in r {
                    // SAFETY: row `i` belongs to this slice alone.
                    let row = unsafe { shared.get(i * t_max, t_max) };
                    let len = chains[i].chain.token_len();
                    chains[i]
                        .chain
                        .tokens_into_slice(&self.vocab, &mut row[..len]);
                }
            });
        }

        // Token + positional embeddings -> [k, T, d].
        let tok = self.token_emb.forward(t, ps, &flat_ids);
        let mut x = t.reshape(tok, [k, t_max, self.dim].into());
        if let Some(pe) = &self.pos_emb {
            let mut pos_ids = pool::ScratchUsize::with_capacity(k * t_max);
            for _ in 0..k {
                pos_ids.extend(0..t_max);
            }
            let pos = pe.forward(t, ps, &pos_ids);
            let pos = t.reshape(pos, [k, t_max, self.dim].into());
            x = t.add(x, pos);
        }

        // Sequence encoding -> [k, d]. The padding mask is prefix-shaped by
        // construction, so `lens` itself is the mask.
        let e_c = match self.kind {
            EncoderKind::Transformer => {
                let enc = self.transformer.as_ref().expect("transformer");
                let h = enc.forward(t, ps, x, Some(KeyMask::PrefixLens(&lens)));
                // e_end lives at position len-1 of each chain (Eq. 11/13).
                let flat = t.reshape(h, [k * t_max, self.dim].into());
                let mut idx = pool::ScratchUsize::with_capacity(k);
                idx.extend(lens.iter().enumerate().map(|(i, &l)| i * t_max + l - 1));
                t.select_rows(flat, &idx)
            }
            EncoderKind::Lstm => {
                let lstm = self.lstm.as_ref().expect("lstm");
                lstm.forward_last(t, ps, x, &lens)
            }
            EncoderKind::MeanPool => {
                // Masked mean of token embeddings ("w/o Chain Encoder").
                let mut w = pool::take_f32(k * t_max);
                for &l in lens.iter() {
                    w.extend((0..t_max).map(|j| if j < l { 1.0 } else { 0.0 }));
                }
                let wv = t.constant(Tensor::new([k * t_max], w));
                let masked = t.scale_rows(x, wv);
                let summed = t.sum_dim1(masked); // [k, d]
                let mut inv = pool::take_f32(k);
                inv.extend(lens.iter().map(|&l| 1.0 / l as f32));
                let invv = t.constant(Tensor::new([k], inv));
                t.scale_rows(summed, invv)
            }
        };

        // Numerical-Aware Affine Transfer (Eq. 14–16).
        self.affine_transfer(t, ps, e_c, chains, k)
    }

    fn affine_transfer<F: Forward>(
        &self,
        t: &mut F,
        ps: &ParamStore,
        e_c: Var,
        chains: &[ChainInstance],
        k: usize,
    ) -> Var {
        let (Some(mlp_a), Some(mlp_b)) = (&self.mlp_alpha, &self.mlp_beta) else {
            return e_c; // ValueEncoding::Disabled
        };
        let feat_dim = match self.value_encoding {
            ValueEncoding::FloatBits => FLOAT_BITS,
            ValueEncoding::Log => LOG_FEATURES,
            ValueEncoding::Disabled => unreachable!("guarded above"),
        };
        let mut feats = pool::take_f32(k * feat_dim);
        for c in chains {
            match self.value_encoding {
                ValueEncoding::FloatBits => float_bits_into(c.value, &mut feats),
                ValueEncoding::Log => log_features_into(c.value, &mut feats),
                ValueEncoding::Disabled => unreachable!("guarded above"),
            }
        }
        let fv = t.constant(Tensor::new([k, feat_dim], feats));
        let alpha = mlp_a.forward(t, ps, fv); // [k, d*d]
        let alpha = t.reshape(alpha, [k, self.dim, self.dim].into());
        let e3 = t.reshape(e_c, [k, 1, self.dim].into());
        // (E_α^T · e_c) computed as the row-vector product e_cᵀ E_α.
        let rotated = t.bmm(e3, alpha); // [k, 1, d]
        let rotated = t.reshape(rotated, [k, self.dim].into());
        let beta = mlp_b.forward(t, ps, fv); // [k, d]
        let affine = t.add(rotated, beta);
        // Residual keeps the un-transferred representation reachable, which
        // stabilises early training (the affine net starts near-random).
        t.add(affine, e_c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_chains::RaChain;
    use cf_kg::{AttributeId, Dir, DirRel, EntityId, RelationId};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;
    use cf_tensor::Tape;

    fn chain_instance(hops: usize, value: f64) -> ChainInstance {
        ChainInstance {
            chain: RaChain {
                known_attr: AttributeId(0),
                rels: (0..hops)
                    .map(|i| DirRel {
                        rel: RelationId((i % 2) as u32),
                        dir: Dir::Forward,
                    })
                    .collect(),
                query_attr: AttributeId(1),
            },
            source: EntityId(0),
            value,
        }
    }

    fn build(cfg: &ChainsFormerConfig) -> (ChainEncoder, ParamStore) {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamStore::new();
        let vocab = ChainVocab::new(2, 2);
        let enc = ChainEncoder::new(&mut ps, cfg, vocab, None, &mut rng);
        (enc, ps)
    }

    #[test]
    fn output_is_one_row_per_chain() {
        let cfg = ChainsFormerConfig::tiny();
        let (enc, ps) = build(&cfg);
        let chains = vec![
            chain_instance(0, 1.0),
            chain_instance(2, 5.0),
            chain_instance(3, -2.0),
        ];
        let mut t = Tape::new();
        let out = enc.forward(&mut t, &ps, &chains);
        assert_eq!(t.value(out).shape().as_matrix(), (3, cfg.dim));
        assert!(t.value(out).all_finite());
    }

    #[test]
    fn value_changes_representation_when_aware() {
        let cfg = ChainsFormerConfig::tiny();
        let (enc, ps) = build(&cfg);
        let mut t = Tape::new();
        let a = enc.forward(&mut t, &ps, &[chain_instance(1, 1.0)]);
        let b = enc.forward(&mut t, &ps, &[chain_instance(1, 1000.0)]);
        let diff: f32 = t
            .value(a)
            .data()
            .iter()
            .zip(t.value(b).data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(diff > 1e-4, "numerical-aware transfer ignored the value");
    }

    #[test]
    fn value_ignored_when_disabled() {
        let cfg = ChainsFormerConfig {
            value_encoding: ValueEncoding::Disabled,
            ..ChainsFormerConfig::tiny()
        };
        let (enc, ps) = build(&cfg);
        let mut t = Tape::new();
        let a = enc.forward(&mut t, &ps, &[chain_instance(1, 1.0)]);
        let b = enc.forward(&mut t, &ps, &[chain_instance(1, 1000.0)]);
        assert_eq!(t.value(a).data(), t.value(b).data());
    }

    #[test]
    fn padding_does_not_leak_between_chains() {
        // Encoding a short chain alone or padded next to a longer one must
        // produce the same representation.
        let cfg = ChainsFormerConfig::tiny();
        let (enc, ps) = build(&cfg);
        let short = chain_instance(0, 2.0);
        let long = chain_instance(3, 7.0);
        let mut t1 = Tape::new();
        let alone = enc.forward(&mut t1, &ps, &[short.clone()]);
        let mut t2 = Tape::new();
        let together = enc.forward(&mut t2, &ps, &[short, long]);
        let a = t1.value(alone).row(0).to_vec();
        let b = t2.value(together).row(0).to_vec();
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-4, "padding leaked: {x} vs {y}");
        }
    }

    #[test]
    fn all_encoder_kinds_run() {
        for kind in [
            EncoderKind::Transformer,
            EncoderKind::Lstm,
            EncoderKind::MeanPool,
        ] {
            let cfg = ChainsFormerConfig {
                encoder: kind,
                ..ChainsFormerConfig::tiny()
            };
            let (enc, ps) = build(&cfg);
            let mut t = Tape::new();
            let out = enc.forward(
                &mut t,
                &ps,
                &[chain_instance(1, 3.0), chain_instance(2, 4.0)],
            );
            assert_eq!(t.value(out).shape().as_matrix(), (2, cfg.dim));
            assert!(
                t.value(out).all_finite(),
                "{kind:?} produced non-finite output"
            );
        }
    }

    #[test]
    fn gradients_reach_token_embeddings() {
        let cfg = ChainsFormerConfig::tiny();
        let (enc, ps) = build(&cfg);
        let mut t = Tape::new();
        let out = enc.forward(&mut t, &ps, &[chain_instance(2, 3.0)]);
        let loss = t.mean_all(out);
        let grads = t.backward(loss, ps.len());
        assert!(grads.param_grad(enc.token_emb.table).is_some());
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_panics() {
        let cfg = ChainsFormerConfig::tiny();
        let (enc, ps) = build(&cfg);
        let mut t = Tape::new();
        enc.forward(&mut t, &ps, &[]);
    }
}
