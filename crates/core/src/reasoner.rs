//! The Numerical Reasoner (§IV-E): per-chain numerical projection
//! (Eq. 17–19), Treeformer chain weighting with length encoding
//! (Eq. 20–21), and the weighted aggregation of Eq. 22.

use crate::config::{ChainsFormerConfig, Projection};
use cf_chains::ChainInstance;
use cf_kg::{AttributeId, MinMaxNormalizer};
use cf_rand::Rng;
use cf_tensor::nn::{Activation, Embedding, Mlp, TransformerEncoder};
use cf_tensor::{Forward, ParamStore, Tensor, Var};

/// Output of one reasoning pass.
///
/// All three fields are tape/context nodes rather than materialized vectors:
/// consumers that need the evaluated numbers (explanation traces, quality
/// tracking) read them through [`Forward::value`] at the boundary, so the
/// steady-state forward pass allocates nothing for its outputs.
pub struct ReasonerOutput {
    /// Final prediction `n̂_q` (raw attribute units) as a scalar tape node.
    pub prediction: Var,
    /// Per-chain importance scores `ω` (`[k]` node, for explainability).
    pub weights: Var,
    /// Per-chain predictions `n̂_{p_i}` (`[k]` node, raw units).
    pub chain_predictions: Var,
}

/// Weighted numerical inference over the Enhanced ToC.
#[derive(Clone, Debug)]
pub struct NumericalReasoner {
    dim: usize,
    projection: Projection,
    chain_weighting: bool,
    proj_mlp: Mlp,
    treeformer: Option<TransformerEncoder>,
    len_emb: Embedding,
    weight_mlp: Mlp,
    max_hops: usize,
}

impl NumericalReasoner {
    /// Builds projection head, Treeformer, length encoding and weight head.
    pub fn new(ps: &mut ParamStore, cfg: &ChainsFormerConfig, rng: &mut impl Rng) -> Self {
        let dim = cfg.dim;
        let proj_out = match cfg.projection {
            Projection::Combined => 2,
            _ => 1,
        };
        let proj_mlp = Mlp::new(
            ps,
            "reasoner.proj",
            &[dim, dim, proj_out],
            Activation::Gelu,
            rng,
        );
        let treeformer = cfg.chain_weighting.then(|| {
            TransformerEncoder::new(
                ps,
                "reasoner.tree",
                dim,
                cfg.heads,
                cfg.layers,
                cfg.ff_dim,
                rng,
            )
        });
        let len_emb = Embedding::new(ps, "reasoner.len", cfg.setting.max_hops + 1, dim, rng);
        let weight_mlp = Mlp::new(ps, "reasoner.weight", &[dim, dim, 1], Activation::Gelu, rng);
        NumericalReasoner {
            dim,
            projection: cfg.projection,
            chain_weighting: cfg.chain_weighting,
            proj_mlp,
            treeformer,
            len_emb,
            weight_mlp,
            max_hops: cfg.setting.max_hops,
        }
    }

    /// The configured projection method.
    pub fn projection(&self) -> Projection {
        self.projection
    }

    /// Runs numerical prediction + chain weighting over `e_tilde: [k, d]`.
    ///
    /// Numerical projection operates in *normalized* space: the known value
    /// `n_p` is min-max scaled by its **own** attribute's training range and
    /// the projected result is denormalized by the **query** attribute's
    /// range. Raw-space projection is hopeless when chains cross attributes
    /// of wildly different magnitudes (height 1.75 → birth 1930 needs
    /// α ≈ 1100); in normalized space the same-attribute transport starts at
    /// the identity (α = 1) and cross-attribute transports stay O(1). The
    /// loss already lives in this space (Eq. 23), and the raw magnitude of
    /// `n_p` remains visible to the model through the Numerical-Aware Affine
    /// Transfer's Float64 bit-stream (Eq. 14).
    pub fn forward<F: Forward>(
        &self,
        t: &mut F,
        ps: &ParamStore,
        e_tilde: Var,
        chains: &[ChainInstance],
        norm: &MinMaxNormalizer,
        query_attr: AttributeId,
    ) -> ReasonerOutput {
        let k = chains.len();
        assert!(k > 0, "reasoner needs at least one chain");
        assert_eq!(t.value(e_tilde).shape().as_matrix(), (k, self.dim));

        let range = norm.range(query_attr) as f32;
        let min = norm.min(query_attr) as f32;
        // n_p normalized by the *known* attribute of each chain.
        let mut n_p_data = cf_tensor::pool::take_f32(k);
        n_p_data.extend(
            chains
                .iter()
                .map(|c| norm.normalize(c.chain.known_attr, c.value) as f32),
        );
        let n_p_norm = Tensor::new([k], n_p_data);

        // ---- Numerical Prediction (Eq. 17-19), in normalized space -------
        let head = self.proj_mlp.forward(t, ps, e_tilde); // [k, 1|2]
        let np_var = t.constant(n_p_norm);
        let n_hat_norm = match self.projection {
            Projection::Direct => {
                // n̂ = MLP(ẽ): regress the normalized value directly.
                t.reshape(head, [k].into())
            }
            Projection::Translation => {
                // n̂ = n_p + β  (β starts near 0 → identity transport).
                let beta = t.reshape(head, [k].into());
                t.add(np_var, beta)
            }
            Projection::Scaling => {
                // n̂ = α·n_p with α = 1 + MLP(ẽ), so training starts from the
                // identity scaling instead of annihilating n_p.
                let a = t.reshape(head, [k].into());
                let alpha = t.add_scalar(a, 1.0);
                t.mul(alpha, np_var)
            }
            Projection::Combined => {
                // n̂ = α·(n_p + β)
                let a = t.slice_last(head, 0, 1);
                let a = t.reshape(a, [k].into());
                let alpha = t.add_scalar(a, 1.0);
                let b = t.slice_last(head, 1, 1);
                let b = t.reshape(b, [k].into());
                let base = t.add(np_var, b);
                t.mul(alpha, base)
            }
        };
        // Denormalize into the query attribute's raw units.
        let scaled = t.mul_scalar(n_hat_norm, range);
        let n_hat = t.add_scalar(scaled, min);

        // ---- Logic Chain Weighting (Eq. 20-22) ----------------------------
        let omega = if self.chain_weighting && k > 1 {
            let tree = self.treeformer.as_ref().expect("treeformer");
            // C^(0) = chain reps + length encoding; no positional encoding.
            let mut len_ids = cf_tensor::pool::ScratchUsize::with_capacity(k);
            len_ids.extend(chains.iter().map(|c| c.chain.hops().min(self.max_hops)));
            let lens = self.len_emb.forward(t, ps, &len_ids); // [k, d]
            let c0 = t.add(e_tilde, lens);
            let c0 = t.reshape(c0, [1, k, self.dim].into());
            let enc = tree.forward(t, ps, c0, None); // [1, k, d]
            let enc = t.reshape(enc, [k, self.dim].into());
            let logits = self.weight_mlp.forward(t, ps, enc); // [k, 1]
            let logits = t.reshape(logits, [k].into());
            t.softmax_last(logits)
        } else {
            t.constant(Tensor::full([k], 1.0 / k as f32))
        };

        // n̂_q = Σ ω_i n̂_i
        let weighted = t.mul(omega, n_hat);
        let prediction = t.sum_all(weighted);

        ReasonerOutput {
            prediction,
            weights: omega,
            chain_predictions: n_hat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_chains::RaChain;
    use cf_kg::{Dir, DirRel, EntityId, NumTriple, RelationId};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;
    use cf_tensor::Tape;

    fn chains(values: &[f64]) -> Vec<ChainInstance> {
        values
            .iter()
            .enumerate()
            .map(|(i, &v)| ChainInstance {
                chain: RaChain {
                    known_attr: AttributeId(0),
                    rels: vec![
                        DirRel {
                            rel: RelationId(0),
                            dir: Dir::Forward
                        };
                        i % 3
                    ],
                    query_attr: AttributeId(0),
                },
                source: EntityId(i as u32),
                value: v,
            })
            .collect()
    }

    fn norm() -> MinMaxNormalizer {
        MinMaxNormalizer::fit(
            1,
            &[
                NumTriple {
                    entity: EntityId(0),
                    attr: AttributeId(0),
                    value: 0.0,
                },
                NumTriple {
                    entity: EntityId(0),
                    attr: AttributeId(0),
                    value: 100.0,
                },
            ],
        )
    }

    fn build(
        projection: Projection,
        weighting: bool,
    ) -> (NumericalReasoner, ParamStore, ChainsFormerConfig) {
        let cfg = ChainsFormerConfig {
            projection,
            chain_weighting: weighting,
            ..ChainsFormerConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamStore::new();
        let r = NumericalReasoner::new(&mut ps, &cfg, &mut rng);
        (r, ps, cfg)
    }

    /// Runs one reasoning pass and materializes (weights, chain predictions)
    /// before the tape drops (the output holds tape nodes, not vectors).
    fn run(projection: Projection, weighting: bool, values: &[f64]) -> (Vec<f32>, Vec<f32>) {
        let (r, ps, cfg) = build(projection, weighting);
        let mut t = Tape::new();
        let e = t.leaf(Tensor::new(
            [values.len(), cfg.dim],
            vec![0.05; values.len() * cfg.dim],
        ));
        let out = r.forward(&mut t, &ps, e, &chains(values), &norm(), AttributeId(0));
        (
            t.value(out.weights).data().to_vec(),
            t.value(out.chain_predictions).data().to_vec(),
        )
    }

    #[test]
    fn weights_are_a_distribution() {
        let (weights, _) = run(Projection::Scaling, true, &[10.0, 20.0, 30.0]);
        let sum: f32 = weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "weights sum to {sum}");
        assert!(weights.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn uniform_weights_without_weighting() {
        let (weights, _) = run(Projection::Scaling, false, &[10.0, 20.0]);
        assert_eq!(weights, vec![0.5, 0.5]);
    }

    #[test]
    fn scaling_starts_near_identity() {
        // α = 1 + MLP(·) with a small init keeps n̂ ≈ n_p at step 0.
        let (_, chain_preds) = run(Projection::Scaling, false, &[50.0]);
        assert!(
            (chain_preds[0] - 50.0).abs() < 25.0,
            "scaling init far from identity: {}",
            chain_preds[0]
        );
    }

    #[test]
    fn all_projections_produce_finite_predictions() {
        for p in [
            Projection::Direct,
            Projection::Translation,
            Projection::Scaling,
            Projection::Combined,
        ] {
            let (_, chain_preds) = run(p, true, &[1.0, 1e6, -40.0]);
            assert!(chain_preds.iter().all(|x| x.is_finite()), "{p:?}");
        }
    }

    #[test]
    fn prediction_is_weighted_sum_of_chain_predictions() {
        let (weights, chain_preds) = run(Projection::Scaling, true, &[10.0, 30.0, 90.0]);
        let manual: f32 = weights.iter().zip(&chain_preds).map(|(w, p)| w * p).sum();
        // Reconstruct prediction value from parts (Eq. 22).
        // The tape value is checked by the model tests; here compare parts.
        assert!(manual.is_finite());
    }

    #[test]
    fn single_chain_short_circuits_weighting() {
        let (weights, _) = run(Projection::Scaling, true, &[42.0]);
        assert_eq!(weights, vec![1.0]);
    }

    #[test]
    fn trains_to_scale_values() {
        // Learn n_q = 2·n_p from data, using the scaling projection.
        let cfg = ChainsFormerConfig {
            projection: Projection::Scaling,
            chain_weighting: false,
            ..ChainsFormerConfig::tiny()
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamStore::new();
        let r = NumericalReasoner::new(&mut ps, &cfg, &mut rng);
        let mut opt = cf_tensor::optim::Adam::new(0.01);
        let nm = norm();
        let mut last = f32::MAX;
        for step in 0..200 {
            let np = 10.0 + (step % 7) as f64 * 5.0;
            let target = (2.0 * np) as f32;
            let mut t = Tape::new();
            let e = t.leaf(Tensor::new([1, cfg.dim], vec![0.1; cfg.dim]));
            let out = r.forward(&mut t, &ps, e, &chains(&[np]), &nm, AttributeId(0));
            let target_t = Tensor::scalar(target / 100.0);
            let scaled = t.mul_scalar(out.prediction, 1.0 / 100.0);
            let loss = t.mse_loss(scaled, &target_t);
            last = t.value(loss).item();
            let grads = t.backward(loss, ps.len());
            opt.step(&mut ps, &grads);
        }
        assert!(
            last < 0.01,
            "scaling projection failed to learn 2x: loss {last}"
        );
    }
}
