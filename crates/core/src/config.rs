//! Model and training configuration, including every ablation switch of
//! Table VI and the experiment knobs of Figures 4, 7 and 8.
//!
//! Configs serialize to a flat, TOML-ish `key = value` text format
//! ([`ChainsFormerConfig::to_toml`] / [`ChainsFormerConfig::from_toml`])
//! implemented by hand so the workspace carries no serialization
//! dependency. The format is stable, diffable and round-trips exactly
//! (floats are emitted with shortest-round-trip precision).

use cf_chains::RetrievalConfig;

/// Numerical projection method of the Numerical Reasoner (Eq. 17–19 and
/// Table VII).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Projection {
    /// Regress the (normalized) value directly from the chain embedding —
    /// the paper's weakest variant and its "w/o Numerical Projection"
    /// ablation.
    Direct,
    /// `n̂ = n_p + β` (Eq. 17). β is produced in normalized units and scaled
    /// by the query attribute's training range, otherwise magnitudes like
    /// population would be unreachable for an MLP output.
    Translation,
    /// `n̂ = α · n_p` (Eq. 18) — the paper's default.
    Scaling,
    /// `n̂ = α · (n_p + β)` (Eq. 19).
    Combined,
}

/// Which geometry the chain filter scores in (Figure 7).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FilterSpace {
    /// Poincaré-ball affinity scoring (the paper's Hyperbolic Filter).
    Hyperbolic,
    /// Same objective trained and scored in Euclidean space.
    Euclidean,
    /// Uniform random selection (the paper's "random sampling" arm and its
    /// "w/o Hyperbolic Filter" ablation).
    Random,
}

/// Sequence model encoding each RA-Chain (Table VI ablations).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EncoderKind {
    /// Encoder-only Transformer (the paper's In-Context Chain
    /// Representation).
    Transformer,
    /// LSTM ablation ("w LSTM as Chain Encoder").
    Lstm,
    /// Mean of token embeddings ("w/o Chain Encoder").
    MeanPool,
}

/// How the known value `n_p` is encoded before the affine-parameter MLPs
/// (Eq. 14 and the "w Numerical-Aware by Log" ablation).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ValueEncoding {
    /// Float64 0–1 bit-stream (the paper's default, Eq. 14).
    FloatBits,
    /// Sign + log-magnitude features.
    Log,
    /// Disable the Numerical-Aware Affine Transfer entirely
    /// ("w/o Numerical-Aware").
    Disabled,
}

/// Training loss. Eq. 24 defines MSE; §V-A's implementation details say
/// L1 — both are supported and the experiments default to L1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Loss {
    /// Mean absolute error.
    L1,
    /// Mean squared error (Eq. 24).
    Mse,
}

/// Restrictions used by the Figure-4 reasoning-setting study.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReasoningSetting {
    /// Upper bound on chain hops (1 = single-hop reasoning).
    pub max_hops: usize,
    /// When false, only chains whose known attribute equals the queried
    /// attribute are admitted (the "same-attr" setting).
    pub multi_attribute: bool,
}

impl ReasoningSetting {
    /// No restriction beyond the hop budget.
    pub fn unrestricted(max_hops: usize) -> Self {
        ReasoningSetting {
            max_hops,
            multi_attribute: true,
        }
    }
}

/// Full ChainsFormer configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct ChainsFormerConfig {
    // -- architecture ------------------------------------------------------
    /// Hidden dimension `d` of the Chain Encoder / Numerical Reasoner.
    pub dim: usize,
    /// Transformer layers `L_c` (both stacks).
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width (usually `2–4 × dim`).
    pub ff_dim: usize,
    /// Learned positional embeddings in the Chain Encoder. The Treeformer
    /// never uses positions (Eq. 20 replaces them with length encoding).
    pub positional: bool,
    /// Sequence model for RA-Chains.
    pub encoder: EncoderKind,
    /// Value encoding for the affine transfer.
    pub value_encoding: ValueEncoding,
    /// Numerical projection method (Eq. 17–19).
    pub projection: Projection,
    /// Softmax chain weighting (Eq. 21–22); false = uniform averaging
    /// ("w/o Chain Weighting").
    pub chain_weighting: bool,
    /// Extension (paper §VI future work): track per-pattern prediction
    /// quality during training and prune reliably bad RA-Chain patterns at
    /// inference.
    pub chain_quality: bool,
    /// Prune patterns whose EMA error exceeds `factor ×` the candidate-set
    /// median (only meaningful with `chain_quality`).
    pub quality_prune_factor: f64,

    // -- retrieval and filter ------------------------------------------------
    /// Random-walk retrieval (`N_s`, max hops).
    pub retrieval_walks: usize,
    /// Top-k chains kept by the filter (the paper's 256).
    pub top_k: usize,
    /// Geometry the filter scores in.
    pub filter_space: FilterSpace,
    /// Dimension of the (pre-trained) filter embedding space.
    pub filter_dim: usize,
    /// λ of Eq. 9, balancing intra vs inter affinity.
    pub lambda: f64,
    /// Filter pre-training epochs over co-occurrence pairs.
    pub filter_epochs: usize,
    /// Reasoning-setting restriction (Figure 4).
    pub setting: ReasoningSetting,

    // -- optimization --------------------------------------------------------
    /// Adam learning rate.
    pub lr: f32,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Queries per optimizer step.
    pub batch_size: usize,
    /// Training loss.
    pub loss: Loss,
    /// Global-norm gradient clip.
    pub grad_clip: f32,
    /// Early-stopping patience in epochs on validation normalized MAE
    /// (0 = disabled).
    pub patience: usize,
    /// RNG seed recorded with the run.
    pub seed: u64,
}

impl Default for ChainsFormerConfig {
    /// CPU-scale defaults (substitution S5); `paper()` restores the paper's
    /// published hyperparameters.
    fn default() -> Self {
        ChainsFormerConfig {
            dim: 48,
            layers: 2,
            heads: 4,
            ff_dim: 96,
            positional: true,
            encoder: EncoderKind::Transformer,
            value_encoding: ValueEncoding::FloatBits,
            projection: Projection::Scaling,
            chain_weighting: true,
            chain_quality: false,
            quality_prune_factor: 2.5,
            retrieval_walks: 256,
            top_k: 32,
            filter_space: FilterSpace::Hyperbolic,
            filter_dim: 16,
            lambda: 0.5,
            filter_epochs: 30,
            setting: ReasoningSetting::unrestricted(3),
            lr: 1e-3,
            epochs: 25,
            batch_size: 8,
            loss: Loss::L1,
            grad_clip: 1.0,
            patience: 5,
            seed: 0,
        }
    }
}

impl ChainsFormerConfig {
    /// The paper's published setting (§V-A): d = 256/128, N_s = 2048,
    /// k = 256, 2 layers, 4 heads, lr 1e-4, 200 epochs.
    pub fn paper() -> Self {
        ChainsFormerConfig {
            dim: 256,
            layers: 2,
            heads: 4,
            ff_dim: 512,
            retrieval_walks: 2048,
            top_k: 256,
            filter_dim: 64,
            lr: 1e-4,
            epochs: 200,
            ..Default::default()
        }
    }

    /// A very small configuration for unit tests.
    pub fn tiny() -> Self {
        ChainsFormerConfig {
            dim: 16,
            layers: 1,
            heads: 2,
            ff_dim: 32,
            retrieval_walks: 48,
            top_k: 8,
            filter_dim: 8,
            filter_epochs: 8,
            epochs: 4,
            batch_size: 4,
            patience: 0,
            ..Default::default()
        }
    }

    /// Retrieval configuration derived from this config.
    pub fn retrieval(&self) -> RetrievalConfig {
        RetrievalConfig {
            num_walks: self.retrieval_walks,
            max_hops: self.setting.max_hops,
            allow_zero_hop: true,
            max_attempts_factor: 4,
        }
    }

    /// Serializes to the flat TOML-ish `key = value` format.
    ///
    /// Keys appear in declaration order; the nested [`ReasoningSetting`] is
    /// flattened to dotted keys (`setting.max_hops`); enums are written as
    /// their variant names; floats use `{:?}` (shortest representation that
    /// round-trips exactly).
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        let mut kv = |k: &str, v: String| {
            out.push_str(k);
            out.push_str(" = ");
            out.push_str(&v);
            out.push('\n');
        };
        kv("dim", self.dim.to_string());
        kv("layers", self.layers.to_string());
        kv("heads", self.heads.to_string());
        kv("ff_dim", self.ff_dim.to_string());
        kv("positional", self.positional.to_string());
        kv("encoder", format!("{:?}", self.encoder));
        kv("value_encoding", format!("{:?}", self.value_encoding));
        kv("projection", format!("{:?}", self.projection));
        kv("chain_weighting", self.chain_weighting.to_string());
        kv("chain_quality", self.chain_quality.to_string());
        kv(
            "quality_prune_factor",
            format!("{:?}", self.quality_prune_factor),
        );
        kv("retrieval_walks", self.retrieval_walks.to_string());
        kv("top_k", self.top_k.to_string());
        kv("filter_space", format!("{:?}", self.filter_space));
        kv("filter_dim", self.filter_dim.to_string());
        kv("lambda", format!("{:?}", self.lambda));
        kv("filter_epochs", self.filter_epochs.to_string());
        kv("setting.max_hops", self.setting.max_hops.to_string());
        kv(
            "setting.multi_attribute",
            self.setting.multi_attribute.to_string(),
        );
        kv("lr", format!("{:?}", self.lr));
        kv("epochs", self.epochs.to_string());
        kv("batch_size", self.batch_size.to_string());
        kv("loss", format!("{:?}", self.loss));
        kv("grad_clip", format!("{:?}", self.grad_clip));
        kv("patience", self.patience.to_string());
        kv("seed", self.seed.to_string());
        out
    }

    /// Parses the format written by [`to_toml`](Self::to_toml).
    ///
    /// Starts from [`Default::default`], so partial configs override only
    /// the keys they mention. Blank lines and `#` comments are ignored;
    /// unknown keys and malformed values are errors (a silently dropped
    /// hyperparameter is the worst failure mode for an experiment log).
    pub fn from_toml(text: &str) -> Result<Self, String> {
        fn scalar<T: std::str::FromStr>(key: &str, raw: &str) -> Result<T, String> {
            raw.parse()
                .map_err(|_| format!("config key `{key}`: cannot parse value `{raw}`"))
        }

        let mut cfg = ChainsFormerConfig::default();
        for (lineno, line) in text.lines().enumerate() {
            let line = match line.find('#') {
                Some(i) => &line[..i],
                None => line,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let (key, raw) = line.split_once('=').ok_or_else(|| {
                format!("line {}: expected `key = value`, got `{line}`", lineno + 1)
            })?;
            let (key, raw) = (key.trim(), raw.trim());
            match key {
                "dim" => cfg.dim = scalar(key, raw)?,
                "layers" => cfg.layers = scalar(key, raw)?,
                "heads" => cfg.heads = scalar(key, raw)?,
                "ff_dim" => cfg.ff_dim = scalar(key, raw)?,
                "positional" => cfg.positional = scalar(key, raw)?,
                "encoder" => {
                    cfg.encoder = match raw {
                        "Transformer" => EncoderKind::Transformer,
                        "Lstm" => EncoderKind::Lstm,
                        "MeanPool" => EncoderKind::MeanPool,
                        _ => return Err(format!("unknown encoder `{raw}`")),
                    }
                }
                "value_encoding" => {
                    cfg.value_encoding = match raw {
                        "FloatBits" => ValueEncoding::FloatBits,
                        "Log" => ValueEncoding::Log,
                        "Disabled" => ValueEncoding::Disabled,
                        _ => return Err(format!("unknown value_encoding `{raw}`")),
                    }
                }
                "projection" => {
                    cfg.projection = match raw {
                        "Direct" => Projection::Direct,
                        "Translation" => Projection::Translation,
                        "Scaling" => Projection::Scaling,
                        "Combined" => Projection::Combined,
                        _ => return Err(format!("unknown projection `{raw}`")),
                    }
                }
                "chain_weighting" => cfg.chain_weighting = scalar(key, raw)?,
                "chain_quality" => cfg.chain_quality = scalar(key, raw)?,
                "quality_prune_factor" => cfg.quality_prune_factor = scalar(key, raw)?,
                "retrieval_walks" => cfg.retrieval_walks = scalar(key, raw)?,
                "top_k" => cfg.top_k = scalar(key, raw)?,
                "filter_space" => {
                    cfg.filter_space = match raw {
                        "Hyperbolic" => FilterSpace::Hyperbolic,
                        "Euclidean" => FilterSpace::Euclidean,
                        "Random" => FilterSpace::Random,
                        _ => return Err(format!("unknown filter_space `{raw}`")),
                    }
                }
                "filter_dim" => cfg.filter_dim = scalar(key, raw)?,
                "lambda" => cfg.lambda = scalar(key, raw)?,
                "filter_epochs" => cfg.filter_epochs = scalar(key, raw)?,
                "setting.max_hops" => cfg.setting.max_hops = scalar(key, raw)?,
                "setting.multi_attribute" => cfg.setting.multi_attribute = scalar(key, raw)?,
                "lr" => cfg.lr = scalar(key, raw)?,
                "epochs" => cfg.epochs = scalar(key, raw)?,
                "batch_size" => cfg.batch_size = scalar(key, raw)?,
                "loss" => {
                    cfg.loss = match raw {
                        "L1" => Loss::L1,
                        "Mse" => Loss::Mse,
                        _ => return Err(format!("unknown loss `{raw}`")),
                    }
                }
                "grad_clip" => cfg.grad_clip = scalar(key, raw)?,
                "patience" => cfg.patience = scalar(key, raw)?,
                "seed" => cfg.seed = scalar(key, raw)?,
                _ => return Err(format!("unknown config key `{key}`")),
            }
        }
        Ok(cfg)
    }

    /// A stable 64-bit fingerprint of this configuration (FNV-1a over the
    /// canonical [`to_toml`](Self::to_toml) text). Stored in CFT2
    /// checkpoints so `--resume` can refuse to continue a run under a
    /// different configuration — silently mixing hyperparameters would
    /// produce a trajectory that matches neither run.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.to_toml().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Validates internal consistency; call before building a model.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim % self.heads != 0 {
            return Err(format!(
                "dim {} not divisible by heads {}",
                self.dim, self.heads
            ));
        }
        if self.top_k == 0 {
            return Err("top_k must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.lambda) {
            return Err(format!("lambda {} outside [0,1]", self.lambda));
        }
        if self.setting.max_hops == 0 {
            return Err("max_hops must be at least 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ChainsFormerConfig::default().validate().unwrap();
        ChainsFormerConfig::paper().validate().unwrap();
        ChainsFormerConfig::tiny().validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_heads() {
        let cfg = ChainsFormerConfig {
            dim: 10,
            heads: 4,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_lambda() {
        let cfg = ChainsFormerConfig {
            lambda: 1.5,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn retrieval_mirrors_setting() {
        let cfg = ChainsFormerConfig {
            setting: ReasoningSetting {
                max_hops: 2,
                multi_attribute: false,
            },
            retrieval_walks: 99,
            ..Default::default()
        };
        let r = cfg.retrieval();
        assert_eq!(r.max_hops, 2);
        assert_eq!(r.num_walks, 99);
    }

    #[test]
    fn toml_round_trips_every_preset() {
        for cfg in [
            ChainsFormerConfig::default(),
            ChainsFormerConfig::paper(),
            ChainsFormerConfig::tiny(),
        ] {
            let text = cfg.to_toml();
            let back = ChainsFormerConfig::from_toml(&text).unwrap();
            assert_eq!(cfg, back, "round trip changed the config:\n{text}");
        }
    }

    #[test]
    fn toml_round_trips_non_default_fields() {
        let cfg = ChainsFormerConfig {
            encoder: EncoderKind::Lstm,
            value_encoding: ValueEncoding::Log,
            projection: Projection::Combined,
            filter_space: FilterSpace::Random,
            loss: Loss::Mse,
            positional: false,
            lambda: 0.123456789,
            lr: 3.5e-4,
            setting: ReasoningSetting {
                max_hops: 1,
                multi_attribute: false,
            },
            seed: u64::MAX,
            ..Default::default()
        };
        let back = ChainsFormerConfig::from_toml(&cfg.to_toml()).unwrap();
        assert_eq!(cfg, back);
    }

    #[test]
    fn toml_partial_overrides_default() {
        let cfg = ChainsFormerConfig::from_toml(
            "# experiment override\n\ndim = 64  # wider\nsetting.max_hops = 5\n",
        )
        .unwrap();
        assert_eq!(cfg.dim, 64);
        assert_eq!(cfg.setting.max_hops, 5);
        assert_eq!(cfg.layers, ChainsFormerConfig::default().layers);
    }

    #[test]
    fn toml_rejects_unknown_keys_and_bad_values() {
        assert!(ChainsFormerConfig::from_toml("learning_rate = 0.1").is_err());
        assert!(ChainsFormerConfig::from_toml("dim = fast").is_err());
        assert!(ChainsFormerConfig::from_toml("loss = Huber").is_err());
        assert!(ChainsFormerConfig::from_toml("just some words").is_err());
    }

    #[test]
    fn config_debug_is_stable_enough_for_logs() {
        let cfg = ChainsFormerConfig::default();
        let dbg = format!("{cfg:?}");
        assert!(dbg.contains("Scaling"));
        assert!(dbg.contains("Hyperbolic"));
    }
}
