//! The Hyperbolic Filter (§IV-C): hyperbolic chain embedding via Möbius
//! translation (Eq. 7), inter/intra affinity scoring (Eq. 8–9) and top-k
//! selection into the Enhanced ToC (Eq. 10).
//!
//! Implementation note (DESIGN.md §6.2): the top-k selection is
//! non-differentiable and the paper leaves the gradient path unspecified, so
//! the filter's relation/attribute embeddings are *pre-trained* on
//! (relation → attribute) and (attribute → attribute) co-occurrence pairs
//! sampled from the visible graph — Poincaré-embedding style with Riemannian
//! SGD — and frozen during model training. Eq. 10 as printed keeps the k
//! *largest* scores even though the score is built from distances; we read
//! this as a typo and keep the k *smallest* (closest, most relevant).

use crate::config::FilterSpace;
use cf_chains::{ChainInstance, ChainVocab, Query, TreeOfChains};
use cf_hyperbolic::{euclidean_distance, PoincareEmbeddings};
use cf_kg::KnowledgeGraph;
use cf_rand::seq::SliceRandom;
use cf_rand::Rng;

/// Scores RA-Chains for relevance to a query and keeps the best `k`.
#[derive(Clone, Debug)]
pub struct ChainFilter {
    space: FilterSpace,
    vocab: ChainVocab,
    lambda: f64,
    /// Poincaré table over `[directed relations ‖ attributes]` tokens.
    hyper: Option<PoincareEmbeddings>,
    /// Euclidean table with the same layout (Figure 7 comparison arm).
    eucl: Option<Vec<Vec<f64>>>,
    dim: usize,
}

/// Supervision pairs for filter pre-training.
fn cooccurrence_pairs(
    graph: &KnowledgeGraph,
    vocab: &ChainVocab,
    walks: usize,
    max_hops: usize,
    rng: &mut impl Rng,
) -> Vec<(usize, usize)> {
    let mut pairs = Vec::new();
    // 1-hop (relation, attribute) co-occurrence, count-capped.
    for ((dr, attr), count) in graph.relation_attribute_cooccurrence() {
        let reps = count.min(8);
        for _ in 0..reps {
            pairs.push((vocab.rel_token(dr), vocab.attr_token(attr)));
        }
    }
    // Same-entity (attribute, attribute) pairs: supervises the intra-score.
    for e in graph.entities() {
        let facts = graph.numerics_of(e);
        for (i, fa) in facts.iter().enumerate() {
            for fb in &facts[i + 1..] {
                pairs.push((vocab.attr_token(fa.attr), vocab.attr_token(fb.attr)));
            }
        }
    }
    // Multi-hop: random walks pair every traversed relation with the
    // endpoint attribute, teaching compositions to point at the right
    // attributes.
    let entities: Vec<_> = graph.numerics().iter().map(|t| t.entity).collect();
    if !entities.is_empty() {
        for _ in 0..walks {
            let mut at = *entities.choose(rng).expect("non-empty");
            let mut rels = Vec::new();
            for _ in 0..rng.gen_range(1..=max_hops) {
                let edges = graph.neighbors(at);
                if edges.is_empty() {
                    break;
                }
                let e = edges.choose(rng).expect("non-empty");
                rels.push(e.dr);
                at = e.to;
            }
            if rels.is_empty() {
                continue;
            }
            if let Some(f) = graph.numerics_of(at).first() {
                for dr in rels {
                    pairs.push((vocab.rel_token(dr), vocab.attr_token(f.attr)));
                }
            }
        }
    }
    // HashMap iteration order is randomized per process; sort before the
    // seeded shuffle so the whole pipeline stays deterministic per seed.
    pairs.sort_unstable();
    pairs.shuffle(rng);
    pairs
}

impl ChainFilter {
    /// Pre-trains a filter for `graph` in the requested space.
    /// `FilterSpace::Random` trains nothing.
    pub fn fit(
        graph: &KnowledgeGraph,
        space: FilterSpace,
        dim: usize,
        lambda: f64,
        epochs: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let vocab = ChainVocab::for_graph(graph);
        let table_size = vocab.num_rel_tokens() + vocab.num_attributes();
        match space {
            FilterSpace::Random => ChainFilter {
                space,
                vocab,
                lambda,
                hyper: None,
                eucl: None,
                dim,
            },
            FilterSpace::Hyperbolic => {
                let pairs = cooccurrence_pairs(graph, &vocab, 512, 3, rng);
                let mut emb = PoincareEmbeddings::new(table_size, dim, rng);
                if !pairs.is_empty() {
                    emb.train(&pairs, epochs, 5, 0.05, rng);
                }
                ChainFilter {
                    space,
                    vocab,
                    lambda,
                    hyper: Some(emb),
                    eucl: None,
                    dim,
                }
            }
            FilterSpace::Euclidean => {
                let pairs = cooccurrence_pairs(graph, &vocab, 512, 3, rng);
                let mut table: Vec<Vec<f64>> = (0..table_size)
                    .map(|_| (0..dim).map(|_| rng.gen_range(-0.01..0.01)).collect())
                    .collect();
                train_euclidean(&mut table, &pairs, epochs, 5, 0.05, rng);
                ChainFilter {
                    space,
                    vocab,
                    lambda,
                    hyper: None,
                    eucl: Some(table),
                    dim,
                }
            }
        }
    }

    /// The geometry this filter scores in.
    pub fn space(&self) -> FilterSpace {
        self.space
    }

    /// Filter embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The chain token vocabulary.
    pub fn vocab(&self) -> &ChainVocab {
        &self.vocab
    }

    /// The hyperbolic affinity score `s_c^H` (Eq. 9); *lower is more
    /// relevant*. Returns 0 for `Random` (scores unused there).
    pub fn score(&self, chain: &ChainInstance, query: Query) -> f64 {
        let aq = self.vocab.attr_token(query.attr);
        let ap = self.vocab.attr_token(chain.chain.known_attr);
        match self.space {
            FilterSpace::Random => 0.0,
            FilterSpace::Hyperbolic => {
                let emb = self.hyper.as_ref().expect("hyperbolic table");
                let ball = *emb.ball();
                let points: Vec<&[f64]> = chain
                    .chain
                    .rels
                    .iter()
                    .map(|dr| emb.point(self.vocab.rel_token(*dr)))
                    .collect();
                let h_c = ball.mobius_chain(&points, self.dim);
                let inter = ball.distance_arcosh(&h_c, emb.point(aq));
                let intra = ball.distance_arcosh(emb.point(ap), emb.point(aq));
                self.lambda * intra + (1.0 - self.lambda) * inter
            }
            FilterSpace::Euclidean => {
                let table = self.eucl.as_ref().expect("euclidean table");
                let mut h_c = vec![0.0; self.dim];
                for dr in &chain.chain.rels {
                    for (acc, v) in h_c.iter_mut().zip(&table[self.vocab.rel_token(*dr)]) {
                        *acc += v;
                    }
                }
                let inter = euclidean_distance(&h_c, &table[aq]);
                let intra = euclidean_distance(&table[ap], &table[aq]);
                self.lambda * intra + (1.0 - self.lambda) * inter
            }
        }
    }

    /// Builds the Enhanced ToC `T_q^k`: the `k` most relevant chains
    /// (Eq. 10). For `Random`, a uniform sample of size `k`.
    pub fn select_top_k(&self, toc: &TreeOfChains, k: usize, rng: &mut impl Rng) -> TreeOfChains {
        let mut chains = toc.chains.clone();
        match self.space {
            FilterSpace::Random => {
                chains.shuffle(rng);
                chains.truncate(k);
            }
            _ => {
                let mut scored: Vec<(f64, ChainInstance)> = chains
                    .into_iter()
                    .map(|c| (self.score(&c, toc.query), c))
                    .collect();
                scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite scores"));
                scored.truncate(k);
                chains = scored.into_iter().map(|(_, c)| c).collect();
            }
        }
        TreeOfChains {
            query: toc.query,
            chains,
        }
    }

    /// Log-map of the hyperbolic point for a token, used to initialise the
    /// Chain Encoder's Euclidean token table (Eq. 12). Zeroes for spaces
    /// without a table.
    pub fn log0_token(&self, token: usize, out_dim: usize) -> Vec<f32> {
        let mut v = match (&self.hyper, &self.eucl) {
            (Some(h), _) if token < h.len() => h.log0_f32(token),
            (None, Some(t)) if token < t.len() => t[token].iter().map(|&x| x as f32).collect(),
            _ => vec![0.0; self.dim],
        };
        v.resize(out_dim, 0.0);
        v
    }
}

/// Euclidean analogue of the Poincaré pair training (negative-sampling
/// softmax over distances, plain SGD).
fn train_euclidean(
    table: &mut [Vec<f64>],
    pairs: &[(usize, usize)],
    epochs: usize,
    negatives: usize,
    lr: f64,
    rng: &mut impl Rng,
) {
    if table.is_empty() || pairs.is_empty() {
        return;
    }
    let n = table.len();
    for _ in 0..epochs {
        for &(u, v) in pairs {
            let mut cands = Vec::with_capacity(negatives + 1);
            cands.push(v);
            for _ in 0..negatives {
                let mut c = rng.gen_range(0..n);
                if c == v {
                    c = (c + 1) % n;
                }
                cands.push(c);
            }
            let dists: Vec<f64> = cands
                .iter()
                .map(|&c| euclidean_distance(&table[u], &table[c]))
                .collect();
            let dmin = dists.iter().cloned().fold(f64::INFINITY, f64::min);
            let exps: Vec<f64> = dists.iter().map(|&d| (-(d - dmin)).exp()).collect();
            let z: f64 = exps.iter().sum();
            for (j, &c) in cands.iter().enumerate() {
                let p = exps[j] / z;
                let coef = if j == 0 { 1.0 - p } else { -p };
                let d = dists[j].max(1e-9);
                // ∂d/∂u = (u−c)/d ; symmetric for c.
                for i in 0..table[u].len() {
                    let dir = (table[u][i] - table[c][i]) / d;
                    let g = coef * dir;
                    table[u][i] -= lr * g;
                    table[c][i] += lr * g;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_chains::{retrieve, RetrievalConfig};
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn setup(space: FilterSpace) -> (KnowledgeGraph, ChainFilter, StdRng) {
        let mut rng = StdRng::seed_from_u64(11);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let f = ChainFilter::fit(&g, space, 8, 0.5, 10, &mut rng);
        (g, f, rng)
    }

    fn toc_for_first_query(g: &KnowledgeGraph, rng: &mut StdRng) -> TreeOfChains {
        let fact = g
            .numerics()
            .iter()
            .find(|t| g.degree(t.entity) > 0)
            .copied()
            .expect("connected fact");
        retrieve(
            g,
            Query {
                entity: fact.entity,
                attr: fact.attr,
            },
            &RetrievalConfig {
                num_walks: 64,
                ..Default::default()
            },
            rng,
        )
    }

    #[test]
    fn top_k_truncates_and_keeps_best() {
        let (g, f, mut rng) = setup(FilterSpace::Hyperbolic);
        let toc = toc_for_first_query(&g, &mut rng);
        let k = 4.min(toc.len());
        let selected = f.select_top_k(&toc, k, &mut rng);
        assert_eq!(selected.len(), k.min(toc.len()));
        // Every selected score must be <= every rejected score.
        let kept_max = selected
            .chains
            .iter()
            .map(|c| f.score(c, toc.query))
            .fold(f64::NEG_INFINITY, f64::max);
        for c in &toc.chains {
            if !selected.chains.contains(c) {
                assert!(f.score(c, toc.query) >= kept_max - 1e-12);
            }
        }
    }

    #[test]
    fn same_attribute_chains_score_better_on_average() {
        // The intra-score should prefer chains whose known attribute equals
        // the queried one (Figure 6's observation).
        let (g, f, mut rng) = setup(FilterSpace::Hyperbolic);
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for _ in 0..10 {
            let toc = toc_for_first_query(&g, &mut rng);
            for c in &toc.chains {
                let s = f.score(c, toc.query);
                if c.chain.known_attr == toc.query.attr {
                    same.push(s);
                } else {
                    diff.push(s);
                }
            }
        }
        if same.is_empty() || diff.is_empty() {
            return; // tiny graph edge case — nothing to compare
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&same) < mean(&diff),
            "same-attr chains should score lower (better): {} vs {}",
            mean(&same),
            mean(&diff)
        );
    }

    #[test]
    fn random_space_selects_k_without_scores() {
        let (g, f, mut rng) = setup(FilterSpace::Random);
        let toc = toc_for_first_query(&g, &mut rng);
        let selected = f.select_top_k(&toc, 3, &mut rng);
        assert!(selected.len() <= 3);
        assert_eq!(f.score(&toc.chains[0], toc.query), 0.0);
    }

    #[test]
    fn euclidean_space_scores_are_finite() {
        let (g, f, mut rng) = setup(FilterSpace::Euclidean);
        let toc = toc_for_first_query(&g, &mut rng);
        for c in &toc.chains {
            assert!(f.score(c, toc.query).is_finite());
        }
    }

    #[test]
    fn log0_token_resizes_to_out_dim() {
        let (_, f, _) = setup(FilterSpace::Hyperbolic);
        let v = f.log0_token(0, 20);
        assert_eq!(v.len(), 20);
        assert!(v[8..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn selection_is_stable_for_k_larger_than_toc() {
        let (g, f, mut rng) = setup(FilterSpace::Hyperbolic);
        let toc = toc_for_first_query(&g, &mut rng);
        let selected = f.select_top_k(&toc, 10_000, &mut rng);
        assert_eq!(selected.len(), toc.len());
    }
}
