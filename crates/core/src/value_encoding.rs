//! Numerical value encodings for the Numerical-Aware Affine Transfer
//! (Eq. 14 and the "by Log" ablation).

/// Width of the bit-stream encoding (`f_n : R -> R^64`).
pub const FLOAT_BITS: usize = 64;

/// Width of the log-magnitude encoding.
pub const LOG_FEATURES: usize = 4;

/// Eq. 14: maps a value to the 0/1 bit-stream of its IEEE-754 Float64
/// representation (sign, exponent, mantissa — a machine-friendly
/// scientific notation, per the paper's NLP-number-encoding inspiration).
pub fn float_bits(value: f64) -> Vec<f32> {
    let mut out = Vec::with_capacity(FLOAT_BITS);
    float_bits_into(value, &mut out);
    out
}

/// [`float_bits`] appended to `out` — lets the encoder fill one pooled
/// feature buffer for a whole batch without per-chain allocations.
pub fn float_bits_into(value: f64, out: &mut Vec<f32>) {
    let bits = value.to_bits();
    out.extend((0..FLOAT_BITS).map(|i| ((bits >> (FLOAT_BITS - 1 - i)) & 1) as f32));
}

/// Ablation variant: `[sign, log1p(|v|), fractional part of log10|v|,
/// 1/(1+|v|)]` — a compact magnitude descriptor.
pub fn log_features(value: f64) -> Vec<f32> {
    let mut out = Vec::with_capacity(LOG_FEATURES);
    log_features_into(value, &mut out);
    out
}

/// [`log_features`] appended to `out`, allocation-free.
pub fn log_features_into(value: f64, out: &mut Vec<f32>) {
    let mag = value.abs();
    let log10 = if mag > 0.0 { mag.log10() } else { 0.0 };
    out.extend([
        value.signum() as f32,
        (mag.ln_1p() / 25.0) as f32, // ~unit scale up to e^25
        (log10 - log10.floor()) as f32,
        (1.0 / (1.0 + mag)) as f32,
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_has_64_binary_entries() {
        for v in [0.0, 1.0, -1.5, 3.1e9, f64::MIN_POSITIVE] {
            let bits = float_bits(v);
            assert_eq!(bits.len(), 64);
            assert!(bits.iter().all(|&b| b == 0.0 || b == 1.0));
        }
    }

    #[test]
    fn float_bits_is_injective_on_distinct_values() {
        assert_ne!(float_bits(1.0), float_bits(2.0));
        assert_ne!(float_bits(1.0), float_bits(-1.0));
        assert_ne!(float_bits(0.1), float_bits(0.1000001));
    }

    #[test]
    fn sign_bit_is_first() {
        assert_eq!(float_bits(-1.0)[0], 1.0);
        assert_eq!(float_bits(1.0)[0], 0.0);
    }

    #[test]
    fn zero_encodes_to_zeros() {
        assert!(float_bits(0.0).iter().all(|&b| b == 0.0));
    }

    #[test]
    fn log_features_shape_and_sign() {
        let f = log_features(-100.0);
        assert_eq!(f.len(), LOG_FEATURES);
        assert_eq!(f[0], -1.0);
        assert!(log_features(1e9)[1] > log_features(10.0)[1]);
    }

    #[test]
    fn log_features_are_bounded() {
        for v in [-3.1e9, -1.0, 0.0, 1e-9, 2014.0, 3.1e9] {
            for f in log_features(v) {
                assert!(
                    f.is_finite() && f.abs() <= 1.5,
                    "unbounded feature {f} for {v}"
                );
            }
        }
    }
}
