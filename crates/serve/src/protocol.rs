//! The line-delimited JSON wire protocol, hand-rolled (the workspace has no
//! serde — see DESIGN.md "Offline substrate").
//!
//! Requests, one JSON object per line:
//! ```text
//! {"entity": "person_0", "attr": "birth", "id": 7, "deadline_ms": 250}
//! ```
//! `id` and `deadline_ms` are optional. Responses mirror the id:
//! ```text
//! {"id":7,"ok":true,"value":1957.3,"fallback":false,"retrieved":12,"chains":5,"micros":842}
//! {"id":7,"ok":false,"error":"overloaded"}
//! ```
//!
//! Two admin commands share the line format. An object with a `"reload"`
//! key asks the server to hot-swap its model parameters from a checkpoint
//! on the server's filesystem:
//! ```text
//! {"reload": "runs/model.ckpt", "id": 3}
//! {"id":3,"ok":true,"reloaded":true}
//! {"id":3,"ok":false,"error":"reload: corrupt checkpoint: …"}
//! ```
//! An object with a `"mutate"` key carries one mutation object or an array
//! of them, applied atomically (journaled before visible):
//! ```text
//! {"mutate": {"op":"upsert","entity":"person_0","attr":"birth","value":1957.0}, "id": 4}
//! {"mutate": [{"op":"add_entity","name":"e9"},{"op":"add_edge","head":"e9","rel":"knows","tail":"person_0"}]}
//! {"id":4,"ok":true,"mutated":true,"applied":1,"changed":1}
//! {"id":4,"ok":false,"error":"field \"mutate.value\" must be a finite number"}
//! ```

use cf_kg::Mutation;
use std::collections::HashMap;

/// A parsed JSON value (only what the protocol needs).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64.
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(HashMap<String, Json>),
}

/// A parsed prediction request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Entity name to answer for.
    pub entity: String,
    /// Attribute name to predict.
    pub attr: String,
    /// Client-chosen correlation id, echoed back verbatim.
    pub id: Option<u64>,
    /// Per-request deadline in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// One parsed protocol line: a prediction request or an admin command.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// An ordinary prediction request.
    Predict(Request),
    /// Hot-reload the serving model's parameters from a checkpoint file
    /// (path as seen by the server process).
    Reload {
        /// Checkpoint path on the server's filesystem.
        ckpt: String,
        /// Correlation id, echoed back.
        id: Option<u64>,
    },
    /// Apply a batch of live-graph mutations atomically.
    Mutate {
        /// The mutations, request order.
        muts: Vec<Mutation>,
        /// Correlation id, echoed back.
        id: Option<u64>,
    },
}

/// Parses one line into a [`Command`]. An object carrying a `"reload"` key
/// is the admin reload request; everything else must be a prediction
/// request. Errors are human-readable — the server turns them into
/// structured `ok:false` responses.
pub fn parse_command(line: &str) -> Result<Command, String> {
    let v = parse_json(line)?;
    let Json::Obj(obj) = v else {
        return Err("request must be a JSON object".into());
    };
    if let Some(r) = obj.get("reload") {
        let Json::Str(ckpt) = r else {
            return Err("field \"reload\" must be a string path".into());
        };
        let id = match obj.get("id") {
            None | Some(Json::Null) => None,
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            Some(_) => return Err("field \"id\" must be a non-negative integer".into()),
        };
        return Ok(Command::Reload {
            ckpt: ckpt.clone(),
            id,
        });
    }
    if let Some(m) = obj.get("mutate") {
        let id = parse_id(&obj)?;
        let muts = parse_mutations(m)?;
        return Ok(Command::Mutate { muts, id });
    }
    parse_request(line).map(Command::Predict)
}

fn parse_id(obj: &HashMap<String, Json>) -> Result<Option<u64>, String> {
    match obj.get("id") {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
        Some(_) => Err("field \"id\" must be a non-negative integer".into()),
    }
}

/// Parses the body of a `"mutate"` key: one mutation object or an array of
/// them. Every error names the exact field (`mutate.value`,
/// `mutate[2].head`, …) — admin requests fail with a typed per-field line,
/// never a generic parse failure.
fn parse_mutations(v: &Json) -> Result<Vec<Mutation>, String> {
    match v {
        Json::Obj(_) => Ok(vec![parse_mutation(v, "mutate")?]),
        Json::Arr(items) => {
            if items.is_empty() {
                return Err("field \"mutate\" must not be an empty array".into());
            }
            items
                .iter()
                .enumerate()
                .map(|(i, m)| parse_mutation(m, &format!("mutate[{i}]")))
                .collect()
        }
        _ => Err("field \"mutate\" must be a mutation object or an array of them".into()),
    }
}

fn parse_mutation(v: &Json, path: &str) -> Result<Mutation, String> {
    let Json::Obj(obj) = v else {
        return Err(format!("field \"{path}\" must be a mutation object"));
    };
    let field_str = |k: &str| -> Result<String, String> {
        match obj.get(k) {
            Some(Json::Str(s)) => Ok(s.clone()),
            Some(_) => Err(format!("field \"{path}.{k}\" must be a string")),
            None => Err(format!("missing field \"{path}.{k}\"")),
        }
    };
    let op = field_str("op")?;
    match op.as_str() {
        "upsert" => {
            let entity = field_str("entity")?;
            let attr = field_str("attr")?;
            let value = match obj.get("value") {
                Some(Json::Num(n)) => *n,
                Some(_) => return Err(format!("field \"{path}.value\" must be a finite number")),
                None => return Err(format!("missing field \"{path}.value\"")),
            };
            Ok(Mutation::UpsertNumeric {
                entity,
                attr,
                value,
            })
        }
        "add_entity" => Ok(Mutation::AddEntity {
            name: field_str("name")?,
        }),
        "add_edge" => Ok(Mutation::AddEdge {
            head: field_str("head")?,
            rel: field_str("rel")?,
            tail: field_str("tail")?,
        }),
        other => Err(format!(
            "field \"{path}.op\" must be \"upsert\", \"add_entity\" or \"add_edge\", got {other:?}"
        )),
    }
}

/// Serializes the success response to a reload command.
pub fn reload_ok_response(id: Option<u64>) -> String {
    format!("{{\"id\":{},\"ok\":true,\"reloaded\":true}}", id_json(id))
}

/// Serializes the success response to a mutate command: how many mutations
/// the batch carried and how many actually changed the graph. (Both are
/// pure functions of the request stream, so response bytes stay
/// reproducible across runs and shard counts.)
pub fn mutate_ok_response(id: Option<u64>, applied: usize, changed: usize) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"mutated\":true,\"applied\":{applied},\"changed\":{changed}}}",
        id_json(id)
    )
}

/// Parses one request line. Returns a human-readable error for malformed
/// input — the server turns it into a structured `ok:false` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = parse_json(line)?;
    let Json::Obj(obj) = v else {
        return Err("request must be a JSON object".into());
    };
    let field_str = |k: &str| -> Result<String, String> {
        match obj.get(k) {
            Some(Json::Str(s)) => Ok(s.clone()),
            Some(_) => Err(format!("field {k:?} must be a string")),
            None => Err(format!("missing field {k:?}")),
        }
    };
    let field_u64 = |k: &str| -> Result<Option<u64>, String> {
        match obj.get(k) {
            None | Some(Json::Null) => Ok(None),
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => Ok(Some(*n as u64)),
            Some(_) => Err(format!("field {k:?} must be a non-negative integer")),
        }
    };
    Ok(Request {
        entity: field_str("entity")?,
        attr: field_str("attr")?,
        id: field_u64("id")?,
        deadline_ms: field_u64("deadline_ms")?,
    })
}

/// Serializes a success response.
pub fn ok_response(
    id: Option<u64>,
    value: f64,
    fallback: bool,
    retrieved: usize,
    chains: usize,
    micros: u64,
) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"value\":{},\"fallback\":{},\"retrieved\":{},\"chains\":{},\"micros\":{}}}",
        id_json(id),
        fmt_f64(value),
        fallback,
        retrieved,
        chains,
        micros
    )
}

/// Serializes a failure response (`error` is escaped).
pub fn err_response(id: Option<u64>, error: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":\"{}\"}}",
        id_json(id),
        escape(error)
    )
}

fn id_json(id: Option<u64>) -> String {
    match id {
        Some(i) => i.to_string(),
        None => "null".into(),
    }
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // Bare integers are valid JSON numbers, but keep the float-ness
        // explicit so clients parse a stable type.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".into()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document (trailing non-whitespace is an error).
pub fn parse_json(s: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for entity
                            // names; map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (requests are valid UTF-8:
                    // they arrived through a &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = HashMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_request() {
        let r = parse_request(
            r#"{"entity": "person_0", "attr": "birth", "id": 3, "deadline_ms": 250}"#,
        )
        .unwrap();
        assert_eq!(r.entity, "person_0");
        assert_eq!(r.attr, "birth");
        assert_eq!(r.id, Some(3));
        assert_eq!(r.deadline_ms, Some(250));
    }

    #[test]
    fn optional_fields_default_to_none() {
        let r = parse_request(r#"{"entity":"e","attr":"a"}"#).unwrap();
        assert_eq!(r.id, None);
        assert_eq!(r.deadline_ms, None);
    }

    #[test]
    fn malformed_requests_give_errors_not_panics() {
        for bad in [
            "",
            "not json",
            "{",
            "[1,2]",
            r#"{"entity": 5, "attr": "a"}"#,
            r#"{"attr": "a"}"#,
            r#"{"entity":"e","attr":"a","id":-1}"#,
            r#"{"entity":"e","attr":"a"} extra"#,
            r#"{"entity":"e","attr":"a","deadline_ms":1.5}"#,
        ] {
            assert!(parse_request(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn reload_command_parses_and_responds() {
        let c = parse_command(r#"{"reload": "runs/model.ckpt", "id": 3}"#).unwrap();
        assert_eq!(
            c,
            Command::Reload {
                ckpt: "runs/model.ckpt".into(),
                id: Some(3)
            }
        );
        let c = parse_command(r#"{"reload":"m.ckpt"}"#).unwrap();
        assert!(matches!(c, Command::Reload { id: None, .. }));
        // A prediction line still parses as Predict through the same entry.
        let c = parse_command(r#"{"entity":"e","attr":"a"}"#).unwrap();
        assert!(matches!(c, Command::Predict(_)));
        // Malformed admin lines are errors, not silent predictions.
        assert!(parse_command(r#"{"reload": 5}"#).is_err());
        assert!(parse_command(r#"{"reload":"m.ckpt","id":-1}"#).is_err());

        let ok = reload_ok_response(Some(3));
        let Json::Obj(o) = parse_json(&ok).unwrap() else {
            panic!("not an object")
        };
        assert_eq!(o["ok"], Json::Bool(true));
        assert_eq!(o["reloaded"], Json::Bool(true));
        assert_eq!(o["id"], Json::Num(3.0));
    }

    #[test]
    fn mutate_command_parses_single_and_batch() {
        let c = parse_command(
            r#"{"mutate": {"op":"upsert","entity":"e0","attr":"birth","value":1957.5}, "id": 4}"#,
        )
        .unwrap();
        assert_eq!(
            c,
            Command::Mutate {
                muts: vec![Mutation::UpsertNumeric {
                    entity: "e0".into(),
                    attr: "birth".into(),
                    value: 1957.5
                }],
                id: Some(4)
            }
        );
        let c = parse_command(
            r#"{"mutate": [{"op":"add_entity","name":"e9"},{"op":"add_edge","head":"e9","rel":"knows","tail":"e0"}]}"#,
        )
        .unwrap();
        let Command::Mutate { muts, id } = c else {
            panic!("not a mutate");
        };
        assert_eq!(id, None);
        assert_eq!(muts.len(), 2);
        assert_eq!(muts[0], Mutation::AddEntity { name: "e9".into() });

        let ok = mutate_ok_response(Some(4), 2, 1);
        let Json::Obj(o) = parse_json(&ok).unwrap() else {
            panic!("not an object")
        };
        assert_eq!(o["ok"], Json::Bool(true));
        assert_eq!(o["mutated"], Json::Bool(true));
        assert_eq!(o["applied"], Json::Num(2.0));
        assert_eq!(o["changed"], Json::Num(1.0));
    }

    #[test]
    fn malformed_mutate_bodies_name_the_failing_field() {
        for (line, needle) in [
            (r#"{"mutate": 5}"#, "field \"mutate\" must be"),
            (r#"{"mutate": []}"#, "empty array"),
            (
                r#"{"mutate": {"entity":"e"}}"#,
                "missing field \"mutate.op\"",
            ),
            (
                r#"{"mutate": {"op":"frobnicate"}}"#,
                "field \"mutate.op\" must be",
            ),
            (
                r#"{"mutate": {"op":"upsert","entity":"e","attr":"a"}}"#,
                "missing field \"mutate.value\"",
            ),
            (
                r#"{"mutate": {"op":"upsert","entity":"e","attr":"a","value":"x"}}"#,
                "field \"mutate.value\" must be a finite number",
            ),
            (
                r#"{"mutate": [{"op":"add_edge","head":"h","rel":"r"}]}"#,
                "missing field \"mutate[0].tail\"",
            ),
            (
                r#"{"mutate": [{"op":"add_entity","name":"x"},{"op":"add_entity","name":5}]}"#,
                "field \"mutate[1].name\" must be a string",
            ),
            (
                r#"{"mutate": {"op":"add_entity","name":"x"}, "id": -1}"#,
                "field \"id\" must be a non-negative integer",
            ),
        ] {
            let err = parse_command(line).expect_err(line);
            assert!(err.contains(needle), "{line}: {err:?} missing {needle:?}");
        }
    }

    #[test]
    fn string_escapes_decode() {
        let v = parse_json(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v, Json::Str("a\"b\\c\ndA".into()));
    }

    #[test]
    fn responses_are_reparseable() {
        let ok = ok_response(Some(9), 1957.25, false, 12, 5, 840);
        let Json::Obj(o) = parse_json(&ok).unwrap() else {
            panic!("not an object")
        };
        assert_eq!(o["ok"], Json::Bool(true));
        assert_eq!(o["value"], Json::Num(1957.25));
        assert_eq!(o["id"], Json::Num(9.0));

        let err = err_response(None, "bad \"quote\"\nline");
        let Json::Obj(o) = parse_json(&err).unwrap() else {
            panic!("not an object")
        };
        assert_eq!(o["ok"], Json::Bool(false));
        assert_eq!(o["id"], Json::Null);
        assert_eq!(o["error"], Json::Str("bad \"quote\"\nline".into()));
    }

    #[test]
    fn whole_valued_floats_stay_json_numbers() {
        let ok = ok_response(None, 1930.0, true, 0, 0, 1);
        assert!(ok.contains("\"value\":1930.0"), "{ok}");
        let Json::Obj(o) = parse_json(&ok).unwrap() else {
            panic!("not an object")
        };
        assert_eq!(o["value"], Json::Num(1930.0));
    }

    #[test]
    fn nested_json_values_parse() {
        let v = parse_json(r#"{"a":[1,true,null,{"b":"c"}],"d":-2.5e2}"#).unwrap();
        let Json::Obj(o) = v else { panic!() };
        assert_eq!(o["d"], Json::Num(-250.0));
        let Json::Arr(a) = &o["a"] else { panic!() };
        assert_eq!(a.len(), 4);
    }
}
