//! The inference engine: N worker shards, each owning a full model replica
//! (its own [`ParamStore`]), a bounded micro-batching queue, and a private
//! LRU chain cache — plus entity-hash routing, latency-aware admission
//! control, and hot-reload coordinated across all shards.
//!
//! Requests enter through [`Engine::submit`] (or the synchronous
//! [`Engine::predict`]) and are routed to `shard_of(entity, shards)`: the
//! shard is a pure function of the entity, so a hot entity always lands on
//! the same shard's cache and — because retrieval already uses a per-query
//! deterministic RNG ([`query_rng_seed`]) — the served answer is bitwise
//! identical at *any* shard count. A shard's worker collects up to
//! `max_batch` queued jobs — waiting at most `max_wait_us` after the first —
//! resolves each query's chains through the shard cache, then answers the
//! whole batch with one tape-free
//! [`ChainsFormer::predict_batch_with_chains`] call (bitwise identical to
//! per-query taped prediction, pinned in `crates/core/tests/batch_parity.rs`).
//!
//! Admission is latency-aware: beyond the hard per-shard `queue_cap`, a
//! request carrying a deadline is shed when its *projected queue delay*
//! (shard queue depth × EWMA per-request service time) already exceeds the
//! deadline — see [`admit`]. Shedding at the door beats queueing collapse:
//! under open-loop overload the client gets `overloaded` now instead of a
//! reply that was doomed to miss its deadline after an unbounded wait.
//!
//! [`ParamStore`]: cf_tensor::ParamStore

use crate::cache::{CachedChains, ChainCache};
use crate::metrics::Metrics;
use cf_chains::Query;
use cf_kg::{
    validate_mutation, ChainIndexStore, ChainIndexView, EntityId, GraphStore, GraphView,
    JournalWriter, Mutation, OverlayGraph, StoreError,
};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_tensor::{QuantInferCtx, QuantizedParamStore};
use chainsformer::{ChainsFormer, PredictionDetail, ResolvedQuery};
use std::collections::{HashSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Numeric mode the shard workers run linear layers in.
///
/// `Int8` packs every eligible weight matrix to per-tensor symmetric int8
/// once per replica (at engine construction and again at hot-reload swap
/// time); activations are quantized per batch and accumulation stays i32 →
/// f32, so attention softmax and the numeric heads keep full precision.
/// Accuracy drift vs `F32` is pinned by `crates/core/tests/quant_accuracy.rs`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QuantMode {
    /// Full-precision f32 inference (the default).
    #[default]
    F32,
    /// Int8 weights with f32 activations/accumulate on linear layers.
    Int8,
}

impl std::str::FromStr for QuantMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "f32" => Ok(QuantMode::F32),
            "int8" => Ok(QuantMode::Int8),
            other => Err(format!("unknown quantize mode `{other}` (f32|int8)")),
        }
    }
}

impl std::fmt::Display for QuantMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            QuantMode::F32 => "f32",
            QuantMode::Int8 => "int8",
        })
    }
}

/// Tunables for the serving engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Largest batch a shard worker executes in one forward pass.
    pub max_batch: usize,
    /// Cap on how long a worker accumulates a partial batch after the
    /// first job, microseconds. Accumulation stops earlier the moment
    /// arrivals go quiet (a ~100 µs slice with no new job).
    pub max_wait_us: u64,
    /// Per-shard queue bound; submissions beyond it are shed with
    /// [`ServeError::Overloaded`]. `0` sheds everything (useful in tests).
    pub queue_cap: usize,
    /// Worker threads *per shard*.
    pub workers: usize,
    /// Number of model-replica shards. `0` means auto: the numeric thread
    /// pool's width (`cf_tensor::pool::threads()`), i.e. one replica per
    /// core under the default pool sizing.
    pub shards: usize,
    /// Per-shard chain-cache capacity in queries (`0` disables caching).
    /// Entity-hash routing means a query only ever visits one shard, so
    /// shard caches never duplicate entries.
    pub cache_cap: usize,
    /// Base seed for per-query retrieval RNGs (see [`query_rng_seed`]).
    pub seed: u64,
    /// Numeric inference mode (see [`QuantMode`]).
    pub quantize: QuantMode,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 8,
            max_wait_us: 2000,
            queue_cap: 256,
            workers: 1,
            shards: 1,
            cache_cap: 4096,
            seed: 7,
            quantize: QuantMode::F32,
        }
    }
}

/// Why a request was not answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The request was shed without being enqueued: the shard queue was
    /// full, or its projected queue delay already exceeded the deadline.
    Overloaded,
    /// The request's deadline expired — at submission time (nothing was
    /// enqueued) or before a worker reached it.
    DeadlineExceeded,
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful answer plus serving metadata.
#[derive(Debug)]
pub struct ServedPrediction {
    /// The prediction with its reasoning trace.
    pub detail: PredictionDetail,
    /// Queue + inference latency for this request, microseconds.
    pub micros: u64,
    /// Size of the batch this request was answered in.
    pub batch_size: usize,
    /// Whether the shard's chain cache answered retrieval.
    pub cache_hit: bool,
    /// The shard that answered.
    pub shard: usize,
}

/// The reply every submitted job eventually receives.
pub type Reply = Result<ServedPrediction, ServeError>;

struct Job {
    query: Query,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: mpsc::Sender<Reply>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// One model replica: parameters, queue, cache. The graph and chain index
/// are shared read-only across shards (they are immutable while serving);
/// everything a request *mutates* is shard-private, so shards never contend.
struct Shard {
    /// This shard's model replica. Workers hold the read lock for the
    /// duration of a batch; [`Engine::reload`] takes the write lock only
    /// for the final parameter swap, after the new checkpoint has been
    /// fully validated.
    model: RwLock<ChainsFormer>,
    /// Int8 twin of this replica's weight matrices (`None` in f32 mode).
    /// Written only while the shard's `model` write lock is held ([`
    /// Engine::reload`]), so a worker holding the read lock always sees a
    /// `(params, quant)` pair from the same generation.
    quant: Mutex<Option<Arc<QuantizedParamStore>>>,
    queue: Mutex<QueueState>,
    cond: Condvar,
    cache: Mutex<ChainCache>,
}

/// The mutable serving graph: the immutable base store wrapped in a
/// mutation overlay, plus the bookkeeping that keeps the precomputed chain
/// index honest after mutations.
///
/// Guarded by one engine-wide `RwLock` — the same generation discipline the
/// per-shard model locks use: workers hold the read lock across a batch's
/// chain resolution, [`Engine::mutate`] takes the write lock to apply, so
/// every shard observes each mutation atomically (no batch can see half a
/// mutation, and no stale chain set can be cached after the invalidation
/// pass ran).
struct LiveGraph {
    overlay: OverlayGraph,
    /// Entities whose indexed chains may no longer match the live graph:
    /// the mutation's touched entities expanded by a `max_hops` BFS over
    /// the live adjacency (the CSR row holds both edge directions, so this
    /// covers entities whose chains *traverse* a touched entity). Workers
    /// bypass the chain index for these and walk the overlay instead.
    stale: HashSet<u32>,
    /// Bumped once per applied mutation batch.
    generation: u64,
}

/// Durability state behind [`Engine::mutate`]: the append-only CFJ1 writer
/// plus the optional compaction policy.
struct JournalState {
    writer: JournalWriter,
    compact: Option<CompactionPolicy>,
    /// Set when a commit fails. The file may end in a torn tail that only
    /// [`JournalWriter::open`]'s recovery can truncate safely, so further
    /// appends are refused until restart — they would extend garbage.
    failed: bool,
}

/// Rewrite the canonical CFKG1 store (atomic tmp → fsync → rename) and
/// truncate the journal whenever it accumulates `every` records.
struct CompactionPolicy {
    path: PathBuf,
    every: u64,
}

struct Shared {
    live: RwLock<LiveGraph>,
    journal: Mutex<Option<JournalState>>,
    index: Option<ChainIndexStore>,
    /// The served model's `max_hops` (chain-length bound): the BFS radius
    /// for cache/index invalidation.
    hops: usize,
    cfg: EngineConfig,
    shards: Vec<Shard>,
    metrics: Metrics,
}

/// The resident serving engine. Dropping it drains every shard queue
/// gracefully: already-enqueued jobs are still answered, then workers join.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Read guard over the live serving graph, dereferencing to the
/// [`OverlayGraph`] (a [`GraphView`]) for name resolution and inspection.
/// While held, a concurrent [`Engine::mutate`] blocks — see the caveat on
/// [`Engine::graph`].
pub struct GraphGuard<'a> {
    guard: RwLockReadGuard<'a, LiveGraph>,
}

impl std::ops::Deref for GraphGuard<'_> {
    type Target = OverlayGraph;

    fn deref(&self) -> &OverlayGraph {
        &self.guard.overlay
    }
}

/// What one [`Engine::mutate`] batch did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Mutations in the batch (all validated, journaled, applied).
    pub applied: usize,
    /// How many actually changed the graph (the rest were idempotent
    /// re-applies).
    pub changed: usize,
    /// Entities marked stale for the chain index: the touched set expanded
    /// by the `max_hops` invalidation BFS.
    pub dirty: usize,
    /// Cached chain sets dropped across all shards.
    pub invalidated: usize,
    /// Live-graph generation after this batch.
    pub generation: u64,
    /// Whether this batch triggered a store compaction + journal truncate.
    pub compacted: bool,
}

/// The invalidation neighborhood of a mutation: every entity within `hops`
/// edges of a touched entity, in either direction (adjacency rows hold the
/// forward and the inverse edge, so one BFS covers both).
///
/// Soundness: a chain gathered for source `s` only visits entities
/// reachable from `s` in ≤ `hops` steps, so a cached or indexed chain set
/// for `s` can only be affected by a mutation touching that neighborhood —
/// equivalently, `s` is within `hops` of a touched entity, i.e. in this
/// set. Edges are only ever added, never removed, so running the BFS over
/// the *post-mutation* adjacency can only widen the set (it contains every
/// path that existed pre-mutation).
pub fn dirty_entities(g: &OverlayGraph, touched: &[EntityId], hops: usize) -> HashSet<u32> {
    let mut dirty: HashSet<u32> = touched.iter().map(|e| e.0).collect();
    let mut frontier: Vec<u32> = dirty.iter().copied().collect();
    for _ in 0..hops {
        let mut next = Vec::new();
        for &e in &frontier {
            for edge in g.neighbors(EntityId(e)) {
                if dirty.insert(edge.to.0) {
                    next.push(edge.to.0);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    dirty
}

/// Rejects mutations naming a relation or attribute outside the serving
/// vocabulary. The model's token embedding tables are sized from the
/// training graph's relations and attributes; a chain through an unseen
/// token could not be encoded. Entities are fine — the model is inductive
/// over them.
fn check_vocab(g: &OverlayGraph, m: &Mutation) -> Result<(), String> {
    match m {
        Mutation::UpsertNumeric { attr, .. } => {
            if g.attribute_by_name(attr).is_none() {
                return Err(format!(
                    "attr: \"{attr}\" is not in the serving vocabulary \
                     (new attributes require retraining)"
                ));
            }
        }
        Mutation::AddEdge { rel, .. } => {
            if g.relation_by_name(rel).is_none() {
                return Err(format!(
                    "rel: \"{rel}\" is not in the serving vocabulary \
                     (new relations require retraining)"
                ));
            }
        }
        Mutation::AddEntity { .. } => {}
    }
    Ok(())
}

/// Deterministic retrieval seed for a query: mixes the engine seed with the
/// entity and attribute ids. Keeping the RNG a pure function of the query
/// makes retrieval reproducible regardless of request order, batch
/// composition, shard count, or whether the cache answered — a cache hit
/// returns exactly the chains a fresh retrieval would.
pub fn query_rng_seed(seed: u64, q: Query) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [u64::from(q.entity.0), u64::from(q.attr.0)] {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

/// The routing invariant: which shard serves `entity` at a given shard
/// count. A pure function of the entity id (splitmix64-style finalizer, so
/// consecutive ids spread instead of striping), which is what keeps a hot
/// entity on one cache and makes responses shard-count-independent.
pub fn shard_of(entity: EntityId, shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h = u64::from(entity.0).wrapping_add(0x9E37_79B9_7F4A_7C15);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    (h % shards as u64) as usize
}

/// Outcome of latency-aware admission control for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue the request.
    Accept,
    /// Shed with [`ServeError::Overloaded`]: queue full, or the projected
    /// queue delay already exceeds the deadline.
    ShedOverloaded,
    /// Shed with [`ServeError::DeadlineExceeded`]: the deadline had already
    /// expired at submission time.
    ShedExpired,
}

/// Projected queue delay for a request arriving at a shard whose queue
/// holds `depth` jobs: every queued job must be served first, at the
/// EWMA per-request service time. Saturating — a huge backlog times a huge
/// estimate must still shed, not wrap.
pub fn projected_delay_us(depth: usize, ewma_service_us: u64) -> u64 {
    (depth as u64).saturating_mul(ewma_service_us)
}

/// The admission decision, pure so the boundary cases are unit-pinnable:
///
/// - `depth >= queue_cap` always sheds (`ShedOverloaded`) — the hard bound
///   survives from the pre-sharded engine;
/// - a deadline with zero microseconds remaining sheds as `ShedExpired`
///   without enqueueing (the worker-side check still catches deadlines
///   that expire while queued);
/// - otherwise shed iff [`projected_delay_us`] *strictly* exceeds the
///   remaining deadline. An empty queue projects zero delay and always
///   admits; a stale/unwarmed EWMA (0 µs) also projects zero — admission
///   then degrades to the depth bound until the first batch re-warms it,
///   which errs toward serving, never toward spurious shedding;
/// - deadline-free requests are only subject to the depth bound.
pub fn admit(
    depth: usize,
    queue_cap: usize,
    ewma_service_us: u64,
    deadline_us: Option<u64>,
) -> Admission {
    if depth >= queue_cap {
        return Admission::ShedOverloaded;
    }
    let Some(deadline_us) = deadline_us else {
        return Admission::Accept;
    };
    if deadline_us == 0 {
        return Admission::ShedExpired;
    }
    if projected_delay_us(depth, ewma_service_us) > deadline_us {
        Admission::ShedOverloaded
    } else {
        Admission::Accept
    }
}

/// Folds one per-request service-time sample into the shard's EWMA cell
/// (α = 1/4). The first sample is adopted whole; samples are clamped to
/// ≥ 1 µs so a warmed estimate can never decay back to the "stale" zero.
fn update_ewma(cell: &AtomicU64, sample_us: u64) {
    let sample = sample_us.max(1);
    let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |old| {
        Some(if old == 0 {
            sample
        } else {
            (3 * old + sample) / 4
        })
    });
}

impl Engine {
    /// Takes ownership of the model and (visible) graph and spawns the
    /// shard workers. Every shard beyond the first receives a clone of the
    /// model (its own `ParamStore`).
    pub fn new(model: ChainsFormer, graph: impl Into<GraphStore>, cfg: EngineConfig) -> Self {
        Self::new_with_index(model, graph, None, cfg)
    }

    /// [`Self::new`], optionally serving retrieval from a precomputed chain
    /// index (`cfkg index`). When an index is given it must have been built
    /// from (a graph bitwise-equal to) `graph`; workers then answer cache
    /// misses by index lookup instead of random walks. The index is shared
    /// read-only across all shards.
    pub fn new_with_index(
        model: ChainsFormer,
        graph: impl Into<GraphStore>,
        index: Option<ChainIndexStore>,
        cfg: EngineConfig,
    ) -> Self {
        let graph = graph.into();
        if let Some(ix) = &index {
            ix.check_matches(&graph)
                .expect("chain index does not match the serving graph");
        }
        let hops = model.cfg.setting.max_hops;
        let nshards = if cfg.shards == 0 {
            cf_tensor::pool::threads().max(1)
        } else {
            cfg.shards
        };
        let workers_per_shard = cfg.workers.max(1);
        let mut shards = Vec::with_capacity(nshards);
        // One clone per extra shard; the original model lands in the last
        // slot so a single-shard engine never pays for a copy.
        let mut replicas = VecDeque::with_capacity(nshards);
        for _ in 1..nshards {
            replicas.push_back(model.clone());
        }
        replicas.push_back(model);
        for replica in replicas {
            // Each shard quantizes its own replica: QuantizedParamStore is a
            // pure function of the parameter bits, so all twins are bitwise
            // identical and responses stay shard-count-invariant.
            let quant = (cfg.quantize == QuantMode::Int8)
                .then(|| Arc::new(QuantizedParamStore::from_store(&replica.params)));
            shards.push(Shard {
                model: RwLock::new(replica),
                quant: Mutex::new(quant),
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                cond: Condvar::new(),
                cache: Mutex::new(ChainCache::new(cfg.cache_cap)),
            });
        }
        let cfg = EngineConfig {
            shards: nshards,
            ..cfg
        };
        let metrics = Metrics::with_shards(nshards);
        metrics.set_quantize_int8(cfg.quantize == QuantMode::Int8);
        let shared = Arc::new(Shared {
            metrics,
            live: RwLock::new(LiveGraph {
                overlay: OverlayGraph::new(graph),
                stale: HashSet::new(),
                generation: 0,
            }),
            journal: Mutex::new(None),
            index,
            hops,
            cfg,
            shards,
        });
        let mut handles = Vec::with_capacity(nshards * workers_per_shard);
        for s in 0..nshards {
            for w in 0..workers_per_shard {
                let shared = Arc::clone(&shared);
                let h = std::thread::Builder::new()
                    .name(format!("cf-serve-s{s}w{w}"))
                    .spawn(move || worker_loop(&shared, s))
                    .expect("spawn shard worker");
                handles.push(h);
            }
        }
        Engine {
            shared,
            workers: handles,
        }
    }

    /// The resolved shard count (after `shards: 0` auto-sizing).
    pub fn shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Routes and enqueues a query; the reply arrives on the returned
    /// channel. Sheds immediately (without enqueueing) when the shard queue
    /// is at capacity, when the deadline has already expired, or when the
    /// shard's projected queue delay exceeds the deadline (see [`admit`]).
    pub fn submit(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<Reply>, ServeError> {
        let m = &self.shared.metrics;
        m.requests.fetch_add(1, Ordering::Relaxed);
        let s = shard_of(query.entity, self.shared.shards.len());
        m.shard(s).requests.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shared.shards[s];
        let (tx, rx) = mpsc::channel();
        let mut q = shard.queue.lock().expect("queue poisoned");
        if q.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        let ewma = m.shard(s).ewma_service_us.load(Ordering::Relaxed);
        let deadline_us = deadline.map(|d| d.as_micros().min(u128::from(u64::MAX)) as u64);
        match admit(q.jobs.len(), self.shared.cfg.queue_cap, ewma, deadline_us) {
            Admission::Accept => {}
            Admission::ShedOverloaded => {
                m.shed.fetch_add(1, Ordering::Relaxed);
                m.shard(s).shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::Overloaded);
            }
            Admission::ShedExpired => {
                m.deadline_missed.fetch_add(1, Ordering::Relaxed);
                m.shard(s).shed.fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::DeadlineExceeded);
            }
        }
        let now = Instant::now();
        q.jobs.push_back(Job {
            query,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            reply: tx,
        });
        drop(q);
        shard.cond.notify_one();
        Ok(rx)
    }

    /// Synchronous prediction: submit and wait for the answer.
    pub fn predict(&self, query: Query) -> Reply {
        let rx = self.submit(query, None)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// The live graph the engine serves against (base store + mutation
    /// overlay), behind a read guard.
    ///
    /// **Do not hold the guard across [`Self::submit`] / [`Self::predict`]
    /// and the reply wait**: a concurrent [`Self::mutate`] queued on the
    /// write lock can make the workers' own read acquisition wait behind
    /// it, and the workers are what answer the reply you are blocked on.
    /// Resolve names, drop the guard, then submit.
    pub fn graph(&self) -> GraphGuard<'_> {
        GraphGuard {
            guard: self.shared.live.read().expect("live graph poisoned"),
        }
    }

    /// Generation counter of the live graph (bumped per applied mutation
    /// batch; 0 until the first mutation).
    pub fn graph_generation(&self) -> u64 {
        self.shared
            .live
            .read()
            .expect("live graph poisoned")
            .generation
    }

    /// Applies a batch of live-graph mutations: validate every mutation,
    /// append + fsync them to the journal (when one is attached) **before**
    /// they become visible, then apply to the overlay, mark the touched
    /// `max_hops` neighborhood stale for the chain index, and drop every
    /// cached chain set that could traverse a mutated entity — all under
    /// the live write lock, so every shard observes the mutation
    /// atomically.
    ///
    /// All-or-nothing: any validation or journal error leaves the live
    /// graph untouched. Mutations naming a relation or attribute absent
    /// from the serving vocabulary are rejected here (the model's embedding
    /// tables are sized at training time; retrieval through an unseen
    /// relation token could not be encoded). New *entities* are fine — the
    /// model is inductive over entities.
    ///
    /// Counted in `cf_serve_mutations_ok_total` /
    /// `cf_serve_mutations_rejected_total`.
    pub fn mutate(&self, muts: &[Mutation]) -> Result<MutationOutcome, String> {
        let result = self.mutate_inner(muts);
        let m = &self.shared.metrics;
        match &result {
            Ok(_) => m.mutations_ok.fetch_add(1, Ordering::Relaxed),
            Err(_) => m.mutations_rejected.fetch_add(1, Ordering::Relaxed),
        };
        result
    }

    fn mutate_inner(&self, muts: &[Mutation]) -> Result<MutationOutcome, String> {
        for (i, mu) in muts.iter().enumerate() {
            validate_mutation(mu).map_err(|e| format!("mutation {i}: {e}"))?;
        }
        {
            let live = self.shared.live.read().expect("live graph poisoned");
            for (i, mu) in muts.iter().enumerate() {
                check_vocab(&live.overlay, mu).map_err(|e| format!("mutation {i}: {e}"))?;
            }
        }
        // Durability before visibility: a mutation the journal has not
        // fsynced must not influence any answer (lock order: journal →
        // live.write → shard caches; workers take live.read → model.read;
        // no path takes them in the opposite order).
        let mut journal = self.shared.journal.lock().expect("journal poisoned");
        if let Some(js) = journal.as_mut() {
            if js.failed {
                return Err(
                    "journal: an earlier commit failed; mutations are disabled until restart"
                        .into(),
                );
            }
            for mu in muts {
                js.writer.append(mu);
            }
            if let Err(e) = js.writer.commit() {
                js.failed = true;
                return Err(format!("journal: {e}"));
            }
        }
        let mut live = self.shared.live.write().expect("live graph poisoned");
        let mut changed = 0usize;
        let mut touched: Vec<EntityId> = Vec::new();
        let mut seen = HashSet::new();
        for mu in muts {
            let out = live.overlay.apply(mu);
            changed += usize::from(out.changed);
            for e in out.touched {
                if seen.insert(e.0) {
                    touched.push(e);
                }
            }
        }
        let dirty = dirty_entities(&live.overlay, &touched, self.shared.hops);
        live.stale.extend(dirty.iter().copied());
        live.generation += 1;
        let generation = live.generation;
        let mut invalidated = 0usize;
        for shard in &self.shared.shards {
            invalidated += shard
                .cache
                .lock()
                .expect("cache poisoned")
                .invalidate_entities(&dirty);
        }
        // Compaction under both locks: the canonical rewrite and the
        // journal truncation stay atomic with respect to other mutations.
        // A crash *between* the two is harmless — replaying the surviving
        // journal onto the compacted store is a no-op (idempotence).
        let mut compacted = false;
        if let Some(js) = journal.as_mut() {
            if let Some(pol) = &js.compact {
                if pol.every > 0 && js.writer.records() >= pol.every {
                    live.overlay
                        .compact_to(&pol.path)
                        .map_err(|e| format!("compaction: {e}"))?;
                    js.writer
                        .truncate_all()
                        .map_err(|e| format!("journal truncate: {e}"))?;
                    compacted = true;
                }
            }
        }
        Ok(MutationOutcome {
            applied: muts.len(),
            changed,
            dirty: dirty.len(),
            invalidated,
            generation,
            compacted,
        })
    }

    /// Attaches a CFJ1 mutation journal, replaying any mutations it already
    /// holds onto the live graph (with the same stale-marking and cache
    /// invalidation a fresh [`Self::mutate`] performs — the chain index was
    /// built against the pristine base, so replayed neighborhoods must
    /// bypass it too). A torn tail left by a crash mid-append is truncated
    /// by [`JournalWriter::open`]; returns how many committed mutations
    /// were replayed.
    ///
    /// With `compaction = Some((path, every))`, every `every` journaled
    /// records the live graph is compacted to a canonical CFKG1 at `path`
    /// and the journal is truncated.
    pub fn attach_journal(
        &self,
        path: impl AsRef<Path>,
        compaction: Option<(PathBuf, u64)>,
    ) -> Result<usize, StoreError> {
        let mut journal = self.shared.journal.lock().expect("journal poisoned");
        let (writer, recovery) = JournalWriter::open(path)?;
        let replayed = recovery.mutations.len();
        if replayed > 0 {
            let mut live = self.shared.live.write().expect("live graph poisoned");
            for (i, mu) in recovery.mutations.iter().enumerate() {
                check_vocab(&live.overlay, mu).map_err(|what| StoreError::Corrupt {
                    section: "journal",
                    what: format!("record {i}: {what}"),
                })?;
                let touched = live.overlay.apply(mu).touched;
                let dirty = dirty_entities(&live.overlay, &touched, self.shared.hops);
                live.stale.extend(dirty.iter().copied());
                for shard in &self.shared.shards {
                    shard
                        .cache
                        .lock()
                        .expect("cache poisoned")
                        .invalidate_entities(&dirty);
                }
            }
            live.generation += 1;
        }
        *journal = Some(JournalState {
            writer,
            compact: compaction.map(|(path, every)| CompactionPolicy { path, every }),
            failed: false,
        });
        Ok(replayed)
    }

    /// Compacts the live graph (base + overlay) to a canonical CFKG1 file
    /// via the store's atomic tmp → fsync → rename path, then truncates the
    /// attached journal (if any) — its mutations are now in the base.
    pub fn compact_to(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        let mut journal = self.shared.journal.lock().expect("journal poisoned");
        let live = self.shared.live.read().expect("live graph poisoned");
        live.overlay.compact_to(path)?;
        if let Some(js) = journal.as_mut() {
            js.writer.truncate_all()?;
        }
        Ok(())
    }

    /// Shard 0's model replica (a read guard: drops cheaply, blocks a
    /// concurrent [`Self::reload`]'s swap of that shard while held). All
    /// replicas carry identical parameters outside the brief window of a
    /// coordinated reload; use [`Self::model_of_shard`] to inspect others.
    pub fn model(&self) -> RwLockReadGuard<'_, ChainsFormer> {
        self.model_of_shard(0)
    }

    /// Shard `i`'s model replica.
    pub fn model_of_shard(&self, i: usize) -> RwLockReadGuard<'_, ChainsFormer> {
        self.shared.shards[i].model.read().expect("model poisoned")
    }

    /// Hot-swaps every shard's learnable parameters from a checkpoint file
    /// without restarting the engine or dropping queued work.
    ///
    /// The reload is **all-or-nothing across shards**: the checkpoint's
    /// magic, per-section CRCs, and every parameter name and shape are
    /// validated *once*, off the request path, into a staged clone of a
    /// live [`ParamStore`] — workers keep answering under their read locks
    /// the whole time. Only after the entire file has been accepted are
    /// per-shard copies staged and swapped in, shard by shard, under each
    /// shard's brief write lock (between that shard's batches, never
    /// mid-forward). Every failure mode lives in the validation phase,
    /// before the first swap; on any error the staged clone is dropped and
    /// all replicas keep their previous parameters — rollback is implicit
    /// and no shard can be left on a different generation than its peers.
    ///
    /// Shard caches stay valid across a reload: retrieval uses the frozen
    /// filter embeddings and per-query RNG, not the swapped parameters, so
    /// cached chains are exactly what a fresh retrieval would produce.
    ///
    /// Counted in `cf_serve_reloads_ok_total` / `cf_serve_reloads_rejected_total`
    /// and the shard-labeled `cf_serve_shard_reloads_*` counters.
    ///
    /// [`ParamStore`]: cf_tensor::ParamStore
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<(), cf_tensor::CheckpointError> {
        let result = (|| {
            let mut staged = self.shared.shards[0]
                .model
                .read()
                .expect("model poisoned")
                .params
                .clone();
            let f = std::fs::File::open(path).map_err(cf_tensor::CheckpointError::Io)?;
            cf_tensor::load_params(&mut staged, std::io::BufReader::new(f))?;
            // Validation is complete: nothing below this line can fail.
            // Stage one copy per shard up front, then swap them in; the
            // last shard takes `staged` itself.
            let n = self.shared.shards.len();
            let mut copies: Vec<cf_tensor::ParamStore> = (1..n).map(|_| staged.clone()).collect();
            copies.push(staged);
            let quantize = self.shared.cfg.quantize == QuantMode::Int8;
            for (shard, params) in self.shared.shards.iter().zip(copies) {
                // Quantize the staged replica before taking the write lock
                // (packing is the expensive part); swap the int8 twin while
                // the lock is held so workers never see params from one
                // generation paired with quantized weights from another.
                let quant = quantize.then(|| Arc::new(QuantizedParamStore::from_store(&params)));
                let mut model = shard.model.write().expect("model poisoned");
                model.params = params;
                *shard.quant.lock().expect("quant poisoned") = quant;
            }
            Ok(())
        })();
        let m = &self.shared.metrics;
        match &result {
            Ok(()) => {
                m.reloads_ok.fetch_add(1, Ordering::Relaxed);
                for s in 0..self.shared.shards.len() {
                    m.shard(s).reloads_ok.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                m.reloads_rejected.fetch_add(1, Ordering::Relaxed);
                for s in 0..self.shared.shards.len() {
                    m.shard(s).reloads_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        result
    }

    /// Live serving metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Renders the metrics text block (the `GET /metrics` payload).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render()
    }

    /// Current number of cached chain sets, summed across shards (shards
    /// never duplicate an entry: a query routes to exactly one shard).
    pub fn cache_len(&self) -> usize {
        self.shared
            .shards
            .iter()
            .map(|s| s.cache.lock().expect("cache poisoned").len())
            .sum()
    }

    /// Graceful shutdown: already-enqueued jobs are answered, new
    /// submissions are refused, workers join. (Equivalent to dropping the
    /// engine; provided for explicitness at call sites.)
    pub fn shutdown(self) {}
}

impl Drop for Engine {
    fn drop(&mut self) {
        for shard in &self.shared.shards {
            let mut q = shard.queue.lock().expect("queue poisoned");
            q.shutdown = true;
            drop(q);
            shard.cond.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A worker's reusable inference arena: the f32 context or its quantized
/// variant, fixed for the engine's lifetime by [`EngineConfig::quantize`].
enum WorkerCtx {
    F32(cf_tensor::InferCtx),
    Int8(QuantInferCtx),
}

fn worker_loop(shared: &Shared, shard_ix: usize) {
    // One inference context per worker, reused across batches: after the
    // first batch its value arena and the thread's tensor buffer pool are
    // warm, so steady-state forwards never touch the global allocator.
    let mut ctx = match shared.cfg.quantize {
        QuantMode::F32 => WorkerCtx::F32(cf_tensor::InferCtx::new()),
        QuantMode::Int8 => WorkerCtx::Int8(QuantInferCtx::new()),
    };
    loop {
        let batch = collect_batch(shared, shard_ix);
        if batch.is_empty() {
            return; // shutdown requested and the shard queue is drained
        }
        process_batch(shared, shard_ix, batch, &mut ctx);
    }
}

/// Blocks for work on one shard, then micro-batches: grabs every queued job
/// up to `max_batch`, waiting at most `max_wait_us` after the first for
/// stragglers. Returns an empty batch only on drained shutdown.
fn collect_batch(shared: &Shared, shard_ix: usize) -> Vec<Job> {
    let cfg = &shared.cfg;
    let shard = &shared.shards[shard_ix];
    let mut q = shard.queue.lock().expect("queue poisoned");
    while q.jobs.is_empty() {
        if q.shutdown {
            return Vec::new();
        }
        q = shard.cond.wait(q).expect("queue poisoned");
    }
    let mut batch = Vec::with_capacity(cfg.max_batch.max(1));
    let first_at = Instant::now();
    let budget = Duration::from_micros(cfg.max_wait_us);
    // Straggler policy: `max_wait_us` caps how long a partial batch may
    // accumulate, but we stop as soon as arrivals go quiet — one short
    // slice with no new job means the remaining clients are busy or
    // absent, and waiting out the full window would only add latency
    // without growing the batch.
    let quiet = budget.min(Duration::from_micros(100));
    loop {
        while batch.len() < cfg.max_batch.max(1) {
            match q.jobs.pop_front() {
                Some(j) => batch.push(j),
                None => break,
            }
        }
        if batch.len() >= cfg.max_batch.max(1) || q.shutdown {
            break;
        }
        if first_at.elapsed() >= budget {
            break;
        }
        let (guard, _timeout) = shard.cond.wait_timeout(q, quiet).expect("queue poisoned");
        q = guard;
        if q.jobs.is_empty() && !q.shutdown {
            break;
        }
    }
    batch
}

fn process_batch(shared: &Shared, shard_ix: usize, batch: Vec<Job>, ctx: &mut WorkerCtx) {
    let m = &shared.metrics;
    let shard = &shared.shards[shard_ix];
    m.batch_size.record(batch.len() as u64);
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline.is_some_and(|d| now >= d) {
            m.deadline_missed.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    // One read guard for the whole batch: every job in it is answered by
    // the same model generation, and a concurrent reload's write lock
    // lands between batches, never mid-forward.
    let model = shard.model.read().expect("model poisoned");
    let service_start = Instant::now();

    // The live-graph read guard spans the whole resolve phase (cache
    // lookup → retrieval → cache insert), so a concurrent mutate's write
    // lock — which applies the mutation *and* invalidates the caches —
    // cannot interleave with it: chains cached here are consistent with
    // the graph generation this batch retrieved against.
    let live_graph = shared.live.read().expect("live graph poisoned");

    // Resolve every job's chains through the shard cache. The cache lock is
    // only held for the lookup/insert, never across retrieval of *other*
    // queries' chains in the same batch.
    let resolved: Vec<(Arc<CachedChains>, bool)> = live
        .iter()
        .map(|job| {
            let hit = shard.cache.lock().expect("cache poisoned").get(job.query);
            match hit {
                Some(c) => {
                    m.cache_hits.fetch_add(1, Ordering::Relaxed);
                    m.shard(shard_ix).cache_hits.fetch_add(1, Ordering::Relaxed);
                    (c, true)
                }
                None => {
                    m.cache_misses.fetch_add(1, Ordering::Relaxed);
                    m.shard(shard_ix)
                        .cache_misses
                        .fetch_add(1, Ordering::Relaxed);
                    let mut rng = StdRng::seed_from_u64(query_rng_seed(shared.cfg.seed, job.query));
                    // The precomputed chain index answers only entities it
                    // was built for whose `max_hops` neighborhood is still
                    // pristine; mutated neighborhoods (and entities added
                    // after the build) walk the live overlay instead. The
                    // bypass predicate is a pure function of the query and
                    // the mutation history — shard-count independent, so
                    // responses stay bitwise-identical at every shard count.
                    let ix = shared.index.as_ref().filter(|ix| {
                        (job.query.entity.0 as usize) < ix.num_entities()
                            && !live_graph.stale.contains(&job.query.entity.0)
                    });
                    let (toc, retrieved) = match ix {
                        Some(ix) => model.gather_chains_indexed(ix, job.query, &mut rng),
                        None => model.gather_chains(&live_graph.overlay, job.query, &mut rng),
                    };
                    let entry = Arc::new(CachedChains {
                        chains: toc.chains,
                        retrieved,
                    });
                    shard
                        .cache
                        .lock()
                        .expect("cache poisoned")
                        .put(job.query, Arc::clone(&entry));
                    (entry, false)
                }
            }
        })
        .collect();
    drop(live_graph);

    let jobs_view: Vec<ResolvedQuery<'_>> = live
        .iter()
        .zip(&resolved)
        .map(|(job, (c, _))| (job.query, c.chains.as_slice(), c.retrieved))
        .collect();
    let details = match ctx {
        WorkerCtx::F32(c) => model.predict_batch_with_chains_in(&jobs_view, c),
        WorkerCtx::Int8(c) => {
            // Re-adopt the shard's int8 twin every batch (an Arc clone):
            // read under the model read lock, so a concurrent reload can
            // never hand this batch a stale quantized generation.
            if let Some(q) = shard.quant.lock().expect("quant poisoned").clone() {
                c.set_weights(q);
            }
            model.predict_batch_with_chains_in(&jobs_view, c)
        }
    };
    drop(model);

    // Feed admission control: per-request service time (retrieval +
    // forward, amortized over the batch) folded into this shard's EWMA.
    let per_request_us = (service_start.elapsed().as_micros() as u64) / (live.len() as u64);
    update_ewma(&m.shard(shard_ix).ewma_service_us, per_request_us);

    let batch_size = live.len();
    for ((job, detail), (_, cache_hit)) in live.into_iter().zip(details).zip(&resolved) {
        if detail.used_fallback {
            m.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        m.ok.fetch_add(1, Ordering::Relaxed);
        let micros = job.enqueued.elapsed().as_micros() as u64;
        m.latency_us.record(micros);
        let _ = job.reply.send(Ok(ServedPrediction {
            detail,
            micros,
            batch_size,
            cache_hit: *cache_hit,
            shard: shard_ix,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use chainsformer::ChainsFormerConfig;

    fn engine(cfg: EngineConfig) -> (Engine, Vec<Query>) {
        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        let queries = split
            .test
            .iter()
            .take(8)
            .map(|t| Query {
                entity: t.entity,
                attr: t.attr,
            })
            .collect();
        (Engine::new(model, visible, cfg), queries)
    }

    #[test]
    fn predict_answers_and_counts_metrics() {
        let (e, queries) = engine(EngineConfig::default());
        let served = e.predict(queries[0]).expect("prediction");
        assert!(served.detail.value.is_finite());
        assert!(served.batch_size >= 1);
        assert_eq!(e.metrics().requests.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().ok.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().latency_us.count(), 1);
        // The request is attributed to exactly one shard's counters.
        let shard_requests: u64 = (0..e.shards())
            .map(|s| e.metrics().shard(s).requests.load(Ordering::Relaxed))
            .sum();
        assert_eq!(shard_requests, 1);
        e.shutdown();
    }

    #[test]
    fn cache_hit_repeats_the_same_answer_bitwise() {
        let (e, queries) = engine(EngineConfig::default());
        let q = queries[0];
        let first = e.predict(q).expect("first");
        let second = e.predict(q).expect("second");
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.shard, second.shard, "same entity must route stably");
        assert_eq!(first.detail.value.to_bits(), second.detail.value.to_bits());
        assert_eq!(e.metrics().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().cache_misses.load(Ordering::Relaxed), 1);
        e.shutdown();
    }

    #[test]
    fn engine_matches_direct_model_prediction() {
        // The served answer must equal predicting directly with the same
        // per-query deterministic RNG — serving adds no numeric drift.
        let (e, queries) = engine(EngineConfig::default());
        for &q in queries.iter().take(4) {
            let served = e.predict(q).expect("served");
            let mut rng = StdRng::seed_from_u64(query_rng_seed(7, q));
            let direct = e.model().predict(&*e.graph(), q, &mut rng);
            assert_eq!(served.detail.value.to_bits(), direct.value.to_bits());
            assert_eq!(served.detail.used_fallback, direct.used_fallback);
            assert_eq!(served.detail.retrieved, direct.retrieved);
        }
        e.shutdown();
    }

    #[test]
    fn multi_shard_engine_answers_and_balances() {
        let (e, queries) = engine(EngineConfig {
            shards: 4,
            ..EngineConfig::default()
        });
        assert_eq!(e.shards(), 4);
        for &q in &queries {
            let served = e.predict(q).expect("prediction");
            assert_eq!(served.shard, shard_of(q.entity, 4));
        }
        let m = e.metrics();
        let total: u64 = (0..4)
            .map(|s| m.shard(s).requests.load(Ordering::Relaxed))
            .sum();
        assert_eq!(total, queries.len() as u64);
        e.shutdown();
    }

    #[test]
    fn zero_capacity_queue_sheds_everything() {
        let (e, queries) = engine(EngineConfig {
            queue_cap: 0,
            ..EngineConfig::default()
        });
        match e.submit(queries[0], None) {
            Err(ServeError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(e.metrics().shed.load(Ordering::Relaxed), 1);
        let shard_shed: u64 = (0..e.shards())
            .map(|s| e.metrics().shard(s).shed.load(Ordering::Relaxed))
            .sum();
        assert_eq!(shard_shed, 1);
        e.shutdown();
    }

    #[test]
    fn expired_deadline_is_shed_at_the_door() {
        // A deadline with nothing left is refused at submit time — nothing
        // is enqueued, no worker wakes, the caller learns immediately.
        let (e, queries) = engine(EngineConfig::default());
        match e.submit(queries[0], Some(Duration::ZERO)) {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.metrics().deadline_missed.load(Ordering::Relaxed), 1);
        e.shutdown();
    }

    #[test]
    fn projected_delay_sheds_when_queue_implies_a_miss() {
        // Pre-warm the EWMA by serving once, then flood a shard with
        // deadline-free work and submit a deadlined request behind it: the
        // projected delay (depth × EWMA) must shed it at the door.
        let (e, queries) = engine(EngineConfig {
            max_batch: 1,
            max_wait_us: 0,
            cache_cap: 0,
            ..EngineConfig::default()
        });
        let q = queries[0];
        e.predict(q).expect("warm the EWMA");
        let s = shard_of(q.entity, e.shards());
        let ewma = e.metrics().shard(s).ewma_service_us.load(Ordering::Relaxed);
        assert!(ewma > 0, "EWMA must be warm after a served batch");
        // Enough queued work that depth × ewma far exceeds 1 µs.
        let receivers: Vec<_> = (0..64).filter_map(|_| e.submit(q, None).ok()).collect();
        assert!(!receivers.is_empty());
        let mut shed = false;
        for _ in 0..64 {
            match e.submit(q, Some(Duration::from_micros(1))) {
                Err(ServeError::Overloaded) => {
                    shed = true;
                    break;
                }
                Err(ServeError::DeadlineExceeded) => unreachable!("1 µs is not 0"),
                _ => {}
            }
        }
        assert!(shed, "projected queue delay never shed a doomed request");
        drop(receivers);
        e.shutdown();
    }

    #[test]
    fn shutdown_answers_already_enqueued_jobs() {
        let (e, queries) = engine(EngineConfig::default());
        let receivers: Vec<_> = queries
            .iter()
            .take(4)
            .map(|&q| e.submit(q, None).expect("submit"))
            .collect();
        e.shutdown();
        for rx in receivers {
            let reply = rx.recv().expect("reply channel closed without answer");
            assert!(reply.is_ok(), "enqueued job dropped: {reply:?}");
        }
    }

    #[test]
    fn reload_hot_swaps_all_shards_and_rolls_back_on_corruption() {
        fn param_bits(ps: &cf_tensor::ParamStore) -> Vec<u32> {
            ps.iter()
                .flat_map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()))
                .collect()
        }
        let dir = std::env::temp_dir().join(format!("cf_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model_a =
            ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        // Same architecture (shapes come from the graph + config), fresh
        // weights: exactly what a retraining run hands to a live server.
        let mut rng_b = StdRng::seed_from_u64(9001);
        let model_b = ChainsFormer::new(
            &visible,
            &split.train,
            ChainsFormerConfig::tiny(),
            &mut rng_b,
        );
        let a_bits = param_bits(&model_a.params);
        let b_bits = param_bits(&model_b.params);
        assert_ne!(a_bits, b_bits, "seeds must give distinct weights");
        let a_ckpt = dir.join("a.ckpt");
        let b_ckpt = dir.join("b.ckpt");
        model_a.save_params_to(&a_ckpt).unwrap();
        model_b.save_params_to(&b_ckpt).unwrap();

        let queries: Vec<Query> = split
            .test
            .iter()
            .take(8)
            .map(|t| Query {
                entity: t.entity,
                attr: t.attr,
            })
            .collect();
        let e = Engine::new(
            model_a,
            visible,
            EngineConfig {
                shards: 2,
                ..EngineConfig::default()
            },
        );
        let baseline: Vec<u64> = queries
            .iter()
            .map(|&q| e.predict(q).expect("baseline").detail.value.to_bits())
            .collect();

        // A good reload swaps every shard to the new checkpoint.
        e.reload(&b_ckpt).expect("valid checkpoint accepted");
        for s in 0..e.shards() {
            assert_eq!(
                param_bits(&e.model_of_shard(s).params),
                b_bits,
                "shard {s} missed the coordinated swap"
            );
        }

        // A truncated checkpoint is rejected and every shard stays on B —
        // no shard can land on a different generation than its peers.
        let full = std::fs::read(&b_ckpt).unwrap();
        let bad_ckpt = dir.join("bad.ckpt");
        std::fs::write(&bad_ckpt, &full[..full.len() / 2]).unwrap();
        e.reload(&bad_ckpt)
            .expect_err("truncated checkpoint accepted");
        for s in 0..e.shards() {
            assert_eq!(
                param_bits(&e.model_of_shard(s).params),
                b_bits,
                "rejected reload tainted shard {s}"
            );
        }
        e.reload(dir.join("missing.ckpt"))
            .expect_err("missing file accepted");

        // Reloading A back restores the original served answers bitwise —
        // through the shard caches, which stay valid across reloads.
        e.reload(&a_ckpt).expect("original checkpoint accepted");
        for (&q, &want) in queries.iter().zip(&baseline) {
            let served = e.predict(q).expect("post-reload predict");
            assert_eq!(served.detail.value.to_bits(), want);
        }

        assert_eq!(e.metrics().reloads_ok.load(Ordering::Relaxed), 2);
        assert_eq!(e.metrics().reloads_rejected.load(Ordering::Relaxed), 2);
        let text = e.metrics_text();
        assert!(text.contains("cf_serve_reloads_ok_total 2"), "{text}");
        assert!(text.contains("cf_serve_reloads_rejected_total 2"), "{text}");
        assert!(
            text.contains("cf_serve_shard_reloads_ok_total{shard=\"1\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cf_serve_shard_reloads_rejected_total{shard=\"0\"} 2"),
            "{text}"
        );
        e.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quantized_engine_serves_and_reports_its_mode() {
        let (e, queries) = engine(EngineConfig {
            quantize: QuantMode::Int8,
            ..EngineConfig::default()
        });
        for &q in queries.iter().take(4) {
            let served = e.predict(q).expect("quantized prediction");
            assert!(served.detail.value.is_finite());
        }
        let text = e.metrics_text();
        assert!(
            text.contains("cf_serve_quantize_mode{mode=\"int8\"} 1"),
            "{text}"
        );
        e.shutdown();

        let (e, _) = engine(EngineConfig::default());
        assert!(
            e.metrics_text()
                .contains("cf_serve_quantize_mode{mode=\"f32\"} 1"),
            "f32 engine must report its mode too"
        );
        e.shutdown();
    }

    #[test]
    fn quantized_answers_are_shard_count_invariant() {
        // The int8 twin is a pure function of the parameter bits and every
        // shard quantizes its own (bitwise-identical) replica, so the
        // quantized engine keeps the f32 engine's shard-count invariance.
        let mut answers: Vec<Vec<u64>> = Vec::new();
        for shards in [1usize, 4] {
            let (e, queries) = engine(EngineConfig {
                shards,
                quantize: QuantMode::Int8,
                ..EngineConfig::default()
            });
            answers.push(
                queries
                    .iter()
                    .map(|&q| e.predict(q).expect("predict").detail.value.to_bits())
                    .collect(),
            );
            e.shutdown();
        }
        assert_eq!(answers[0], answers[1], "shard count changed int8 bits");
    }

    #[test]
    fn quantized_engine_diverges_from_f32_within_tolerance() {
        let (ef, queries) = engine(EngineConfig::default());
        let (eq, _) = engine(EngineConfig {
            quantize: QuantMode::Int8,
            ..EngineConfig::default()
        });
        let mut any_diff = false;
        let mut evidence_backed = 0;
        for &q in &queries {
            let f = ef.predict(q).expect("f32").detail;
            let i = eq.predict(q).expect("int8").detail;
            assert_eq!(f.used_fallback, i.used_fallback);
            if f.used_fallback {
                // No linear layer runs: the fallback must stay bit-equal.
                assert_eq!(f.value.to_bits(), i.value.to_bits());
                continue;
            }
            evidence_backed += 1;
            any_diff |= f.value.to_bits() != i.value.to_bits();
            // Bound the per-query deviation in the attribute's normalized
            // [0, 1] scale (raw units vary wildly across attributes).
            let range = ef.model().normalizer().range(q.attr).max(1e-9);
            assert!(
                ((f.value - i.value) / range).abs() < 0.05,
                "int8 answer drifted: f32 {} vs int8 {} (range {range})",
                f.value,
                i.value
            );
        }
        assert!(evidence_backed >= 3, "too few evidence-backed queries");
        assert!(any_diff, "int8 path produced f32-identical bits");
        ef.shutdown();
        eq.shutdown();
    }

    #[test]
    fn reload_requantizes_every_shard() {
        // After a hot reload the int8 twins must be rebuilt from the new
        // parameters: reloading the same checkpoint back must restore the
        // original quantized answers bitwise.
        let dir = std::env::temp_dir().join(format!("cf_qreload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let (e, queries) = engine(EngineConfig {
            shards: 2,
            cache_cap: 0,
            quantize: QuantMode::Int8,
            ..EngineConfig::default()
        });
        let ckpt_a = dir.join("a.ckpt");
        e.model().save_params_to(&ckpt_a).unwrap();
        let baseline: Vec<u64> = queries
            .iter()
            .map(|&q| e.predict(q).expect("baseline").detail.value.to_bits())
            .collect();

        // Fresh weights (same architecture) must change quantized answers —
        // proof the workers re-adopt the swapped twin, not the stale one.
        let mut rng = StdRng::seed_from_u64(4242);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let fresh = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        let ckpt_b = dir.join("b.ckpt");
        fresh.save_params_to(&ckpt_b).unwrap();
        e.reload(&ckpt_b).expect("reload fresh weights");
        let swapped: Vec<u64> = queries
            .iter()
            .map(|&q| e.predict(q).expect("post-swap").detail.value.to_bits())
            .collect();
        assert_ne!(baseline, swapped, "reload did not requantize");

        e.reload(&ckpt_a).expect("reload original weights");
        let restored: Vec<u64> = queries
            .iter()
            .map(|&q| e.predict(q).expect("restored").detail.value.to_bits())
            .collect();
        assert_eq!(baseline, restored, "requantization is not reproducible");
        e.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A mutation batch exercising every op: a numeric upsert on a served
    /// entity, a new entity, and an edge linking it into the graph.
    fn mutation_batch(graph: &impl cf_kg::GraphView, q: Query) -> Vec<Mutation> {
        let entity = graph.entity_name(q.entity).to_string();
        let attr = graph.attribute_name(q.attr).to_string();
        let rel = graph.relation_name(cf_kg::RelationId(0)).to_string();
        vec![
            Mutation::UpsertNumeric {
                entity: entity.clone(),
                attr,
                value: 1234.5,
            },
            Mutation::AddEntity {
                name: "mutant_0".into(),
            },
            Mutation::AddEdge {
                head: "mutant_0".into(),
                rel,
                tail: entity,
            },
        ]
    }

    #[test]
    fn mutate_applies_invalidates_and_changes_answers() {
        let (e, queries) = engine(EngineConfig::default());
        let q = queries[0];
        let before = e.predict(q).expect("before");
        assert!(e.predict(q).expect("cached").cache_hit);

        let muts = mutation_batch(&*e.graph(), q);
        let out = e.mutate(&muts).expect("mutate");
        assert_eq!(out.applied, 3);
        assert_eq!(out.changed, 3);
        assert!(out.dirty >= 2, "touched entities must be marked stale");
        assert!(out.invalidated >= 1, "cached entry for q must be dropped");
        assert_eq!(out.generation, 1);
        assert_eq!(e.graph_generation(), 1);

        // The cached entry was invalidated: the next predict re-retrieves
        // against the mutated graph, and the upsert of this very
        // (entity, attr) fact changes the answer.
        let after = e.predict(q).expect("after");
        assert!(!after.cache_hit, "stale chains served from cache");
        assert_ne!(
            before.detail.value.to_bits(),
            after.detail.value.to_bits(),
            "upserting the queried fact must change the prediction"
        );

        // Idempotence: re-applying the same batch changes nothing and the
        // answer (now cached again) is stable.
        let out = e.mutate(&muts).expect("re-mutate");
        assert_eq!(out.changed, 0);
        assert_eq!(out.dirty, 0);
        let again = e.predict(q).expect("again");
        assert_eq!(after.detail.value.to_bits(), again.detail.value.to_bits());

        assert_eq!(e.metrics().mutations_ok.load(Ordering::Relaxed), 2);
        e.shutdown();
    }

    #[test]
    fn invalid_mutations_are_rejected_without_applying() {
        let (e, queries) = engine(EngineConfig::default());
        let q = queries[0];
        let entity = e.graph().entity_name(q.entity).to_string();
        // Per-field validation error, batch position named.
        let err = e
            .mutate(&[
                Mutation::AddEntity { name: "ok".into() },
                Mutation::UpsertNumeric {
                    entity: entity.clone(),
                    attr: "birth".into(),
                    value: f64::NAN,
                },
            ])
            .expect_err("NaN accepted");
        assert!(err.contains("mutation 1"), "{err}");
        assert!(err.contains("value: not finite"), "{err}");
        // Out-of-vocabulary attribute / relation.
        let err = e
            .mutate(&[Mutation::UpsertNumeric {
                entity: entity.clone(),
                attr: "unheard_of".into(),
                value: 1.0,
            }])
            .expect_err("unknown attr accepted");
        assert!(err.contains("not in the serving vocabulary"), "{err}");
        let err = e
            .mutate(&[Mutation::AddEdge {
                head: entity.clone(),
                rel: "unheard_of".into(),
                tail: entity,
            }])
            .expect_err("unknown rel accepted");
        assert!(err.contains("not in the serving vocabulary"), "{err}");
        // Nothing was applied: generation unchanged, vocabulary additions
        // from rejected batches (the "ok" entity) never landed.
        assert_eq!(e.graph_generation(), 0);
        assert!(e.graph().entity_by_name("ok").is_none());
        assert_eq!(e.metrics().mutations_rejected.load(Ordering::Relaxed), 3);
        assert_eq!(e.metrics().mutations_ok.load(Ordering::Relaxed), 0);
        e.shutdown();
    }

    #[test]
    fn post_mutation_answers_are_shard_count_invariant() {
        // The acceptance bar: after the same mutation batch, every query —
        // including one for a freshly added entity — answers with the same
        // bits at shards 1 and 4, f32 and int8.
        for quantize in [QuantMode::F32, QuantMode::Int8] {
            let mut answers: Vec<Vec<u64>> = Vec::new();
            for shards in [1usize, 4] {
                let (e, queries) = engine(EngineConfig {
                    shards,
                    quantize,
                    ..EngineConfig::default()
                });
                // Warm caches pre-mutation so invalidation is exercised.
                for &q in &queries {
                    e.predict(q).expect("warm");
                }
                let muts = mutation_batch(&*e.graph(), queries[0]);
                e.mutate(&muts).expect("mutate");
                let new_entity = e.graph().entity_by_name("mutant_0").expect("added");
                let mut qs = queries.clone();
                qs.push(Query {
                    entity: new_entity,
                    attr: queries[0].attr,
                });
                answers.push(
                    qs.iter()
                        .map(|&q| e.predict(q).expect("predict").detail.value.to_bits())
                        .collect(),
                );
                e.shutdown();
            }
            assert_eq!(
                answers[0], answers[1],
                "shard count changed post-mutation bits ({quantize})"
            );
        }
    }

    #[test]
    fn journal_attach_replays_mutations_bitwise() {
        let dir = std::env::temp_dir().join(format!("cf_engine_journal_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let journal = dir.join("live.cfj");

        let (e, queries) = engine(EngineConfig::default());
        assert_eq!(e.attach_journal(&journal, None).expect("attach"), 0);
        let muts = mutation_batch(&*e.graph(), queries[0]);
        e.mutate(&muts).expect("mutate");
        let want: Vec<u64> = queries
            .iter()
            .map(|&q| e.predict(q).expect("predict").detail.value.to_bits())
            .collect();
        e.shutdown();

        // A fresh engine over the same base replays the journal on attach
        // and serves identical bits.
        let (e2, _) = engine(EngineConfig::default());
        let replayed = e2.attach_journal(&journal, None).expect("attach");
        assert_eq!(replayed, muts.len());
        assert!(e2.graph().entity_by_name("mutant_0").is_some());
        let got: Vec<u64> = queries
            .iter()
            .map(|&q| e2.predict(q).expect("predict").detail.value.to_bits())
            .collect();
        assert_eq!(want, got, "journal replay changed served bits");

        // Compaction folds the overlay into a canonical store and empties
        // the journal; an engine over the compacted store (no journal)
        // serves the same bits again.
        let store = dir.join("compacted.cfkg");
        e2.compact_to(&store).expect("compact");
        assert_eq!(cf_kg::recover_file(&journal).unwrap().mutations.len(), 0);
        e2.shutdown();

        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        let compacted = cf_kg::read_store(&store).expect("read compacted");
        let e3 = Engine::new(model, compacted, EngineConfig::default());
        let got: Vec<u64> = queries
            .iter()
            .map(|&q| e3.predict(q).expect("predict").detail.value.to_bits())
            .collect();
        assert_eq!(want, got, "compacted store changed served bits");
        e3.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutation_under_index_bypasses_stale_neighborhoods() {
        // Indexed engines must not serve pre-mutation chains out of the
        // frozen index: entities inside the dirty BFS neighborhood (and
        // entities past the index bound, i.e. freshly added ones) bypass
        // the index and walk the overlay instead — and the bypass
        // predicate is a pure function of the query and mutation history,
        // so the bits stay shard-count invariant.
        let mut answers: Vec<Vec<u64>> = Vec::new();
        for shards in [1usize, 4] {
            let mut rng = StdRng::seed_from_u64(17);
            let g = yago15k_sim(SynthScale::small(), &mut rng);
            let split = Split::paper_811(&g, &mut rng);
            let visible = split.visible_graph(&g);
            let model =
                ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
            let queries: Vec<Query> = split
                .test
                .iter()
                .take(8)
                .map(|t| Query {
                    entity: t.entity,
                    attr: t.attr,
                })
                .collect();
            let params = cf_kg::IndexParams {
                max_hops: model.cfg.setting.max_hops as u32,
                ..cf_kg::IndexParams::default()
            };
            let ix = cf_kg::build_chain_index(&visible, params);
            let e = Engine::new_with_index(
                model,
                visible,
                Some(ChainIndexStore::Built(ix)),
                EngineConfig {
                    shards,
                    ..EngineConfig::default()
                },
            );
            let q = queries[0];
            let before = e.predict(q).expect("before").detail;
            let muts = mutation_batch(&*e.graph(), q);
            e.mutate(&muts).expect("mutate indexed engine");
            // The queried fact was upserted; if the frozen index were still
            // consulted for this (now stale) neighborhood the old chain
            // values would survive and the answer could not move.
            let after = e.predict(q).expect("after").detail;
            assert_ne!(
                before.value.to_bits(),
                after.value.to_bits(),
                "stale index still serving pre-mutation chains"
            );
            // A freshly added entity lies past the index bound and must be
            // answerable through the overlay walk path.
            let new_entity = e.graph().entity_by_name("mutant_0").expect("added");
            let mut qs = queries.clone();
            qs.push(Query {
                entity: new_entity,
                attr: q.attr,
            });
            answers.push(
                qs.iter()
                    .map(|&q| e.predict(q).expect("predict").detail.value.to_bits())
                    .collect(),
            );
            e.shutdown();
        }
        assert_eq!(
            answers[0], answers[1],
            "index bypass broke shard-count invariance"
        );
    }

    #[test]
    fn query_rng_seed_is_deterministic_and_query_sensitive() {
        let a = Query {
            entity: cf_kg::EntityId(1),
            attr: cf_kg::AttributeId(0),
        };
        let b = Query {
            entity: cf_kg::EntityId(0),
            attr: cf_kg::AttributeId(1),
        };
        assert_eq!(query_rng_seed(7, a), query_rng_seed(7, a));
        assert_ne!(query_rng_seed(7, a), query_rng_seed(7, b));
        assert_ne!(query_rng_seed(7, a), query_rng_seed(8, a));
    }

    #[test]
    fn shard_routing_is_stable_and_covers_all_shards() {
        // Pure function: same entity, same shard, every time.
        for id in 0..64u32 {
            let e = EntityId(id);
            assert_eq!(shard_of(e, 4), shard_of(e, 4));
            assert!(shard_of(e, 4) < 4);
            assert_eq!(shard_of(e, 1), 0);
        }
        // The finalizer spreads consecutive ids: all 4 shards get traffic
        // from the first 64 ids.
        let mut seen = [false; 4];
        for id in 0..64u32 {
            seen[shard_of(EntityId(id), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "unbalanced routing: {seen:?}");
    }

    #[test]
    fn admission_boundary_cases_are_pinned() {
        use Admission::*;
        // Empty queue projects zero delay: always admit, even with a huge
        // EWMA and a 1 µs deadline.
        assert_eq!(admit(0, 256, u64::MAX, Some(1)), Accept);
        // Stale/unwarmed EWMA (0) projects zero delay: depth bound only.
        assert_eq!(admit(255, 256, 0, Some(1)), Accept);
        // Deadline already expired at the door: shed as expired, never
        // enqueued (regardless of EWMA state).
        assert_eq!(admit(0, 256, 0, Some(0)), ShedExpired);
        assert_eq!(admit(10, 256, 1000, Some(0)), ShedExpired);
        // Projected delay strictly exceeding the deadline sheds…
        assert_eq!(admit(10, 256, 1000, Some(9_999)), ShedOverloaded);
        // …but exactly meeting it admits (strict inequality).
        assert_eq!(admit(10, 256, 1000, Some(10_000)), Accept);
        // The hard depth bound survives and outranks everything.
        assert_eq!(admit(256, 256, 0, None), ShedOverloaded);
        assert_eq!(admit(0, 0, 0, None), ShedOverloaded);
        // Deadline-free requests only see the depth bound.
        assert_eq!(admit(255, 256, u64::MAX, None), Accept);
        // Saturating projection: a huge backlog must shed, not wrap.
        assert_eq!(
            admit(1 << 40, 1 << 60, u64::MAX, Some(u64::MAX - 1)),
            ShedOverloaded
        );
    }

    #[test]
    fn ewma_warms_then_tracks() {
        let cell = AtomicU64::new(0);
        update_ewma(&cell, 1000);
        assert_eq!(cell.load(Ordering::Relaxed), 1000, "first sample adopted");
        update_ewma(&cell, 2000);
        assert_eq!(cell.load(Ordering::Relaxed), 1250, "α = 1/4 blend");
        // Zero samples clamp to 1 µs: a warmed estimate never reads as
        // stale again.
        let cell = AtomicU64::new(0);
        update_ewma(&cell, 0);
        assert_eq!(cell.load(Ordering::Relaxed), 1);
    }
}
