//! The inference engine: one resident model + graph, a bounded
//! micro-batching queue drained by worker threads, the chain cache, and
//! overload shedding.
//!
//! Requests enter through [`Engine::submit`] (or the synchronous
//! [`Engine::predict`]). A worker collects up to `max_batch` queued jobs —
//! waiting at most `max_wait_us` after the first — resolves each query's
//! chains through the LRU cache (retrieval uses a per-query deterministic
//! RNG, so a hit and a miss produce identical chains), then answers the
//! whole batch with one tape-free
//! [`ChainsFormer::predict_batch_with_chains`] call. That call is bitwise
//! identical to per-query taped prediction (pinned in
//! `crates/core/tests/batch_parity.rs`), so batching is purely a
//! performance decision.

use crate::cache::{CachedChains, ChainCache};
use crate::metrics::Metrics;
use cf_chains::Query;
use cf_kg::{ChainIndexStore, ChainIndexView, GraphStore};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use chainsformer::{ChainsFormer, PredictionDetail, ResolvedQuery};
use std::collections::VecDeque;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Condvar, Mutex, RwLock, RwLockReadGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tunables for the serving engine.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Largest batch a worker executes in one forward pass.
    pub max_batch: usize,
    /// Cap on how long a worker accumulates a partial batch after the
    /// first job, microseconds. Accumulation stops earlier the moment
    /// arrivals go quiet (a ~100 µs slice with no new job).
    pub max_wait_us: u64,
    /// Queue bound; submissions beyond it are shed with
    /// [`ServeError::Overloaded`]. `0` sheds everything (useful in tests).
    pub queue_cap: usize,
    /// Worker thread count.
    pub workers: usize,
    /// Chain-cache capacity in queries (`0` disables caching).
    pub cache_cap: usize,
    /// Base seed for per-query retrieval RNGs (see [`query_rng_seed`]).
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_batch: 8,
            max_wait_us: 2000,
            queue_cap: 256,
            workers: 1,
            cache_cap: 4096,
            seed: 7,
        }
    }
}

/// Why a request was not answered.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The queue was full; the request was shed without being enqueued.
    Overloaded,
    /// The request's deadline expired before a worker reached it.
    DeadlineExceeded,
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded => write!(f, "overloaded"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServeError::ShuttingDown => write!(f, "shutting down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// A successful answer plus serving metadata.
#[derive(Debug)]
pub struct ServedPrediction {
    /// The prediction with its reasoning trace.
    pub detail: PredictionDetail,
    /// Queue + inference latency for this request, microseconds.
    pub micros: u64,
    /// Size of the batch this request was answered in.
    pub batch_size: usize,
    /// Whether the chain cache answered retrieval.
    pub cache_hit: bool,
}

/// The reply every submitted job eventually receives.
pub type Reply = Result<ServedPrediction, ServeError>;

struct Job {
    query: Query,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: mpsc::Sender<Reply>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    /// The resident model. Workers hold the read lock for the duration of
    /// a batch; [`Engine::reload`] takes the write lock only for the final
    /// parameter swap, after the new checkpoint has been fully validated.
    model: RwLock<ChainsFormer>,
    graph: GraphStore,
    index: Option<ChainIndexStore>,
    cfg: EngineConfig,
    queue: Mutex<QueueState>,
    cond: Condvar,
    cache: Mutex<ChainCache>,
    metrics: Metrics,
}

/// The resident serving engine. Dropping it drains the queue gracefully:
/// already-enqueued jobs are still answered, then workers join.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// Deterministic retrieval seed for a query: mixes the engine seed with the
/// entity and attribute ids. Keeping the RNG a pure function of the query
/// makes retrieval reproducible regardless of request order, batch
/// composition, or whether the cache answered — a cache hit returns
/// exactly the chains a fresh retrieval would.
pub fn query_rng_seed(seed: u64, q: Query) -> u64 {
    let mut h = seed ^ 0x9E37_79B9_7F4A_7C15;
    for v in [u64::from(q.entity.0), u64::from(q.attr.0)] {
        h = (h ^ v).wrapping_mul(0x0000_0100_0000_01B3);
        h ^= h >> 29;
    }
    h
}

impl Engine {
    /// Takes ownership of the model and (visible) graph and spawns the
    /// worker threads.
    pub fn new(model: ChainsFormer, graph: impl Into<GraphStore>, cfg: EngineConfig) -> Self {
        Self::new_with_index(model, graph, None, cfg)
    }

    /// [`Self::new`], optionally serving retrieval from a precomputed chain
    /// index (`cfkg index`). When an index is given it must have been built
    /// from (a graph bitwise-equal to) `graph`; workers then answer cache
    /// misses by index lookup instead of random walks.
    pub fn new_with_index(
        model: ChainsFormer,
        graph: impl Into<GraphStore>,
        index: Option<ChainIndexStore>,
        cfg: EngineConfig,
    ) -> Self {
        let graph = graph.into();
        if let Some(ix) = &index {
            ix.check_matches(&graph)
                .expect("chain index does not match the serving graph");
        }
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            cache: Mutex::new(ChainCache::new(cfg.cache_cap)),
            metrics: Metrics::new(),
            queue: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            cond: Condvar::new(),
            model: RwLock::new(model),
            graph,
            index,
            cfg,
        });
        let handles = (0..workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Engine {
            shared,
            workers: handles,
        }
    }

    /// Enqueues a query; the reply arrives on the returned channel. Sheds
    /// immediately (without enqueueing) when the queue is at capacity.
    pub fn submit(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<mpsc::Receiver<Reply>, ServeError> {
        self.shared.metrics.requests.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let mut q = self.shared.queue.lock().expect("queue poisoned");
        if q.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if q.jobs.len() >= self.shared.cfg.queue_cap {
            self.shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded);
        }
        let now = Instant::now();
        q.jobs.push_back(Job {
            query,
            deadline: deadline.map(|d| now + d),
            enqueued: now,
            reply: tx,
        });
        drop(q);
        self.shared.cond.notify_one();
        Ok(rx)
    }

    /// Synchronous prediction: submit and wait for the answer.
    pub fn predict(&self, query: Query) -> Reply {
        let rx = self.submit(query, None)?;
        rx.recv().map_err(|_| ServeError::ShuttingDown)?
    }

    /// The graph the engine serves against (for name resolution).
    pub fn graph(&self) -> &GraphStore {
        &self.shared.graph
    }

    /// The resident model (a read guard: drops cheaply, blocks a
    /// concurrent [`Self::reload`]'s final swap while held).
    pub fn model(&self) -> RwLockReadGuard<'_, ChainsFormer> {
        self.shared.model.read().expect("model poisoned")
    }

    /// Hot-swaps the serving model's learnable parameters from a
    /// checkpoint file without restarting the engine or dropping queued
    /// work.
    ///
    /// Validation happens **off the request path**: the checkpoint's
    /// magic, per-section CRCs, and every parameter name and shape are
    /// checked against a staged clone of the live [`ParamStore`]; workers
    /// keep answering under the read lock the whole time. Only after the
    /// entire file has been accepted does a brief write lock swap the
    /// parameters in — between batches, never mid-forward. On any error
    /// the staged clone is dropped and the live model is untouched, so
    /// rollback is implicit.
    ///
    /// The chain cache stays valid across a reload: retrieval uses the
    /// frozen filter embeddings and per-query RNG, not the swapped
    /// parameters, so cached chains are exactly what a fresh retrieval
    /// would produce.
    ///
    /// Counted in `cf_serve_reloads_ok_total` / `cf_serve_reloads_rejected_total`.
    ///
    /// [`ParamStore`]: cf_tensor::ParamStore
    pub fn reload(&self, path: impl AsRef<Path>) -> Result<(), cf_tensor::CheckpointError> {
        let result = (|| {
            let mut staged = self
                .shared
                .model
                .read()
                .expect("model poisoned")
                .params
                .clone();
            let f = std::fs::File::open(path).map_err(cf_tensor::CheckpointError::Io)?;
            cf_tensor::load_params(&mut staged, std::io::BufReader::new(f))?;
            self.shared.model.write().expect("model poisoned").params = staged;
            Ok(())
        })();
        let counter = match &result {
            Ok(()) => &self.shared.metrics.reloads_ok,
            Err(_) => &self.shared.metrics.reloads_rejected,
        };
        counter.fetch_add(1, Ordering::Relaxed);
        result
    }

    /// Live serving metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Renders the metrics text block (the `GET /metrics` payload).
    pub fn metrics_text(&self) -> String {
        self.shared.metrics.render()
    }

    /// Current number of cached chain sets.
    pub fn cache_len(&self) -> usize {
        self.shared.cache.lock().expect("cache poisoned").len()
    }

    /// Graceful shutdown: already-enqueued jobs are answered, new
    /// submissions are refused, workers join. (Equivalent to dropping the
    /// engine; provided for explicitness at call sites.)
    pub fn shutdown(self) {}
}

impl Drop for Engine {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().expect("queue poisoned");
            q.shutdown = true;
        }
        self.shared.cond.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    // One inference context per worker, reused across batches: after the
    // first batch its value arena and the thread's tensor buffer pool are
    // warm, so steady-state forwards never touch the global allocator.
    let mut ctx = cf_tensor::InferCtx::new();
    loop {
        let batch = collect_batch(shared);
        if batch.is_empty() {
            return; // shutdown requested and the queue is drained
        }
        process_batch(shared, batch, &mut ctx);
    }
}

/// Blocks for work, then micro-batches: grabs every queued job up to
/// `max_batch`, waiting at most `max_wait_us` after the first for
/// stragglers. Returns an empty batch only on drained shutdown.
fn collect_batch(shared: &Shared) -> Vec<Job> {
    let cfg = &shared.cfg;
    let mut q = shared.queue.lock().expect("queue poisoned");
    while q.jobs.is_empty() {
        if q.shutdown {
            return Vec::new();
        }
        q = shared.cond.wait(q).expect("queue poisoned");
    }
    let mut batch = Vec::with_capacity(cfg.max_batch.max(1));
    let first_at = Instant::now();
    let budget = Duration::from_micros(cfg.max_wait_us);
    // Straggler policy: `max_wait_us` caps how long a partial batch may
    // accumulate, but we stop as soon as arrivals go quiet — one short
    // slice with no new job means the remaining clients are busy or
    // absent, and waiting out the full window would only add latency
    // without growing the batch.
    let quiet = budget.min(Duration::from_micros(100));
    loop {
        while batch.len() < cfg.max_batch.max(1) {
            match q.jobs.pop_front() {
                Some(j) => batch.push(j),
                None => break,
            }
        }
        if batch.len() >= cfg.max_batch.max(1) || q.shutdown {
            break;
        }
        if first_at.elapsed() >= budget {
            break;
        }
        let (guard, _timeout) = shared.cond.wait_timeout(q, quiet).expect("queue poisoned");
        q = guard;
        if q.jobs.is_empty() && !q.shutdown {
            break;
        }
    }
    batch
}

fn process_batch(shared: &Shared, batch: Vec<Job>, ctx: &mut cf_tensor::InferCtx) {
    let m = &shared.metrics;
    m.batch_size.record(batch.len() as u64);
    let now = Instant::now();
    let mut live = Vec::with_capacity(batch.len());
    for job in batch {
        if job.deadline.is_some_and(|d| now >= d) {
            m.deadline_missed.fetch_add(1, Ordering::Relaxed);
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            live.push(job);
        }
    }
    if live.is_empty() {
        return;
    }

    // One read guard for the whole batch: every job in it is answered by
    // the same model generation, and a concurrent reload's write lock
    // lands between batches, never mid-forward.
    let model = shared.model.read().expect("model poisoned");

    // Resolve every job's chains through the cache. The cache lock is only
    // held for the lookup/insert, never across retrieval of *other*
    // queries' chains in the same batch.
    let resolved: Vec<(Arc<CachedChains>, bool)> = live
        .iter()
        .map(|job| {
            let hit = shared.cache.lock().expect("cache poisoned").get(job.query);
            match hit {
                Some(c) => {
                    m.cache_hits.fetch_add(1, Ordering::Relaxed);
                    (c, true)
                }
                None => {
                    m.cache_misses.fetch_add(1, Ordering::Relaxed);
                    let mut rng = StdRng::seed_from_u64(query_rng_seed(shared.cfg.seed, job.query));
                    let (toc, retrieved) = match &shared.index {
                        Some(ix) => model.gather_chains_indexed(ix, job.query, &mut rng),
                        None => model.gather_chains(&shared.graph, job.query, &mut rng),
                    };
                    let entry = Arc::new(CachedChains {
                        chains: toc.chains,
                        retrieved,
                    });
                    shared
                        .cache
                        .lock()
                        .expect("cache poisoned")
                        .put(job.query, Arc::clone(&entry));
                    (entry, false)
                }
            }
        })
        .collect();

    let jobs_view: Vec<ResolvedQuery<'_>> = live
        .iter()
        .zip(&resolved)
        .map(|(job, (c, _))| (job.query, c.chains.as_slice(), c.retrieved))
        .collect();
    let details = model.predict_batch_with_chains_in(&jobs_view, ctx);
    drop(model);

    let batch_size = live.len();
    for ((job, detail), (_, cache_hit)) in live.into_iter().zip(details).zip(&resolved) {
        if detail.used_fallback {
            m.fallbacks.fetch_add(1, Ordering::Relaxed);
        }
        m.ok.fetch_add(1, Ordering::Relaxed);
        let micros = job.enqueued.elapsed().as_micros() as u64;
        m.latency_us.record(micros);
        let _ = job.reply.send(Ok(ServedPrediction {
            detail,
            micros,
            batch_size,
            cache_hit: *cache_hit,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use chainsformer::ChainsFormerConfig;

    fn engine(cfg: EngineConfig) -> (Engine, Vec<Query>) {
        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        let queries = split
            .test
            .iter()
            .take(8)
            .map(|t| Query {
                entity: t.entity,
                attr: t.attr,
            })
            .collect();
        (Engine::new(model, visible, cfg), queries)
    }

    #[test]
    fn predict_answers_and_counts_metrics() {
        let (e, queries) = engine(EngineConfig::default());
        let served = e.predict(queries[0]).expect("prediction");
        assert!(served.detail.value.is_finite());
        assert!(served.batch_size >= 1);
        assert_eq!(e.metrics().requests.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().ok.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().latency_us.count(), 1);
        e.shutdown();
    }

    #[test]
    fn cache_hit_repeats_the_same_answer_bitwise() {
        let (e, queries) = engine(EngineConfig::default());
        let q = queries[0];
        let first = e.predict(q).expect("first");
        let second = e.predict(q).expect("second");
        assert!(!first.cache_hit);
        assert!(second.cache_hit);
        assert_eq!(first.detail.value.to_bits(), second.detail.value.to_bits());
        assert_eq!(e.metrics().cache_hits.load(Ordering::Relaxed), 1);
        assert_eq!(e.metrics().cache_misses.load(Ordering::Relaxed), 1);
        e.shutdown();
    }

    #[test]
    fn engine_matches_direct_model_prediction() {
        // The served answer must equal predicting directly with the same
        // per-query deterministic RNG — serving adds no numeric drift.
        let (e, queries) = engine(EngineConfig::default());
        for &q in queries.iter().take(4) {
            let served = e.predict(q).expect("served");
            let mut rng = StdRng::seed_from_u64(query_rng_seed(7, q));
            let direct = e.model().predict(e.graph(), q, &mut rng);
            assert_eq!(served.detail.value.to_bits(), direct.value.to_bits());
            assert_eq!(served.detail.used_fallback, direct.used_fallback);
            assert_eq!(served.detail.retrieved, direct.retrieved);
        }
        e.shutdown();
    }

    #[test]
    fn zero_capacity_queue_sheds_everything() {
        let (e, queries) = engine(EngineConfig {
            queue_cap: 0,
            ..EngineConfig::default()
        });
        match e.submit(queries[0], None) {
            Err(ServeError::Overloaded) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(e.metrics().shed.load(Ordering::Relaxed), 1);
        e.shutdown();
    }

    #[test]
    fn expired_deadline_is_reported_not_served() {
        let (e, queries) = engine(EngineConfig::default());
        let rx = e.submit(queries[0], Some(Duration::ZERO)).expect("submit");
        match rx.recv().expect("reply") {
            Err(ServeError::DeadlineExceeded) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        assert_eq!(e.metrics().deadline_missed.load(Ordering::Relaxed), 1);
        e.shutdown();
    }

    #[test]
    fn shutdown_answers_already_enqueued_jobs() {
        let (e, queries) = engine(EngineConfig::default());
        let receivers: Vec<_> = queries
            .iter()
            .take(4)
            .map(|&q| e.submit(q, None).expect("submit"))
            .collect();
        e.shutdown();
        for rx in receivers {
            let reply = rx.recv().expect("reply channel closed without answer");
            assert!(reply.is_ok(), "enqueued job dropped: {reply:?}");
        }
    }

    #[test]
    fn reload_hot_swaps_weights_and_rolls_back_on_corruption() {
        fn param_bits(ps: &cf_tensor::ParamStore) -> Vec<u32> {
            ps.iter()
                .flat_map(|(_, _, t)| t.data().iter().map(|x| x.to_bits()))
                .collect()
        }
        let dir = std::env::temp_dir().join(format!("cf_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model_a =
            ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        // Same architecture (shapes come from the graph + config), fresh
        // weights: exactly what a retraining run hands to a live server.
        let mut rng_b = StdRng::seed_from_u64(9001);
        let model_b = ChainsFormer::new(
            &visible,
            &split.train,
            ChainsFormerConfig::tiny(),
            &mut rng_b,
        );
        let a_bits = param_bits(&model_a.params);
        let b_bits = param_bits(&model_b.params);
        assert_ne!(a_bits, b_bits, "seeds must give distinct weights");
        let a_ckpt = dir.join("a.ckpt");
        let b_ckpt = dir.join("b.ckpt");
        model_a.save_params_to(&a_ckpt).unwrap();
        model_b.save_params_to(&b_ckpt).unwrap();

        let queries: Vec<Query> = split
            .test
            .iter()
            .take(8)
            .map(|t| Query {
                entity: t.entity,
                attr: t.attr,
            })
            .collect();
        let e = Engine::new(model_a, visible, EngineConfig::default());
        let baseline: Vec<u64> = queries
            .iter()
            .map(|&q| e.predict(q).expect("baseline").detail.value.to_bits())
            .collect();

        // A good reload swaps every parameter to the new checkpoint.
        e.reload(&b_ckpt).expect("valid checkpoint accepted");
        assert_eq!(param_bits(&e.model().params), b_bits);

        // A truncated checkpoint is rejected and the live weights stay B.
        let full = std::fs::read(&b_ckpt).unwrap();
        let bad_ckpt = dir.join("bad.ckpt");
        std::fs::write(&bad_ckpt, &full[..full.len() / 2]).unwrap();
        e.reload(&bad_ckpt)
            .expect_err("truncated checkpoint accepted");
        assert_eq!(
            param_bits(&e.model().params),
            b_bits,
            "rejected reload tainted weights"
        );
        e.reload(dir.join("missing.ckpt"))
            .expect_err("missing file accepted");

        // Reloading A back restores the original served answers bitwise —
        // through the chain cache, which stays valid across reloads.
        e.reload(&a_ckpt).expect("original checkpoint accepted");
        assert_eq!(param_bits(&e.model().params), a_bits);
        for (&q, &want) in queries.iter().zip(&baseline) {
            let served = e.predict(q).expect("post-reload predict");
            assert_eq!(served.detail.value.to_bits(), want);
        }

        assert_eq!(e.metrics().reloads_ok.load(Ordering::Relaxed), 2);
        assert_eq!(e.metrics().reloads_rejected.load(Ordering::Relaxed), 2);
        let text = e.metrics_text();
        assert!(text.contains("cf_serve_reloads_ok_total 2"), "{text}");
        assert!(text.contains("cf_serve_reloads_rejected_total 2"), "{text}");
        e.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_rng_seed_is_deterministic_and_query_sensitive() {
        let a = Query {
            entity: cf_kg::EntityId(1),
            attr: cf_kg::AttributeId(0),
        };
        let b = Query {
            entity: cf_kg::EntityId(0),
            attr: cf_kg::AttributeId(1),
        };
        assert_eq!(query_rng_seed(7, a), query_rng_seed(7, a));
        assert_ne!(query_rng_seed(7, a), query_rng_seed(7, b));
        assert_ne!(query_rng_seed(7, a), query_rng_seed(8, a));
    }
}
