//! LRU cache for chain retrieval results, keyed by the query.
//!
//! Retrieval (random walks + filtering) dominates per-request cost on hot
//! queries; the engine consults this cache before gathering. Entries are
//! `Arc`-shared so a cached chain set can sit in several in-flight batches
//! at once without copying.

use cf_chains::{ChainInstance, Query};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A cached retrieval result: the filtered chains plus the pre-filter
/// retrieval count (reported in prediction details).
#[derive(Debug)]
pub struct CachedChains {
    /// Chains after setting restriction + top-k filtering (possibly empty).
    pub chains: Vec<ChainInstance>,
    /// ToC size before filtering.
    pub retrieved: usize,
}

/// A fixed-capacity LRU map `Query → Arc<CachedChains>`.
///
/// Recency is tracked with a monotonic stamp per entry; eviction scans for
/// the minimum stamp. That is O(n) per eviction, which is fine at serving
/// capacities (≤ a few thousand entries) and keeps the structure a single
/// `HashMap` — no unsafe, no intrusive lists.
pub struct ChainCache {
    cap: usize,
    tick: u64,
    map: HashMap<Query, (u64, Arc<CachedChains>)>,
}

impl ChainCache {
    /// A cache holding at most `cap` entries; `cap == 0` disables caching
    /// (every `get` misses, every `put` is dropped).
    pub fn new(cap: usize) -> Self {
        ChainCache {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Looks up `q`, refreshing its recency on a hit.
    pub fn get(&mut self, q: Query) -> Option<Arc<CachedChains>> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&q).map(|(stamp, v)| {
            *stamp = tick;
            Arc::clone(v)
        })
    }

    /// Inserts (or refreshes) `q`, evicting the least recently used entry
    /// when full.
    pub fn put(&mut self, q: Query, v: Arc<CachedChains>) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&q) && self.map.len() >= self.cap {
            if let Some(&lru) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&lru);
            }
        }
        self.map.insert(q, (self.tick, v));
    }

    /// Drops every entry whose query source entity is in `dirty`,
    /// returning how many were removed.
    ///
    /// Cached chains are keyed by the query, but a chain *traverses* up to
    /// `max_hops` entities beyond its source; the engine therefore passes
    /// the mutation's touched set expanded by a `max_hops` BFS over the
    /// live adjacency (both CSR directions), so any cached chain that
    /// could reach a mutated entity is discarded.
    pub fn invalidate_entities(&mut self, dirty: &HashSet<u32>) -> usize {
        let before = self.map.len();
        self.map.retain(|q, _| !dirty.contains(&q.entity.0));
        before - self.map.len()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::{AttributeId, EntityId};

    fn q(e: u32, a: u32) -> Query {
        Query {
            entity: EntityId(e),
            attr: AttributeId(a),
        }
    }

    fn entry(retrieved: usize) -> Arc<CachedChains> {
        Arc::new(CachedChains {
            chains: Vec::new(),
            retrieved,
        })
    }

    #[test]
    fn hit_returns_inserted_value() {
        let mut c = ChainCache::new(4);
        c.put(q(1, 0), entry(7));
        assert_eq!(c.get(q(1, 0)).unwrap().retrieved, 7);
        assert!(c.get(q(2, 0)).is_none());
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = ChainCache::new(2);
        c.put(q(1, 0), entry(1));
        c.put(q(2, 0), entry(2));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(c.get(q(1, 0)).is_some());
        c.put(q(3, 0), entry(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(q(2, 0)).is_none(), "LRU entry survived eviction");
        assert!(c.get(q(1, 0)).is_some());
        assert!(c.get(q(3, 0)).is_some());
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let mut c = ChainCache::new(2);
        c.put(q(1, 0), entry(1));
        c.put(q(2, 0), entry(2));
        c.put(q(1, 0), entry(10));
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(q(1, 0)).unwrap().retrieved, 10);
        assert!(c.get(q(2, 0)).is_some());
    }

    #[test]
    fn invalidate_drops_only_dirty_entities() {
        let mut c = ChainCache::new(8);
        c.put(q(1, 0), entry(1));
        c.put(q(1, 1), entry(2));
        c.put(q(2, 0), entry(3));
        c.put(q(3, 0), entry(4));
        let dirty: HashSet<u32> = [1, 3].into_iter().collect();
        assert_eq!(c.invalidate_entities(&dirty), 3);
        assert!(c.get(q(1, 0)).is_none());
        assert!(c.get(q(1, 1)).is_none());
        assert!(c.get(q(3, 0)).is_none());
        assert_eq!(c.get(q(2, 0)).unwrap().retrieved, 3);
        assert_eq!(c.invalidate_entities(&dirty), 0, "second pass is a no-op");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ChainCache::new(0);
        c.put(q(1, 0), entry(1));
        assert!(c.get(q(1, 0)).is_none());
        assert!(c.is_empty());
    }
}
