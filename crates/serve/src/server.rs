//! The TCP front-end: line-delimited JSON over a thread-per-connection
//! accept loop, a `GET /metrics` text command, `{"reload": "path"}` /
//! `{"mutate": …}` admin requests (hot model swap, live-graph mutation),
//! and graceful shutdown on SIGTERM/SIGINT or stdin close.

use crate::engine::{Engine, ServeError};
use crate::protocol;
use cf_chains::Query;
use cf_kg::GraphView;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The non-JSON command returning the metrics text block. The response is
/// the metric lines followed by one empty line (so clients on a persistent
/// connection know where it ends).
pub const METRICS_COMMAND: &str = "GET /metrics";

/// Set by the signal handler; polled by the accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    // A relaxed atomic store is async-signal-safe.
    SIGNALLED.store(true, Ordering::SeqCst);
}

/// True once a signal installed by [`install_signals`] has fired. Lets
/// other long-running commands (e.g. `cfkg train`) poll the same handler
/// for cooperative interruption.
pub fn signalled() -> bool {
    SIGNALLED.load(Ordering::SeqCst)
}

/// Installs SIGTERM/SIGINT handlers that request a graceful shutdown.
///
/// Declares libc's `signal` directly instead of pulling in a crate: the
/// binary already links the C runtime, and registering a handler that only
/// flips an atomic is the one async-signal-safe thing worth doing here.
pub fn install_signals() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
    }
}

/// Spawns a watcher that flips `flag` when stdin reaches EOF, so a parent
/// process can stop the server by closing the pipe (the second graceful
/// shutdown path next to SIGTERM).
pub fn shutdown_on_stdin_close(flag: Arc<AtomicBool>) {
    std::thread::spawn(move || {
        let mut buf = [0u8; 256];
        let mut stdin = std::io::stdin();
        loop {
            match stdin.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
        flag.store(true, Ordering::SeqCst);
    });
}

/// Accept loop: serves connections until `shutdown` (or a signal from
/// [`install_signals`]) is raised, then returns so the caller can drop the
/// engine — which drains the queue — and exit 0.
pub fn run(
    engine: Arc<Engine>,
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    while !shutdown.load(Ordering::SeqCst) && !SIGNALLED.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = Arc::clone(&engine);
                let shutdown = Arc::clone(&shutdown);
                std::thread::spawn(move || {
                    let _ = handle_connection(&engine, stream, &shutdown);
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    shutdown: &AtomicBool,
) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    for line in reader.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if shutdown.load(Ordering::SeqCst) || SIGNALLED.load(Ordering::SeqCst) {
            return Ok(());
        }
        if line == METRICS_COMMAND {
            write!(writer, "{}\n", engine.metrics_text())?;
            writer.flush()?;
            continue;
        }
        let response = answer(engine, line);
        writeln!(writer, "{response}")?;
        writer.flush()?;
    }
    Ok(())
}

/// Handles one request line end to end, always producing a response line.
fn answer(engine: &Engine, line: &str) -> String {
    let req = match protocol::parse_command(line) {
        Ok(protocol::Command::Predict(r)) => r,
        Ok(protocol::Command::Reload { ckpt, id }) => {
            // Validation runs here on the connection thread — never on a
            // worker — so in-flight predictions keep flowing while the new
            // checkpoint is checked. Rejections keep the old model live.
            return match engine.reload(&ckpt) {
                Ok(()) => protocol::reload_ok_response(id),
                Err(e) => protocol::err_response(id, &format!("reload: {e}")),
            };
        }
        Ok(protocol::Command::Mutate { muts, id }) => {
            // Also on the connection thread: the engine journals, applies,
            // and invalidates under its own locks; workers only pause for
            // the brief write-lock window, never for journal fsync of a
            // *rejected* batch (validation precedes the append).
            return match engine.mutate(&muts) {
                Ok(out) => protocol::mutate_ok_response(id, out.applied, out.changed),
                Err(e) => protocol::err_response(id, &format!("mutate: {e}")),
            };
        }
        Err(e) => {
            engine.metrics().errors.fetch_add(1, Ordering::Relaxed);
            return protocol::err_response(None, &format!("parse: {e}"));
        }
    };
    // Resolve names under the live-graph read guard, then drop it before
    // submitting: holding it across the reply wait could park the workers'
    // own read acquisition behind a queued mutate write lock while the
    // worker is what answers us — a deadlock.
    let (entity, attr) = {
        let graph = engine.graph();
        let Some(entity) = graph.entity_by_name(&req.entity) else {
            engine.metrics().errors.fetch_add(1, Ordering::Relaxed);
            return protocol::err_response(req.id, &format!("unknown entity {:?}", req.entity));
        };
        let Some(attr) = graph.attribute_by_name(&req.attr) else {
            engine.metrics().errors.fetch_add(1, Ordering::Relaxed);
            return protocol::err_response(req.id, &format!("unknown attribute {:?}", req.attr));
        };
        (entity, attr)
    };
    let deadline = req.deadline_ms.map(Duration::from_millis);
    let reply = engine
        .submit(Query { entity, attr }, deadline)
        .and_then(|rx| rx.recv().map_err(|_| ServeError::ShuttingDown)?);
    match reply {
        Ok(sp) => protocol::ok_response(
            req.id,
            sp.detail.value,
            sp.detail.used_fallback,
            sp.detail.retrieved,
            sp.detail.chains.len(),
            sp.micros,
        ),
        Err(e) => protocol::err_response(req.id, &e.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;
    use chainsformer::{ChainsFormer, ChainsFormerConfig};

    fn start(cfg: EngineConfig) -> (std::net::SocketAddr, Arc<AtomicBool>, String, Vec<String>) {
        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        let entity = visible.entity_name(split.test[0].entity).to_string();
        let attrs: Vec<String> = (0..visible.num_attributes())
            .map(|a| {
                visible
                    .attribute_name(cf_kg::AttributeId(a as u32))
                    .to_string()
            })
            .collect();
        let engine = Arc::new(Engine::new(model, visible, cfg));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || run(engine, listener, flag).expect("server"));
        (addr, shutdown, entity, attrs)
    }

    fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
        writeln!(stream, "{line}").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut out = String::new();
        reader.read_line(&mut out).expect("read");
        out.trim().to_string()
    }

    #[test]
    fn serves_queries_metrics_and_errors_over_tcp() {
        let (addr, shutdown, entity, attrs) = start(EngineConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");

        // 1. A valid query answers ok:true with a finite value.
        let req = format!(r#"{{"entity":"{entity}","attr":"{}","id":1}}"#, attrs[0]);
        let resp = roundtrip(&mut stream, &req);
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"id\":1"), "{resp}");

        // 2. A malformed line answers a structured error, not a hangup.
        let resp = roundtrip(&mut stream, "this is not json");
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("parse:"), "{resp}");

        // 3. An unknown entity is a structured error echoing the id.
        let resp = roundtrip(
            &mut stream,
            &format!(r#"{{"entity":"nobody","attr":"{}","id":9}}"#, attrs[0]),
        );
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("\"id\":9"), "{resp}");
        assert!(resp.contains("unknown entity"), "{resp}");

        // 4. Metrics scrape: text block terminated by an empty line.
        writeln!(stream, "{METRICS_COMMAND}").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut lines = Vec::new();
        loop {
            let mut l = String::new();
            reader.read_line(&mut l).expect("read");
            if l.trim().is_empty() {
                break;
            }
            lines.push(l.trim().to_string());
        }
        let text = lines.join("\n");
        assert!(text.contains("cf_serve_ok_total 1"), "{text}");
        assert!(text.contains("cf_serve_errors_total 2"), "{text}");
        assert!(text.contains("cf_serve_latency_us_p50"), "{text}");

        shutdown.store(true, Ordering::SeqCst);
    }

    #[test]
    fn reload_admin_request_swaps_and_rejects_over_tcp() {
        let dir = std::env::temp_dir().join(format!("cf_srv_reload_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
        let entity = visible.entity_name(split.test[0].entity).to_string();
        let attr = visible.attribute_name(cf_kg::AttributeId(0)).to_string();
        let good = dir.join("good.ckpt");
        model.save_params_to(&good).unwrap();
        let bad = dir.join("bad.ckpt");
        std::fs::write(&bad, b"CFT2 this is not a checkpoint").unwrap();

        let engine = Arc::new(Engine::new(model, visible, EngineConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let shutdown = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&shutdown);
        std::thread::spawn(move || run(engine, listener, flag).expect("server"));

        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");

        // A valid checkpoint swaps in and acknowledges with the echoed id.
        let resp = roundtrip(
            &mut stream,
            &format!(r#"{{"reload":"{}","id":11}}"#, good.display()),
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"reloaded\":true"), "{resp}");
        assert!(resp.contains("\"id\":11"), "{resp}");

        // A corrupt checkpoint is rejected with a structured error and the
        // server keeps answering predictions with the old weights.
        let resp = roundtrip(
            &mut stream,
            &format!(r#"{{"reload":"{}","id":12}}"#, bad.display()),
        );
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("reload:"), "{resp}");
        assert!(resp.contains("\"id\":12"), "{resp}");
        let resp = roundtrip(
            &mut stream,
            &format!(r#"{{"entity":"{entity}","attr":"{attr}","id":13}}"#),
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");

        // Both outcomes are visible on the metrics scrape.
        writeln!(stream, "{METRICS_COMMAND}").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut text = String::new();
        loop {
            let mut l = String::new();
            reader.read_line(&mut l).expect("read");
            if l.trim().is_empty() {
                break;
            }
            text.push_str(&l);
        }
        assert!(text.contains("cf_serve_reloads_ok_total 1"), "{text}");
        assert!(text.contains("cf_serve_reloads_rejected_total 1"), "{text}");

        shutdown.store(true, Ordering::SeqCst);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mutate_admin_request_applies_and_rejects_over_tcp() {
        let (addr, shutdown, entity, attrs) = start(EngineConfig::default());
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");

        // Cache a prediction, then mutate its entity's neighborhood.
        let req = format!(r#"{{"entity":"{entity}","attr":"{}","id":1}}"#, attrs[0]);
        let before = roundtrip(&mut stream, &req);
        assert!(before.contains("\"ok\":true"), "{before}");

        let resp = roundtrip(
            &mut stream,
            &format!(
                r#"{{"mutate":{{"op":"upsert","entity":"{entity}","attr":"{}","value":42.5}},"id":21}}"#,
                attrs[0]
            ),
        );
        assert!(resp.contains("\"ok\":true"), "{resp}");
        assert!(resp.contains("\"mutated\":true"), "{resp}");
        assert!(resp.contains("\"applied\":1"), "{resp}");
        assert!(resp.contains("\"changed\":1"), "{resp}");
        assert!(resp.contains("\"id\":21"), "{resp}");

        // Re-applying the same mutation is an idempotent no-op.
        let resp = roundtrip(
            &mut stream,
            &format!(
                r#"{{"mutate":{{"op":"upsert","entity":"{entity}","attr":"{}","value":42.5}},"id":22}}"#,
                attrs[0]
            ),
        );
        assert!(resp.contains("\"changed\":0"), "{resp}");

        // The prediction now sees the mutated graph and still answers.
        let after = roundtrip(&mut stream, &req);
        assert!(after.contains("\"ok\":true"), "{after}");

        // A malformed body gets the typed per-field error line…
        let resp = roundtrip(
            &mut stream,
            r#"{"mutate":{"op":"upsert","entity":"e","attr":"a","value":"x"},"id":23}"#,
        );
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(
            resp.contains("field \\\"mutate.value\\\" must be a finite number"),
            "{resp}"
        );
        // …and an out-of-vocabulary attribute a structured rejection.
        let resp = roundtrip(
            &mut stream,
            &format!(
                r#"{{"mutate":{{"op":"upsert","entity":"{entity}","attr":"no_such_attr","value":1.0}},"id":24}}"#
            ),
        );
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("not in the serving vocabulary"), "{resp}");

        writeln!(stream, "{METRICS_COMMAND}").expect("write");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut text = String::new();
        loop {
            let mut l = String::new();
            reader.read_line(&mut l).expect("read");
            if l.trim().is_empty() {
                break;
            }
            text.push_str(&l);
        }
        assert!(text.contains("cf_serve_mutations_ok_total 2"), "{text}");
        assert!(
            text.contains("cf_serve_mutations_rejected_total 1"),
            "{text}"
        );

        shutdown.store(true, Ordering::SeqCst);
    }

    #[test]
    fn zero_queue_cap_server_sheds_with_overloaded() {
        let (addr, shutdown, entity, attrs) = start(EngineConfig {
            queue_cap: 0,
            ..EngineConfig::default()
        });
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let req = format!(r#"{{"entity":"{entity}","attr":"{}","id":5}}"#, attrs[0]);
        let resp = roundtrip(&mut stream, &req);
        assert!(resp.contains("\"ok\":false"), "{resp}");
        assert!(resp.contains("overloaded"), "{resp}");
        assert!(resp.contains("\"id\":5"), "{resp}");
        shutdown.store(true, Ordering::SeqCst);
    }
}
