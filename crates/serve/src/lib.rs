#![warn(missing_docs)]

//! # cf-serve
//!
//! Batched, tape-free inference serving for the ChainsFormer reproduction
//! (DESIGN.md §9):
//!
//! - [`engine::Engine`] — N model-replica shards (entity-hash routed, so
//!   responses are bitwise identical at any shard count), each with a
//!   bounded micro-batching queue drained by worker threads, latency-aware
//!   admission control ([`engine::admit`]), coordinated hot-reload, live
//!   graph mutation ([`engine::Engine::mutate`]: CFJ1-journaled before
//!   visible, `max_hops`-BFS cache/index invalidation, periodic
//!   compaction), and per-query deterministic retrieval;
//! - [`cache::ChainCache`] — LRU cache of chain-retrieval results keyed by
//!   `(entity, attribute)`, invalidated by entity on mutation;
//! - [`protocol`] — the hand-rolled line-delimited JSON wire format;
//! - [`server`] — thread-per-connection TCP front-end with a
//!   `GET /metrics` command, `{"reload": "path"}` / `{"mutate": …}` admin
//!   requests (hot model swap, live-graph mutation) that never drop
//!   traffic, and graceful shutdown on SIGTERM or stdin close;
//! - [`metrics::Metrics`] — lock-free counters and p50/p95/p99 latency /
//!   batch-size histograms.
//!
//! Inference runs on [`cf_tensor::InferCtx`] (no tape nodes, no gradient
//! closures) through [`chainsformer::ChainsFormer::predict_batch_with_chains`],
//! which is pinned bitwise-identical to the taped single-query path — so
//! serving never changes a prediction, only its cost.

pub mod cache;
pub mod engine;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use cache::{CachedChains, ChainCache};
pub use engine::{
    admit, dirty_entities, projected_delay_us, query_rng_seed, shard_of, Admission, Engine,
    EngineConfig, GraphGuard, MutationOutcome, QuantMode, Reply, ServeError, ServedPrediction,
};
pub use metrics::{Histogram, Metrics};
pub use server::{install_signals, run, shutdown_on_stdin_close, signalled, METRICS_COMMAND};
