//! Lock-free serving metrics: monotonic counters plus log₂-bucketed
//! histograms for latency and batch size, rendered in a flat
//! Prometheus-style text format for the `GET /metrics` command.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets. Bucket `b > 0` holds values in
/// `[2^(b-1), 2^b)`; bucket 0 holds zero. 2³⁹ µs ≈ 6 days — far past any
/// latency this server can produce.
const BUCKETS: usize = 40;

/// A lock-free histogram over `u64` samples with power-of-two buckets.
///
/// Recording is a pair of relaxed atomic increments, so worker and
/// connection threads never contend on a lock for metrics. Quantiles are
/// bucket lower bounds — exact enough for p50/p95/p99 dashboards, never
/// an overestimate.
#[derive(Debug)]
pub struct Histogram {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn bucket(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.counts[Self::bucket(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> u64 {
        let n = self.count();
        if n == 0 {
            0
        } else {
            self.sum() / n
        }
    }

    /// Drains every bucket, the sum, and the max back to zero, returning
    /// the number of samples drained.
    ///
    /// Each bucket is drained with an atomic `swap`, so a sample recorded
    /// concurrently is observed exactly once — either by this drain or by
    /// a later reader — never lost in a load-then-store window and never
    /// double-counted. (The `sum` and `max` cells are separate atomics, so
    /// a sample racing the drain may land its count and sum on opposite
    /// sides of the boundary; counts themselves are exact.)
    pub fn reset(&self) -> u64 {
        let mut drained = 0;
        for c in &self.counts {
            drained += c.swap(0, Ordering::AcqRel);
        }
        self.sum.swap(0, Ordering::AcqRel);
        self.max.swap(0, Ordering::AcqRel);
        drained
    }

    /// Approximate quantile `q ∈ [0, 1]`: the lower bound of the bucket
    /// containing the q-th sample (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return if b == 0 { 0 } else { 1u64 << (b - 1) };
            }
        }
        self.max()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-shard serving counters, rendered with a `{shard="i"}` label after
/// the global (unlabeled) metrics. Every cell is also counted in the
/// matching global counter, so existing dashboards keep working unchanged;
/// the shard rows exist to expose routing balance, per-shard shedding, and
/// the admission controller's service-time estimate.
pub struct ShardMetrics {
    /// Requests routed to this shard (accepted or shed).
    pub requests: AtomicU64,
    /// Requests this shard shed (queue full or projected delay > deadline).
    pub shed: AtomicU64,
    /// Chain-cache hits in this shard's cache.
    pub cache_hits: AtomicU64,
    /// Chain-cache misses in this shard's cache.
    pub cache_misses: AtomicU64,
    /// Coordinated reloads that swapped this shard's parameters.
    pub reloads_ok: AtomicU64,
    /// Coordinated reloads rejected before any shard swapped.
    pub reloads_rejected: AtomicU64,
    /// EWMA of per-request service time on this shard, microseconds
    /// (gauge, written by the shard's workers; admission control reads it).
    pub ewma_service_us: AtomicU64,
}

impl ShardMetrics {
    fn new() -> Self {
        ShardMetrics {
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            reloads_ok: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            ewma_service_us: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for a in [
            &self.requests,
            &self.shed,
            &self.cache_hits,
            &self.cache_misses,
            &self.reloads_ok,
            &self.reloads_rejected,
            &self.ewma_service_us,
        ] {
            a.swap(0, Ordering::AcqRel);
        }
    }
}

/// All serving counters and histograms. One instance lives in the engine
/// and is shared (by reference) with the server's connection threads.
pub struct Metrics {
    /// Requests that reached the engine queue (accepted or shed).
    pub requests: AtomicU64,
    /// Successfully answered predictions.
    pub ok: AtomicU64,
    /// Malformed or failed requests (parse errors, unknown names).
    pub errors: AtomicU64,
    /// Requests rejected because the queue was full (overload shedding).
    pub shed: AtomicU64,
    /// Requests dropped because their deadline expired before processing.
    pub deadline_missed: AtomicU64,
    /// Predictions answered by the training-mean fallback (no chains).
    pub fallbacks: AtomicU64,
    /// Chain-cache hits.
    pub cache_hits: AtomicU64,
    /// Chain-cache misses (retrieval ran).
    pub cache_misses: AtomicU64,
    /// Model hot-reloads that validated and swapped successfully.
    pub reloads_ok: AtomicU64,
    /// Model hot-reloads rejected (corrupt file, shape mismatch, io
    /// error); the previous model kept serving.
    pub reloads_rejected: AtomicU64,
    /// Graph mutation batches validated, journaled, and applied.
    pub mutations_ok: AtomicU64,
    /// Graph mutation batches rejected (validation or journal failure);
    /// the live graph was left untouched.
    pub mutations_rejected: AtomicU64,
    /// End-to-end latency per answered request, microseconds.
    pub latency_us: Histogram,
    /// Batch sizes actually executed by the workers.
    pub batch_size: Histogram,
    /// Inference mode gauge: 1 when the engine serves the int8 quantized
    /// path, 0 for f32. Config state, not a counter — [`Self::reset`]
    /// leaves it alone so a drained benchmark window still reports its mode.
    quantize_int8: AtomicU64,
    /// Per-shard counters (empty for non-sharded users of the type).
    shards: Vec<ShardMetrics>,
}

impl Metrics {
    /// Fresh, all-zero metrics with no per-shard rows (the single-engine /
    /// unit-test shape; the sharded engine uses [`Self::with_shards`]).
    pub fn new() -> Self {
        Self::with_shards(0)
    }

    /// Fresh, all-zero metrics carrying `shards` per-shard counter rows.
    pub fn with_shards(shards: usize) -> Self {
        Metrics {
            requests: AtomicU64::new(0),
            ok: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_missed: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            reloads_ok: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            mutations_ok: AtomicU64::new(0),
            mutations_rejected: AtomicU64::new(0),
            latency_us: Histogram::new(),
            batch_size: Histogram::new(),
            quantize_int8: AtomicU64::new(0),
            shards: (0..shards).map(|_| ShardMetrics::new()).collect(),
        }
    }

    /// Records which numeric mode the engine serves in (rendered as the
    /// `cf_serve_quantize_mode{mode="..."}` gauge).
    pub fn set_quantize_int8(&self, int8: bool) {
        self.quantize_int8.store(u64::from(int8), Ordering::Relaxed);
    }

    /// The counters for shard `i` (panics when out of range — the engine
    /// routes with `% shard_count`, so a miss is a routing bug).
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Number of per-shard counter rows.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Drains every counter and histogram back to zero, returning the
    /// number of requests drained. For benchmarks that warm the engine up
    /// and then measure a clean window.
    ///
    /// Like [`Histogram::reset`], every cell is drained with an atomic
    /// `swap`, so concurrent increments are never lost — each one is seen
    /// exactly once, by this drain or by a later reader.
    pub fn reset(&self) -> u64 {
        let drained = self.requests.swap(0, Ordering::AcqRel);
        for a in [
            &self.ok,
            &self.errors,
            &self.shed,
            &self.deadline_missed,
            &self.fallbacks,
            &self.cache_hits,
            &self.cache_misses,
            &self.reloads_ok,
            &self.reloads_rejected,
            &self.mutations_ok,
            &self.mutations_rejected,
        ] {
            a.swap(0, Ordering::AcqRel);
        }
        self.latency_us.reset();
        self.batch_size.reset();
        for s in &self.shards {
            s.reset();
        }
        drained
    }

    /// Cache hit rate in `[0, 1]` (0 when no lookups happened).
    pub fn cache_hit_rate(&self) -> f64 {
        let h = self.cache_hits.load(Ordering::Relaxed) as f64;
        let m = self.cache_misses.load(Ordering::Relaxed) as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Renders every metric as `name value` lines (Prometheus-style).
    pub fn render(&self) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(s, "cf_serve_requests_total {}", g(&self.requests));
        let _ = writeln!(s, "cf_serve_ok_total {}", g(&self.ok));
        let _ = writeln!(s, "cf_serve_errors_total {}", g(&self.errors));
        let _ = writeln!(s, "cf_serve_shed_total {}", g(&self.shed));
        let _ = writeln!(
            s,
            "cf_serve_deadline_missed_total {}",
            g(&self.deadline_missed)
        );
        let _ = writeln!(s, "cf_serve_fallback_total {}", g(&self.fallbacks));
        let _ = writeln!(s, "cf_serve_cache_hits_total {}", g(&self.cache_hits));
        let _ = writeln!(s, "cf_serve_cache_misses_total {}", g(&self.cache_misses));
        let _ = writeln!(s, "cf_serve_cache_hit_rate {:.4}", self.cache_hit_rate());
        let _ = writeln!(s, "cf_serve_reloads_ok_total {}", g(&self.reloads_ok));
        let _ = writeln!(
            s,
            "cf_serve_reloads_rejected_total {}",
            g(&self.reloads_rejected)
        );
        let _ = writeln!(s, "cf_serve_mutations_ok_total {}", g(&self.mutations_ok));
        let _ = writeln!(
            s,
            "cf_serve_mutations_rejected_total {}",
            g(&self.mutations_rejected)
        );
        let _ = writeln!(s, "cf_serve_latency_us_count {}", self.latency_us.count());
        let _ = writeln!(s, "cf_serve_latency_us_mean {}", self.latency_us.mean());
        let _ = writeln!(
            s,
            "cf_serve_latency_us_p50 {}",
            self.latency_us.quantile(0.50)
        );
        let _ = writeln!(
            s,
            "cf_serve_latency_us_p95 {}",
            self.latency_us.quantile(0.95)
        );
        let _ = writeln!(
            s,
            "cf_serve_latency_us_p99 {}",
            self.latency_us.quantile(0.99)
        );
        let _ = writeln!(s, "cf_serve_latency_us_max {}", self.latency_us.max());
        let _ = writeln!(s, "cf_serve_batch_size_mean {}", self.batch_size.mean());
        let _ = writeln!(
            s,
            "cf_serve_batch_size_p50 {}",
            self.batch_size.quantile(0.50)
        );
        let _ = writeln!(s, "cf_serve_batch_size_max {}", self.batch_size.max());
        let mode = if self.quantize_int8.load(Ordering::Relaxed) != 0 {
            "int8"
        } else {
            "f32"
        };
        let _ = writeln!(s, "cf_serve_quantize_mode{{mode=\"{mode}\"}} 1");
        // Shard-labeled rows come after every global line, so scrapers that
        // stop at the first unknown name (or match exact prefixes) keep
        // seeing the original unlabeled fields untouched.
        for (i, sh) in self.shards.iter().enumerate() {
            let _ = writeln!(
                s,
                "cf_serve_shard_requests_total{{shard=\"{i}\"}} {}",
                g(&sh.requests)
            );
            let _ = writeln!(
                s,
                "cf_serve_shard_shed_total{{shard=\"{i}\"}} {}",
                g(&sh.shed)
            );
            let _ = writeln!(
                s,
                "cf_serve_shard_cache_hits_total{{shard=\"{i}\"}} {}",
                g(&sh.cache_hits)
            );
            let _ = writeln!(
                s,
                "cf_serve_shard_cache_misses_total{{shard=\"{i}\"}} {}",
                g(&sh.cache_misses)
            );
            let _ = writeln!(
                s,
                "cf_serve_shard_reloads_ok_total{{shard=\"{i}\"}} {}",
                g(&sh.reloads_ok)
            );
            let _ = writeln!(
                s,
                "cf_serve_shard_reloads_rejected_total{{shard=\"{i}\"}} {}",
                g(&sh.reloads_rejected)
            );
            let _ = writeln!(
                s,
                "cf_serve_shard_ewma_service_us{{shard=\"{i}\"}} {}",
                g(&sh.ewma_service_us)
            );
        }
        s
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 100, 1000, 10_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 11_107);
        assert_eq!(h.max(), 10_000);
        // p50 of {1,2,4,100,1000,10000}: 3rd sample = 4 → bucket [4,8).
        assert_eq!(h.quantile(0.5), 4);
        // p99 lands in the last sample's bucket [8192, 16384).
        assert_eq!(h.quantile(0.99), 8192);
        // Quantiles never overestimate: lower bound of the bucket.
        assert!(h.quantile(1.0) <= 10_000);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn reset_returns_metrics_to_zero() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(2, Ordering::Relaxed);
        m.latency_us.record(500);
        m.batch_size.record(4);
        m.reset();
        assert_eq!(m.requests.load(Ordering::Relaxed), 0);
        assert_eq!(m.cache_hit_rate(), 0.0);
        assert_eq!(m.latency_us.count(), 0);
        assert_eq!(m.latency_us.max(), 0);
        assert_eq!(m.batch_size.quantile(0.5), 0);
    }

    #[test]
    fn concurrent_reset_never_loses_or_double_counts_samples() {
        // Recording threads hammer the histogram while a drainer resets it
        // in a tight loop. The swap-based drain guarantees every sample is
        // counted exactly once: the drained totals plus whatever remains
        // equal exactly what was recorded. (The old store(0) reset lost
        // samples recorded between its load and its store.)
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;

        const THREADS: usize = 4;
        const PER_THREAD: u64 = 20_000;
        let m = Arc::new(Metrics::new());
        let stop = Arc::new(AtomicBool::new(false));

        let drainer = {
            let m = Arc::clone(&m);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut drained = 0u64;
                while !stop.load(Ordering::Acquire) {
                    drained += m.latency_us.reset();
                }
                drained
            })
        };
        let recorders: Vec<_> = (0..THREADS)
            .map(|t| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        m.latency_us.record((t as u64 * 31 + i) % 512);
                    }
                })
            })
            .collect();
        for r in recorders {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        let drained = drainer.join().unwrap();
        assert_eq!(
            drained + m.latency_us.count(),
            THREADS as u64 * PER_THREAD,
            "samples lost or double-counted across concurrent resets"
        );
    }

    #[test]
    fn shard_rows_render_after_globals_and_reset_drains_them() {
        let m = Metrics::with_shards(2);
        assert_eq!(m.shard_count(), 2);
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.shard(0).requests.fetch_add(2, Ordering::Relaxed);
        m.shard(1).requests.fetch_add(1, Ordering::Relaxed);
        m.shard(1).shed.fetch_add(1, Ordering::Relaxed);
        m.shard(0).ewma_service_us.store(512, Ordering::Relaxed);
        let text = m.render();
        // Global names are untouched (no label crept into them)…
        assert!(text.contains("cf_serve_requests_total 3"), "{text}");
        // …and every shard row is labeled.
        assert!(
            text.contains("cf_serve_shard_requests_total{shard=\"0\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("cf_serve_shard_requests_total{shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cf_serve_shard_shed_total{shard=\"1\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("cf_serve_shard_ewma_service_us{shard=\"0\"} 512"),
            "{text}"
        );
        // Shard rows come after the last global line.
        let global_at = text.find("cf_serve_batch_size_max").unwrap();
        let shard_at = text.find("cf_serve_shard_requests_total").unwrap();
        assert!(shard_at > global_at, "shard rows interleaved with globals");
        m.reset();
        assert_eq!(m.shard(0).requests.load(Ordering::Relaxed), 0);
        assert_eq!(m.shard(1).shed.load(Ordering::Relaxed), 0);
        assert_eq!(m.shard(0).ewma_service_us.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn unsharded_metrics_render_no_shard_rows() {
        let m = Metrics::new();
        assert_eq!(m.shard_count(), 0);
        assert!(!m.render().contains("cf_serve_shard_"));
    }

    #[test]
    fn quantize_mode_gauge_renders_and_survives_reset() {
        let m = Metrics::new();
        assert!(m
            .render()
            .contains("cf_serve_quantize_mode{mode=\"f32\"} 1"));
        m.set_quantize_int8(true);
        assert!(m
            .render()
            .contains("cf_serve_quantize_mode{mode=\"int8\"} 1"));
        m.reset();
        // Mode is config state: a drained bench window still reports it.
        assert!(m
            .render()
            .contains("cf_serve_quantize_mode{mode=\"int8\"} 1"));
    }

    #[test]
    fn render_contains_every_counter() {
        let m = Metrics::new();
        m.requests.fetch_add(3, Ordering::Relaxed);
        m.cache_hits.fetch_add(1, Ordering::Relaxed);
        m.cache_misses.fetch_add(1, Ordering::Relaxed);
        m.latency_us.record(500);
        let text = m.render();
        assert!(text.contains("cf_serve_requests_total 3"));
        assert!(text.contains("cf_serve_cache_hit_rate 0.5000"));
        assert!(text.contains("cf_serve_latency_us_p50 256"));
    }

    #[test]
    fn mutation_counters_render_and_reset() {
        let m = Metrics::new();
        m.mutations_ok.fetch_add(2, Ordering::Relaxed);
        m.mutations_rejected.fetch_add(1, Ordering::Relaxed);
        let text = m.render();
        assert!(text.contains("cf_serve_mutations_ok_total 2"), "{text}");
        assert!(
            text.contains("cf_serve_mutations_rejected_total 1"),
            "{text}"
        );
        // New rows slot into the global region without renaming anything:
        // they render before the first shard-labeled row would.
        let at = text.find("cf_serve_mutations_ok_total").unwrap();
        let last_global = text.find("cf_serve_batch_size_max").unwrap();
        assert!(at < last_global, "mutation rows must sit in the globals");
        m.reset();
        assert_eq!(m.mutations_ok.load(Ordering::Relaxed), 0);
        assert_eq!(m.mutations_rejected.load(Ordering::Relaxed), 0);
    }
}
