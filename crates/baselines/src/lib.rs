#![warn(missing_docs)]

//! # cf-baselines
//!
//! Every comparison method from the paper's Table III/VIII, implemented from
//! scratch (with documented simulation substitutions where the original
//! depends on unavailable components — see DESIGN.md §2):
//!
//! - [`transe::TransE`] — the embedding substrate (Bordes et al. 2013);
//! - [`nap::NapPlusPlus`] — TransE k-NN attribute aggregation;
//! - [`mrap::MrAP`] — multi-relational attribute propagation;
//! - [`plm_reg::PlmReg`] — frozen-feature regression (PLM features
//!   simulated, S2);
//! - [`kga::Kga`] — quantile binning + link prediction;
//! - [`hynt::HyntLite`] — joint entity/attribute embedding regression;
//! - [`tog::TogR`] — beam-search LLM explorer simulator (S3);
//! - [`llm_sim::LlmSim`] — zero-shot ChatGPT simulators (S4);
//! - [`predictor::AttributeMean`] — the mean reference predictor.
//!
//! All implement [`predictor::NumericPredictor`] and are evaluated with
//! [`predictor::evaluate_baseline`].

pub mod hynt;
pub mod kga;
pub mod llm_sim;
pub mod mrap;
pub mod nap;
pub mod plm_reg;
pub mod predictor;
pub mod tog;
pub mod transe;

pub use hynt::HyntLite;
pub use kga::Kga;
pub use llm_sim::{LlmSim, LlmTier};
pub use mrap::MrAP;
pub use nap::NapPlusPlus;
pub use plm_reg::PlmReg;
pub use predictor::{evaluate_baseline, AttributeMean, NumericPredictor};
pub use tog::{TogConfig, TogR};
pub use transe::{TransE, TransEConfig};
