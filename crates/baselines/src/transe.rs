//! TransE (Bordes et al., 2013): the embedding substrate behind NAP++ and
//! KGA. Margin-based ranking with negative sampling over relational triples,
//! plain SGD on `Vec<f64>` tables (no autodiff needed for this shape).

use cf_kg::{EntityId, KnowledgeGraph, RelationId};
use cf_rand::Rng;

/// Configuration for TransE training.
#[derive(Copy, Clone, Debug)]
pub struct TransEConfig {
    /// Embedding dimension.
    pub dim: usize,
    /// Training epochs over all triples.
    pub epochs: usize,
    /// SGD learning rate.
    pub lr: f64,
    /// Ranking margin between positive and corrupted triples.
    pub margin: f64,
}

impl Default for TransEConfig {
    fn default() -> Self {
        TransEConfig {
            dim: 24,
            epochs: 30,
            lr: 0.02,
            margin: 1.0,
        }
    }
}

/// Trained TransE embeddings: `h + r ≈ t` under L2 distance.
#[derive(Clone, Debug)]
pub struct TransE {
    /// Embedding dimension.
    pub dim: usize,
    entities: Vec<Vec<f64>>,
    relations: Vec<Vec<f64>>,
}

impl TransE {
    /// Trains on the graph's relational triples. Supports an optional list
    /// of *extra* triples over an extended entity space (KGA's bin
    /// entities): `extra_entities` widens the table.
    pub fn fit_with_extra(
        graph: &KnowledgeGraph,
        cfg: TransEConfig,
        extra_entities: usize,
        extra_relations: usize,
        extra_triples: &[(usize, usize, usize)],
        rng: &mut impl Rng,
    ) -> Self {
        let ne = graph.num_entities() + extra_entities;
        let nr = graph.num_relations() + extra_relations;
        let bound = 6.0 / (cfg.dim as f64).sqrt();
        let mut entities: Vec<Vec<f64>> = (0..ne)
            .map(|_| (0..cfg.dim).map(|_| rng.gen_range(-bound..bound)).collect())
            .collect();
        let mut relations: Vec<Vec<f64>> = (0..nr)
            .map(|_| (0..cfg.dim).map(|_| rng.gen_range(-bound..bound)).collect())
            .collect();
        for r in &mut relations {
            normalize(r);
        }

        let mut triples: Vec<(usize, usize, usize)> = graph
            .triples()
            .iter()
            .map(|t| (t.head.0 as usize, t.rel.0 as usize, t.tail.0 as usize))
            .collect();
        triples.extend_from_slice(extra_triples);
        if triples.is_empty() {
            return TransE {
                dim: cfg.dim,
                entities,
                relations,
            };
        }

        for _ in 0..cfg.epochs {
            for &(h, r, t) in &triples {
                // Corrupt head or tail uniformly.
                let corrupt_head = rng.gen_bool(0.5);
                let neg = rng.gen_range(0..ne);
                let (nh, nt) = if corrupt_head { (neg, t) } else { (h, neg) };
                let d_pos = score_raw(&entities[h], &relations[r], &entities[t]);
                let d_neg = score_raw(&entities[nh], &relations[r], &entities[nt]);
                if d_pos + cfg.margin <= d_neg {
                    continue; // margin satisfied
                }
                // Gradient of ||h + r - t||^2 wrt h is 2(h + r - t); descend
                // positive triple distance, ascend negative.
                for i in 0..cfg.dim {
                    let gp = 2.0 * (entities[h][i] + relations[r][i] - entities[t][i]);
                    entities[h][i] -= cfg.lr * gp;
                    relations[r][i] -= cfg.lr * gp;
                    entities[t][i] += cfg.lr * gp;
                    let gn = 2.0 * (entities[nh][i] + relations[r][i] - entities[nt][i]);
                    entities[nh][i] += cfg.lr * gn;
                    relations[r][i] += cfg.lr * gn;
                    entities[nt][i] -= cfg.lr * gn;
                }
                normalize(&mut entities[h]);
                normalize(&mut entities[t]);
                normalize(&mut entities[nh]);
                normalize(&mut entities[nt]);
            }
        }
        TransE {
            dim: cfg.dim,
            entities,
            relations,
        }
    }

    /// Trains on the graph's relational triples only.
    pub fn fit(graph: &KnowledgeGraph, cfg: TransEConfig, rng: &mut impl Rng) -> Self {
        Self::fit_with_extra(graph, cfg, 0, 0, &[], rng)
    }

    /// Embedding of a graph entity.
    pub fn entity(&self, e: EntityId) -> &[f64] {
        &self.entities[e.0 as usize]
    }

    /// Raw-index access (covers extra/bin entities).
    pub fn entity_raw(&self, i: usize) -> &[f64] {
        &self.entities[i]
    }

    /// Embedding of a graph relation.
    pub fn relation(&self, r: RelationId) -> &[f64] {
        &self.relations[r.0 as usize]
    }

    /// Raw-index relation access (covers extra relations).
    pub fn relation_raw(&self, i: usize) -> &[f64] {
        &self.relations[i]
    }

    /// Total entities in the table (graph + extras).
    pub fn num_entities(&self) -> usize {
        self.entities.len()
    }

    /// Squared translation error `||h + r − t||²` (lower = more plausible).
    pub fn triple_score(&self, h: usize, r: usize, t: usize) -> f64 {
        score_raw(&self.entities[h], &self.relations[r], &self.entities[t])
    }

    /// Euclidean distance between entity embeddings.
    pub fn entity_distance(&self, a: EntityId, b: EntityId) -> f64 {
        self.entities[a.0 as usize]
            .iter()
            .zip(&self.entities[b.0 as usize])
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    /// The `k` nearest entities to `e` (by embedding distance), excluding
    /// `e` itself.
    pub fn nearest(&self, e: EntityId, k: usize) -> Vec<(EntityId, f64)> {
        let mut dists: Vec<(EntityId, f64)> = (0..self.entities.len() as u32)
            .filter(|&i| i != e.0)
            .map(|i| (EntityId(i), self.entity_distance(e, EntityId(i))))
            .collect();
        dists.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        dists.truncate(k);
        dists
    }
}

fn score_raw(h: &[f64], r: &[f64], t: &[f64]) -> f64 {
    h.iter()
        .zip(r)
        .zip(t)
        .map(|((&hi, &ri), &ti)| (hi + ri - ti).powi(2))
        .sum()
}

fn normalize(v: &mut [f64]) {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 1.0 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    /// Two clusters connected internally: cluster members should embed
    /// closer to each other than across clusters.
    fn cluster_graph() -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        let es: Vec<EntityId> = (0..8).map(|i| g.add_entity(format!("e{i}"))).collect();
        let r = g.add_relation_type("r");
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    g.add_triple(es[i], r, es[j]);
                    g.add_triple(es[i + 4], r, es[j + 4]);
                }
            }
        }
        g.build_index();
        g
    }

    #[test]
    fn embeds_clusters_apart() {
        let g = cluster_graph();
        let mut rng = StdRng::seed_from_u64(0);
        let te = TransE::fit(
            &g,
            TransEConfig {
                epochs: 60,
                ..Default::default()
            },
            &mut rng,
        );
        let intra = te.entity_distance(EntityId(0), EntityId(1))
            + te.entity_distance(EntityId(4), EntityId(5));
        let inter = te.entity_distance(EntityId(0), EntityId(4))
            + te.entity_distance(EntityId(1), EntityId(5));
        assert!(
            inter > intra,
            "clusters not separated: intra {intra:.3} inter {inter:.3}"
        );
    }

    #[test]
    fn positive_triples_score_better_than_random() {
        let g = cluster_graph();
        let mut rng = StdRng::seed_from_u64(1);
        let te = TransE::fit(&g, TransEConfig::default(), &mut rng);
        let pos = te.triple_score(0, 0, 1);
        let neg = te.triple_score(0, 0, 7);
        assert!(pos < neg, "positive {pos:.3} vs negative {neg:.3}");
    }

    #[test]
    fn nearest_returns_sorted_k() {
        let g = cluster_graph();
        let mut rng = StdRng::seed_from_u64(2);
        let te = TransE::fit(&g, TransEConfig::default(), &mut rng);
        let nn = te.nearest(EntityId(0), 3);
        assert_eq!(nn.len(), 3);
        assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(nn.iter().all(|&(e, _)| e != EntityId(0)));
    }

    #[test]
    fn extra_entities_extend_the_table() {
        let g = cluster_graph();
        let mut rng = StdRng::seed_from_u64(3);
        let te = TransE::fit_with_extra(
            &g,
            TransEConfig::default(),
            5,
            1,
            &[(0, 1, 8)], // entity 0 links to extra entity 8 via extra rel 1
            &mut rng,
        );
        assert_eq!(te.num_entities(), 13);
        assert_eq!(te.entity_raw(12).len(), te.dim);
    }

    #[test]
    fn embeddings_stay_bounded() {
        let g = cluster_graph();
        let mut rng = StdRng::seed_from_u64(4);
        let te = TransE::fit(
            &g,
            TransEConfig {
                epochs: 100,
                lr: 0.1,
                ..Default::default()
            },
            &mut rng,
        );
        for i in 0..te.num_entities() {
            let n: f64 = te.entity_raw(i).iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!(n <= 1.0 + 1e-9, "entity {i} escaped the unit ball: {n}");
        }
    }
}
