//! ToG-R simulator (substitution S3, DESIGN.md): Think-on-Graph drives an
//! LLM to beam-search the KG. With no LLM available offline, the explorer is
//! reproduced as beam search under a *noisy relevance oracle* (relation →
//! query-attribute co-occurrence plus Gaussian noise standing in for LLM
//! judgement), and the final answer aggregation carries calibrated relative
//! noise standing in for zero-shot numeric estimation. This preserves the
//! Table-III profile: competitive on spatially local attributes, erratic on
//! wide-range regression.

use crate::predictor::{AttributeMean, NumericPredictor};
use cf_chains::Query;
use cf_kg::{AttributeId, DirRel, EntityId, KnowledgeGraph, NumTriple};
use cf_rand::RngCore;
use std::collections::HashMap;

/// Configuration of the simulated explorer.
#[derive(Copy, Clone, Debug)]
pub struct TogConfig {
    /// Beam width of the explorer.
    pub beam_width: usize,
    /// Maximum exploration depth.
    pub depth: usize,
    /// Std-dev of the oracle noise on relevance scores.
    pub oracle_noise: f64,
    /// Relative noise on the final numeric estimate (LLM zero-shot error).
    pub answer_noise: f64,
}

impl Default for TogConfig {
    fn default() -> Self {
        TogConfig {
            beam_width: 4,
            depth: 3,
            oracle_noise: 0.5,
            answer_noise: 0.12,
        }
    }
}

/// ToG-R: beam search guided by a noisy relevance oracle.
pub struct TogR {
    cfg: TogConfig,
    /// Relevance prior: log co-occurrence of (directed relation, attribute).
    relevance: HashMap<(DirRel, AttributeId), f64>,
    fallback: AttributeMean,
}

impl TogR {
    /// Builds the relevance prior from the visible graph's co-occurrences.
    pub fn fit(graph: &KnowledgeGraph, train: &[NumTriple], cfg: TogConfig) -> Self {
        let relevance = graph
            .relation_attribute_cooccurrence()
            .into_iter()
            .map(|(k, c)| (k, (1.0 + c as f64).ln()))
            .collect();
        TogR {
            cfg,
            relevance,
            fallback: AttributeMean::fit(graph.num_attributes(), train),
        }
    }

    fn oracle(&self, dr: DirRel, attr: AttributeId, rng: &mut dyn RngCore) -> f64 {
        let base = self.relevance.get(&(dr, attr)).copied().unwrap_or(0.0);
        base + self.cfg.oracle_noise * cf_rand::sample_normal(rng)
    }
}

impl NumericPredictor for TogR {
    fn name(&self) -> &'static str {
        "ToG-R"
    }

    fn predict(&self, graph: &KnowledgeGraph, query: Query, rng: &mut dyn RngCore) -> f64 {
        // Beam of frontier entities with path scores.
        let mut beam: Vec<(EntityId, f64)> = vec![(query.entity, 0.0)];
        let mut evidence: Vec<(f64, f64)> = Vec::new(); // (value, weight)
        for depth in 1..=self.cfg.depth {
            let mut candidates: Vec<(EntityId, f64)> = Vec::new();
            for &(e, score) in &beam {
                for edge in graph.neighbors(e) {
                    let rel_score = self.oracle(edge.dr, query.attr, rng);
                    candidates.push((edge.to, score + rel_score));
                }
            }
            candidates.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            candidates.truncate(self.cfg.beam_width);
            if candidates.is_empty() {
                break;
            }
            for &(e, _) in &candidates {
                if e == query.entity {
                    continue;
                }
                if let Some(v) = graph.value_of(e, query.attr) {
                    evidence.push((v, 1.0 / depth as f64));
                }
            }
            beam = candidates;
        }
        let estimate = if evidence.is_empty() {
            // The "LLM guesses from parametric knowledge" branch.
            self.fallback.mean(query.attr)
                * (1.0 + 2.0 * self.cfg.answer_noise * cf_rand::sample_normal(rng))
        } else {
            let den: f64 = evidence.iter().map(|e| e.1).sum();
            let mean = evidence.iter().map(|e| e.0 * e.1).sum::<f64>() / den;
            mean * (1.0 + self.cfg.answer_noise * cf_rand::sample_normal(rng))
        };
        if estimate.is_finite() {
            estimate
        } else {
            self.fallback.mean(query.attr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn finds_nearby_spatial_evidence() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::default_scale(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let tog = TogR::fit(&visible, &split.train, TogConfig::default());
        let lat = g.attribute_by_name("latitude").unwrap();
        let mut errs = Vec::new();
        for t in split.test.iter().filter(|t| t.attr == lat).take(20) {
            let p = tog.predict(
                &visible,
                Query {
                    entity: t.entity,
                    attr: t.attr,
                },
                &mut rng,
            );
            errs.push((p - t.value).abs());
        }
        assert!(!errs.is_empty());
        let mae = errs.iter().sum::<f64>() / errs.len() as f64;
        // Latitude range is ~125 degrees; graph locality should keep ToG-R
        // well under guessing error (~30).
        assert!(mae < 20.0, "ToG-R latitude MAE too high: {mae}");
    }

    #[test]
    fn always_finite() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let tog = TogR::fit(&visible, &split.train, TogConfig::default());
        for t in &split.test {
            let p = tog.predict(
                &visible,
                Query {
                    entity: t.entity,
                    attr: t.attr,
                },
                &mut rng,
            );
            assert!(p.is_finite());
        }
    }

    #[test]
    fn isolated_entity_uses_noisy_prior() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("iso");
        let a = g.add_attribute_type("x");
        g.build_index();
        let train = vec![NumTriple {
            entity: e,
            attr: a,
            value: 100.0,
        }];
        let tog = TogR::fit(&g, &train, TogConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let p = tog.predict(&g, Query { entity: e, attr: a }, &mut rng);
        // Prior-based: noisy but anchored on the training mean.
        assert!((p - 100.0).abs() < 100.0);
    }
}
