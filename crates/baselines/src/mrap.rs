//! MrAP (Bayram et al., 2021): multi-relational attribute propagation.
//! Learns a per-(relation, attribute-pair) linear transport of numeric
//! values and propagates over edges — but only from local (1–2 hop)
//! neighbours, the limitation the paper contrasts with (Table IV:
//! multi-attr ✓, multi-hop ✗).

use crate::predictor::{AttributeMean, NumericPredictor};
use cf_chains::Query;
use cf_kg::{AttributeId, DirRel, KnowledgeGraph, NumTriple};
use cf_rand::RngCore;
use std::collections::HashMap;

/// Linear transport `y ≈ α·x + β` along one (relation, src-attr, dst-attr)
/// key, with its supporting sample count.
#[derive(Copy, Clone, Debug)]
struct Transport {
    alpha: f64,
    beta: f64,
    samples: usize,
}

/// MrAP predictor.
pub struct MrAP {
    transports: HashMap<(DirRel, AttributeId, AttributeId), Transport>,
    fallback: AttributeMean,
}

impl MrAP {
    /// Fits transports on the visible graph. For every edge `e --dr--> n`
    /// where `n` has attribute `a_src` and `e` has `a_dst`, the pair
    /// `(value(n, a_src), value(e, a_dst))` supports the key
    /// `(dr, a_src, a_dst)`.
    pub fn fit(graph: &KnowledgeGraph, train: &[NumTriple], min_samples: usize) -> Self {
        let mut pairs: HashMap<(DirRel, AttributeId, AttributeId), Vec<(f64, f64)>> =
            HashMap::new();
        for e in graph.entities() {
            let dst_facts = graph.numerics_of(e);
            if dst_facts.is_empty() {
                continue;
            }
            for edge in graph.neighbors(e) {
                for fs in graph.numerics_of(edge.to) {
                    for fd in dst_facts {
                        pairs
                            .entry((edge.dr, fs.attr, fd.attr))
                            .or_default()
                            .push((fs.value, fd.value));
                    }
                }
            }
        }
        let transports = pairs
            .into_iter()
            .filter(|(_, v)| v.len() >= min_samples)
            .filter_map(|(key, v)| {
                fit_linear(&v).map(|(alpha, beta)| {
                    (
                        key,
                        Transport {
                            alpha,
                            beta,
                            samples: v.len(),
                        },
                    )
                })
            })
            .collect();
        MrAP {
            transports,
            fallback: AttributeMean::fit(graph.num_attributes(), train),
        }
    }

    /// Number of fitted (relation, attr, attr) transports.
    pub fn num_transports(&self) -> usize {
        self.transports.len()
    }

    /// Messages into `(entity, attr)` from directly observed neighbour
    /// values: `(prediction, weight)` pairs.
    fn messages(&self, graph: &KnowledgeGraph, query: Query) -> Vec<(f64, f64)> {
        let mut msgs = Vec::new();
        for edge in graph.neighbors(query.entity) {
            for fs in graph.numerics_of(edge.to) {
                if let Some(t) = self.transports.get(&(edge.dr, fs.attr, query.attr)) {
                    msgs.push((t.alpha * fs.value + t.beta, t.samples as f64));
                }
            }
        }
        msgs
    }
}

/// Ordinary least squares for `y = αx + β`; degenerate inputs (constant x)
/// fall back to a mean-shift model (`α = 0`, `β = mean(y)`).
fn fit_linear(pairs: &[(f64, f64)]) -> Option<(f64, f64)> {
    let n = pairs.len() as f64;
    if pairs.is_empty() {
        return None;
    }
    let mx = pairs.iter().map(|p| p.0).sum::<f64>() / n;
    let my = pairs.iter().map(|p| p.1).sum::<f64>() / n;
    let sxx: f64 = pairs.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let sxy: f64 = pairs.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    if sxx < 1e-12 {
        return Some((0.0, my));
    }
    let alpha = sxy / sxx;
    let beta = my - alpha * mx;
    Some((alpha, beta))
}

impl NumericPredictor for MrAP {
    fn name(&self) -> &'static str {
        "MrAP"
    }

    fn predict(&self, graph: &KnowledgeGraph, query: Query, _rng: &mut dyn RngCore) -> f64 {
        // 1-hop messages first.
        let msgs = self.messages(graph, query);
        if !msgs.is_empty() {
            let den: f64 = msgs.iter().map(|m| m.1).sum();
            return msgs.iter().map(|m| m.0 * m.1).sum::<f64>() / den;
        }
        // 2-hop: let each neighbour first estimate the *same* attribute from
        // its own neighbours, then transport identity (MrAP's propagation
        // confined to the local neighbourhood).
        let mut num = 0.0;
        let mut den = 0.0;
        for edge in graph.neighbors(query.entity) {
            let sub = self.messages(
                graph,
                Query {
                    entity: edge.to,
                    attr: query.attr,
                },
            );
            if sub.is_empty() {
                continue;
            }
            let sden: f64 = sub.iter().map(|m| m.1).sum();
            let est = sub.iter().map(|m| m.0 * m.1).sum::<f64>() / sden;
            num += est;
            den += 1.0;
        }
        if den > 0.0 {
            num / den
        } else {
            self.fallback.mean(query.attr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn fit_linear_recovers_slope() {
        let pairs: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, 3.0 * i as f64 + 1.0)).collect();
        let (a, b) = fit_linear(&pairs).unwrap();
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_linear_handles_constant_x() {
        let pairs = vec![(2.0, 5.0), (2.0, 7.0)];
        let (a, b) = fit_linear(&pairs).unwrap();
        assert_eq!(a, 0.0);
        assert_eq!(b, 6.0);
    }

    #[test]
    fn propagates_identity_relation() {
        // Ring of entities where neighbours share the same value: MrAP must
        // learn α≈1, β≈0 and predict a held-out node from its neighbour.
        let mut g = KnowledgeGraph::new();
        let es: Vec<_> = (0..10).map(|i| g.add_entity(format!("e{i}"))).collect();
        let r = g.add_relation_type("same_as");
        let a = g.add_attribute_type("v");
        for i in 0..10 {
            g.add_triple(es[i], r, es[(i + 1) % 10]);
        }
        // Every pair of ring neighbours shares a value; entity 0's value is
        // hidden (not added), to be predicted from entity 1 and 9.
        for i in 1..10 {
            g.add_numeric(es[i], a, 42.0);
        }
        g.build_index();
        let train: Vec<NumTriple> = (1..10)
            .map(|i| NumTriple {
                entity: es[i],
                attr: a,
                value: 42.0,
            })
            .collect();
        let mrap = MrAP::fit(&g, &train, 2);
        let mut rng = StdRng::seed_from_u64(0);
        let pred = mrap.predict(
            &g,
            Query {
                entity: es[0],
                attr: a,
            },
            &mut rng,
        );
        assert!((pred - 42.0).abs() < 1e-6, "got {pred}");
    }

    #[test]
    fn beats_mean_on_spatial_attributes() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::default_scale(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let mrap = MrAP::fit(&visible, &split.train, 3);
        assert!(mrap.num_transports() > 0);
        let mean = AttributeMean::fit(g.num_attributes(), &split.train);
        let lat = g.attribute_by_name("latitude").unwrap();
        let (mut err_mrap, mut err_mean, mut n) = (0.0, 0.0, 0);
        for t in split.test.iter().filter(|t| t.attr == lat) {
            let q = Query {
                entity: t.entity,
                attr: t.attr,
            };
            err_mrap += (mrap.predict(&visible, q, &mut rng) - t.value).abs();
            err_mean += (mean.predict(&visible, q, &mut rng) - t.value).abs();
            n += 1;
        }
        assert!(n > 3, "not enough latitude test triples");
        assert!(
            err_mrap < err_mean,
            "MrAP ({err_mrap:.2}) should beat mean ({err_mean:.2}) on latitude"
        );
    }

    #[test]
    fn falls_back_for_isolated_entities() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("lonely");
        let a = g.add_attribute_type("v");
        g.build_index();
        let train = vec![NumTriple {
            entity: e,
            attr: a,
            value: 5.0,
        }];
        let mrap = MrAP::fit(&g, &train, 2);
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(
            mrap.predict(&g, Query { entity: e, attr: a }, &mut rng),
            5.0
        );
    }
}
