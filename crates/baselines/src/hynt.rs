//! HyNT-lite (after Chung et al., 2023): joint entity/attribute embedding
//! regression. The full HyNT encodes hyper-relational qualifier structure
//! with Transformers; this faithful-in-spirit reduction learns a structural
//! entity table (initialised from TransE so graph structure is present) and
//! an attribute table, and regresses the normalized value from their
//! combination — numeric-aware (Table IV ✓) but single-hop (✗ multi-hop).

use crate::predictor::{AttributeMean, NumericPredictor};
use crate::transe::TransE;
use cf_chains::Query;
use cf_kg::{KnowledgeGraph, MinMaxNormalizer, NumTriple};
use cf_rand::{Rng, RngCore};
use cf_tensor::nn::{Activation, Embedding, Mlp};
use cf_tensor::optim::Adam;
use cf_tensor::{ParamStore, Tape, Tensor};

/// HyNT-lite predictor (see module docs for the reduction).
pub struct HyntLite {
    params: ParamStore,
    entity_emb: Embedding,
    attr_emb: Embedding,
    head: Mlp,
    norm: MinMaxNormalizer,
    fallback: AttributeMean,
}

impl HyntLite {
    /// `transe` provides the structural initialisation of the entity table.
    pub fn fit(
        graph: &KnowledgeGraph,
        transe: &TransE,
        train: &[NumTriple],
        epochs: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let dim = transe.dim;
        let na = graph.num_attributes();
        let mut params = ParamStore::new();
        let entity_emb =
            Embedding::new(&mut params, "hynt.entities", graph.num_entities(), dim, rng);
        // Structural init: copy TransE points.
        {
            let table = params.get_mut(entity_emb.table);
            for e in 0..graph.num_entities() {
                for (i, &v) in transe.entity_raw(e).iter().enumerate() {
                    table.data_mut()[e * dim + i] = v as f32;
                }
            }
        }
        let attr_emb = Embedding::new(&mut params, "hynt.attrs", na, dim, rng);
        let head = Mlp::new(
            &mut params,
            "hynt.head",
            &[2 * dim, 64, 1],
            Activation::Gelu,
            rng,
        );
        let norm = MinMaxNormalizer::fit(na, train);
        let mut opt = Adam::new(1e-3);
        let batch = 32;
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..epochs {
            cf_rand::seq::SliceRandom::shuffle(&mut order[..], rng);
            for chunk in order.chunks(batch) {
                let ents: Vec<usize> = chunk.iter().map(|&i| train[i].entity.0 as usize).collect();
                let attrs: Vec<usize> = chunk.iter().map(|&i| train[i].attr.0 as usize).collect();
                let ys: Vec<f32> = chunk
                    .iter()
                    .map(|&i| norm.normalize(train[i].attr, train[i].value) as f32)
                    .collect();
                let mut tape = Tape::new();
                let ev = entity_emb.forward(&mut tape, &params, &ents);
                let av = attr_emb.forward(&mut tape, &params, &attrs);
                let joint = tape.concat_last(&[ev, av]);
                let pred = head.forward(&mut tape, &params, joint);
                let pred = tape.reshape(pred, [chunk.len()]);
                let loss = tape.l1_loss(pred, &Tensor::new([chunk.len()], ys));
                let grads = tape.backward(loss, params.len());
                opt.step(&mut params, &grads);
            }
        }
        HyntLite {
            params,
            entity_emb,
            attr_emb,
            head,
            norm,
            fallback: AttributeMean::fit(na, train),
        }
    }
}

impl NumericPredictor for HyntLite {
    fn name(&self) -> &'static str {
        "HyNT"
    }

    fn predict(&self, graph: &KnowledgeGraph, query: Query, _rng: &mut dyn RngCore) -> f64 {
        if (query.entity.0 as usize) >= self.entity_emb.vocab() {
            return self.fallback.mean(query.attr);
        }
        let _ = graph;
        let mut tape = Tape::new();
        let ev = self
            .entity_emb
            .forward(&mut tape, &self.params, &[query.entity.0 as usize]);
        let av = self
            .attr_emb
            .forward(&mut tape, &self.params, &[query.attr.0 as usize]);
        let joint = tape.concat_last(&[ev, av]);
        let pred = self.head.forward(&mut tape, &self.params, joint);
        self.norm
            .denormalize(query.attr, tape.value(pred).item() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transe::TransEConfig;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn fit_small(epochs: usize, seed: u64) -> (KnowledgeGraph, Split, HyntLite, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let te = TransE::fit(
            &visible,
            TransEConfig {
                epochs: 10,
                ..Default::default()
            },
            &mut rng,
        );
        let h = HyntLite::fit(&visible, &te, &split.train, epochs, &mut rng);
        (visible, split, h, rng)
    }

    #[test]
    fn fits_training_values_closely() {
        let (visible, split, h, mut rng) = fit_small(80, 0);
        // On *training* triples the model should achieve low error (it can
        // memorise through the entity table).
        let norm = MinMaxNormalizer::fit(visible.num_attributes(), &split.train);
        let rep = crate::predictor::evaluate_baseline(&h, &visible, &split.train, &norm, &mut rng);
        assert!(rep.norm_mae < 0.15, "train MAE {}", rep.norm_mae);
    }

    #[test]
    fn generalizes_better_than_chance() {
        let (visible, split, h, mut rng) = fit_small(60, 1);
        let norm = MinMaxNormalizer::fit(visible.num_attributes(), &split.train);
        let rep = crate::predictor::evaluate_baseline(&h, &visible, &split.test, &norm, &mut rng);
        assert!(rep.norm_mae < 0.4, "test MAE {}", rep.norm_mae);
    }

    #[test]
    fn out_of_table_entity_falls_back() {
        let (visible, split, h, mut rng) = fit_small(2, 2);
        let q = Query {
            entity: cf_kg::EntityId(10_000),
            attr: split.test[0].attr,
        };
        let p = h.predict(&visible, q, &mut rng);
        assert!(p.is_finite());
    }
}
