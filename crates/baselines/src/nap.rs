//! NAP++ (Kotnis & García-Durán, 2019): selects the nearest k neighbours in
//! TransE embedding space and aggregates their numerical attributes.

use crate::predictor::{AttributeMean, NumericPredictor};
use crate::transe::TransE;
use cf_chains::Query;
use cf_kg::{KnowledgeGraph, NumTriple};
use cf_rand::RngCore;

/// NAP++: distance-weighted k-NN over TransE embeddings, restricted to
/// neighbours that carry the queried attribute. One-hop in embedding space
/// only — the paper's Table IV marks it single-hop / same-attribute.
pub struct NapPlusPlus {
    transe: TransE,
    k: usize,
    fallback: AttributeMean,
}

impl NapPlusPlus {
    /// NAP++ over pre-trained TransE embeddings with `k` neighbours.
    pub fn new(transe: TransE, k: usize, num_attributes: usize, train: &[NumTriple]) -> Self {
        NapPlusPlus {
            transe,
            k,
            fallback: AttributeMean::fit(num_attributes, train),
        }
    }

    /// The neighbourhood size `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl NumericPredictor for NapPlusPlus {
    fn name(&self) -> &'static str {
        "NAP++"
    }

    fn predict(&self, graph: &KnowledgeGraph, query: Query, _rng: &mut dyn RngCore) -> f64 {
        // Scan a wider candidate pool so that k *attribute-bearing*
        // neighbours can usually be found.
        let pool = self.transe.nearest(query.entity, self.k * 8);
        let mut num = 0.0;
        let mut den = 0.0;
        let mut found = 0usize;
        for (e, dist) in pool {
            if let Some(v) = graph.value_of(e, query.attr) {
                let w = 1.0 / (dist + 1e-6);
                num += w * v;
                den += w;
                found += 1;
                if found >= self.k {
                    break;
                }
            }
        }
        if den > 0.0 {
            num / den
        } else {
            self.fallback.mean(query.attr)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transe::TransEConfig;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn falls_back_when_no_neighbour_has_attribute() {
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        let r = g.add_relation_type("r");
        let attr = g.add_attribute_type("x");
        g.add_triple(a, r, b);
        g.build_index();
        let mut rng = StdRng::seed_from_u64(0);
        let te = TransE::fit(
            &g,
            TransEConfig {
                epochs: 5,
                ..Default::default()
            },
            &mut rng,
        );
        let train = vec![NumTriple {
            entity: a,
            attr,
            value: 7.0,
        }];
        let nap = NapPlusPlus::new(te, 3, 1, &train);
        let pred = nap.predict(&g, Query { entity: b, attr }, &mut rng);
        assert_eq!(pred, 7.0);
    }

    #[test]
    fn interpolates_neighbour_values_on_synthetic_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let te = TransE::fit(
            &visible,
            TransEConfig {
                epochs: 10,
                ..Default::default()
            },
            &mut rng,
        );
        let nap = NapPlusPlus::new(te, 5, g.num_attributes(), &split.train);
        let q = split.test[0];
        let pred = nap.predict(
            &visible,
            Query {
                entity: q.entity,
                attr: q.attr,
            },
            &mut rng,
        );
        assert!(pred.is_finite());
        // Prediction must be inside the attribute's observed convex hull
        // (it is a weighted average of observed values).
        let owners = visible.entities_with_attribute(q.attr);
        let min = owners.iter().map(|o| o.value).fold(f64::INFINITY, f64::min);
        let max = owners
            .iter()
            .map(|o| o.value)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(pred >= min - 1e-9 && pred <= max + 1e-9);
    }
}
