//! The common interface every baseline implements, plus shared evaluation.

use cf_chains::Query;
use cf_kg::{KnowledgeGraph, MinMaxNormalizer, NumTriple, Prediction, RegressionReport};
use cf_rand::RngCore;

/// A numerical-attribute predictor (a Table-III column).
pub trait NumericPredictor {
    /// Column label as it appears in the paper.
    fn name(&self) -> &'static str;

    /// Predicts the value of `query` against the visible graph.
    fn predict(&self, graph: &KnowledgeGraph, query: Query, rng: &mut dyn RngCore) -> f64;
}

/// Evaluates a predictor over triples, producing the Table-III report.
pub fn evaluate_baseline(
    predictor: &dyn NumericPredictor,
    graph: &KnowledgeGraph,
    triples: &[NumTriple],
    norm: &MinMaxNormalizer,
    rng: &mut dyn RngCore,
) -> RegressionReport {
    let preds: Vec<Prediction> = triples
        .iter()
        .map(|t| {
            let q = Query {
                entity: t.entity,
                attr: t.attr,
            };
            let pred = predictor.predict(graph, q, rng);
            Prediction {
                attr: t.attr,
                truth: t.value,
                pred: if pred.is_finite() { pred } else { 0.0 },
            }
        })
        .collect();
    RegressionReport::compute(&preds, norm)
}

/// Per-attribute training means: the fallback used by several baselines and
/// the weakest sensible reference predictor.
#[derive(Clone, Debug)]
pub struct AttributeMean {
    means: Vec<f64>,
}

impl AttributeMean {
    /// Computes per-attribute means over the training triples.
    pub fn fit(num_attributes: usize, train: &[NumTriple]) -> Self {
        let mut sums = vec![(0.0f64, 0usize); num_attributes];
        for t in train {
            let s = &mut sums[t.attr.0 as usize];
            s.0 += t.value;
            s.1 += 1;
        }
        AttributeMean {
            means: sums
                .iter()
                .map(|&(s, n)| if n > 0 { s / n as f64 } else { 0.0 })
                .collect(),
        }
    }

    /// Training mean of an attribute (0 when unseen).
    pub fn mean(&self, attr: cf_kg::AttributeId) -> f64 {
        self.means[attr.0 as usize]
    }
}

impl NumericPredictor for AttributeMean {
    fn name(&self) -> &'static str {
        "AttrMean"
    }

    fn predict(&self, _graph: &KnowledgeGraph, query: Query, _rng: &mut dyn RngCore) -> f64 {
        self.mean(query.attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::{AttributeId, EntityId};

    fn nt(e: u32, a: u32, v: f64) -> NumTriple {
        NumTriple {
            entity: EntityId(e),
            attr: AttributeId(a),
            value: v,
        }
    }

    #[test]
    fn attribute_mean_fits_per_attribute() {
        let m = AttributeMean::fit(2, &[nt(0, 0, 10.0), nt(1, 0, 20.0), nt(2, 1, 5.0)]);
        assert_eq!(m.mean(AttributeId(0)), 15.0);
        assert_eq!(m.mean(AttributeId(1)), 5.0);
    }

    #[test]
    fn evaluate_baseline_produces_report() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("e");
        let a = g.add_attribute_type("a");
        g.add_numeric(e, a, 1.0);
        g.build_index();
        let train = vec![nt(0, 0, 10.0), nt(0, 0, 20.0)];
        let mean = AttributeMean::fit(1, &train);
        let norm = MinMaxNormalizer::fit(1, &train);
        let mut rng = cf_rand::rngs::mock::StepRng::new(0, 1);
        let rep = evaluate_baseline(&mean, &g, &[nt(0, 0, 15.0)], &norm, &mut rng);
        assert_eq!(rep.norm_mae, 0.0); // mean is exactly 15
    }
}
