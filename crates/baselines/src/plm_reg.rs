//! PLM-reg (Xue et al., 2022): regression on frozen per-entity text
//! features. Substitution S2 (DESIGN.md): no pre-trained language model is
//! available offline, so the frozen "description embedding" is simulated by
//! a deterministic hashed bag-of-neighbourhood vector — which is what a
//! frozen PLM embedding of an entity description effectively encodes here.
//! The method's defining limitation (static per-entity features, no explicit
//! multi-hop numeric propagation) is preserved.

use crate::predictor::{AttributeMean, NumericPredictor};
use cf_chains::Query;
use cf_kg::{Dir, EntityId, KnowledgeGraph, MinMaxNormalizer, NumTriple};
use cf_rand::{Rng, RngCore};
use cf_tensor::nn::{Activation, Mlp};
use cf_tensor::optim::Adam;
use cf_tensor::{ParamStore, Tape, Tensor};

/// Width of the hashed feature vector.
const FEATURE_DIM: usize = 64;

/// Deterministic entity features: hashed relation-type histogram (both
/// directions), attribute-presence flags and log-degree.
pub fn entity_features(graph: &KnowledgeGraph, e: EntityId) -> Vec<f32> {
    let mut f = vec![0.0f32; FEATURE_DIM];
    for edge in graph.neighbors(e) {
        let key = edge.dr.rel.0 as usize * 2 + matches!(edge.dr.dir, Dir::Inverse) as usize;
        f[hash(key) % (FEATURE_DIM - 2)] += 1.0;
    }
    for fact in graph.numerics_of(e) {
        f[hash(1_000 + fact.attr.0 as usize) % (FEATURE_DIM - 2)] += 1.0;
    }
    // Normalize the histogram part, keep two slots for globals.
    let norm: f32 = f.iter().map(|x| x * x).sum::<f32>().sqrt().max(1.0);
    for x in f.iter_mut() {
        *x /= norm;
    }
    f[FEATURE_DIM - 2] = (graph.degree(e) as f32).ln_1p() / 8.0;
    f[FEATURE_DIM - 1] = 1.0; // bias feature
    f
}

fn hash(x: usize) -> usize {
    // Fibonacci hashing — stable across runs.
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// PLM-reg: an MLP from `[entity features ‖ attribute one-hot]` to the
/// normalized value.
pub struct PlmReg {
    params: ParamStore,
    mlp: Mlp,
    norm: MinMaxNormalizer,
    fallback: AttributeMean,
    num_attributes: usize,
}

impl PlmReg {
    /// Trains the regression MLP on hashed entity features.
    pub fn fit(
        graph: &KnowledgeGraph,
        train: &[NumTriple],
        epochs: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let na = graph.num_attributes();
        let in_dim = FEATURE_DIM + na;
        let mut params = ParamStore::new();
        let mlp = Mlp::new(
            &mut params,
            "plm",
            &[in_dim, 64, 32, 1],
            Activation::Relu,
            rng,
        );
        let norm = MinMaxNormalizer::fit(na, train);
        let mut opt = Adam::new(1e-3);
        let batch = 32;
        let mut order: Vec<usize> = (0..train.len()).collect();
        for _ in 0..epochs {
            cf_rand::seq::SliceRandom::shuffle(&mut order[..], rng);
            for chunk in order.chunks(batch) {
                let mut xs = Vec::with_capacity(chunk.len() * in_dim);
                let mut ys = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let t = train[i];
                    xs.extend(feature_row(graph, t.entity, t.attr.0 as usize, na));
                    ys.push(norm.normalize(t.attr, t.value) as f32);
                }
                let mut tape = Tape::new();
                let x = tape.leaf(Tensor::new([chunk.len(), in_dim], xs));
                let pred = mlp.forward(&mut tape, &params, x);
                let pred = tape.reshape(pred, [chunk.len()]);
                let loss = tape.l1_loss(pred, &Tensor::new([chunk.len()], ys));
                let grads = tape.backward(loss, params.len());
                opt.step(&mut params, &grads);
            }
        }
        PlmReg {
            params,
            mlp,
            norm,
            fallback: AttributeMean::fit(na, train),
            num_attributes: na,
        }
    }
}

fn feature_row(graph: &KnowledgeGraph, e: EntityId, attr: usize, na: usize) -> Vec<f32> {
    let mut row = entity_features(graph, e);
    let mut onehot = vec![0.0f32; na];
    onehot[attr] = 1.0;
    row.extend(onehot);
    row
}

impl NumericPredictor for PlmReg {
    fn name(&self) -> &'static str {
        "PLM-reg"
    }

    fn predict(&self, graph: &KnowledgeGraph, query: Query, _rng: &mut dyn RngCore) -> f64 {
        if graph.degree(query.entity) == 0 && graph.numerics_of(query.entity).is_empty() {
            return self.fallback.mean(query.attr);
        }
        let row = feature_row(
            graph,
            query.entity,
            query.attr.0 as usize,
            self.num_attributes,
        );
        let in_dim = row.len();
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::new([1, in_dim], row));
        let pred = self.mlp.forward(&mut tape, &self.params, x);
        let normalized = tape.value(pred).item() as f64;
        self.norm.denormalize(query.attr, normalized)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::Split;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn features_are_deterministic_and_bounded() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let e = EntityId(0);
        let f1 = entity_features(&g, e);
        let f2 = entity_features(&g, e);
        assert_eq!(f1, f2);
        assert_eq!(f1.len(), FEATURE_DIM);
        assert!(f1.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn different_entities_get_different_features() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        // A person and a city differ in relation profile.
        let p = g.entity_by_name("person_0").unwrap();
        let c = g.entity_by_name("city_0_0_0").unwrap();
        assert_ne!(entity_features(&g, p), entity_features(&g, c));
    }

    #[test]
    fn training_beats_mean_on_small_graph() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let plm = PlmReg::fit(&visible, &split.train, 60, &mut rng);
        let norm = MinMaxNormalizer::fit(g.num_attributes(), &split.train);
        let mean = AttributeMean::fit(g.num_attributes(), &split.train);
        let rep_plm =
            crate::predictor::evaluate_baseline(&plm, &visible, &split.test, &norm, &mut rng);
        let rep_mean =
            crate::predictor::evaluate_baseline(&mean, &visible, &split.test, &norm, &mut rng);
        assert!(
            rep_plm.norm_mae <= rep_mean.norm_mae * 1.2,
            "PLM-reg ({}) far worse than mean ({})",
            rep_plm.norm_mae,
            rep_mean.norm_mae
        );
    }

    #[test]
    fn prediction_is_finite_for_every_test_triple() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let plm = PlmReg::fit(&visible, &split.train, 5, &mut rng);
        for t in &split.test {
            let p = plm.predict(
                &visible,
                Query {
                    entity: t.entity,
                    attr: t.attr,
                },
                &mut rng,
            );
            assert!(p.is_finite());
        }
    }
}
