//! KGA (Wang et al., 2022): augments the KG with quantile-bin entities and
//! reduces numeric prediction to link prediction. The quantization error /
//! classification-difficulty trade-off the paper discusses lives in
//! `bins_per_attribute`.

use crate::predictor::{AttributeMean, NumericPredictor};
use crate::transe::{TransE, TransEConfig};
use cf_chains::Query;
use cf_kg::{AttributeId, KnowledgeGraph, NumTriple};
use cf_rand::{Rng, RngCore};

/// Quantile binning of one attribute.
#[derive(Clone, Debug)]
pub struct AttributeBins {
    /// Upper edge of each bin (the last edge is +inf implicitly).
    edges: Vec<f64>,
    /// Mean training value per bin — the value predicted for that bin.
    representatives: Vec<f64>,
}

impl AttributeBins {
    /// Quantile bins over training values. Degenerates gracefully for few
    /// distinct values.
    pub fn fit(values: &[f64], bins: usize) -> Self {
        assert!(bins > 0);
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        if sorted.is_empty() {
            return AttributeBins {
                edges: vec![],
                representatives: vec![0.0],
            };
        }
        let bins = bins.min(sorted.len());
        let mut edges = Vec::with_capacity(bins - 1);
        for b in 1..bins {
            edges.push(sorted[(b * sorted.len()) / bins]);
        }
        let mut sums = vec![(0.0f64, 0usize); bins];
        for &v in &sorted {
            let i = edges.partition_point(|&e| e <= v).min(bins - 1);
            sums[i].0 += v;
            sums[i].1 += 1;
        }
        // Empty bins (duplicate quantiles) inherit the neighbouring mean.
        let mut representatives = Vec::with_capacity(bins);
        let global = sorted.iter().sum::<f64>() / sorted.len() as f64;
        for &(s, n) in &sums {
            representatives.push(if n > 0 { s / n as f64 } else { global });
        }
        AttributeBins {
            edges,
            representatives,
        }
    }

    /// Number of bins.
    pub fn num_bins(&self) -> usize {
        self.representatives.len()
    }

    /// Bin index a value falls into.
    pub fn bin_of(&self, value: f64) -> usize {
        self.edges
            .partition_point(|&e| e <= value)
            .min(self.num_bins() - 1)
    }

    /// The value predicted for a bin (its training mean).
    pub fn representative(&self, bin: usize) -> f64 {
        self.representatives[bin]
    }
}

/// KGA predictor: TransE over the augmented graph, bin chosen by the best
/// `||h + r_a − t_bin||` link-prediction score.
pub struct Kga {
    transe: TransE,
    bins: Vec<AttributeBins>,
    /// Raw-entity index of bin 0 of each attribute.
    bin_base: Vec<usize>,
    /// Raw-relation index of each attribute's `has_<attr>` relation.
    attr_rel: Vec<usize>,
    fallback: AttributeMean,
}

impl Kga {
    /// Bins the training values, augments the graph and trains TransE over it.
    pub fn fit(
        graph: &KnowledgeGraph,
        train: &[NumTriple],
        bins_per_attribute: usize,
        transe_cfg: TransEConfig,
        rng: &mut impl Rng,
    ) -> Self {
        let na = graph.num_attributes();
        // Per-attribute quantile bins on training values.
        let mut per_attr_values: Vec<Vec<f64>> = vec![Vec::new(); na];
        for t in train {
            per_attr_values[t.attr.0 as usize].push(t.value);
        }
        let bins: Vec<AttributeBins> = per_attr_values
            .iter()
            .map(|v| AttributeBins::fit(v, bins_per_attribute))
            .collect();

        // Augmentation: bin entities appended after real entities, one
        // has_<attr> relation per attribute appended after real relations.
        let mut bin_base = Vec::with_capacity(na);
        let mut next = graph.num_entities();
        for b in &bins {
            bin_base.push(next);
            next += b.num_bins();
        }
        let extra_entities = next - graph.num_entities();
        let attr_rel: Vec<usize> = (0..na).map(|a| graph.num_relations() + a).collect();
        let extra_triples: Vec<(usize, usize, usize)> = train
            .iter()
            .map(|t| {
                let a = t.attr.0 as usize;
                let bin = bins[a].bin_of(t.value);
                (t.entity.0 as usize, attr_rel[a], bin_base[a] + bin)
            })
            .collect();
        let transe =
            TransE::fit_with_extra(graph, transe_cfg, extra_entities, na, &extra_triples, rng);
        Kga {
            transe,
            bins,
            bin_base,
            attr_rel,
            fallback: AttributeMean::fit(na, train),
        }
    }

    /// The bin predicted for a query, if the attribute has bins.
    pub fn predict_bin(&self, query: Query) -> Option<usize> {
        let a = query.attr.0 as usize;
        let n = self.bins[a].num_bins();
        if self.bins[a].edges.is_empty() && n <= 1 {
            return (n == 1).then_some(0);
        }
        let e = query.entity.0 as usize;
        (0..n).min_by(|&i, &j| {
            let si = self
                .transe
                .triple_score(e, self.attr_rel[a], self.bin_base[a] + i);
            let sj = self
                .transe
                .triple_score(e, self.attr_rel[a], self.bin_base[a] + j);
            si.partial_cmp(&sj).expect("finite")
        })
    }

    /// The quantile bins of an attribute.
    pub fn bins(&self, attr: AttributeId) -> &AttributeBins {
        &self.bins[attr.0 as usize]
    }
}

impl NumericPredictor for Kga {
    fn name(&self) -> &'static str {
        "KGA"
    }

    fn predict(&self, _graph: &KnowledgeGraph, query: Query, _rng: &mut dyn RngCore) -> f64 {
        match self.predict_bin(query) {
            Some(bin) => self.bins[query.attr.0 as usize].representative(bin),
            None => self.fallback.mean(query.attr),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::EntityId;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn quantile_bins_partition_values() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let bins = AttributeBins::fit(&values, 4);
        assert_eq!(bins.num_bins(), 4);
        assert_eq!(bins.bin_of(-5.0), 0);
        assert_eq!(bins.bin_of(99.0), 3);
        assert_eq!(bins.bin_of(1e9), 3);
        // Representatives are roughly the quartile midpoints.
        assert!((bins.representative(0) - 12.0).abs() < 2.0);
        assert!((bins.representative(3) - 87.0).abs() < 2.0);
    }

    #[test]
    fn bins_handle_fewer_values_than_bins() {
        let bins = AttributeBins::fit(&[5.0, 6.0], 10);
        assert!(bins.num_bins() <= 2);
        assert!(bins.representative(bins.bin_of(5.0)).is_finite());
    }

    #[test]
    fn binning_is_monotone() {
        let values: Vec<f64> = (0..50).map(|i| (i as f64).powi(2)).collect();
        let bins = AttributeBins::fit(&values, 5);
        let mut last = 0;
        for v in [0.0, 10.0, 100.0, 1000.0, 2400.0] {
            let b = bins.bin_of(v);
            assert!(b >= last, "binning not monotone at {v}");
            last = b;
        }
    }

    /// Entities connected to a "big" hub have large values, entities at the
    /// "small" hub small values; KGA should link-predict the right bin.
    #[test]
    fn predicts_bin_from_structure() {
        let mut g = KnowledgeGraph::new();
        let hub_big = g.add_entity("hub_big");
        let hub_small = g.add_entity("hub_small");
        let r = g.add_relation_type("member");
        let attr = g.add_attribute_type("size");
        let mut train = Vec::new();
        let mut members = Vec::new();
        for i in 0..20 {
            let e = g.add_entity(format!("m{i}"));
            members.push(e);
            let big = i % 2 == 0;
            g.add_triple(e, r, if big { hub_big } else { hub_small });
            train.push(NumTriple {
                entity: e,
                attr,
                value: if big { 100.0 } else { 1.0 },
            });
        }
        for t in &train {
            g.add_numeric(t.entity, t.attr, t.value);
        }
        g.build_index();
        let mut rng = StdRng::seed_from_u64(3);
        // Hold out two members (one per hub) from binning triples.
        let held_big = members[0];
        let held_small = members[1];
        let train_kept: Vec<NumTriple> = train
            .iter()
            .filter(|t| t.entity != held_big && t.entity != held_small)
            .copied()
            .collect();
        let kga = Kga::fit(
            &g,
            &train_kept,
            2,
            TransEConfig {
                epochs: 120,
                lr: 0.05,
                ..Default::default()
            },
            &mut rng,
        );
        let pred_big = kga.predict(
            &g,
            Query {
                entity: held_big,
                attr,
            },
            &mut rng,
        );
        let pred_small = kga.predict(
            &g,
            Query {
                entity: held_small,
                attr,
            },
            &mut rng,
        );
        assert!(
            pred_big > pred_small,
            "KGA failed to separate hubs: big {pred_big} small {pred_small}"
        );
    }

    #[test]
    fn empty_attribute_falls_back() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("e");
        let _a0 = g.add_attribute_type("seen");
        let a1 = g.add_attribute_type("unseen");
        g.add_numeric(e, _a0, 3.0);
        g.build_index();
        let train = vec![NumTriple {
            entity: EntityId(0),
            attr: _a0,
            value: 3.0,
        }];
        let mut rng = StdRng::seed_from_u64(4);
        let kga = Kga::fit(
            &g,
            &train,
            4,
            TransEConfig {
                epochs: 2,
                ..Default::default()
            },
            &mut rng,
        );
        let pred = kga.predict(
            &g,
            Query {
                entity: e,
                attr: a1,
            },
            &mut rng,
        );
        assert_eq!(pred, 0.0); // mean of an unseen attribute
    }
}
