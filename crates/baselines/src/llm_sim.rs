//! Zero-shot LLM simulators (substitution S4, DESIGN.md) for the Table-VIII
//! comparison. The paper feeds serialized RA-Chains (entity names removed)
//! to ChatGPT-3.5/4.0 and asks for the value. A zero-shot LLM on such input
//! behaves like a robust aggregator of the same-attribute endpoint values it
//! was shown, with calibrated estimation noise and a bias toward its
//! parametric prior; that is what is implemented, with two noise levels
//! matching the 3.5 vs 4.0 quality gap.

use crate::predictor::{AttributeMean, NumericPredictor};
use cf_chains::{retrieve, Query, RetrievalConfig};
use cf_kg::{KnowledgeGraph, NumTriple};
use cf_rand::RngCore;

/// Which simulated model tier.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum LlmTier {
    /// Noisier aggregation, stronger prior pull (ChatGPT-3.5-turbo row).
    Gpt35,
    /// Tighter aggregation (ChatGPT-4.0-turbo row).
    Gpt40,
}

impl LlmTier {
    fn relative_noise(self) -> f64 {
        match self {
            LlmTier::Gpt35 => 0.25,
            LlmTier::Gpt40 => 0.07,
        }
    }

    /// Weight pulled toward the attribute prior instead of the evidence.
    fn prior_pull(self) -> f64 {
        match self {
            LlmTier::Gpt35 => 0.35,
            LlmTier::Gpt40 => 0.1,
        }
    }
}

/// The simulated zero-shot LLM predictor.
pub struct LlmSim {
    tier: LlmTier,
    retrieval: RetrievalConfig,
    fallback: AttributeMean,
}

impl LlmSim {
    /// A simulator over the visible graph with the given tier's noise profile.
    pub fn new(graph: &KnowledgeGraph, train: &[NumTriple], tier: LlmTier) -> Self {
        LlmSim {
            tier,
            retrieval: RetrievalConfig {
                num_walks: 64,
                max_hops: 3,
                ..Default::default()
            },
            fallback: AttributeMean::fit(graph.num_attributes(), train),
        }
    }

    /// The simulated model tier.
    pub fn tier(&self) -> LlmTier {
        self.tier
    }
}

impl NumericPredictor for LlmSim {
    fn name(&self) -> &'static str {
        match self.tier {
            LlmTier::Gpt35 => "ChatGPT-3.5-turbo",
            LlmTier::Gpt40 => "ChatGPT-4.0-turbo",
        }
    }

    fn predict(&self, graph: &KnowledgeGraph, query: Query, rng: &mut dyn RngCore) -> f64 {
        // The serialized chains the paper would hand to the LLM.
        let mut rng = rng; // reborrow the trait object as a sized &mut
        let toc = retrieve(graph, query, &self.retrieval, &mut rng);
        let mut same_attr: Vec<f64> = toc
            .chains
            .iter()
            .filter(|c| c.chain.known_attr == query.attr)
            .map(|c| c.value)
            .collect();
        let prior = self.fallback.mean(query.attr);
        let estimate = if same_attr.is_empty() {
            prior
        } else {
            same_attr.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let median = same_attr[same_attr.len() / 2];
            let pull = self.tier.prior_pull();
            (1.0 - pull) * median + pull * prior
        };
        let noisy = estimate * (1.0 + self.tier.relative_noise() * cf_rand::sample_normal(rng));
        if noisy.is_finite() {
            noisy
        } else {
            prior
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::evaluate_baseline;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::{MinMaxNormalizer, Split};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn gpt4_beats_gpt35() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::default_scale(), &mut rng);
        let split = Split::paper_811(&g, &mut rng);
        let visible = split.visible_graph(&g);
        let norm = MinMaxNormalizer::fit(g.num_attributes(), &split.train);
        let g35 = LlmSim::new(&visible, &split.train, LlmTier::Gpt35);
        let g40 = LlmSim::new(&visible, &split.train, LlmTier::Gpt40);
        let r35 = evaluate_baseline(&g35, &visible, &split.test, &norm, &mut rng);
        let r40 = evaluate_baseline(&g40, &visible, &split.test, &norm, &mut rng);
        assert!(
            r40.norm_mae < r35.norm_mae,
            "tier ordering violated: 4.0 {} vs 3.5 {}",
            r40.norm_mae,
            r35.norm_mae
        );
    }

    #[test]
    fn names_match_table8_rows() {
        let mut g = KnowledgeGraph::new();
        g.add_attribute_type("a");
        g.build_index();
        assert_eq!(
            LlmSim::new(&g, &[], LlmTier::Gpt35).name(),
            "ChatGPT-3.5-turbo"
        );
        assert_eq!(
            LlmSim::new(&g, &[], LlmTier::Gpt40).name(),
            "ChatGPT-4.0-turbo"
        );
    }

    #[test]
    fn evidence_free_query_returns_noisy_prior() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("iso");
        let a = g.add_attribute_type("x");
        g.build_index();
        let train = vec![NumTriple {
            entity: e,
            attr: a,
            value: 50.0,
        }];
        let llm = LlmSim::new(&g, &train, LlmTier::Gpt40);
        let mut rng = StdRng::seed_from_u64(1);
        let p = llm.predict(&g, Query { entity: e, attr: a }, &mut rng);
        assert!((p - 50.0).abs() < 25.0, "prior-based estimate too far: {p}");
    }
}
