//! Fuzz-style robustness: every baseline must return finite predictions on
//! arbitrary (including degenerate) graphs — isolated nodes, self-referring
//! structures, single-attribute worlds.

use cf_baselines::{
    AttributeMean, Kga, LlmSim, LlmTier, MrAP, NapPlusPlus, NumericPredictor, PlmReg, TogConfig,
    TogR, TransE, TransEConfig,
};
use cf_chains::Query;
use cf_check::prelude::*;
use cf_kg::{AttributeId, EntityId, KnowledgeGraph, NumTriple};
use cf_rand::SeedableRng;

fn arbitrary_graph(
    n: usize,
    edges: &[(usize, usize)],
    facts: &[(usize, f64)],
) -> (KnowledgeGraph, Vec<NumTriple>) {
    let mut g = KnowledgeGraph::new();
    for i in 0..n {
        g.add_entity(format!("e{i}"));
    }
    let r = g.add_relation_type("r");
    let a = g.add_attribute_type("a");
    for &(h, t) in edges {
        let (h, t) = (h % n, t % n);
        if h != t {
            g.add_triple(EntityId(h as u32), r, EntityId(t as u32));
        }
    }
    let mut train = Vec::new();
    for &(e, v) in facts {
        let e = EntityId((e % n) as u32);
        g.add_numeric(e, a, v);
        train.push(NumTriple {
            entity: e,
            attr: a,
            value: v,
        });
    }
    g.build_index();
    (g, train)
}

property! {
    #![config(cases = 32)]

    #[test]
    fn every_predictor_stays_finite(
        edges in vec((0usize..8, 0usize..8), 0..16),
        facts in vec((0usize..8, -1e5f64..1e5), 1..12),
        seed in 0u64..50,
    ) {
        let (g, train) = arbitrary_graph(8, &edges, &facts);
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(seed);
        let te_cfg = TransEConfig { epochs: 2, ..Default::default() };
        let transe = TransE::fit(&g, te_cfg, &mut rng);
        let predictors: Vec<Box<dyn NumericPredictor>> = vec![
            Box::new(AttributeMean::fit(1, &train)),
            Box::new(NapPlusPlus::new(transe.clone(), 3, 1, &train)),
            Box::new(MrAP::fit(&g, &train, 2)),
            Box::new(Kga::fit(&g, &train, 4, te_cfg, &mut rng)),
            Box::new(PlmReg::fit(&g, &train, 2, &mut rng)),
            Box::new(TogR::fit(&g, &train, TogConfig::default())),
            Box::new(LlmSim::new(&g, &train, LlmTier::Gpt40)),
        ];
        for p in &predictors {
            for e in 0..8u32 {
                let q = Query { entity: EntityId(e), attr: AttributeId(0) };
                let v = p.predict(&g, q, &mut rng);
                check_assert!(v.is_finite(), "{} produced {v} on entity {e}", p.name());
            }
        }
    }
}

#[test]
fn predictors_handle_star_graph_center_and_leaves() {
    // A star: hub connected to 10 leaves; only leaves carry values.
    let mut g = KnowledgeGraph::new();
    let hub = g.add_entity("hub");
    let r = g.add_relation_type("spoke");
    let a = g.add_attribute_type("v");
    let mut train = Vec::new();
    for i in 0..10 {
        let leaf = g.add_entity(format!("leaf{i}"));
        g.add_triple(hub, r, leaf);
        g.add_numeric(leaf, a, 50.0 + i as f64);
        train.push(NumTriple {
            entity: leaf,
            attr: a,
            value: 50.0 + i as f64,
        });
    }
    g.build_index();
    let mut rng = cf_rand::rngs::StdRng::seed_from_u64(1);
    let mrap = MrAP::fit(&g, &train, 2);
    let pred = mrap.predict(
        &g,
        Query {
            entity: hub,
            attr: a,
        },
        &mut rng,
    );
    // The hub's prediction should interpolate the leaves' range.
    assert!(
        (50.0..=59.0).contains(&pred),
        "hub prediction {pred} outside leaf range"
    );
}
