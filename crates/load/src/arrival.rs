//! Deterministic arrival processes.
//!
//! An open-loop generator needs the *schedule* fixed up front; these
//! helpers turn (process, rate, seed) into a sorted list of microsecond
//! offsets from the run start. Poisson arrivals are the standard model for
//! independent request sources (exponential inter-arrival gaps, so bursts
//! and lulls occur at realistic odds); uniform arrivals space requests
//! evenly and are useful when a bench wants zero burst variance.

use cf_rand::rngs::StdRng;
use cf_rand::Rng;

/// Which inter-arrival distribution drives the schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential gaps with mean `1/rate`: a memoryless Poisson stream.
    Poisson,
    /// Constant gaps of exactly `1/rate`.
    Uniform,
}

impl std::str::FromStr for ArrivalProcess {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "poisson" => Ok(ArrivalProcess::Poisson),
            "uniform" => Ok(ArrivalProcess::Uniform),
            other => Err(format!(
                "unknown arrival process {other:?} (expected \"poisson\" or \"uniform\")"
            )),
        }
    }
}

/// Microsecond offsets (from run start) of `n` arrivals at `rate_hz`.
/// Offsets are non-decreasing; the gap accumulator runs in f64 and is
/// rounded once per event, so rounding error never drifts the rate.
///
/// Panics if `rate_hz` is not finite and positive.
pub fn arrival_offsets_us(
    kind: ArrivalProcess,
    rate_hz: f64,
    n: usize,
    rng: &mut StdRng,
) -> Vec<u64> {
    assert!(
        rate_hz.is_finite() && rate_hz > 0.0,
        "arrival rate must be positive, got {rate_hz}"
    );
    let mean_gap_us = 1e6 / rate_hz;
    let mut at = 0.0f64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let gap = match kind {
            // Inverse-CDF sampling: U ∈ [0,1) ⇒ -ln(1-U) is Exp(1), and
            // 1-U is never 0 so the log is always finite.
            ArrivalProcess::Poisson => -(1.0 - rng.gen::<f64>()).ln() * mean_gap_us,
            ArrivalProcess::Uniform => mean_gap_us,
        };
        at += gap;
        out.push(at as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::SeedableRng;

    #[test]
    fn offsets_are_sorted_and_deterministic() {
        for kind in [ArrivalProcess::Poisson, ArrivalProcess::Uniform] {
            let a = arrival_offsets_us(kind, 1000.0, 500, &mut StdRng::seed_from_u64(42));
            let b = arrival_offsets_us(kind, 1000.0, 500, &mut StdRng::seed_from_u64(42));
            assert_eq!(a, b, "{kind:?} schedule must be seed-deterministic");
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{kind:?} not sorted");
        }
    }

    #[test]
    fn mean_rate_matches_the_target() {
        // 5000 Poisson arrivals at 1 kHz should span ~5 s; the sample mean
        // of exponential gaps concentrates well within ±10% at this n.
        let a = arrival_offsets_us(
            ArrivalProcess::Poisson,
            1000.0,
            5000,
            &mut StdRng::seed_from_u64(7),
        );
        let span_s = *a.last().unwrap() as f64 / 1e6;
        assert!((4.5..5.5).contains(&span_s), "span {span_s} s, want ≈5 s");
        // Uniform arrivals are exact.
        let u = arrival_offsets_us(
            ArrivalProcess::Uniform,
            1000.0,
            5000,
            &mut StdRng::seed_from_u64(7),
        );
        assert_eq!(*u.last().unwrap(), 5_000_000);
    }

    #[test]
    fn poisson_gaps_vary_but_stay_finite() {
        let a = arrival_offsets_us(
            ArrivalProcess::Poisson,
            10_000.0,
            1000,
            &mut StdRng::seed_from_u64(3),
        );
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        let distinct: std::collections::HashSet<u64> = gaps.iter().copied().collect();
        assert!(distinct.len() > 10, "Poisson gaps suspiciously regular");
    }

    #[test]
    fn parse_arrival_process_names() {
        assert_eq!("poisson".parse(), Ok(ArrivalProcess::Poisson));
        assert_eq!("uniform".parse(), Ok(ArrivalProcess::Uniform));
        assert!("bursty".parse::<ArrivalProcess>().is_err());
    }
}
