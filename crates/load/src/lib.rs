#![warn(missing_docs)]

//! # cf-load
//!
//! Open-loop load generation for the cf-serve wire protocol (DESIGN.md
//! §14). A closed-loop client (send, wait, send) can never observe
//! queueing collapse: its offered rate falls exactly as the server slows
//! down. This crate instead fixes the arrival schedule *before* the run —
//! requests are sent at their scheduled instants whether or not earlier
//! ones have been answered — so latency under overload is measured
//! honestly and admission control has something real to push back on.
//!
//! The whole plan is a pure function of its [`plan::PlanConfig`] (arrival
//! process, rate, zipf exponent, seed) and the loaded graph: two runs with
//! the same config generate byte-identical request streams, which is what
//! lets CI diff response bytes across server shard counts.
//!
//! - [`arrival`] — deterministic Poisson/uniform arrival offsets;
//! - [`zipf`] — zipfian entity-popularity sampling over the store;
//! - [`plan`] — arrival offsets × popularity → an event plan with warmup
//!   and measurement windows and an optional reload mix;
//! - [`runner`] — renders the plan to wire lines, drives a TCP server
//!   over N connections, and folds replies into a [`LoadReport`].

pub mod arrival;
pub mod plan;
pub mod runner;
pub mod zipf;

pub use arrival::{arrival_offsets_us, ArrivalProcess};
pub use plan::{build_plan, Event, EventKind, PlanConfig};
pub use runner::{
    canonical_dump, fold_report, render_events, run_tcp, run_tcp_with, sleep_until, LoadReport,
    PreparedEvent, RetryPolicy, RunOutcome,
};
pub use zipf::ZipfSampler;
