//! Zipfian popularity sampling.
//!
//! Real KG query traffic is head-heavy: a few entities draw most of the
//! reads. A zipf(s) sampler over the store's entity ids reproduces that
//! shape — rank-`k` probability ∝ `1/k^s` — which is what makes the
//! per-shard chain caches earn (or fail to earn) their hit rate under
//! load, instead of the uniform traffic a naive generator would offer.

use cf_rand::rngs::StdRng;
use cf_rand::Rng;

/// Samples ranks `0..n` with probability ∝ `1/(rank+1)^s` by inverse-CDF
/// lookup. Construction is O(n) and sampling is O(log n); the CDF is built
/// once per plan, so a million-entity store costs one pass.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    /// Cumulative unnormalized mass; `cdf[k]` = Σ_{j≤k} 1/(j+1)^s.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler over `n` ranks with exponent `s` (`s = 0` is
    /// uniform, `s ≈ 1` is classic zipf). Panics if `n == 0` or `s` is not
    /// finite and non-negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "cannot sample from an empty population");
        assert!(s.is_finite() && s >= 0.0, "zipf exponent must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the population has exactly one rank.
    pub fn is_empty(&self) -> bool {
        false // `new` rejects n == 0
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cdf.last().expect("non-empty by construction");
        let u = rng.gen::<f64>() * total;
        // partition_point: first rank whose cumulative mass exceeds u.
        self.cdf
            .partition_point(|&c| c <= u)
            .min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::SeedableRng;

    #[test]
    fn samples_are_deterministic_and_in_range() {
        let z = ZipfSampler::new(1000, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..256).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..256).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| r < 1000));
    }

    #[test]
    fn exponent_one_is_head_heavy() {
        let z = ZipfSampler::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(9);
        let head = (0..20_000).filter(|_| z.sample(&mut rng) < 100).count() as f64 / 20_000.0;
        // Under zipf(1) over 10k ranks the top 100 carry
        // H(100)/H(10000) ≈ 5.19/9.79 ≈ 53% of the mass.
        assert!(head > 0.4, "top-1% mass {head}, expected head-heavy");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(100, 0.0);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 100];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        let (min, max) = (
            *counts.iter().min().unwrap() as f64,
            *counts.iter().max().unwrap() as f64,
        );
        assert!(max / min < 1.5, "uniform sampler skewed: {min}..{max}");
    }

    #[test]
    fn single_rank_population_always_returns_zero() {
        let z = ZipfSampler::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..32 {
            assert_eq!(z.sample(&mut rng), 0);
        }
    }
}
