//! Plan execution: render events to wire lines, drive a server over N
//! TCP connections at the scheduled instants, fold replies into a report.
//!
//! Request ids are the event's index in the rendered plan, so replies can
//! be matched, sorted, and diffed regardless of which connection carried
//! them. The server answers each connection in order (one line in, one
//! line out), which lets the reader thread pair the k-th reply with the
//! k-th request sent on that connection without ids — the ids are for the
//! cross-connection merge and the canonical dump.

use crate::plan::{Event, EventKind};
use cf_kg::GraphView;
use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_serve::protocol::{parse_json, Json};
use cf_serve::Histogram;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One plan event rendered to its wire line. The line carries the event's
/// id (its index in the rendered vec); `at_us` keeps the schedule.
#[derive(Clone, Debug)]
pub struct PreparedEvent {
    /// Scheduled send instant, microseconds from run start.
    pub at_us: u64,
    /// The protocol line (no trailing newline).
    pub line: String,
    /// Whether this event feeds the latency histogram and qps.
    pub measured: bool,
    /// True for reload admin requests.
    pub is_reload: bool,
    /// True for mutate admin requests.
    pub is_mutate: bool,
}

/// Renders a plan against a graph: entity/attribute ids become the names
/// the wire protocol speaks, reload events become admin lines pointing at
/// `reload_path`. Reload events are dropped when no path is given (a plan
/// with a reload mix but nothing to reload just sends its queries).
pub fn render_events(
    plan: &[Event],
    graph: &impl GraphView,
    deadline_ms: Option<u64>,
    reload_path: Option<&str>,
) -> Vec<PreparedEvent> {
    let mut out = Vec::with_capacity(plan.len());
    for e in plan {
        let id = out.len();
        match e.kind {
            EventKind::Query { entity, attr } => {
                let mut line = format!(
                    "{{\"entity\":\"{}\",\"attr\":\"{}\",\"id\":{id}",
                    escape(graph.entity_name(entity)),
                    escape(graph.attribute_name(attr)),
                );
                if let Some(d) = deadline_ms {
                    line.push_str(&format!(",\"deadline_ms\":{d}"));
                }
                line.push('}');
                out.push(PreparedEvent {
                    at_us: e.at_us,
                    line,
                    measured: e.measured,
                    is_reload: false,
                    is_mutate: false,
                });
            }
            EventKind::Reload => {
                let Some(path) = reload_path else { continue };
                out.push(PreparedEvent {
                    at_us: e.at_us,
                    line: format!("{{\"reload\":\"{}\",\"id\":{id}}}", escape(path)),
                    measured: false,
                    is_reload: true,
                    is_mutate: false,
                });
            }
            EventKind::Mutate {
                entity,
                attr,
                value_milli,
            } => {
                out.push(PreparedEvent {
                    at_us: e.at_us,
                    line: format!(
                        "{{\"mutate\":{{\"op\":\"upsert\",\"entity\":\"{}\",\"attr\":\"{}\",\"value\":{}}},\"id\":{id}}}",
                        escape(graph.entity_name(entity)),
                        escape(graph.attribute_name(attr)),
                        value_milli as f64 / 1000.0,
                    ),
                    measured: false,
                    is_reload: false,
                    is_mutate: true,
                });
            }
        }
    }
    out
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// What came back from a run.
#[derive(Debug)]
pub struct LoadReport {
    /// Lines sent (queries + reloads).
    pub sent: u64,
    /// Successful predictions.
    pub ok: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests refused or dropped past their deadline.
    pub deadline_missed: u64,
    /// Other error responses (parse, unknown entity, …).
    pub errors: u64,
    /// Reload admin requests accepted.
    pub reloads_ok: u64,
    /// Reload admin requests rejected.
    pub reloads_rejected: u64,
    /// Mutate admin requests applied.
    pub mutations_ok: u64,
    /// Mutate admin requests rejected.
    pub mutations_rejected: u64,
    /// Shed requests re-sent under the retry policy (total resends).
    pub retried: u64,
    /// Requests that were shed at least once and then answered `ok` on a
    /// retry — counted separately from `ok` requests that never shed, so
    /// the report distinguishes clean capacity from recovered-by-retry.
    pub retried_ok: u64,
    /// Measured-window queries that were answered (any outcome).
    pub measured: u64,
    /// Seconds from the first measured request's scheduled instant to the
    /// last measured reply's arrival.
    pub elapsed_s: f64,
    /// Goodput: measured successful predictions per elapsed second. Shed
    /// and deadline-missed replies don't count — under overload qps holds
    /// at capacity instead of crediting rejections.
    pub qps: f64,
    /// Latency of measured queries, microseconds from *scheduled* send
    /// instant to reply arrival. Open-loop: a request delayed behind an
    /// earlier one still pays that delay here, which is exactly the
    /// queueing a closed-loop client hides.
    pub latency: Histogram,
}

impl LoadReport {
    /// Human-readable one-block summary.
    pub fn render(&self) -> String {
        format!(
            "sent {} · ok {} · shed {} · deadline_missed {} · errors {} · reloads {}+{} · mutations {}+{}\n\
             retried {} resend(s) · {} recovered by retry\n\
             measured {} in {:.3} s → {:.1} qps\n\
             latency µs (scheduled→reply): p50 {} · p95 {} · p99 {} · max {}",
            self.sent,
            self.ok,
            self.shed,
            self.deadline_missed,
            self.errors,
            self.reloads_ok,
            self.reloads_rejected,
            self.mutations_ok,
            self.mutations_rejected,
            self.retried,
            self.retried_ok,
            self.measured,
            self.elapsed_s,
            self.qps,
            self.latency.quantile(0.50),
            self.latency.quantile(0.95),
            self.latency.quantile(0.99),
            self.latency.max(),
        )
    }
}

/// A run's report plus every reply, indexed by event id (`None` when the
/// connection closed before answering).
#[derive(Debug)]
pub struct RunOutcome {
    /// Aggregated counters and latency.
    pub report: LoadReport,
    /// Raw reply lines by event id.
    pub responses: Vec<Option<String>>,
}

/// Client-side handling of shed (`overloaded`) replies.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Resend a shed request up to this many times (`0` = never).
    pub retries: u32,
    /// Base backoff before the first resend; doubles per attempt.
    pub base_us: u64,
    /// Seed for the backoff jitter — the retry *schedule* is a pure
    /// function of `(seed, event id, attempt)`, so a rerun with the same
    /// plan and policy resends at the same offsets.
    pub seed: u64,
}

impl RetryPolicy {
    /// No retries: every shed reply is final (the open-loop default).
    pub fn none() -> Self {
        RetryPolicy {
            retries: 0,
            base_us: 2000,
            seed: 0,
        }
    }

    /// Deterministic backoff before resend `attempt` (1-based) of event
    /// `id`: `base · 2^(attempt-1)` plus up to 50% seeded jitter, so
    /// synchronized shed bursts don't resend in lockstep.
    pub fn backoff_us(&self, id: usize, attempt: u32) -> u64 {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ u64::from(attempt) << 56,
        );
        let base = self.base_us << (attempt - 1).min(10);
        base + rng.gen_range(0..=base / 2)
    }
}

/// What one in-flight request on a connection is: which event, when it was
/// originally scheduled, and how many resends it has behind it.
#[derive(Clone, Copy, Debug)]
struct InFlight {
    id: usize,
    at_us: u64,
    attempt: u32,
}

/// The write half of one connection. Every line write pushes its
/// [`InFlight`] under the same lock, so the order queue mirrors the byte
/// order on the socket exactly — the server answers strictly in order per
/// connection, so the reader pops one entry per reply line.
struct ConnWriter {
    stream: TcpStream,
    order: std::collections::VecDeque<InFlight>,
}

impl ConnWriter {
    fn send(&mut self, line: &str, meta: InFlight) -> std::io::Result<()> {
        self.stream.write_all(line.as_bytes())?;
        self.order.push_back(meta);
        Ok(())
    }
}

/// Drives `addr` with the rendered plan over `conns` connections, without
/// retries. See [`run_tcp_with`].
pub fn run_tcp(addr: &str, events: &[PreparedEvent], conns: usize) -> std::io::Result<RunOutcome> {
    run_tcp_with(addr, events, conns, RetryPolicy::none())
}

/// Drives `addr` with the rendered plan over `conns` connections.
///
/// Events are assigned round-robin by index, so each connection's share
/// preserves the schedule order. Per connection, a sender thread writes
/// each line at its scheduled instant — never waiting for replies (the
/// open-loop property; the kernel's socket buffer absorbs bursts) — while
/// a reader thread timestamps replies as they land.
///
/// With a non-zero [`RetryPolicy`], a query shed with `overloaded` is
/// resent after a deterministic backoff (a per-connection retry thread
/// replays it down the same connection) up to `retries` times. A retried
/// request keeps its original scheduled instant for latency accounting —
/// the backoff wait is part of the price of being shed — and its *final*
/// reply is the one that lands in [`RunOutcome::responses`], so a dump
/// from a retried run stays diffable against one that never shed. Admin
/// lines (reload/mutate) are answered inline by the server and are never
/// shed, so they are never retried.
pub fn run_tcp_with(
    addr: &str,
    events: &[PreparedEvent],
    conns: usize,
    policy: RetryPolicy,
) -> std::io::Result<RunOutcome> {
    let conns = conns.clamp(1, events.len().max(1));
    let mut streams = Vec::with_capacity(conns);
    for _ in 0..conns {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        streams.push(s);
    }
    // A short lead so every sender sees the epoch in its future.
    let start = Instant::now() + Duration::from_millis(5);

    type ReaderOut = Vec<(usize, u64, String, u32)>;
    let mut join = Vec::with_capacity(conns);
    for (c, stream) in streams.into_iter().enumerate() {
        let assigned: Arc<Vec<(usize, u64, String)>> = Arc::new(
            events
                .iter()
                .enumerate()
                .filter(|(i, _)| i % conns == c)
                .map(|(i, e)| (i, e.at_us, format!("{}\n", e.line)))
                .collect(),
        );
        let reader_stream = stream.try_clone()?;
        let writer = Arc::new(Mutex::new(ConnWriter {
            stream,
            order: std::collections::VecDeque::new(),
        }));
        let expect = assigned.len();

        let sender = {
            let assigned = Arc::clone(&assigned);
            let writer = Arc::clone(&writer);
            std::thread::spawn(move || -> std::io::Result<()> {
                for (id, at_us, line) in assigned.iter() {
                    sleep_until(start + Duration::from_micros(*at_us));
                    writer.lock().expect("conn writer poisoned").send(
                        line,
                        InFlight {
                            id: *id,
                            at_us: *at_us,
                            attempt: 0,
                        },
                    )?;
                }
                Ok(())
            })
        };

        // The retry lane: the reader hands over (meta, resend instant);
        // this thread sleeps and replays the original line down the same
        // connection. Processing is FIFO — with exponential backoff a
        // long earlier sleep can briefly delay a later resend, which only
        // makes the measured retry latency *more* honest, never less.
        let (retry_tx, retry_rx) = mpsc::channel::<(InFlight, Instant)>();
        let retry = {
            let assigned = Arc::clone(&assigned);
            let writer = Arc::clone(&writer);
            std::thread::spawn(move || -> std::io::Result<()> {
                let by_id: std::collections::HashMap<usize, usize> = assigned
                    .iter()
                    .enumerate()
                    .map(|(pos, (id, _, _))| (*id, pos))
                    .collect();
                while let Ok((meta, resend_at)) = retry_rx.recv() {
                    sleep_until(resend_at);
                    let line = &assigned[by_id[&meta.id]].2;
                    writer
                        .lock()
                        .expect("conn writer poisoned")
                        .send(line, meta)?;
                }
                Ok(())
            })
        };

        let reader = {
            let writer = Arc::clone(&writer);
            std::thread::spawn(move || -> ReaderOut {
                let mut got: ReaderOut = Vec::with_capacity(expect);
                let mut lines = BufReader::new(reader_stream).lines();
                while got.len() < expect {
                    let Some(Ok(line)) = lines.next() else { break };
                    let arrived_us = start.elapsed().as_micros() as u64;
                    let meta = writer
                        .lock()
                        .expect("conn writer poisoned")
                        .order
                        .pop_front()
                        .expect("reply without a matching request");
                    let shed = line.contains("\"error\":\"overloaded\"");
                    if shed && meta.attempt < policy.retries {
                        let next = InFlight {
                            attempt: meta.attempt + 1,
                            ..meta
                        };
                        let wait = policy.backoff_us(meta.id, next.attempt);
                        let _ = retry_tx.send((next, Instant::now() + Duration::from_micros(wait)));
                        continue;
                    }
                    got.push((
                        meta.id,
                        arrived_us.saturating_sub(meta.at_us),
                        line,
                        meta.attempt,
                    ));
                }
                drop(retry_tx); // closes the retry lane
                got
            })
        };
        join.push((sender, retry, reader));
    }

    let mut responses: Vec<Option<String>> = vec![None; events.len()];
    let mut latencies: Vec<Option<u64>> = vec![None; events.len()];
    let mut retried = 0u64;
    let mut retried_ok = 0u64;
    for (sender, retry, reader) in join {
        sender.join().expect("load sender panicked")?;
        for (id, lat_us, line, attempts) in reader.join().expect("load reader panicked") {
            latencies[id] = Some(lat_us);
            retried += u64::from(attempts);
            if attempts > 0 && line.contains("\"ok\":true") {
                retried_ok += 1;
            }
            responses[id] = Some(line);
        }
        retry.join().expect("load retry thread panicked")?;
    }
    let mut report = fold_report(events, &responses, &latencies);
    report.retried = retried;
    report.retried_ok = retried_ok;
    Ok(RunOutcome { report, responses })
}

/// Sleeps until `deadline`: coarse OS sleep while far away, then a short
/// spin for the last stretch so the send lands close to its schedule.
/// Public so in-process harnesses can pace an engine the same way the TCP
/// runner paces a socket.
pub fn sleep_until(deadline: Instant) {
    loop {
        let now = Instant::now();
        let Some(remaining) = deadline.checked_duration_since(now) else {
            return;
        };
        if remaining > Duration::from_micros(500) {
            std::thread::sleep(remaining - Duration::from_micros(300));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// Folds raw replies into the aggregate report. Public so an in-process
/// harness (tests, benches) can reuse the same classification as the TCP
/// runner after collecting replies itself.
pub fn fold_report(
    events: &[PreparedEvent],
    responses: &[Option<String>],
    latencies_us: &[Option<u64>],
) -> LoadReport {
    let latency = Histogram::new();
    let mut r = LoadReport {
        sent: events.len() as u64,
        ok: 0,
        shed: 0,
        deadline_missed: 0,
        errors: 0,
        reloads_ok: 0,
        reloads_rejected: 0,
        mutations_ok: 0,
        mutations_rejected: 0,
        retried: 0,
        retried_ok: 0,
        measured: 0,
        elapsed_s: 0.0,
        qps: 0.0,
        latency,
    };
    let mut first_measured_at: Option<u64> = None;
    let mut last_measured_done: u64 = 0;
    let mut measured_ok: u64 = 0;
    for (i, (event, response)) in events.iter().zip(responses).enumerate() {
        let Some(line) = response else { continue };
        let ok = matches!(
            parse_json(line),
            Ok(Json::Obj(ref o)) if o.get("ok") == Some(&Json::Bool(true))
        );
        if event.is_reload {
            if ok {
                r.reloads_ok += 1;
            } else {
                r.reloads_rejected += 1;
            }
            continue;
        }
        if event.is_mutate {
            if ok {
                r.mutations_ok += 1;
            } else {
                r.mutations_rejected += 1;
            }
            continue;
        }
        if ok {
            r.ok += 1;
        } else if line.contains("\"error\":\"overloaded\"") {
            r.shed += 1;
        } else if line.contains("\"error\":\"deadline exceeded\"") {
            r.deadline_missed += 1;
        } else {
            r.errors += 1;
        }
        if event.measured {
            r.measured += 1;
            let lat = latencies_us[i].unwrap_or(0);
            r.latency.record(lat);
            if ok {
                measured_ok += 1;
            }
            first_measured_at = Some(first_measured_at.unwrap_or(event.at_us).min(event.at_us));
            last_measured_done = last_measured_done.max(event.at_us + lat);
        }
    }
    if let Some(first) = first_measured_at {
        r.elapsed_s = (last_measured_done.saturating_sub(first)) as f64 / 1e6;
        if r.elapsed_s > 0.0 {
            r.qps = measured_ok as f64 / r.elapsed_s;
        }
    }
    r
}

/// The determinism artifact: all replies in event-id order with the
/// timing-dependent `micros` field stripped, one per line. Two servers
/// that agree bitwise on every answer produce identical dumps — this is
/// what CI diffs across shard counts.
pub fn canonical_dump(responses: &[Option<String>]) -> String {
    let mut out = String::new();
    for line in responses.iter().flatten() {
        out.push_str(&strip_micros(line));
        out.push('\n');
    }
    out
}

/// Removes the trailing `,"micros":N` field (present on every success
/// response, absent on errors) without reserializing.
fn strip_micros(line: &str) -> String {
    match line.rfind(",\"micros\":") {
        Some(p) if line.ends_with('}') => format!("{}}}", &line[..p]),
        _ => line.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plan, PlanConfig};
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn rendered_lines_parse_as_protocol_commands() {
        let mut rng = StdRng::seed_from_u64(17);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let cfg = PlanConfig {
            requests: 40,
            warmup: 10,
            reload_every: 16,
            mutate_every: 12,
            ..PlanConfig::default()
        };
        let plan = build_plan(
            GraphView::num_entities(&g),
            GraphView::num_attributes(&g),
            &cfg,
        );
        let events = render_events(&plan, &g, Some(250), Some("m.ckpt"));
        assert!(events.iter().any(|e| e.is_reload));
        assert!(events.iter().any(|e| e.is_mutate));
        for (i, e) in events.iter().enumerate() {
            let cmd = cf_serve::protocol::parse_command(&e.line)
                .unwrap_or_else(|err| panic!("unparseable line {:?}: {err}", e.line));
            match cmd {
                cf_serve::protocol::Command::Predict(r) => {
                    assert_eq!(r.id, Some(i as u64));
                    assert_eq!(r.deadline_ms, Some(250));
                    assert!(!e.is_reload && !e.is_mutate);
                }
                cf_serve::protocol::Command::Reload { ckpt, id } => {
                    assert_eq!(ckpt, "m.ckpt");
                    assert_eq!(id, Some(i as u64));
                    assert!(e.is_reload);
                }
                cf_serve::protocol::Command::Mutate { muts, id } => {
                    assert_eq!(id, Some(i as u64));
                    assert_eq!(muts.len(), 1);
                    assert!(matches!(
                        &muts[0],
                        cf_kg::Mutation::UpsertNumeric { value, .. } if value.is_finite()
                    ));
                    assert!(e.is_mutate);
                }
            }
        }
        // Without a reload path the reload events vanish and ids stay
        // dense over the remaining queries.
        let no_reload = render_events(&plan, &g, None, None);
        assert!(no_reload.iter().all(|e| !e.is_reload));
        assert!(no_reload.iter().all(|e| !e.line.contains("deadline_ms")));
    }

    #[test]
    fn retry_backoff_is_deterministic_and_grows() {
        let p = RetryPolicy {
            retries: 3,
            base_us: 1000,
            seed: 9,
        };
        for id in [0usize, 17, 4096] {
            let a: Vec<u64> = (1..=3).map(|k| p.backoff_us(id, k)).collect();
            let b: Vec<u64> = (1..=3).map(|k| p.backoff_us(id, k)).collect();
            assert_eq!(a, b, "backoff schedule must be reproducible");
            for (k, &w) in a.iter().enumerate() {
                let base = p.base_us << k;
                assert!(w >= base && w <= base + base / 2, "attempt {k}: {w}");
            }
        }
        // Different seeds jitter differently (else thundering herds sync).
        let q = RetryPolicy { seed: 10, ..p };
        assert!((1..=3).any(|k| p.backoff_us(17, k) != q.backoff_us(17, k)));
    }

    #[test]
    fn canonical_dump_strips_micros_and_keeps_errors() {
        let responses = vec![
            Some(r#"{"id":0,"ok":true,"value":1.5,"fallback":false,"retrieved":3,"chains":2,"micros":842}"#.to_string()),
            None,
            Some(r#"{"id":2,"ok":false,"error":"overloaded"}"#.to_string()),
        ];
        let dump = canonical_dump(&responses);
        assert_eq!(
            dump,
            "{\"id\":0,\"ok\":true,\"value\":1.5,\"fallback\":false,\"retrieved\":3,\"chains\":2}\n\
             {\"id\":2,\"ok\":false,\"error\":\"overloaded\"}\n"
        );
    }

    #[test]
    fn fold_report_classifies_outcomes_and_measures_the_window() {
        let ev = |at_us: u64, measured: bool, is_reload: bool, is_mutate: bool| PreparedEvent {
            at_us,
            line: String::new(),
            measured,
            is_reload,
            is_mutate,
        };
        let events = vec![
            ev(0, false, false, false),  // warmup
            ev(100, true, false, false), // ok
            ev(200, true, false, false), // shed
            ev(300, true, false, false), // deadline
            ev(300, false, true, false), // reload rejected
            ev(400, true, false, false), // parse error
            ev(400, false, false, true), // mutate applied
            ev(450, false, false, true), // mutate rejected
        ];
        let responses = vec![
            Some(r#"{"id":0,"ok":true,"value":1.0,"fallback":false,"retrieved":1,"chains":1,"micros":10}"#.to_string()),
            Some(r#"{"id":1,"ok":true,"value":1.0,"fallback":false,"retrieved":1,"chains":1,"micros":10}"#.to_string()),
            Some(r#"{"id":2,"ok":false,"error":"overloaded"}"#.to_string()),
            Some(r#"{"id":3,"ok":false,"error":"deadline exceeded"}"#.to_string()),
            Some(r#"{"id":4,"ok":false,"error":"reload: corrupt"}"#.to_string()),
            Some(r#"{"id":5,"ok":false,"error":"parse: bad"}"#.to_string()),
            Some(r#"{"id":6,"ok":true,"mutated":true,"applied":1,"changed":1}"#.to_string()),
            Some(r#"{"id":7,"ok":false,"error":"mutate: attr not in vocabulary"}"#.to_string()),
        ];
        let latencies = vec![
            Some(50),
            Some(900),
            Some(5),
            Some(5),
            Some(5),
            Some(5),
            Some(5),
            Some(5),
        ];
        let r = fold_report(&events, &responses, &latencies);
        assert_eq!(
            (r.sent, r.ok, r.shed, r.deadline_missed, r.errors),
            (8, 2, 1, 1, 1)
        );
        assert_eq!((r.reloads_ok, r.reloads_rejected), (0, 1));
        assert_eq!((r.mutations_ok, r.mutations_rejected), (1, 1));
        assert_eq!(r.measured, 4);
        assert_eq!(r.latency.count(), 4);
        // Window: first measured at 100 µs, last done at 100+900 = 1000 µs.
        assert!((r.elapsed_s - 0.0009).abs() < 1e-9, "{}", r.elapsed_s);
        // Goodput counts the single measured ok.
        assert!((r.qps - 1.0 / 0.0009).abs() < 1.0, "{}", r.qps);
        let text = r.render();
        assert!(text.contains("shed 1"), "{text}");
    }
}
