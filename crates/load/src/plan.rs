//! Event plans: the full request schedule, fixed before the run.
//!
//! A plan is a pure function of its [`PlanConfig`] and the store's entity
//! and attribute counts — no wall clock, no network state — so the same
//! config replays the identical request stream against servers at
//! different shard counts, which is the precondition for diffing their
//! response bytes.

use crate::arrival::{arrival_offsets_us, ArrivalProcess};
use crate::zipf::ZipfSampler;
use cf_kg::{AttributeId, EntityId};
use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};

/// What one scheduled event does.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A prediction request.
    Query {
        /// Entity to ask about (zipf-sampled popularity).
        entity: EntityId,
        /// Attribute to predict (uniform).
        attr: AttributeId,
    },
    /// A hot-reload admin request (the read/reload mix).
    Reload,
    /// A live-graph mutation admin request: upsert a numeric fact. The
    /// value is carried in milli-units so the event stays `Eq`-comparable
    /// (the wire value is `value_milli / 1000`).
    Mutate {
        /// Entity whose fact is upserted (the preceding query's entity, so
        /// mutations land on hot neighborhoods and exercise invalidation).
        entity: EntityId,
        /// Attribute to upsert (uniform; always in the server vocabulary).
        attr: AttributeId,
        /// Upserted value × 1000.
        value_milli: u64,
    },
}

/// One scheduled event: *when* (microseconds from run start), *what*, and
/// whether it falls inside the measurement window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Scheduled send instant, microseconds from run start.
    pub at_us: u64,
    /// Request kind.
    pub kind: EventKind,
    /// True for queries past the warmup window; only measured events feed
    /// the latency histogram and qps. Warmup queries fill the server's
    /// chain caches and EWMA so the window measures steady state. Reloads
    /// are never measured.
    pub measured: bool,
}

/// Everything that determines a plan.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Inter-arrival distribution.
    pub arrivals: ArrivalProcess,
    /// Offered rate, requests per second.
    pub rate_hz: f64,
    /// Queries inside the measurement window.
    pub requests: usize,
    /// Unmeasured queries sent first at the same rate.
    pub warmup: usize,
    /// Zipf exponent for entity popularity (`0` = uniform).
    pub zipf_s: f64,
    /// Insert a reload event after every `n`-th query (`0` = never).
    pub reload_every: usize,
    /// Insert a mutation event after every `n`-th query (`0` = never).
    pub mutate_every: usize,
    /// Seed for the plan RNG (arrivals + popularity draws).
    pub seed: u64,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            arrivals: ArrivalProcess::Poisson,
            rate_hz: 2000.0,
            requests: 2000,
            warmup: 200,
            zipf_s: 1.0,
            reload_every: 0,
            mutate_every: 0,
            seed: 1,
        }
    }
}

/// Builds the event plan for a store with `num_entities` entities and
/// `num_attributes` attributes. Entity popularity rank equals entity id
/// (the routing hash in cf-serve spreads consecutive ids, so rank order
/// carries no shard bias); attributes are drawn uniformly. A reload event
/// inherits the timestamp of the query it follows, modelling an operator
/// pushing a checkpoint while traffic flows.
///
/// Panics if the store has no entities or no attributes.
pub fn build_plan(num_entities: usize, num_attributes: usize, cfg: &PlanConfig) -> Vec<Event> {
    assert!(num_entities > 0, "store has no entities");
    assert!(num_attributes > 0, "store has no attributes");
    let total = cfg.warmup + cfg.requests;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let offsets = arrival_offsets_us(cfg.arrivals, cfg.rate_hz, total, &mut rng);
    let zipf = ZipfSampler::new(num_entities, cfg.zipf_s);
    let mut events = Vec::with_capacity(total + total / cfg.reload_every.max(1));
    for (i, &at_us) in offsets.iter().enumerate() {
        let entity = EntityId(zipf.sample(&mut rng) as u32);
        let attr = AttributeId(rng.gen_range(0..num_attributes as u32));
        events.push(Event {
            at_us,
            kind: EventKind::Query { entity, attr },
            measured: i >= cfg.warmup,
        });
        if cfg.reload_every > 0 && (i + 1) % cfg.reload_every == 0 {
            events.push(Event {
                at_us,
                kind: EventKind::Reload,
                measured: false,
            });
        }
        if cfg.mutate_every > 0 && (i + 1) % cfg.mutate_every == 0 {
            // Mutate the entity just queried: mutations land on hot
            // (popular, likely-cached) neighborhoods, which is exactly
            // where chain-cache invalidation earns its keep.
            events.push(Event {
                at_us,
                kind: EventKind::Mutate {
                    entity,
                    attr: AttributeId(rng.gen_range(0..num_attributes as u32)),
                    value_milli: rng.gen_range(0..1_000_000u64),
                },
                measured: false,
            });
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let cfg = PlanConfig {
            requests: 300,
            warmup: 50,
            reload_every: 64,
            ..PlanConfig::default()
        };
        let a = build_plan(1000, 5, &cfg);
        let b = build_plan(1000, 5, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn warmup_marks_the_measurement_window() {
        let cfg = PlanConfig {
            requests: 100,
            warmup: 25,
            ..PlanConfig::default()
        };
        let plan = build_plan(50, 3, &cfg);
        let queries: Vec<&Event> = plan
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Query { .. }))
            .collect();
        assert_eq!(queries.len(), 125);
        assert!(queries[..25].iter().all(|e| !e.measured));
        assert!(queries[25..].iter().all(|e| e.measured));
    }

    #[test]
    fn reload_mix_inserts_unmeasured_reloads_at_query_timestamps() {
        let cfg = PlanConfig {
            requests: 90,
            warmup: 10,
            reload_every: 25,
            ..PlanConfig::default()
        };
        let plan = build_plan(50, 3, &cfg);
        let reloads: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, e)| e.kind == EventKind::Reload)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(reloads.len(), 4, "100 queries / 25 = 4 reloads");
        for &i in &reloads {
            assert!(!plan[i].measured);
            assert_eq!(plan[i].at_us, plan[i - 1].at_us, "reload rides its query");
        }
        let zero = PlanConfig {
            reload_every: 0,
            ..cfg
        };
        assert!(build_plan(50, 3, &zero)
            .iter()
            .all(|e| e.kind != EventKind::Reload));
    }

    #[test]
    fn mutate_mix_rides_its_query_and_targets_its_entity() {
        let cfg = PlanConfig {
            requests: 90,
            warmup: 10,
            mutate_every: 20,
            ..PlanConfig::default()
        };
        let plan = build_plan(50, 3, &cfg);
        let mutates: Vec<usize> = plan
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.kind, EventKind::Mutate { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(mutates.len(), 5, "100 queries / 20 = 5 mutations");
        for &i in &mutates {
            assert!(!plan[i].measured);
            assert_eq!(plan[i].at_us, plan[i - 1].at_us, "mutation rides its query");
            let EventKind::Mutate { entity, attr, .. } = plan[i].kind else {
                unreachable!()
            };
            let EventKind::Query { entity: qe, .. } = plan[i - 1].kind else {
                panic!("mutation not preceded by a query")
            };
            assert_eq!(entity, qe, "mutation targets the queried entity");
            assert!(attr.0 < 3);
        }
        let zero = PlanConfig {
            mutate_every: 0,
            ..cfg
        };
        assert!(build_plan(50, 3, &zero)
            .iter()
            .all(|e| !matches!(e.kind, EventKind::Mutate { .. })));
    }

    #[test]
    fn entities_and_attrs_stay_in_range() {
        let plan = build_plan(7, 2, &PlanConfig::default());
        for e in &plan {
            if let EventKind::Query { entity, attr } = e.kind {
                assert!(entity.0 < 7);
                assert!(attr.0 < 2);
            }
        }
    }
}
