//! The integration claim behind admission control: under open-loop
//! overload the engine answers `overloaded` at the door instead of letting
//! accepted requests queue without bound. A closed-loop client cannot
//! produce this situation — its offered rate collapses with the server —
//! so the plan's arrival schedule is fixed up front and submissions happen
//! at their scheduled instants regardless of how far behind the engine is.

use cf_chains::Query;
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{GraphView, Split};
use cf_load::{build_plan, sleep_until, ArrivalProcess, EventKind, PlanConfig};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_serve::{Engine, EngineConfig, ServeError};
use chainsformer::{ChainsFormer, ChainsFormerConfig};
use std::time::{Duration, Instant};

#[test]
fn open_loop_overload_sheds_instead_of_unbounded_latency() {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
    let num_entities = GraphView::num_entities(&visible);
    let num_attributes = GraphView::num_attributes(&visible);
    // A queue cap far above anything this test reaches: the only thing
    // standing between the flood and unbounded queueing is the
    // projected-delay shed.
    let engine = Engine::new(
        model,
        visible,
        EngineConfig {
            queue_cap: 100_000,
            cache_cap: 0, // every request pays full retrieval: low capacity
            ..EngineConfig::default()
        },
    );

    // Warm the EWMA so admission has a service-time estimate from the
    // first overload arrival (a cold EWMA admits on depth alone).
    let warm_plan = build_plan(
        num_entities,
        num_attributes,
        &PlanConfig {
            requests: 16,
            warmup: 0,
            rate_hz: 100.0,
            seed: 3,
            ..PlanConfig::default()
        },
    );
    for e in &warm_plan {
        if let EventKind::Query { entity, attr } = e.kind {
            let _ = engine.predict(Query { entity, attr });
        }
    }

    // Offered load far beyond a single shard on one core (~30k/s), every
    // request carrying a 20 ms deadline.
    let deadline = Duration::from_millis(20);
    let plan = build_plan(
        num_entities,
        num_attributes,
        &PlanConfig {
            arrivals: ArrivalProcess::Poisson,
            rate_hz: 30_000.0,
            requests: 1500,
            warmup: 0,
            zipf_s: 1.0,
            reload_every: 0,
            mutate_every: 0,
            seed: 11,
        },
    );
    let start = Instant::now() + Duration::from_millis(2);
    let mut receivers = Vec::new();
    let mut shed = 0u64;
    let mut expired = 0u64;
    let mut sent = 0u64;
    for e in &plan {
        let EventKind::Query { entity, attr } = e.kind else {
            continue;
        };
        sleep_until(start + Duration::from_micros(e.at_us));
        sent += 1;
        match engine.submit(Query { entity, attr }, Some(deadline)) {
            Ok(rx) => receivers.push(rx),
            Err(ServeError::Overloaded) => shed += 1,
            Err(ServeError::DeadlineExceeded) => expired += 1,
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }

    let mut ok = 0u64;
    let mut late = 0u64;
    let mut worst_us = 0u64;
    for rx in receivers {
        match rx.recv().expect("reply channel closed") {
            Ok(sp) => {
                ok += 1;
                worst_us = worst_us.max(sp.micros);
            }
            Err(ServeError::DeadlineExceeded) => late += 1,
            Err(e) => panic!("unexpected reply error: {e:?}"),
        }
    }
    assert_eq!(sent, 1500);
    assert_eq!(ok + late + shed + expired, sent, "every request accounted");

    // The engine pushed back: a meaningful slice of the flood was refused
    // at the door with `overloaded` rather than enqueued to rot.
    assert!(
        shed > sent / 10,
        "expected heavy shedding at 30k/s offered, got {shed}/{sent} (ok {ok}, late {late})"
    );
    assert!(ok > 0, "admission must not starve the engine entirely");

    // And what *was* admitted stayed bounded: projected delay ≤ deadline
    // at admit time caps the queue a request can sit behind. The bound
    // here is deliberately loose (deadline + generous service/scheduling
    // slack on a 1-core CI host) — the failure mode it guards against is
    // multi-second queueing collapse, not millisecond jitter.
    assert!(
        worst_us < 2_000_000,
        "admitted request waited {worst_us} µs — unbounded queueing"
    );

    // Engine-side accounting agrees with the client's view.
    let m = engine.metrics();
    use std::sync::atomic::Ordering;
    assert_eq!(m.shed.load(Ordering::Relaxed), shed);
    let shard_shed: u64 = (0..engine.shards())
        .map(|s| m.shard(s).shed.load(Ordering::Relaxed))
        .sum();
    assert_eq!(shard_shed, shed + expired);
    engine.shutdown();
}
