//! The routing invariant, end to end over TCP: a fixed query stream gets
//! byte-identical responses from servers running 1, 2, and 4 shards — and
//! stays identical across a mid-stream coordinated hot-reload, because
//! every shard swaps to the same checkpoint all-or-nothing.
//!
//! Responses are compared through [`cf_load::canonical_dump`] (event-id
//! order, timing-dependent `micros` stripped): anything that differs —
//! a value bit, a fallback flag, a retrieved count — fails the diff.

use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{GraphView, KnowledgeGraph, Split};
use cf_load::{build_plan, canonical_dump, render_events, run_tcp, PlanConfig};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_serve::{Engine, EngineConfig};
use chainsformer::{ChainsFormer, ChainsFormerConfig};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn fixture() -> (KnowledgeGraph, ChainsFormer, ChainsFormer) {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model_a = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);
    // Same architecture, different weights: reloading B mid-stream must
    // visibly change answers, identically at every shard count.
    let mut rng_b = StdRng::seed_from_u64(9001);
    let model_b = ChainsFormer::new(
        &visible,
        &split.train,
        ChainsFormerConfig::tiny(),
        &mut rng_b,
    );
    (visible, model_a, model_b)
}

#[test]
fn responses_are_byte_identical_at_shard_counts_1_2_4_across_reload() {
    let (visible, model_a, model_b) = fixture();
    let dir = std::env::temp_dir().join(format!("cf_shard_det_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let b_ckpt = dir.join("b.ckpt");
    model_b.save_params_to(&b_ckpt).unwrap();

    let plan = build_plan(
        GraphView::num_entities(&visible),
        GraphView::num_attributes(&visible),
        &PlanConfig {
            rate_hz: 2000.0,
            requests: 120,
            warmup: 0,
            zipf_s: 1.0,
            seed: 23,
            ..PlanConfig::default()
        },
    );
    let events = render_events(&plan, &visible, None, None);

    let mut dumps = Vec::new();
    for shards in [1usize, 2, 4] {
        let engine = Arc::new(Engine::new(
            model_a.clone(),
            visible.clone(),
            EngineConfig {
                shards,
                ..EngineConfig::default()
            },
        ));
        assert_eq!(engine.shards(), shards);
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let shutdown = Arc::new(AtomicBool::new(false));
        let server = {
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || cf_serve::run(engine, listener, shutdown).unwrap())
        };

        // Phase A on the original weights, a coordinated reload to B (the
        // same admin path `{"reload": …}` reaches), then the *same* plan
        // again: identical ids make the two phases directly comparable.
        let phase_a = run_tcp(&addr, &events, 4).unwrap();
        assert_eq!(phase_a.report.ok, events.len() as u64, "phase A had errors");
        engine.reload(&b_ckpt).expect("coordinated reload");
        let phase_b = run_tcp(&addr, &events, 4).unwrap();
        assert_eq!(phase_b.report.ok, events.len() as u64, "phase B had errors");

        let a = canonical_dump(&phase_a.responses);
        let b = canonical_dump(&phase_b.responses);
        assert_ne!(a, b, "reload to fresh weights must change answers");
        dumps.push((shards, a, b));

        shutdown.store(true, Ordering::SeqCst);
        server.join().unwrap();
    }

    let (_, a1, b1) = &dumps[0];
    for (shards, a, b) in &dumps[1..] {
        assert_eq!(a, a1, "pre-reload responses diverge at {shards} shards");
        assert_eq!(b, b1, "post-reload responses diverge at {shards} shards");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
