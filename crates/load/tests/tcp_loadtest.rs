//! Run-to-run determinism of the TCP harness itself: the same plan driven
//! twice against the same server yields identical canonical dumps and the
//! same outcome counts, including when the plan mixes in hot-reloads.
//! (Reload requests re-validate the same checkpoint; the swap is
//! idempotent, so answers never depend on how many reloads preceded them.)

use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{GraphView, Split};
use cf_load::{build_plan, canonical_dump, render_events, run_tcp, PlanConfig};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use cf_serve::{Engine, EngineConfig};
use chainsformer::{ChainsFormer, ChainsFormerConfig};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

#[test]
fn identical_plans_give_identical_dumps_and_reports() {
    let mut rng = StdRng::seed_from_u64(17);
    let g = yago15k_sim(SynthScale::small(), &mut rng);
    let split = Split::paper_811(&g, &mut rng);
    let visible = split.visible_graph(&g);
    let model = ChainsFormer::new(&visible, &split.train, ChainsFormerConfig::tiny(), &mut rng);

    let dir = std::env::temp_dir().join(format!("cf_tcp_load_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("same.ckpt");
    model.save_params_to(&ckpt).unwrap();

    let num_entities = GraphView::num_entities(&visible);
    let num_attributes = GraphView::num_attributes(&visible);
    let engine = Arc::new(Engine::new(
        model,
        visible.clone(),
        EngineConfig {
            shards: 2,
            ..EngineConfig::default()
        },
    ));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let shutdown = Arc::new(AtomicBool::new(false));
    let server = {
        let engine = Arc::clone(&engine);
        let shutdown = Arc::clone(&shutdown);
        std::thread::spawn(move || cf_serve::run(engine, listener, shutdown).unwrap())
    };

    let plan = build_plan(
        num_entities,
        num_attributes,
        &PlanConfig {
            rate_hz: 2000.0,
            requests: 100,
            warmup: 20,
            zipf_s: 1.0,
            reload_every: 48,
            mutate_every: 0,
            seed: 5,
            ..PlanConfig::default()
        },
    );
    let events = render_events(&plan, &visible, None, ckpt.to_str());
    assert!(events.iter().any(|e| e.is_reload), "plan must mix reloads");

    let first = run_tcp(&addr, &events, 4).unwrap();
    let second = run_tcp(&addr, &events, 4).unwrap();

    for run in [&first, &second] {
        let r = &run.report;
        assert_eq!(r.sent, events.len() as u64);
        assert_eq!(r.errors, 0, "unexpected errors: {}", r.render());
        assert_eq!(r.shed + r.deadline_missed, 0, "light load must not shed");
        assert_eq!(r.reloads_rejected, 0);
        assert_eq!(r.ok + r.reloads_ok, r.sent);
        assert_eq!(r.measured, 100);
        assert_eq!(r.latency.count(), 100);
        assert!(r.qps > 0.0 && r.elapsed_s > 0.0);
    }
    assert_eq!(
        canonical_dump(&first.responses),
        canonical_dump(&second.responses),
        "same plan, same server — dumps must be byte-identical"
    );

    // The server's per-shard counters saw the traffic on both shards.
    let m = engine.metrics();
    let per_shard: Vec<u64> = (0..engine.shards())
        .map(|s| m.shard(s).requests.load(Ordering::Relaxed))
        .collect();
    assert!(
        per_shard.iter().all(|&c| c > 0),
        "zipfian stream left a shard idle: {per_shard:?}"
    );

    shutdown.store(true, Ordering::SeqCst);
    server.join().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
