//! Ignored-by-default breakdown of MappedGraph::open cost (run manually:
//! `cargo test -p cf-kg --release --test open_cost -- --ignored --nocapture`).
use cf_kg::synth::{large_sim, LargeScale};
use cf_kg::{write_store, MappedGraph};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;
use std::time::Instant;

#[test]
#[ignore]
fn open_cost_breakdown() {
    let scale = LargeScale::million();
    let g = large_sim(scale, &mut StdRng::seed_from_u64(7));
    let path = std::env::temp_dir().join(format!("cfkg_opencost_{}", std::process::id()));
    write_store(&g, &path).unwrap();
    let bytes = std::fs::metadata(&path).unwrap().len();
    // warm cache
    let _ = MappedGraph::open(&path).unwrap();
    for _ in 0..3 {
        let t = Instant::now();
        let map = cf_kg::mmapio::Mmap::open(&path).unwrap();
        let map_s = t.elapsed().as_secs_f64();
        // Raw read bandwidth over the mapping: the floor `open` approaches
        // as its CRC + structural scans fuse into one pass.
        let t2 = Instant::now();
        let mut s = [0u64; 8];
        for c in map.chunks_exact(64) {
            for (i, lane) in s.iter_mut().enumerate() {
                *lane =
                    lane.wrapping_add(u64::from_le_bytes(c[8 * i..8 * i + 8].try_into().unwrap()));
            }
        }
        std::hint::black_box(s);
        let sweep_s = t2.elapsed().as_secs_f64();
        println!(
            "  mapped sweep {:.1} ms ({:.2} GB/s)",
            sweep_s * 1e3,
            bytes as f64 / sweep_s / 1e9
        );
        drop(map);
        let t = Instant::now();
        let m = MappedGraph::open(&path).unwrap();
        let open_s = t.elapsed().as_secs_f64();
        println!(
            "store {} MB: map {:.1} ms, open {:.1} ms ({:.2} GB/s)",
            bytes / (1 << 20),
            map_s * 1e3,
            open_s * 1e3,
            bytes as f64 / open_s / 1e9
        );
        drop(m);
    }
    std::fs::remove_file(&path).unwrap();
}
