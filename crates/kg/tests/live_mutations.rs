//! The ISSUE-10 durability contract for the CFJ1 mutation journal and the
//! overlay graph, proven exhaustively:
//!
//! * a crash at **every byte offset** of an append (enumerated by
//!   `cf_check::fault::append_crash_states` and reproduced live through
//!   `FaultyWriter` in both Error and Truncate modes) recovers to a store
//!   byte-identical to the pre-mutation or post-mutation store — never a
//!   panic, never a half-applied mutation;
//! * replay is idempotent: applying a journal twice equals applying it
//!   once, so a crash between compaction and journal truncation is safe;
//! * a flipped byte anywhere in a committed record is *detected* — recovery
//!   names the damaged record and never returns a mutation that was not
//!   written.

use cf_check::fault::{append_crash_states, crash_states, FaultMode, FaultyWriter};
use cf_kg::{
    graph_fingerprint, read_store, recover_file, write_store, GraphStore, GraphView, JournalWriter,
    KnowledgeGraph, Mutation, OverlayGraph, StoreError,
};
use std::io::Write;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cf_live_mut_{}_{name}", std::process::id()));
    p
}

/// A small canonical base graph: three entities, one relation, two
/// attributes, enough structure for every mutation kind to hit both the
/// "exists" and "new" paths.
fn base_graph() -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new();
    let a = g.add_entity("alice");
    let b = g.add_entity("bob");
    let c = g.add_entity("carol");
    let knows = g.add_relation_type("knows");
    let age = g.add_attribute_type("age");
    let _height = g.add_attribute_type("height");
    g.add_triple(a, knows, b);
    g.add_triple(b, knows, c);
    g.add_numeric(a, age, 30.0);
    g.add_numeric(b, age, 40.0);
    g.canonicalize();
    g
}

/// A mutation batch exercising every op and both fresh and overwriting
/// paths. Order matters: later mutations build on earlier ones.
fn mutation_batch() -> Vec<Mutation> {
    vec![
        Mutation::UpsertNumeric {
            entity: "alice".into(),
            attr: "age".into(),
            value: 31.0,
        },
        Mutation::AddEntity {
            name: "dave".into(),
        },
        Mutation::AddEdge {
            head: "dave".into(),
            rel: "knows".into(),
            tail: "alice".into(),
        },
        Mutation::UpsertNumeric {
            entity: "dave".into(),
            attr: "height".into(),
            value: 1.8,
        },
        Mutation::AddEdge {
            head: "carol".into(),
            rel: "employs".into(),
            tail: "dave".into(),
        },
        Mutation::UpsertNumeric {
            entity: "bob".into(),
            attr: "age".into(),
            value: 40.0, // idempotent: same bits as the base fact
        },
    ]
}

/// Store bytes after applying `muts` to the base — the ground truth each
/// crash state must land on (for some prefix of the batch).
fn store_bytes_after(muts: &[Mutation]) -> Vec<u8> {
    let mut overlay = OverlayGraph::new(GraphStore::Heap(base_graph()));
    overlay.apply_all(muts);
    let path = tmp("truth.cfkg");
    overlay.compact_to(&path).expect("compact");
    let bytes = std::fs::read(&path).expect("read store");
    std::fs::remove_file(&path).ok();
    bytes
}

/// The full journal image for `muts`: magic + one framed record each.
fn journal_bytes(muts: &[Mutation]) -> Vec<u8> {
    let mut bytes = cf_kg::journal::JOURNAL_MAGIC.to_vec();
    for m in muts {
        bytes.extend_from_slice(&cf_kg::journal::encode_record(m));
    }
    bytes
}

#[test]
fn double_replay_is_idempotent_bitwise() {
    let muts = mutation_batch();
    let path = tmp("idem.cfj");
    std::fs::remove_file(&path).ok();
    {
        let (mut w, rec) = JournalWriter::open(&path).expect("open fresh");
        assert!(rec.mutations.is_empty() && rec.dropped.is_none());
        for m in &muts {
            w.append(m);
        }
        w.commit().expect("commit");
        assert_eq!(w.records(), muts.len() as u64);
    }
    let rec = recover_file(&path).expect("recover");
    assert_eq!(rec.mutations, muts);

    let once = store_bytes_after(&muts);
    let twice = {
        let mut overlay = OverlayGraph::new(GraphStore::Heap(base_graph()));
        overlay.apply_all(&rec.mutations);
        overlay.apply_all(&rec.mutations); // crashed between compact and truncate
        let p = tmp("idem.cfkg");
        overlay.compact_to(&p).expect("compact");
        let b = std::fs::read(&p).expect("read");
        std::fs::remove_file(&p).ok();
        b
    };
    assert_eq!(once, twice, "replaying a journal twice changed the store");
    std::fs::remove_file(&path).ok();
}

#[test]
fn torn_tail_truncated_at_every_byte_offset() {
    let muts = mutation_batch();
    let full = journal_bytes(&muts);
    // Record boundaries: byte offset → number of complete records.
    let mut boundaries = vec![cf_kg::journal::JOURNAL_MAGIC.len()];
    for m in &muts {
        boundaries.push(boundaries.last().unwrap() + cf_kg::journal::encode_record(m).len());
    }
    let path = tmp("torn.cfj");
    for cut in 0..=full.len() {
        std::fs::write(&path, &full[..cut]).expect("write cut");
        // Recovery by open: torn tail physically truncated, prefix kept.
        let (mut w, rec) = JournalWriter::open(&path)
            .unwrap_or_else(|e| panic!("cut {cut}: open failed with {e}"));
        let complete = boundaries
            .iter()
            .filter(|&&b| b <= cut)
            .count()
            .saturating_sub(1);
        assert_eq!(
            rec.mutations,
            muts[..complete],
            "cut {cut}: wrong surviving prefix"
        );
        let clean = cut == 0 || boundaries.contains(&cut);
        assert_eq!(
            rec.dropped.is_none(),
            clean,
            "cut {cut}: dropped-tail report wrong"
        );
        if let Some(d) = &rec.dropped {
            assert_eq!(d.record, complete, "cut {cut}: wrong dropped record index");
        }
        // The file is now a valid prefix: appending works and the appended
        // record survives the next recovery.
        w.append(&Mutation::AddEntity { name: "eve".into() });
        w.commit().expect("commit after truncation");
        drop(w);
        let after = recover_file(&path).expect("recover after append");
        assert_eq!(after.dropped, None);
        assert_eq!(after.mutations.len(), complete + 1);
        assert_eq!(
            after.mutations[complete],
            Mutation::AddEntity { name: "eve".into() }
        );
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn every_append_crash_state_recovers_old_or_new_store() {
    // Commit one record at a time (the acknowledge-per-commit discipline):
    // for every record k and every byte offset of its append, recovery must
    // produce a store byte-identical to "k mutations applied" or "k+1
    // mutations applied" — nothing in between, nothing else.
    let muts = mutation_batch();
    let truth: Vec<Vec<u8>> = (0..=muts.len())
        .map(|k| store_bytes_after(&muts[..k]))
        .collect();
    for k in 0..muts.len() {
        let committed = journal_bytes(&muts[..k]);
        let record = cf_kg::journal::encode_record(&muts[k]);
        for state in append_crash_states(&committed, &record) {
            let bytes = state.path_bytes.as_deref().expect("append keeps file");
            let rec = cf_kg::journal::recover_bytes(bytes)
                .unwrap_or_else(|e| panic!("record {k}, {}: {e}", state.label));
            let applied = rec.mutations.len();
            assert!(
                applied == k || applied == k + 1,
                "record {k}, {}: {applied} mutations survived",
                state.label
            );
            let mut overlay = OverlayGraph::new(GraphStore::Heap(base_graph()));
            overlay.apply_all(&rec.mutations);
            let p = tmp("oon.cfkg");
            overlay.compact_to(&p).expect("compact");
            let got = std::fs::read(&p).expect("read");
            std::fs::remove_file(&p).ok();
            assert_eq!(
                got, truth[applied],
                "record {k}, {}: store is neither old nor new",
                state.label
            );
        }
    }
}

#[test]
fn faulty_writer_sweep_matches_enumerated_crash_states() {
    // The live counterpart of the enumeration above: push the commit bytes
    // through FaultyWriter at every budget in both modes and check the
    // surviving file recovers to a clean prefix of the batch.
    let muts = mutation_batch();
    let committed = journal_bytes(&muts[..2]);
    let batch: Vec<u8> = muts[2..]
        .iter()
        .flat_map(|m| cf_kg::journal::encode_record(m))
        .collect();
    let record_count_at = |bytes: &[u8]| -> usize {
        cf_kg::journal::recover_bytes(bytes)
            .expect("recoverable")
            .mutations
            .len()
    };
    for mode in [FaultMode::Error, FaultMode::Truncate] {
        for budget in 0..=batch.len() {
            let mut w = FaultyWriter::new(committed.clone(), budget, mode);
            let res = w.write_all(&batch);
            match mode {
                FaultMode::Error if budget < batch.len() => {
                    assert!(res.is_err(), "budget {budget}: error mode must fail")
                }
                _ => assert!(res.is_ok(), "budget {budget}: unexpected failure"),
            }
            let survived = w.into_inner();
            let rec = cf_kg::journal::recover_bytes(&survived)
                .unwrap_or_else(|e| panic!("{mode:?} budget {budget}: {e}"));
            // Every recovered mutation is a clean prefix of the batch.
            let n = rec.mutations.len();
            assert!(n >= 2, "{mode:?} budget {budget}: committed prefix lost");
            assert_eq!(rec.mutations, muts[..n], "{mode:?} budget {budget}");
            assert_eq!(n, record_count_at(&survived));
        }
    }
}

#[test]
fn byte_flip_sweep_detects_or_isolates_damage() {
    let muts = mutation_batch();
    let full = journal_bytes(&muts);
    let mut boundaries = vec![cf_kg::journal::JOURNAL_MAGIC.len()];
    for m in &muts {
        boundaries.push(boundaries.last().unwrap() + cf_kg::journal::encode_record(m).len());
    }
    let record_of = |pos: usize| {
        boundaries
            .iter()
            .filter(|&&b| b <= pos)
            .count()
            .saturating_sub(1)
    };
    for pos in 0..full.len() {
        let mut bytes = full.clone();
        bytes[pos] ^= 0xFF;
        match cf_kg::journal::recover_bytes(&bytes) {
            Err(StoreError::BadMagic) => {
                assert!(pos < 8, "flip at {pos}: spurious BadMagic");
            }
            Err(StoreError::Corrupt { section, what }) => {
                assert_eq!(section, "journal");
                // The error names a record at or before the damaged one
                // (a length-field flip can misframe every later record,
                // but never an *earlier* one).
                let named: usize = what
                    .strip_prefix("record ")
                    .and_then(|s| s.split(':').next())
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("flip at {pos}: unnamed record in {what:?}"));
                assert!(
                    named <= record_of(pos),
                    "flip at {pos} (record {}): error names later record {named}: {what}",
                    record_of(pos)
                );
            }
            Err(e) => panic!("flip at {pos}: unexpected error kind {e}"),
            Ok(rec) => {
                // A flip may masquerade as a torn tail (length shrunk) —
                // allowed, but only records *before* the damaged one may
                // survive, and they must match what was written.
                assert!(pos >= 8, "flip at {pos}: magic flip accepted");
                let n = rec.mutations.len();
                assert!(
                    n <= record_of(pos),
                    "flip at {pos} (record {}): {n} mutations survived",
                    record_of(pos)
                );
                assert_eq!(rec.mutations, muts[..n], "flip at {pos}: wrong mutations");
            }
        }
    }
}

#[test]
fn overlay_view_matches_compacted_store_row_for_row() {
    let muts = mutation_batch();
    let mut overlay = OverlayGraph::new(GraphStore::Heap(base_graph()));
    overlay.apply_all(&muts);
    let path = tmp("rows.cfkg");
    overlay.compact_to(&path).expect("compact");
    let compacted = read_store(&path).expect("read back");
    std::fs::remove_file(&path).ok();

    assert_eq!(overlay.num_entities(), GraphView::num_entities(&compacted));
    assert_eq!(
        overlay.num_attributes(),
        GraphView::num_attributes(&compacted)
    );
    assert_eq!(
        overlay.num_relations(),
        GraphView::num_relations(&compacted)
    );
    for e in 0..overlay.num_entities() {
        let e = cf_kg::EntityId(e as u32);
        assert_eq!(overlay.entity_name(e), compacted.entity_name(e));
        assert_eq!(overlay.neighbors(e), compacted.neighbors(e), "{e:?}");
        let a = overlay.numerics_of(e);
        let b = compacted.numerics_of(e);
        assert_eq!(a.len(), b.len(), "{e:?}");
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.attr, y.attr);
            assert_eq!(x.value.to_bits(), y.value.to_bits(), "{e:?}");
        }
    }
    for a in 0..overlay.num_attributes() {
        let a = cf_kg::AttributeId(a as u32);
        assert_eq!(overlay.attribute_name(a), compacted.attribute_name(a));
        let x = overlay.entities_with_attribute(a);
        let y = compacted.entities_with_attribute(a);
        assert_eq!(x.len(), y.len(), "{a:?}");
        for (o, p) in x.iter().zip(y) {
            assert_eq!(o.entity, p.entity);
            assert_eq!(o.value.to_bits(), p.value.to_bits(), "{a:?}");
        }
    }
    assert_eq!(
        graph_fingerprint(&overlay),
        graph_fingerprint(&compacted),
        "fingerprints must agree when every row agrees"
    );
}

#[test]
fn compaction_rename_crash_states_leave_old_or_new_store() {
    // Compaction reuses the store's atomic tmp → fsync → rename writer;
    // enumerate its crash states and check a reader always sees a valid
    // old or new store.
    let old_bytes = store_bytes_after(&[]);
    let new_bytes = store_bytes_after(&mutation_batch());
    assert_ne!(old_bytes, new_bytes);
    let path = tmp("rename.cfkg");
    for state in crash_states(Some(&old_bytes), &new_bytes) {
        match &state.path_bytes {
            Some(bytes) => {
                std::fs::write(&path, bytes).expect("write state");
                let g = read_store(&path)
                    .unwrap_or_else(|e| panic!("{}: store unreadable: {e}", state.label));
                let round = tmp("rename_rt.cfkg");
                write_store(&g, &round).expect("rewrite");
                let got = std::fs::read(&round).expect("read");
                std::fs::remove_file(&round).ok();
                assert!(
                    got == old_bytes || got == new_bytes,
                    "{}: neither old nor new",
                    state.label
                );
            }
            None => {} // file absent: the pre-first-save state
        }
    }
    std::fs::remove_file(&path).ok();
}
