//! Property-based invariants of the KG store, splitter and TSV IO.

use cf_check::prelude::*;
use cf_kg::io::{write_numerics, write_triples, TsvLoader};
use cf_kg::{AttributeId, Dir, EntityId, KnowledgeGraph, RelationId, Split};
use cf_rand::SeedableRng;

/// Builds a graph from arbitrary edge/fact lists.
fn build(
    n_entities: usize,
    edges: &[(usize, usize, usize)],
    facts: &[(usize, usize, f64)],
    n_rels: usize,
    n_attrs: usize,
) -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new();
    for i in 0..n_entities {
        g.add_entity(format!("e{i}"));
    }
    for r in 0..n_rels {
        g.add_relation_type(format!("r{r}"));
    }
    for a in 0..n_attrs {
        g.add_attribute_type(format!("a{a}"));
    }
    for &(h, r, t) in edges {
        g.add_triple(
            EntityId((h % n_entities) as u32),
            RelationId((r % n_rels) as u32),
            EntityId((t % n_entities) as u32),
        );
    }
    for &(e, a, v) in facts {
        g.add_numeric(
            EntityId((e % n_entities) as u32),
            AttributeId((a % n_attrs) as u32),
            v,
        );
    }
    g.build_index();
    g
}

property! {
    #![config(cases = 48)]

    /// Every triple contributes exactly one forward edge at its head and
    /// one inverse edge at its tail; total degree is 2·|triples|.
    #[test]
    fn adjacency_is_complete_and_symmetric(
        edges in vec((0usize..12, 0usize..3, 0usize..12), 1..50),
    ) {
        let g = build(12, &edges, &[], 3, 1);
        let total_degree: usize = g.entities().map(|e| g.degree(e)).sum();
        check_assert_eq!(total_degree, 2 * g.triples().len());
        for t in g.triples() {
            check_assert!(g
                .neighbors(t.head)
                .iter()
                .any(|e| e.to == t.tail && e.dr.rel == t.rel && e.dr.dir == Dir::Forward));
            check_assert!(g
                .neighbors(t.tail)
                .iter()
                .any(|e| e.to == t.head && e.dr.rel == t.rel && e.dr.dir == Dir::Inverse));
        }
    }

    /// Numeric index matches the raw triple list exactly.
    #[test]
    fn numeric_index_is_consistent(
        facts in vec((0usize..8, 0usize..3, -100f64..100.0), 1..40),
    ) {
        let g = build(8, &[], &facts, 1, 3);
        let indexed: usize = g.entities().map(|e| g.numerics_of(e).len()).sum();
        check_assert_eq!(indexed, g.numerics().len());
        for a in 0..3u32 {
            for o in g.entities_with_attribute(AttributeId(a)) {
                check_assert!(g.numerics_of(o.entity).iter().any(|f| f.attr == AttributeId(a) && f.value == o.value));
            }
        }
    }

    /// The 8:1:1 split partitions the numeric triples for any graph size.
    /// Facts use unique (entity, attr) keys — `without_numerics` hides by
    /// that key, so duplicates would make train facts vanish with their
    /// test twins (KGs carry one value per entity-attribute pair).
    #[test]
    fn split_partitions_for_any_size(n in 3usize..200, seed in 0u64..500) {
        let facts: Vec<(usize, usize, f64)> = (0..n).map(|i| (i, 0, i as f64)).collect();
        let g = build(n, &[], &facts, 1, 1);
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(seed);
        let s = Split::paper_811(&g, &mut rng);
        check_assert_eq!(s.total(), n);
        // Hidden graph retains exactly the training numerics.
        let vis = s.visible_graph(&g);
        check_assert_eq!(vis.numerics().len(), s.train.len());
    }

    /// TSV round trip preserves the graph for arbitrary safe names/values.
    #[test]
    fn tsv_round_trip(
        edges in vec((0usize..6, 0usize..2, 0usize..6), 0..20),
        facts in vec((0usize..6, 0usize..2, -1e6f64..1e6), 1..20),
    ) {
        let g = build(6, &edges, &facts, 2, 2);
        let mut tb = Vec::new();
        write_triples(&g, &mut tb).unwrap();
        let mut nb = Vec::new();
        write_numerics(&g, &mut nb).unwrap();
        let mut loader = TsvLoader::new();
        loader.load_triples(&tb[..]).unwrap();
        loader.load_numerics(&nb[..]).unwrap();
        let g2 = loader.finish();
        check_assert_eq!(g2.triples().len(), g.triples().len());
        check_assert_eq!(g2.numerics().len(), g.numerics().len());
        // Every original fact exists in the reloaded graph (by name).
        for t in g.numerics() {
            let e2 = g2.entity_by_name(g.entity_name(t.entity)).expect("entity survives");
            let a2 = g2.attribute_by_name(g.attribute_name(t.attr)).expect("attr survives");
            check_assert!(g2.numerics_of(e2).iter().any(|f| f.attr == a2 && (f.value - t.value).abs() < 1e-9));
        }
    }
}
