//! The multi-relational knowledge graph store with numerical triples
//! (`G = (V, R, A, N)` of Definition 1).

use crate::ids::{AttributeId, Dir, DirRel, EntityId, RelationId};
use std::collections::HashMap;

/// A relational triple `(head, relation, tail)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Triple {
    /// Head entity.
    pub head: EntityId,
    /// Relation type.
    pub rel: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

/// A numerical triple `(entity, attribute, value)`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct NumTriple {
    /// Entity carrying the value.
    pub entity: EntityId,
    /// Attribute type.
    pub attr: AttributeId,
    /// The numerical value.
    pub value: f64,
}

/// One traversable edge in the adjacency index (relation + direction +
/// neighbor).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Edge {
    /// Relation type and traversal direction.
    pub dr: DirRel,
    /// Neighbor reached by following the edge.
    pub to: EntityId,
}

/// Multi-relational KG enriched with numerical attributes.
///
/// Construction is two-phase: register vocabularies and triples through the
/// `add_*` methods, then call [`KnowledgeGraph::build_index`] (or use
/// [`crate::split`], which does it for you) before traversal. The adjacency
/// index is CSR-style: one flat edge vec plus per-entity offsets.
#[derive(Clone, Debug, Default)]
pub struct KnowledgeGraph {
    entity_names: Vec<String>,
    relation_names: Vec<String>,
    attribute_names: Vec<String>,
    triples: Vec<Triple>,
    numerics: Vec<NumTriple>,

    // CSR adjacency (both directions), valid after build_index.
    adj_offsets: Vec<usize>,
    adj_edges: Vec<Edge>,
    // Per-entity numeric facts, valid after build_index.
    num_offsets: Vec<usize>,
    num_facts: Vec<(AttributeId, f64)>,
    // Per-attribute owner lists, valid after build_index.
    attr_entities: Vec<Vec<(EntityId, f64)>>,
    indexed: bool,
}

impl KnowledgeGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- construction ---------------------------------------------------

    /// Registers an entity, returning its id.
    pub fn add_entity(&mut self, name: impl Into<String>) -> EntityId {
        self.indexed = false;
        self.entity_names.push(name.into());
        EntityId((self.entity_names.len() - 1) as u32)
    }

    /// Registers a relation type, returning its id.
    pub fn add_relation_type(&mut self, name: impl Into<String>) -> RelationId {
        self.indexed = false;
        self.relation_names.push(name.into());
        RelationId((self.relation_names.len() - 1) as u32)
    }

    /// Registers a numerical attribute type, returning its id.
    pub fn add_attribute_type(&mut self, name: impl Into<String>) -> AttributeId {
        self.indexed = false;
        self.attribute_names.push(name.into());
        AttributeId((self.attribute_names.len() - 1) as u32)
    }

    /// Adds a relational triple `(head, rel, tail)`.
    pub fn add_triple(&mut self, head: EntityId, rel: RelationId, tail: EntityId) {
        debug_assert!(
            (head.0 as usize) < self.entity_names.len(),
            "unknown head entity"
        );
        debug_assert!(
            (tail.0 as usize) < self.entity_names.len(),
            "unknown tail entity"
        );
        debug_assert!(
            (rel.0 as usize) < self.relation_names.len(),
            "unknown relation"
        );
        self.indexed = false;
        self.triples.push(Triple { head, rel, tail });
    }

    /// Adds a numerical triple `(entity, attr, value)`.
    pub fn add_numeric(&mut self, entity: EntityId, attr: AttributeId, value: f64) {
        debug_assert!(
            (entity.0 as usize) < self.entity_names.len(),
            "unknown entity"
        );
        debug_assert!(
            (attr.0 as usize) < self.attribute_names.len(),
            "unknown attribute"
        );
        debug_assert!(value.is_finite(), "non-finite attribute value");
        self.indexed = false;
        self.numerics.push(NumTriple {
            entity,
            attr,
            value,
        });
    }

    /// Builds the CSR adjacency and attribute indexes. Idempotent.
    pub fn build_index(&mut self) {
        if self.indexed {
            return;
        }
        let n = self.entity_names.len();
        // Adjacency: every triple contributes a forward edge at the head and
        // an inverse edge at the tail.
        let mut degree = vec![0usize; n];
        for t in &self.triples {
            degree[t.head.0 as usize] += 1;
            degree[t.tail.0 as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![
            Edge {
                dr: DirRel::forward(RelationId(0)),
                to: EntityId(0)
            };
            acc
        ];
        for t in &self.triples {
            let h = t.head.0 as usize;
            edges[cursor[h]] = Edge {
                dr: DirRel::forward(t.rel),
                to: t.tail,
            };
            cursor[h] += 1;
            let tl = t.tail.0 as usize;
            edges[cursor[tl]] = Edge {
                dr: DirRel::inverse(t.rel),
                to: t.head,
            };
            cursor[tl] += 1;
        }
        self.adj_offsets = offsets;
        self.adj_edges = edges;

        // Numeric facts per entity.
        let mut ndeg = vec![0usize; n];
        for f in &self.numerics {
            ndeg[f.entity.0 as usize] += 1;
        }
        let mut noff = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        noff.push(0);
        for d in &ndeg {
            acc += d;
            noff.push(acc);
        }
        let mut ncur = noff.clone();
        let mut nfacts = vec![(AttributeId(0), 0.0f64); acc];
        let mut per_attr: Vec<Vec<(EntityId, f64)>> = vec![Vec::new(); self.attribute_names.len()];
        for f in &self.numerics {
            let e = f.entity.0 as usize;
            nfacts[ncur[e]] = (f.attr, f.value);
            ncur[e] += 1;
            per_attr[f.attr.0 as usize].push((f.entity, f.value));
        }
        self.num_offsets = noff;
        self.num_facts = nfacts;
        self.attr_entities = per_attr;
        self.indexed = true;
    }

    // ---- vocabulary queries ----------------------------------------------

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of relation types.
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of attribute types.
    pub fn num_attributes(&self) -> usize {
        self.attribute_names.len()
    }

    /// Name of an entity.
    pub fn entity_name(&self, e: EntityId) -> &str {
        &self.entity_names[e.0 as usize]
    }

    /// Name of a relation type.
    pub fn relation_name(&self, r: RelationId) -> &str {
        &self.relation_names[r.0 as usize]
    }

    /// Name of an attribute type.
    pub fn attribute_name(&self, a: AttributeId) -> &str {
        &self.attribute_names[a.0 as usize]
    }

    /// Human-readable name of a directed relation, `_inv`-suffixed for
    /// inverse traversal (Table V style).
    pub fn dir_rel_name(&self, dr: DirRel) -> String {
        match dr.dir {
            Dir::Forward => self.relation_name(dr.rel).to_string(),
            Dir::Inverse => format!("{}_inv", self.relation_name(dr.rel)),
        }
    }

    /// Looks up a relation id by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relation_names
            .iter()
            .position(|n| n == name)
            .map(|i| RelationId(i as u32))
    }

    /// Looks up an attribute id by name.
    pub fn attribute_by_name(&self, name: &str) -> Option<AttributeId> {
        self.attribute_names
            .iter()
            .position(|n| n == name)
            .map(|i| AttributeId(i as u32))
    }

    /// Looks up an entity id by name (linear scan; for tests and loaders
    /// prefer keeping your own map).
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_names
            .iter()
            .position(|n| n == name)
            .map(|i| EntityId(i as u32))
    }

    // ---- data queries ----------------------------------------------------

    /// All relational triples, in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// All numerical triples, in insertion order.
    pub fn numerics(&self) -> &[NumTriple] {
        &self.numerics
    }

    fn assert_indexed(&self) {
        assert!(self.indexed, "call build_index() before traversal queries");
    }

    /// All traversable edges at `e` (forward and inverse).
    pub fn neighbors(&self, e: EntityId) -> &[Edge] {
        self.assert_indexed();
        let i = e.0 as usize;
        &self.adj_edges[self.adj_offsets[i]..self.adj_offsets[i + 1]]
    }

    /// Degree of `e` counting both directions.
    pub fn degree(&self, e: EntityId) -> usize {
        self.neighbors(e).len()
    }

    /// Numeric facts attached to `e`.
    pub fn numerics_of(&self, e: EntityId) -> &[(AttributeId, f64)] {
        self.assert_indexed();
        let i = e.0 as usize;
        &self.num_facts[self.num_offsets[i]..self.num_offsets[i + 1]]
    }

    /// The value of attribute `a` at entity `e`, if present.
    pub fn value_of(&self, e: EntityId, a: AttributeId) -> Option<f64> {
        self.numerics_of(e)
            .iter()
            .find(|(attr, _)| *attr == a)
            .map(|&(_, v)| v)
    }

    /// All `(entity, value)` owners of an attribute.
    pub fn entities_with_attribute(&self, a: AttributeId) -> &[(EntityId, f64)] {
        self.assert_indexed();
        &self.attr_entities[a.0 as usize]
    }

    /// Iterates over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_names.len() as u32).map(EntityId)
    }

    /// Per-attribute co-occurrence counts of (directed relation, attribute)
    /// one-hop pairs — the supervision signal used to pre-train the
    /// Hyperbolic Filter embeddings.
    pub fn relation_attribute_cooccurrence(&self) -> HashMap<(DirRel, AttributeId), usize> {
        self.assert_indexed();
        let mut counts = HashMap::new();
        for t in &self.triples {
            // head --rel--> tail: tail's attributes co-occur with forward rel
            for &(a, _) in self.numerics_of(t.tail) {
                *counts.entry((DirRel::forward(t.rel), a)).or_insert(0) += 1;
            }
            for &(a, _) in self.numerics_of(t.head) {
                *counts.entry((DirRel::inverse(t.rel), a)).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Removes the given numeric triples (used to hide validation/test
    /// answers from the visible graph). Rebuilds the index.
    pub fn without_numerics(&self, hidden: &[NumTriple]) -> KnowledgeGraph {
        use std::collections::HashSet;
        let hide: HashSet<(EntityId, AttributeId)> =
            hidden.iter().map(|t| (t.entity, t.attr)).collect();
        let mut g = self.clone();
        g.numerics.retain(|t| !hide.contains(&(t.entity, t.attr)));
        g.indexed = false;
        g.build_index();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (KnowledgeGraph, Vec<EntityId>, RelationId, AttributeId) {
        let mut g = KnowledgeGraph::new();
        let e: Vec<EntityId> = (0..4).map(|i| g.add_entity(format!("e{i}"))).collect();
        let r = g.add_relation_type("knows");
        let a = g.add_attribute_type("age");
        g.add_triple(e[0], r, e[1]);
        g.add_triple(e[1], r, e[2]);
        g.add_numeric(e[1], a, 30.0);
        g.add_numeric(e[2], a, 40.0);
        g.build_index();
        (g, e, r, a)
    }

    #[test]
    fn adjacency_has_both_directions() {
        let (g, e, r, _) = tiny();
        let n0 = g.neighbors(e[0]);
        assert_eq!(n0.len(), 1);
        assert_eq!(n0[0].to, e[1]);
        assert_eq!(n0[0].dr, DirRel::forward(r));
        let n1 = g.neighbors(e[1]);
        assert_eq!(n1.len(), 2);
        assert!(n1
            .iter()
            .any(|ed| ed.to == e[0] && ed.dr == DirRel::inverse(r)));
        assert!(n1
            .iter()
            .any(|ed| ed.to == e[2] && ed.dr == DirRel::forward(r)));
        assert!(g.neighbors(e[3]).is_empty());
    }

    #[test]
    fn numeric_lookup() {
        let (g, e, _, a) = tiny();
        assert_eq!(g.value_of(e[1], a), Some(30.0));
        assert_eq!(g.value_of(e[0], a), None);
        assert_eq!(g.entities_with_attribute(a).len(), 2);
    }

    #[test]
    fn dir_rel_names() {
        let (g, _, r, _) = tiny();
        assert_eq!(g.dir_rel_name(DirRel::forward(r)), "knows");
        assert_eq!(g.dir_rel_name(DirRel::inverse(r)), "knows_inv");
    }

    #[test]
    fn cooccurrence_counts_both_directions() {
        let (g, _, r, a) = tiny();
        let co = g.relation_attribute_cooccurrence();
        // e0 --knows--> e1(age): forward knows sees age once (from e0->e1),
        // and e1 --knows--> e2(age): forward knows sees age again.
        assert_eq!(co[&(DirRel::forward(r), a)], 2);
        // inverse: e1's age seen from e1->e2 tail side? inverse counts head
        // attrs: e1(age) head of e1->e2 -> 1.
        assert_eq!(co[&(DirRel::inverse(r), a)], 1);
    }

    #[test]
    fn without_numerics_hides_values() {
        let (g, e, _, a) = tiny();
        let hidden = vec![NumTriple {
            entity: e[1],
            attr: a,
            value: 30.0,
        }];
        let g2 = g.without_numerics(&hidden);
        assert_eq!(g2.value_of(e[1], a), None);
        assert_eq!(g2.value_of(e[2], a), Some(40.0));
        // Original untouched.
        assert_eq!(g.value_of(e[1], a), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "build_index")]
    fn traversal_requires_index() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("x");
        g.neighbors(e);
    }

    #[test]
    fn lookup_by_name() {
        let (g, e, r, a) = tiny();
        assert_eq!(g.entity_by_name("e2"), Some(e[2]));
        assert_eq!(g.relation_by_name("knows"), Some(r));
        assert_eq!(g.attribute_by_name("age"), Some(a));
        assert_eq!(g.relation_by_name("nope"), None);
    }
}
