//! The multi-relational knowledge graph store with numerical triples
//! (`G = (V, R, A, N)` of Definition 1).

use crate::ids::{AttributeId, Dir, DirRel, EntityId, RelationId};
use std::collections::HashMap;

/// A relational triple `(head, relation, tail)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Triple {
    /// Head entity.
    pub head: EntityId,
    /// Relation type.
    pub rel: RelationId,
    /// Tail entity.
    pub tail: EntityId,
}

/// A numerical triple `(entity, attribute, value)`.
#[derive(Copy, Clone, PartialEq, Debug)]
pub struct NumTriple {
    /// Entity carrying the value.
    pub entity: EntityId,
    /// Attribute type.
    pub attr: AttributeId,
    /// The numerical value.
    pub value: f64,
}

/// One traversable edge in the adjacency index (relation + direction +
/// neighbor).
///
/// `repr(C)` pins the layout to 12 bytes (`rel: u32, dir: u32, to: u32`) so
/// the CFKG1 mmap view (`crate::store`) can cast validated section bytes
/// directly to `&[Edge]`.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
#[repr(C)]
pub struct Edge {
    /// Relation type and traversal direction.
    pub dr: DirRel,
    /// Neighbor reached by following the edge.
    pub to: EntityId,
}

/// One numeric fact in the per-entity CSR index: `(attribute, value)`.
///
/// `repr(C)`: 16 bytes (`attr: u32`, 4 bytes padding, `value: f64`), shared
/// between the heap index and the CFKG1 on-disk layout.
#[derive(Copy, Clone, PartialEq, Debug)]
#[repr(C)]
pub struct AttrFact {
    /// Attribute type.
    pub attr: AttributeId,
    /// The numerical value.
    pub value: f64,
}

/// One owner in the per-attribute CSR index: `(entity, value)`.
///
/// `repr(C)`: 16 bytes (`entity: u32`, 4 bytes padding, `value: f64`),
/// shared between the heap index and the CFKG1 on-disk layout.
#[derive(Copy, Clone, PartialEq, Debug)]
#[repr(C)]
pub struct AttrOwner {
    /// Entity carrying the value.
    pub entity: EntityId,
    /// The numerical value.
    pub value: f64,
}

/// Multi-relational KG enriched with numerical attributes.
///
/// Construction is two-phase: register vocabularies and triples through the
/// `add_*` methods, then call [`KnowledgeGraph::build_index`] (or use
/// [`crate::split`], which does it for you) before traversal. The adjacency
/// index is CSR-style: one flat edge vec plus per-entity offsets.
#[derive(Clone, Debug, Default)]
pub struct KnowledgeGraph {
    // Fields are pub(crate) so `crate::store` can serialize the built
    // indexes without re-deriving them.
    pub(crate) entity_names: Vec<String>,
    pub(crate) relation_names: Vec<String>,
    pub(crate) attribute_names: Vec<String>,
    pub(crate) triples: Vec<Triple>,
    pub(crate) numerics: Vec<NumTriple>,

    // CSR adjacency (both directions), valid after build_index.
    pub(crate) adj_offsets: Vec<usize>,
    pub(crate) adj_edges: Vec<Edge>,
    // Per-entity numeric facts, valid after build_index.
    pub(crate) num_offsets: Vec<usize>,
    pub(crate) num_facts: Vec<AttrFact>,
    // Per-attribute owners as CSR (one flat vec + offsets), valid after
    // build_index; layout matches the CFKG1 ATTRIDX section.
    pub(crate) attr_offsets: Vec<usize>,
    pub(crate) attr_facts: Vec<AttrOwner>,
    pub(crate) indexed: bool,
}

impl KnowledgeGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- construction ---------------------------------------------------

    /// Registers an entity, returning its id.
    pub fn add_entity(&mut self, name: impl Into<String>) -> EntityId {
        self.indexed = false;
        self.entity_names.push(name.into());
        EntityId((self.entity_names.len() - 1) as u32)
    }

    /// Registers a relation type, returning its id.
    pub fn add_relation_type(&mut self, name: impl Into<String>) -> RelationId {
        self.indexed = false;
        self.relation_names.push(name.into());
        RelationId((self.relation_names.len() - 1) as u32)
    }

    /// Registers a numerical attribute type, returning its id.
    pub fn add_attribute_type(&mut self, name: impl Into<String>) -> AttributeId {
        self.indexed = false;
        self.attribute_names.push(name.into());
        AttributeId((self.attribute_names.len() - 1) as u32)
    }

    /// Adds a relational triple `(head, rel, tail)`.
    pub fn add_triple(&mut self, head: EntityId, rel: RelationId, tail: EntityId) {
        debug_assert!(
            (head.0 as usize) < self.entity_names.len(),
            "unknown head entity"
        );
        debug_assert!(
            (tail.0 as usize) < self.entity_names.len(),
            "unknown tail entity"
        );
        debug_assert!(
            (rel.0 as usize) < self.relation_names.len(),
            "unknown relation"
        );
        self.indexed = false;
        self.triples.push(Triple { head, rel, tail });
    }

    /// Adds a numerical triple `(entity, attr, value)`.
    pub fn add_numeric(&mut self, entity: EntityId, attr: AttributeId, value: f64) {
        debug_assert!(
            (entity.0 as usize) < self.entity_names.len(),
            "unknown entity"
        );
        debug_assert!(
            (attr.0 as usize) < self.attribute_names.len(),
            "unknown attribute"
        );
        debug_assert!(value.is_finite(), "non-finite attribute value");
        self.indexed = false;
        self.numerics.push(NumTriple {
            entity,
            attr,
            value,
        });
    }

    /// Builds the CSR adjacency and attribute indexes. Idempotent.
    pub fn build_index(&mut self) {
        if self.indexed {
            return;
        }
        let n = self.entity_names.len();
        // Adjacency: every triple contributes a forward edge at the head and
        // an inverse edge at the tail.
        let mut degree = vec![0usize; n];
        for t in &self.triples {
            degree[t.head.0 as usize] += 1;
            degree[t.tail.0 as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut edges = vec![
            Edge {
                dr: DirRel::forward(RelationId(0)),
                to: EntityId(0)
            };
            acc
        ];
        for t in &self.triples {
            let h = t.head.0 as usize;
            edges[cursor[h]] = Edge {
                dr: DirRel::forward(t.rel),
                to: t.tail,
            };
            cursor[h] += 1;
            let tl = t.tail.0 as usize;
            edges[cursor[tl]] = Edge {
                dr: DirRel::inverse(t.rel),
                to: t.head,
            };
            cursor[tl] += 1;
        }
        self.adj_offsets = offsets;
        self.adj_edges = edges;

        // Numeric facts per entity.
        let mut ndeg = vec![0usize; n];
        for f in &self.numerics {
            ndeg[f.entity.0 as usize] += 1;
        }
        let mut noff = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        noff.push(0);
        for d in &ndeg {
            acc += d;
            noff.push(acc);
        }
        let mut ncur = noff.clone();
        let mut nfacts = vec![
            AttrFact {
                attr: AttributeId(0),
                value: 0.0
            };
            acc
        ];
        for f in &self.numerics {
            let e = f.entity.0 as usize;
            nfacts[ncur[e]] = AttrFact {
                attr: f.attr,
                value: f.value,
            };
            ncur[e] += 1;
        }
        self.num_offsets = noff;
        self.num_facts = nfacts;

        // Per-attribute owners as CSR, mirroring the adjacency layout.
        let na = self.attribute_names.len();
        let mut adeg = vec![0usize; na];
        for f in &self.numerics {
            adeg[f.attr.0 as usize] += 1;
        }
        let mut aoff = Vec::with_capacity(na + 1);
        let mut acc = 0usize;
        aoff.push(0);
        for d in &adeg {
            acc += d;
            aoff.push(acc);
        }
        let mut acur = aoff.clone();
        let mut afacts = vec![
            AttrOwner {
                entity: EntityId(0),
                value: 0.0
            };
            acc
        ];
        for f in &self.numerics {
            let a = f.attr.0 as usize;
            afacts[acur[a]] = AttrOwner {
                entity: f.entity,
                value: f.value,
            };
            acur[a] += 1;
        }
        self.attr_offsets = aoff;
        self.attr_facts = afacts;
        self.indexed = true;
    }

    // ---- vocabulary queries ----------------------------------------------

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_names.len()
    }

    /// Number of relation types.
    pub fn num_relations(&self) -> usize {
        self.relation_names.len()
    }

    /// Number of attribute types.
    pub fn num_attributes(&self) -> usize {
        self.attribute_names.len()
    }

    /// Name of an entity.
    pub fn entity_name(&self, e: EntityId) -> &str {
        &self.entity_names[e.0 as usize]
    }

    /// Name of a relation type.
    pub fn relation_name(&self, r: RelationId) -> &str {
        &self.relation_names[r.0 as usize]
    }

    /// Name of an attribute type.
    pub fn attribute_name(&self, a: AttributeId) -> &str {
        &self.attribute_names[a.0 as usize]
    }

    /// Human-readable name of a directed relation, `_inv`-suffixed for
    /// inverse traversal (Table V style).
    pub fn dir_rel_name(&self, dr: DirRel) -> String {
        match dr.dir {
            Dir::Forward => self.relation_name(dr.rel).to_string(),
            Dir::Inverse => format!("{}_inv", self.relation_name(dr.rel)),
        }
    }

    /// Looks up a relation id by name.
    pub fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        self.relation_names
            .iter()
            .position(|n| n == name)
            .map(|i| RelationId(i as u32))
    }

    /// Looks up an attribute id by name.
    pub fn attribute_by_name(&self, name: &str) -> Option<AttributeId> {
        self.attribute_names
            .iter()
            .position(|n| n == name)
            .map(|i| AttributeId(i as u32))
    }

    /// Looks up an entity id by name (linear scan; for tests and loaders
    /// prefer keeping your own map).
    pub fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        self.entity_names
            .iter()
            .position(|n| n == name)
            .map(|i| EntityId(i as u32))
    }

    // ---- data queries ----------------------------------------------------

    /// All relational triples, in insertion order.
    pub fn triples(&self) -> &[Triple] {
        &self.triples
    }

    /// All numerical triples, in insertion order.
    pub fn numerics(&self) -> &[NumTriple] {
        &self.numerics
    }

    fn assert_indexed(&self) {
        assert!(self.indexed, "call build_index() before traversal queries");
    }

    /// All traversable edges at `e` (forward and inverse).
    pub fn neighbors(&self, e: EntityId) -> &[Edge] {
        self.assert_indexed();
        let i = e.0 as usize;
        &self.adj_edges[self.adj_offsets[i]..self.adj_offsets[i + 1]]
    }

    /// Degree of `e` counting both directions.
    pub fn degree(&self, e: EntityId) -> usize {
        self.neighbors(e).len()
    }

    /// Numeric facts attached to `e`.
    pub fn numerics_of(&self, e: EntityId) -> &[AttrFact] {
        self.assert_indexed();
        let i = e.0 as usize;
        &self.num_facts[self.num_offsets[i]..self.num_offsets[i + 1]]
    }

    /// The value of attribute `a` at entity `e`, if present.
    pub fn value_of(&self, e: EntityId, a: AttributeId) -> Option<f64> {
        self.numerics_of(e)
            .iter()
            .find(|f| f.attr == a)
            .map(|f| f.value)
    }

    /// All `(entity, value)` owners of an attribute.
    pub fn entities_with_attribute(&self, a: AttributeId) -> &[AttrOwner] {
        self.assert_indexed();
        let i = a.0 as usize;
        &self.attr_facts[self.attr_offsets[i]..self.attr_offsets[i + 1]]
    }

    /// Iterates over all entity ids.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> {
        (0..self.entity_names.len() as u32).map(EntityId)
    }

    /// Per-attribute co-occurrence counts of (directed relation, attribute)
    /// one-hop pairs — the supervision signal used to pre-train the
    /// Hyperbolic Filter embeddings.
    pub fn relation_attribute_cooccurrence(&self) -> HashMap<(DirRel, AttributeId), usize> {
        self.assert_indexed();
        let mut counts = HashMap::new();
        for t in &self.triples {
            // head --rel--> tail: tail's attributes co-occur with forward rel
            for f in self.numerics_of(t.tail) {
                *counts.entry((DirRel::forward(t.rel), f.attr)).or_insert(0) += 1;
            }
            for f in self.numerics_of(t.head) {
                *counts.entry((DirRel::inverse(t.rel), f.attr)).or_insert(0) += 1;
            }
        }
        counts
    }

    /// Renumbers all three vocabularies into lexicographic name order and
    /// sorts the fact lists by the new ids, then rebuilds the indexes.
    ///
    /// Two graphs holding the same *content* — regardless of the order
    /// names were registered or facts were added (e.g. TSV row order vs
    /// generator order) — become identical structures, so
    /// [`crate::write_store`] serializes them to byte-identical CFKG1
    /// files. The CLI `gen --store` and `ingest` paths both canonicalize
    /// before writing, which is what lets CI `cmp` a generated store
    /// against a TSV-round-tripped one.
    pub fn canonicalize(&mut self) {
        /// Sorts `names` in place; returns `inv` with `inv[old_id] = new_id`.
        fn perm_by_name(names: &mut Vec<String>) -> Vec<u32> {
            let mut order: Vec<u32> = (0..names.len() as u32).collect();
            order.sort_by(|&a, &b| names[a as usize].cmp(&names[b as usize]));
            let mut inv = vec![0u32; names.len()];
            for (new, &old) in order.iter().enumerate() {
                inv[old as usize] = new as u32;
            }
            let mut sorted = Vec::with_capacity(names.len());
            for &old in &order {
                sorted.push(std::mem::take(&mut names[old as usize]));
            }
            *names = sorted;
            inv
        }
        let ent = perm_by_name(&mut self.entity_names);
        let rel = perm_by_name(&mut self.relation_names);
        let attr = perm_by_name(&mut self.attribute_names);
        for t in &mut self.triples {
            t.head = EntityId(ent[t.head.0 as usize]);
            t.rel = RelationId(rel[t.rel.0 as usize]);
            t.tail = EntityId(ent[t.tail.0 as usize]);
        }
        self.triples.sort_by_key(|t| (t.head.0, t.rel.0, t.tail.0));
        for n in &mut self.numerics {
            n.entity = EntityId(ent[n.entity.0 as usize]);
            n.attr = AttributeId(attr[n.attr.0 as usize]);
        }
        // value.to_bits() is not value order for negatives, but any fixed
        // total order canonicalizes; only determinism matters here.
        self.numerics
            .sort_by_key(|n| (n.entity.0, n.attr.0, n.value.to_bits()));
        self.indexed = false;
        self.build_index();
    }

    /// Removes the given numeric triples (used to hide validation/test
    /// answers from the visible graph). Rebuilds the index.
    pub fn without_numerics(&self, hidden: &[NumTriple]) -> KnowledgeGraph {
        use std::collections::HashSet;
        let hide: HashSet<(EntityId, AttributeId)> =
            hidden.iter().map(|t| (t.entity, t.attr)).collect();
        let mut g = self.clone();
        g.numerics.retain(|t| !hide.contains(&(t.entity, t.attr)));
        g.indexed = false;
        g.build_index();
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> (KnowledgeGraph, Vec<EntityId>, RelationId, AttributeId) {
        let mut g = KnowledgeGraph::new();
        let e: Vec<EntityId> = (0..4).map(|i| g.add_entity(format!("e{i}"))).collect();
        let r = g.add_relation_type("knows");
        let a = g.add_attribute_type("age");
        g.add_triple(e[0], r, e[1]);
        g.add_triple(e[1], r, e[2]);
        g.add_numeric(e[1], a, 30.0);
        g.add_numeric(e[2], a, 40.0);
        g.build_index();
        (g, e, r, a)
    }

    #[test]
    fn adjacency_has_both_directions() {
        let (g, e, r, _) = tiny();
        let n0 = g.neighbors(e[0]);
        assert_eq!(n0.len(), 1);
        assert_eq!(n0[0].to, e[1]);
        assert_eq!(n0[0].dr, DirRel::forward(r));
        let n1 = g.neighbors(e[1]);
        assert_eq!(n1.len(), 2);
        assert!(n1
            .iter()
            .any(|ed| ed.to == e[0] && ed.dr == DirRel::inverse(r)));
        assert!(n1
            .iter()
            .any(|ed| ed.to == e[2] && ed.dr == DirRel::forward(r)));
        assert!(g.neighbors(e[3]).is_empty());
    }

    #[test]
    fn numeric_lookup() {
        let (g, e, _, a) = tiny();
        assert_eq!(g.value_of(e[1], a), Some(30.0));
        assert_eq!(g.value_of(e[0], a), None);
        assert_eq!(g.entities_with_attribute(a).len(), 2);
    }

    /// The same content registered in two different orders must
    /// canonicalize to identical structures and byte-identical stores.
    #[test]
    fn canonicalize_is_order_independent() {
        let build = |ent_order: &[&str], flip_facts: bool| {
            let mut g = KnowledgeGraph::new();
            let ids: std::collections::HashMap<&str, EntityId> = ent_order
                .iter()
                .map(|name| (*name, g.add_entity(*name)))
                .collect();
            let (r1, r2) = if flip_facts {
                (g.add_relation_type("r2"), g.add_relation_type("r1"))
            } else {
                (g.add_relation_type("r1"), g.add_relation_type("r2"))
            };
            let (r1, r2) = if flip_facts { (r2, r1) } else { (r1, r2) };
            let a = g.add_attribute_type("age");
            let mut facts = vec![
                (ids["alice"], r1, ids["bob"]),
                (ids["bob"], r2, ids["carol"]),
                (ids["carol"], r1, ids["alice"]),
            ];
            if flip_facts {
                facts.reverse();
            }
            for (h, r, t) in facts {
                g.add_triple(h, r, t);
            }
            let mut nums = vec![(ids["bob"], a, 30.0), (ids["alice"], a, 41.5)];
            if flip_facts {
                nums.reverse();
            }
            for (e, a, v) in nums {
                g.add_numeric(e, a, v);
            }
            g.canonicalize();
            g
        };
        let g1 = build(&["alice", "bob", "carol"], false);
        let g2 = build(&["carol", "alice", "bob"], true);
        assert_eq!(g1.entity_names, g2.entity_names);
        assert_eq!(g1.relation_names, g2.relation_names);
        assert_eq!(g1.triples, g2.triples);
        assert_eq!(g1.numerics, g2.numerics);
        let tmp = |n: &str| {
            let mut p = std::env::temp_dir();
            p.push(format!("cfkg_canon_{}_{n}", std::process::id()));
            p
        };
        let (p1, p2) = (tmp("a"), tmp("b"));
        crate::write_store(&g1, &p1).unwrap();
        crate::write_store(&g2, &p2).unwrap();
        let same = std::fs::read(&p1).unwrap() == std::fs::read(&p2).unwrap();
        let _ = std::fs::remove_file(&p1);
        let _ = std::fs::remove_file(&p2);
        assert!(same, "canonicalized stores differ");
    }

    #[test]
    fn dir_rel_names() {
        let (g, _, r, _) = tiny();
        assert_eq!(g.dir_rel_name(DirRel::forward(r)), "knows");
        assert_eq!(g.dir_rel_name(DirRel::inverse(r)), "knows_inv");
    }

    #[test]
    fn cooccurrence_counts_both_directions() {
        let (g, _, r, a) = tiny();
        let co = g.relation_attribute_cooccurrence();
        // e0 --knows--> e1(age): forward knows sees age once (from e0->e1),
        // and e1 --knows--> e2(age): forward knows sees age again.
        assert_eq!(co[&(DirRel::forward(r), a)], 2);
        // inverse: e1's age seen from e1->e2 tail side? inverse counts head
        // attrs: e1(age) head of e1->e2 -> 1.
        assert_eq!(co[&(DirRel::inverse(r), a)], 1);
    }

    #[test]
    fn without_numerics_hides_values() {
        let (g, e, _, a) = tiny();
        let hidden = vec![NumTriple {
            entity: e[1],
            attr: a,
            value: 30.0,
        }];
        let g2 = g.without_numerics(&hidden);
        assert_eq!(g2.value_of(e[1], a), None);
        assert_eq!(g2.value_of(e[2], a), Some(40.0));
        // Original untouched.
        assert_eq!(g.value_of(e[1], a), Some(30.0));
    }

    #[test]
    #[should_panic(expected = "build_index")]
    fn traversal_requires_index() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("x");
        g.neighbors(e);
    }

    #[test]
    fn lookup_by_name() {
        let (g, e, r, a) = tiny();
        assert_eq!(g.entity_by_name("e2"), Some(e[2]));
        assert_eq!(g.relation_by_name("knows"), Some(r));
        assert_eq!(g.attribute_by_name("age"), Some(a));
        assert_eq!(g.relation_by_name("nope"), None);
    }
}
