//! CFCI1: the precomputed per-entity chain index.
//!
//! For every entity the index materializes the reachable RA-Chain prefixes —
//! `(rel-token path of ≤ 3 hops, source entity, attribute, value)` — as one
//! flat CSR array of 32-byte [`ChainEntry`] records, so query-time retrieval
//! becomes an index lookup plus weighted sampling instead of re-walking the
//! adjacency (see `cf_chains::retrieve_indexed`).
//!
//! ## Determinism
//!
//! The build shards entities into a *fixed* number of contiguous ranges
//! (a constant of the input size, never of the thread count), computes each
//! shard independently on the PR-6 thread pool, and concatenates shard
//! outputs in shard order. Per-entity entries are canonicalized by sort +
//! dedup before the fan-out cap is applied. The resulting bytes — and the
//! CFCI1 file — are therefore bitwise identical at every `CF_THREADS` width.
//!
//! ## File format
//!
//! Same sectioned container as CFKG1 (`crate::store`), magic `CFCI1`:
//!
//! | tag | section  | body                                                  |
//! |-----|----------|-------------------------------------------------------|
//! | 1   | params   | `u64 × 8`: n_e, n_attrs, n_rel_tokens, max_hops, fanout, cap, graph fingerprint, flags |
//! | 2   | offsets  | `u64[n_e + 1]`                                        |
//! | 3   | entries  | `ChainEntry[total]` (32 B each)                       |
//!
//! A loaded index refuses to pair with a graph whose [`graph_fingerprint`]
//! differs from the one recorded at build time.

use crate::graph::KnowledgeGraph;
use crate::ids::{AttributeId, DirRel, EntityId};
use crate::mmapio::Mmap;
use crate::store::{atomic_write, cast_u64s, walk_sections, SectionWriter, StoreError};
use crate::view::GraphView;
use std::ops::Range;
use std::path::Path;

/// File magic for the chain index.
pub const INDEX_MAGIC: [u8; 8] = *b"CFCI1\x00\x00\x00";

const TAG_PARAMS: u32 = 1;
const TAG_OFFSETS: u32 = 2;
const TAG_ENTRIES: u32 = 3;

const MAX_ENTITIES: u64 = 1 << 31;
const MAX_ENTRIES: u64 = 1 << 35;

/// Sentinel for unused `rel_tokens` slots (hops < 3).
pub const NO_TOKEN: u32 = u32::MAX;

fn index_section_name(tag: u32) -> &'static str {
    match tag {
        TAG_PARAMS => "params",
        TAG_OFFSETS => "offsets",
        TAG_ENTRIES => "entries",
        0xFFFF_FFFF => "end",
        _ => "unknown",
    }
}

/// One precomputed chain instance reachable from an entity.
///
/// `repr(C)`, 32 bytes: `source u32, attr u32, hops u32, rel_tokens [u32;3],
/// value f64` — the on-disk CFCI1 record, mmap-castable after validation.
/// `rel_tokens[..hops]` are dense [`DirRel::token`] values in walk order
/// from the indexed entity; slots at `hops..` hold [`NO_TOKEN`].
#[derive(Copy, Clone, PartialEq, Debug)]
#[repr(C)]
pub struct ChainEntry {
    /// Entity carrying the known value (`v_p`).
    pub source: EntityId,
    /// The known attribute (`a_p`).
    pub attr: AttributeId,
    /// Number of relation hops (0 = fact on the indexed entity itself).
    pub hops: u32,
    /// Dense directed-relation tokens of the path, walk order.
    pub rel_tokens: [u32; 3],
    /// The known value (`n_p`).
    pub value: f64,
}

impl ChainEntry {
    /// The directed relations of the path, walk order from the entity.
    pub fn rels(&self) -> impl Iterator<Item = DirRel> + '_ {
        self.rel_tokens[..self.hops as usize]
            .iter()
            .map(|&t| DirRel::from_token(t as usize))
    }

    fn sort_key(&self) -> (u32, [u32; 3], u32, u32, u64) {
        (
            self.hops,
            self.rel_tokens,
            self.attr.0,
            self.source.0,
            self.value.to_bits(),
        )
    }
}

/// Build parameters of a chain index.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IndexParams {
    /// Maximum path depth (≤ 3, the paper's walk length).
    pub max_hops: u32,
    /// Per-node branch cap during the DFS: only the first `fanout` non-cycle
    /// edges (adjacency order) are expanded at each node.
    pub fanout: u32,
    /// Cap on entries kept per entity, applied after canonical sort (shorter
    /// chains survive first).
    pub per_entity_cap: u32,
}

impl Default for IndexParams {
    fn default() -> Self {
        IndexParams {
            max_hops: 3,
            fanout: 16,
            per_entity_cap: 256,
        }
    }
}

/// Stable fingerprint binding an index to the graph it was built from:
/// FNV-1a over the vocabulary/fact counts and every entity's degree and
/// fact count. O(n), no hashing of names or values — cheap enough to run at
/// every pairing, strong enough to catch any structural mismatch.
pub fn graph_fingerprint(g: &impl GraphView) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mix = |h: &mut u64, v: u64| {
        *h ^= v;
        *h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    mix(&mut h, g.num_entities() as u64);
    mix(&mut h, g.num_relations() as u64);
    mix(&mut h, g.num_attributes() as u64);
    for e in g.entities() {
        mix(&mut h, g.degree(e) as u64);
        mix(&mut h, g.numerics_of(e).len() as u64);
    }
    h
}

/// Read access to a chain index (owned or mapped).
pub trait ChainIndexView {
    /// Number of indexed entities.
    fn num_entities(&self) -> usize;
    /// The build parameters.
    fn params(&self) -> IndexParams;
    /// Fingerprint of the graph this index was built from.
    fn fingerprint(&self) -> u64;
    /// All precomputed entries for `e`, canonical order.
    fn entries_of(&self, e: EntityId) -> &[ChainEntry];
    /// Total entry count across all entities.
    fn total_entries(&self) -> usize;

    /// Errors unless the index fingerprint matches `g`.
    fn check_matches(&self, g: &impl GraphView) -> Result<(), StoreError>
    where
        Self: Sized,
    {
        if self.num_entities() != g.num_entities() || self.fingerprint() != graph_fingerprint(g) {
            return Err(StoreError::Corrupt {
                section: "params",
                what: "index fingerprint does not match the graph".into(),
            });
        }
        Ok(())
    }
}

/// An owned, heap-built chain index.
#[derive(Clone, Debug)]
pub struct ChainIndex {
    params: IndexParams,
    fingerprint: u64,
    n_attrs: u32,
    n_rel_tokens: u32,
    offsets: Vec<u64>,
    entries: Vec<ChainEntry>,
}

impl ChainIndexView for ChainIndex {
    fn num_entities(&self) -> usize {
        self.offsets.len() - 1
    }
    fn params(&self) -> IndexParams {
        self.params
    }
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
    fn entries_of(&self, e: EntityId) -> &[ChainEntry] {
        let i = e.0 as usize;
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
    fn total_entries(&self) -> usize {
        self.entries.len()
    }
}

// ---------------------------------------------------------------------------
// build
// ---------------------------------------------------------------------------

/// Depth-first enumeration of simple paths from `e`, bounded by
/// `params.max_hops` and `params.fanout`, pushing one entry per numeric fact
/// at every visited node. Purely sequential per entity — determinism comes
/// from fixed adjacency order.
fn collect_entity(
    g: &impl GraphView,
    e: EntityId,
    params: &IndexParams,
    scratch: &mut Vec<ChainEntry>,
) {
    scratch.clear();
    // Raw enumeration is bounded: if a hub's DFS overflows this guard we
    // stop expanding (canonical sort below then keeps the shortest chains).
    let scratch_cap = (params.per_entity_cap as usize)
        .saturating_mul(16)
        .max(1024);
    for f in g.numerics_of(e) {
        scratch.push(ChainEntry {
            source: e,
            attr: f.attr,
            hops: 0,
            rel_tokens: [NO_TOKEN; 3],
            value: f.value,
        });
    }
    let mut path = [e; 4];
    let mut toks = [NO_TOKEN; 3];
    dfs(g, e, 0, &mut path, &mut toks, params, scratch_cap, scratch);
    // Canonicalize: sort (hops first, so the cap keeps short chains), dedup
    // exact duplicates reached via different intermediate nodes, cap.
    scratch.sort_unstable_by_key(|c| c.sort_key());
    scratch.dedup_by(|a, b| a.sort_key() == b.sort_key());
    scratch.truncate(params.per_entity_cap as usize);
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &impl GraphView,
    at: EntityId,
    depth: u32,
    path: &mut [EntityId; 4],
    toks: &mut [u32; 3],
    params: &IndexParams,
    scratch_cap: usize,
    out: &mut Vec<ChainEntry>,
) {
    if depth >= params.max_hops || out.len() >= scratch_cap {
        return;
    }
    let d = depth as usize;
    let mut taken = 0u32;
    for edge in g.neighbors(at) {
        if taken >= params.fanout || out.len() >= scratch_cap {
            break;
        }
        if path[..=d].contains(&edge.to) {
            continue;
        }
        taken += 1;
        toks[d] = edge.dr.token() as u32;
        path[d + 1] = edge.to;
        let mut rt = [NO_TOKEN; 3];
        rt[..=d].copy_from_slice(&toks[..=d]);
        for f in g.numerics_of(edge.to) {
            out.push(ChainEntry {
                source: edge.to,
                attr: f.attr,
                hops: depth + 1,
                rel_tokens: rt,
                value: f.value,
            });
        }
        dfs(g, edge.to, depth + 1, path, toks, params, scratch_cap, out);
    }
}

/// Builds the chain index for `g`, in parallel on the global thread pool.
///
/// Entities are split into a fixed shard count; each shard's entries are
/// computed independently and concatenated in shard order, so the result is
/// bitwise identical at every thread count.
pub fn build_chain_index<G: GraphView + Sync>(g: &G, params: IndexParams) -> ChainIndex {
    assert!(
        (1..=3).contains(&params.max_hops),
        "max_hops must be in 1..=3"
    );
    assert!(params.fanout >= 1 && params.per_entity_cap >= 1);
    let n = g.num_entities();
    // A constant of the input size only — never of the thread count.
    let shards = 256.min(n.max(1));

    #[derive(Default)]
    struct ShardOut {
        counts: Vec<u32>,
        entries: Vec<ChainEntry>,
    }

    let mut outs: Vec<ShardOut> = (0..shards).map(|_| ShardOut::default()).collect();
    {
        let shared = cf_tensor::pool::SharedMut::new(&mut outs);
        cf_tensor::pool::parallel_for(shards, |range: Range<usize>| {
            let mut scratch: Vec<ChainEntry> = Vec::new();
            for s in range {
                // SAFETY: each shard index is visited by exactly one slice,
                // so writes are disjoint; `outs` outlives the parallel_for.
                let out = &mut unsafe { shared.get(s, 1) }[0];
                let er = cf_tensor::pool::slice_range(n, shards, s);
                out.counts.reserve(er.len());
                for i in er {
                    collect_entity(g, EntityId(i as u32), &params, &mut scratch);
                    out.counts.push(scratch.len() as u32);
                    out.entries.extend_from_slice(&scratch);
                }
            }
        });
    }

    let total: usize = outs.iter().map(|o| o.entries.len()).sum();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut entries = Vec::with_capacity(total);
    offsets.push(0u64);
    let mut acc = 0u64;
    for o in &outs {
        for &c in &o.counts {
            acc += c as u64;
            offsets.push(acc);
        }
        entries.extend_from_slice(&o.entries);
    }
    debug_assert_eq!(offsets.len(), n + 1);
    debug_assert_eq!(entries.len(), total);

    ChainIndex {
        params,
        fingerprint: graph_fingerprint(g),
        n_attrs: g.num_attributes() as u32,
        n_rel_tokens: 2 * g.num_relations() as u32,
        offsets,
        entries,
    }
}

// ---------------------------------------------------------------------------
// serialization
// ---------------------------------------------------------------------------

/// Serializes a chain index to `path` as CFCI1, atomically. Byte output is
/// a pure function of the index.
pub fn write_index(ix: &ChainIndex, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let path = path.as_ref();
    let n = ix.num_entities() as u64;
    let total = ix.entries.len() as u64;
    if n > MAX_ENTITIES || total > MAX_ENTRIES {
        return Err(StoreError::TooLarge { section: "params" });
    }
    atomic_write(path, |w| {
        w.write_all(&INDEX_MAGIC)?;
        let mut crcs = Vec::with_capacity(3);

        let mut s = SectionWriter::begin(w, TAG_PARAMS, 64)?;
        for v in [
            n,
            ix.n_attrs as u64,
            ix.n_rel_tokens as u64,
            ix.params.max_hops as u64,
            ix.params.fanout as u64,
            ix.params.per_entity_cap as u64,
            ix.fingerprint,
            0,
        ] {
            s.put_u64(v)?;
        }
        crcs.push(s.finish()?);

        let mut s = SectionWriter::begin(w, TAG_OFFSETS, 8 * (n + 1))?;
        for &o in &ix.offsets {
            s.put_u64(o)?;
        }
        crcs.push(s.finish()?);

        let mut s = SectionWriter::begin(w, TAG_ENTRIES, 32 * total)?;
        for e in &ix.entries {
            s.put_u32(e.source.0)?;
            s.put_u32(e.attr.0)?;
            s.put_u32(e.hops)?;
            for t in e.rel_tokens {
                s.put_u32(t)?;
            }
            s.put_f64(e.value)?;
        }
        crcs.push(s.finish()?);

        crate::store::write_end(w, &crcs)?;
        Ok(())
    })
}

use std::io::Write as _;

/// Zero-copy chain index view over an mmap'd CFCI1 file.
#[derive(Debug)]
pub struct MappedChainIndex {
    mem: Mmap,
    params: IndexParams,
    fingerprint: u64,
    n_entities: usize,
    offsets: Range<usize>,
    entries: Range<usize>,
}

fn cast_entries(bytes: &[u8]) -> &[ChainEntry] {
    assert!(bytes.as_ptr() as usize % 8 == 0 && bytes.len() % 32 == 0);
    // SAFETY: ChainEntry is repr(C), 32 bytes, align 8, every field
    // inhabited for all bit patterns; contents were validated at open.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const ChainEntry, bytes.len() / 32) }
}

impl MappedChainIndex {
    /// Opens and fully validates a CFCI1 file.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedChainIndex, StoreError> {
        let mem = Mmap::open(path)?;
        let bytes = mem.bytes();
        let sections = walk_sections(bytes, &INDEX_MAGIC, index_section_name, true)?;
        let mut params_r = None;
        let mut offsets_r = None;
        let mut entries_r = None;
        for s in sections {
            let slot = match s.tag {
                TAG_PARAMS => &mut params_r,
                TAG_OFFSETS => &mut offsets_r,
                TAG_ENTRIES => &mut entries_r,
                _ => continue,
            };
            if slot.is_some() {
                return Err(StoreError::Duplicate {
                    section: index_section_name(s.tag),
                });
            }
            *slot = Some(s.body);
        }
        let params_b = params_r.ok_or(StoreError::Missing { section: "params" })?;
        let offsets_b = offsets_r.ok_or(StoreError::Missing { section: "offsets" })?;
        let entries_b = entries_r.ok_or(StoreError::Missing { section: "entries" })?;

        if params_b.len() != 64 {
            return Err(StoreError::Corrupt {
                section: "params",
                what: "expected 64-byte body".into(),
            });
        }
        let pv = cast_u64s(&bytes[params_b]);
        let n = pv[0];
        let n_attrs = pv[1];
        let n_rel_tokens = pv[2];
        let (max_hops, fanout, cap) = (pv[3], pv[4], pv[5]);
        let fingerprint = pv[6];
        if n > MAX_ENTITIES {
            return Err(StoreError::TooLarge { section: "params" });
        }
        if !(1..=3).contains(&max_hops)
            || fanout == 0
            || cap == 0
            || fanout > u32::MAX as u64
            || cap > u32::MAX as u64
            || n_attrs > MAX_ENTITIES
            || n_rel_tokens > MAX_ENTITIES
        {
            return Err(StoreError::Corrupt {
                section: "params",
                what: "parameter out of range".into(),
            });
        }
        let n = n as usize;

        if offsets_b.len() != 8 * (n + 1) {
            return Err(StoreError::Corrupt {
                section: "offsets",
                what: "body length does not match entity count".into(),
            });
        }
        if entries_b.len() % 32 != 0 {
            return Err(StoreError::Corrupt {
                section: "entries",
                what: "body length not a multiple of 32".into(),
            });
        }
        let total = (entries_b.len() / 32) as u64;
        if total > MAX_ENTRIES {
            return Err(StoreError::TooLarge { section: "entries" });
        }
        let offs = cast_u64s(&bytes[offsets_b.clone()]);
        if offs.first() != Some(&0)
            || offs.windows(2).any(|w| w[0] > w[1])
            || offs.last() != Some(&total)
        {
            return Err(StoreError::Corrupt {
                section: "offsets",
                what: "offsets not monotone from 0 to the entry count".into(),
            });
        }

        // Validate every entry: ids in range, hops ≤ max_hops, used tokens
        // dense, unused slots NO_TOKEN, value finite.
        {
            let raw = cast_u64s(&bytes[entries_b.clone()]);
            for rec in raw.chunks_exact(4) {
                let source = rec[0] as u32 as u64;
                let attr = rec[0] >> 32;
                let hops = rec[1] as u32;
                let toks = [(rec[1] >> 32) as u32, rec[2] as u32, (rec[2] >> 32) as u32];
                let vbits = rec[3];
                if source >= n as u64 || attr >= n_attrs || hops as u64 > max_hops {
                    return Err(StoreError::Corrupt {
                        section: "entries",
                        what: "entry id or hop count out of range".into(),
                    });
                }
                for (i, &t) in toks.iter().enumerate() {
                    let used = (i as u32) < hops;
                    if used && t as u64 >= n_rel_tokens {
                        return Err(StoreError::Corrupt {
                            section: "entries",
                            what: "relation token out of range".into(),
                        });
                    }
                    if !used && t != NO_TOKEN {
                        return Err(StoreError::Corrupt {
                            section: "entries",
                            what: "unused token slot not NO_TOKEN".into(),
                        });
                    }
                }
                if (vbits >> 52) & 0x7FF == 0x7FF {
                    return Err(StoreError::Corrupt {
                        section: "entries",
                        what: "non-finite value".into(),
                    });
                }
            }
        }

        Ok(MappedChainIndex {
            mem,
            params: IndexParams {
                max_hops: max_hops as u32,
                fanout: fanout as u32,
                per_entity_cap: cap as u32,
            },
            fingerprint,
            n_entities: n,
            offsets: offsets_b,
            entries: entries_b,
        })
    }

    /// Whether the kernel zero-copy mapping is in use.
    pub fn is_kernel_mapped(&self) -> bool {
        self.mem.is_kernel_mapped()
    }
}

impl ChainIndexView for MappedChainIndex {
    fn num_entities(&self) -> usize {
        self.n_entities
    }
    fn params(&self) -> IndexParams {
        self.params
    }
    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
    fn entries_of(&self, e: EntityId) -> &[ChainEntry] {
        let offs = cast_u64s(&self.mem.bytes()[self.offsets.clone()]);
        let i = e.0 as usize;
        let entries = cast_entries(&self.mem.bytes()[self.entries.clone()]);
        &entries[offs[i] as usize..offs[i + 1] as usize]
    }
    fn total_entries(&self) -> usize {
        self.entries.len() / 32
    }
}

/// Either chain-index backend behind one concrete type.
#[derive(Debug)]
pub enum ChainIndexStore {
    /// Heap-built index.
    Built(ChainIndex),
    /// Zero-copy mmap view over a CFCI1 file.
    Mapped(MappedChainIndex),
}

impl From<ChainIndex> for ChainIndexStore {
    fn from(ix: ChainIndex) -> Self {
        ChainIndexStore::Built(ix)
    }
}

impl From<MappedChainIndex> for ChainIndexStore {
    fn from(ix: MappedChainIndex) -> Self {
        ChainIndexStore::Mapped(ix)
    }
}

impl ChainIndexView for ChainIndexStore {
    fn num_entities(&self) -> usize {
        match self {
            ChainIndexStore::Built(ix) => ix.num_entities(),
            ChainIndexStore::Mapped(ix) => ix.num_entities(),
        }
    }
    fn params(&self) -> IndexParams {
        match self {
            ChainIndexStore::Built(ix) => ix.params(),
            ChainIndexStore::Mapped(ix) => ix.params(),
        }
    }
    fn fingerprint(&self) -> u64 {
        match self {
            ChainIndexStore::Built(ix) => ix.fingerprint(),
            ChainIndexStore::Mapped(ix) => ix.fingerprint(),
        }
    }
    fn entries_of(&self, e: EntityId) -> &[ChainEntry] {
        match self {
            ChainIndexStore::Built(ix) => ix.entries_of(e),
            ChainIndexStore::Mapped(ix) => ix.entries_of(e),
        }
    }
    fn total_entries(&self) -> usize {
        match self {
            ChainIndexStore::Built(ix) => ix.total_entries(),
            ChainIndexStore::Mapped(ix) => ix.total_entries(),
        }
    }
}

/// Convenience: builds the index for a heap graph with default parameters.
pub fn build_default_index(g: &KnowledgeGraph) -> ChainIndex {
    build_chain_index(g, IndexParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cfkg_index_{}_{}.cfi", std::process::id(), name));
        p
    }

    fn sample_graph() -> KnowledgeGraph {
        let mut rng = StdRng::seed_from_u64(11);
        yago15k_sim(SynthScale::small(), &mut rng)
    }

    #[test]
    fn entries_respect_caps_and_bounds() {
        let g = sample_graph();
        let params = IndexParams {
            max_hops: 3,
            fanout: 8,
            per_entity_cap: 64,
        };
        let ix = build_chain_index(&g, params);
        assert_eq!(ix.num_entities(), g.num_entities());
        assert!(ix.total_entries() > 0);
        for e in GraphView::entities(&g) {
            let entries = ix.entries_of(e);
            assert!(entries.len() <= 64);
            for c in entries {
                assert!(c.hops <= 3);
                assert!((c.source.0 as usize) < g.num_entities());
                assert!((c.attr.0 as usize) < g.num_attributes());
                for (i, &t) in c.rel_tokens.iter().enumerate() {
                    if (i as u32) < c.hops {
                        assert!((t as usize) < 2 * g.num_relations());
                    } else {
                        assert_eq!(t, NO_TOKEN);
                    }
                }
                assert!(c.value.is_finite());
            }
        }
    }

    #[test]
    fn zero_hop_entries_are_own_facts() {
        let g = sample_graph();
        let ix = build_default_index(&g);
        for e in GraphView::entities(&g).take(500) {
            let zero: Vec<_> = ix.entries_of(e).iter().filter(|c| c.hops == 0).collect();
            let mut own: Vec<_> = g
                .numerics_of(e)
                .iter()
                .map(|f| (f.attr, f.value.to_bits()))
                .collect();
            own.sort_unstable_by_key(|&(a, v)| (a.0, v));
            own.dedup();
            let got: Vec<_> = zero.iter().map(|c| (c.attr, c.value.to_bits())).collect();
            assert_eq!(got, own, "entity {e:?}");
        }
    }

    #[test]
    fn build_is_identical_across_thread_counts() {
        let g = sample_graph();
        let before = cf_tensor::pool::threads();
        cf_tensor::pool::set_threads(1);
        let ix1 = build_default_index(&g);
        cf_tensor::pool::set_threads(4);
        let ix4 = build_default_index(&g);
        cf_tensor::pool::set_threads(before);
        assert_eq!(ix1.offsets, ix4.offsets);
        assert_eq!(ix1.entries, ix4.entries);
        // And the serialized files are bitwise identical.
        let p1 = tmp("t1");
        let p4 = tmp("t4");
        write_index(&ix1, &p1).unwrap();
        write_index(&ix4, &p4).unwrap();
        assert_eq!(
            std::fs::read(&p1).unwrap(),
            std::fs::read(&p4).unwrap(),
            "index bytes differ across build widths"
        );
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p4).unwrap();
    }

    #[test]
    fn mapped_index_matches_built() {
        let g = sample_graph();
        let ix = build_default_index(&g);
        let p = tmp("mapped");
        write_index(&ix, &p).unwrap();
        let m = MappedChainIndex::open(&p).unwrap();
        assert_eq!(m.num_entities(), ix.num_entities());
        assert_eq!(m.params(), ix.params());
        assert_eq!(m.fingerprint(), ix.fingerprint());
        assert_eq!(m.total_entries(), ix.total_entries());
        for e in GraphView::entities(&g) {
            assert_eq!(ix.entries_of(e), m.entries_of(e));
        }
        m.check_matches(&g).unwrap();
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_rejected() {
        let g = sample_graph();
        let ix = build_default_index(&g);
        let p = tmp("fpr");
        write_index(&ix, &p).unwrap();
        let m = MappedChainIndex::open(&p).unwrap();
        let mut other = KnowledgeGraph::new();
        other.add_entity("x");
        other.build_index();
        assert!(m.check_matches(&other).is_err());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn index_corruption_is_detected() {
        let g = sample_graph();
        let ix = build_default_index(&g);
        let p = tmp("corrupt");
        write_index(&ix, &p).unwrap();
        let clean = std::fs::read(&p).unwrap();
        let step = (clean.len() / 61).max(1);
        for off in (8..clean.len()).step_by(step) {
            let mut bad = clean.clone();
            bad[off] ^= 0x5A;
            std::fs::write(&p, &bad).unwrap();
            assert!(
                MappedChainIndex::open(&p).is_err(),
                "corruption at {off} not detected"
            );
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn entries_are_sorted_and_deduped() {
        let g = sample_graph();
        let ix = build_default_index(&g);
        for e in GraphView::entities(&g).take(500) {
            let entries = ix.entries_of(e);
            for w in entries.windows(2) {
                assert!(
                    w[0].sort_key() < w[1].sort_key(),
                    "entries not strictly sorted at {e:?}"
                );
            }
        }
    }
}
