//! Per-attribute min-max normalization (Eq. 23 of the paper).

use crate::graph::NumTriple;
use crate::ids::AttributeId;

/// Min-max normalizer fitted per attribute on *training* values only, so
/// evaluation ranges never leak into the scale.
#[derive(Clone, Debug)]
pub struct MinMaxNormalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxNormalizer {
    /// Fits on a set of (training) numeric triples. Attributes that never
    /// occur get the degenerate range `[0, 1]`.
    pub fn fit(num_attributes: usize, train: &[NumTriple]) -> Self {
        let mut mins = vec![f64::INFINITY; num_attributes];
        let mut maxs = vec![f64::NEG_INFINITY; num_attributes];
        for t in train {
            let i = t.attr.0 as usize;
            mins[i] = mins[i].min(t.value);
            maxs[i] = maxs[i].max(t.value);
        }
        for i in 0..num_attributes {
            if !mins[i].is_finite() {
                mins[i] = 0.0;
                maxs[i] = 1.0;
            } else if maxs[i] - mins[i] < 1e-12 {
                // (Near-)constant attribute: widen proportionally to the
                // value's magnitude so out-of-range test values don't blow
                // normalized errors up by orders of magnitude.
                let pad = (0.1 * mins[i].abs()).max(1.0);
                maxs[i] = mins[i] + pad;
            }
        }
        MinMaxNormalizer { mins, maxs }
    }

    /// Training minimum of an attribute.
    pub fn min(&self, a: AttributeId) -> f64 {
        self.mins[a.0 as usize]
    }

    /// Training maximum of an attribute.
    pub fn max(&self, a: AttributeId) -> f64 {
        self.maxs[a.0 as usize]
    }

    /// Training range (`max - min`) of an attribute.
    pub fn range(&self, a: AttributeId) -> f64 {
        self.max(a) - self.min(a)
    }

    /// `(v - min) / (max - min)`. Values outside the training range map
    /// outside [0, 1]; that's intended (no clipping — Eq. 23 has none).
    pub fn normalize(&self, a: AttributeId, v: f64) -> f64 {
        (v - self.min(a)) / self.range(a)
    }

    /// Inverse of [`Self::normalize`].
    pub fn denormalize(&self, a: AttributeId, n: f64) -> f64 {
        n * self.range(a) + self.min(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;

    fn nt(attr: u32, value: f64) -> NumTriple {
        NumTriple {
            entity: EntityId(0),
            attr: AttributeId(attr),
            value,
        }
    }

    #[test]
    fn normalize_denormalize_round_trip() {
        let n = MinMaxNormalizer::fit(1, &[nt(0, 10.0), nt(0, 30.0)]);
        let a = AttributeId(0);
        assert_eq!(n.normalize(a, 10.0), 0.0);
        assert_eq!(n.normalize(a, 30.0), 1.0);
        assert_eq!(n.normalize(a, 20.0), 0.5);
        for v in [-5.0, 10.0, 17.3, 30.0, 99.0] {
            assert!((n.denormalize(a, n.normalize(a, v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn unseen_attribute_gets_unit_range() {
        let n = MinMaxNormalizer::fit(2, &[nt(0, 5.0), nt(0, 6.0)]);
        let a1 = AttributeId(1);
        assert_eq!(n.min(a1), 0.0);
        assert_eq!(n.range(a1), 1.0);
    }

    #[test]
    fn constant_attribute_is_widened() {
        let n = MinMaxNormalizer::fit(1, &[nt(0, 7.0), nt(0, 7.0)]);
        assert!(n.range(AttributeId(0)) >= 1.0);
        assert!(n.normalize(AttributeId(0), 7.0).is_finite());
    }

    #[test]
    fn out_of_range_values_are_not_clipped() {
        let n = MinMaxNormalizer::fit(1, &[nt(0, 0.0), nt(0, 10.0)]);
        assert_eq!(n.normalize(AttributeId(0), 20.0), 2.0);
        assert_eq!(n.normalize(AttributeId(0), -10.0), -1.0);
    }
}
