//! CFJ1: the crash-safe live-graph mutation journal.
//!
//! The CFKG1 store is immutable; live mutations (numeric upserts, new
//! entities, new edges) are appended here first and acknowledged only after
//! `fsync`, then applied to the in-memory [`crate::overlay::OverlayGraph`].
//! On restart the journal is replayed onto the base store; because every
//! mutation is an upsert / add-if-missing, replay is **idempotent** — so a
//! crash between "compact the store" and "truncate the journal" is harmless
//! (the survivors re-apply as no-ops).
//!
//! ## File format
//!
//! ```text
//! magic "CFJ1\0\0\0\0"
//! record*  where record = len:u32 LE | crc32(payload):u32 LE | payload[len]
//! ```
//!
//! Records are framed individually (unlike the sectioned CFKG1 container)
//! because the file grows by appends, not atomic rewrites. The recovery
//! contract, proven by exhaustive `FaultyWriter` sweeps in the tests:
//!
//! * a crash mid-append leaves a **torn tail** — fewer bytes than the
//!   record frame declares. Recovery truncates it and reports which record
//!   index was dropped; every fully-framed prefix record survives.
//! * a **corrupt** record (complete frame, CRC mismatch — bit rot, not a
//!   crash) is a hard error naming the record index. A crash can never
//!   produce this state: partial appends shorten the file, they do not
//!   rewrite committed bytes.
//!
//! Mutations address entities/attributes/relations **by name**, so a
//! journal stays valid across compactions even though compaction may grow
//! the id space of the base store.

use crate::store::{crc32, StoreError};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// File magic for the mutation journal.
pub const JOURNAL_MAGIC: [u8; 8] = *b"CFJ1\x00\x00\x00\x00";

/// Cap on one framed record (a mutation is a handful of names + a value).
pub const MAX_RECORD: u32 = 1 << 20;
/// Cap on one name inside a record.
pub const MAX_MUTATION_NAME: u32 = 1 << 16;

const OP_UPSERT: u8 = 1;
const OP_ADD_ENTITY: u8 = 2;
const OP_ADD_EDGE: u8 = 3;

/// One live-graph mutation. All variants are idempotent by construction:
/// applying the same mutation twice yields the same graph as applying it
/// once (upsert overwrites, adds skip existing content).
#[derive(Clone, Debug, PartialEq)]
pub enum Mutation {
    /// Set attribute `attr` of `entity` to `value`, inserting the fact if
    /// absent. Unknown entity/attribute names are created.
    UpsertNumeric {
        /// Entity name.
        entity: String,
        /// Attribute name.
        attr: String,
        /// New value (must be finite).
        value: f64,
    },
    /// Register an entity if it does not already exist.
    AddEntity {
        /// Entity name.
        name: String,
    },
    /// Add the relational edge `(head, rel, tail)` if not already present.
    /// Unknown entity/relation names are created.
    AddEdge {
        /// Head entity name.
        head: String,
        /// Relation name.
        rel: String,
        /// Tail entity name.
        tail: String,
    },
}

fn corrupt(record: usize, what: impl std::fmt::Display) -> StoreError {
    StoreError::Corrupt {
        section: "journal",
        what: format!("record {record}: {what}"),
    }
}

/// Validates the names and value of a mutation against the journal caps.
pub fn validate_mutation(m: &Mutation) -> Result<(), String> {
    let name_ok = |what: &str, s: &str| -> Result<(), String> {
        if s.is_empty() {
            return Err(format!("{what}: empty name"));
        }
        if s.len() as u64 > MAX_MUTATION_NAME as u64 {
            return Err(format!(
                "{what}: name longer than {MAX_MUTATION_NAME} bytes"
            ));
        }
        Ok(())
    };
    match m {
        Mutation::UpsertNumeric {
            entity,
            attr,
            value,
        } => {
            name_ok("entity", entity)?;
            name_ok("attr", attr)?;
            if !value.is_finite() {
                return Err("value: not finite".into());
            }
        }
        Mutation::AddEntity { name } => name_ok("entity", name)?,
        Mutation::AddEdge { head, rel, tail } => {
            name_ok("head", head)?;
            name_ok("rel", rel)?;
            name_ok("tail", tail)?;
        }
    }
    Ok(())
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
    buf.extend_from_slice(s.as_bytes());
}

/// Encodes one mutation as a complete framed journal record
/// (`len | crc | payload`). The bytes are a pure function of the mutation.
pub fn encode_record(m: &Mutation) -> Vec<u8> {
    debug_assert!(validate_mutation(m).is_ok(), "unvalidated mutation");
    let mut payload = Vec::new();
    match m {
        Mutation::UpsertNumeric {
            entity,
            attr,
            value,
        } => {
            payload.push(OP_UPSERT);
            put_str(&mut payload, entity);
            put_str(&mut payload, attr);
            payload.extend_from_slice(&value.to_bits().to_le_bytes());
        }
        Mutation::AddEntity { name } => {
            payload.push(OP_ADD_ENTITY);
            put_str(&mut payload, name);
        }
        Mutation::AddEdge { head, rel, tail } => {
            payload.push(OP_ADD_EDGE);
            put_str(&mut payload, head);
            put_str(&mut payload, rel);
            put_str(&mut payload, tail);
        }
    }
    assert!(payload.len() as u64 <= MAX_RECORD as u64, "record over cap");
    let mut rec = Vec::with_capacity(8 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&crc32(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

struct PayloadReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    record: usize,
}

impl<'a> PayloadReader<'a> {
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.bytes.len() - self.pos < n {
            return Err(corrupt(self.record, format!("{what}: payload too short")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn get_str(&mut self, what: &str) -> Result<String, StoreError> {
        let len = u32::from_le_bytes(self.take(4, what)?.try_into().unwrap());
        if len > MAX_MUTATION_NAME {
            return Err(corrupt(self.record, format!("{what}: name over cap")));
        }
        let raw = self.take(len as usize, what)?;
        let s = std::str::from_utf8(raw)
            .map_err(|_| corrupt(self.record, format!("{what}: name is not valid UTF-8")))?;
        if s.is_empty() {
            return Err(corrupt(self.record, format!("{what}: empty name")));
        }
        Ok(s.to_string())
    }

    fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(corrupt(self.record, "trailing bytes in payload"));
        }
        Ok(())
    }
}

fn decode_payload(payload: &[u8], record: usize) -> Result<Mutation, StoreError> {
    let mut r = PayloadReader {
        bytes: payload,
        pos: 0,
        record,
    };
    let op = r.take(1, "op")?[0];
    let m = match op {
        OP_UPSERT => {
            let entity = r.get_str("entity")?;
            let attr = r.get_str("attr")?;
            let bits = u64::from_le_bytes(r.take(8, "value")?.try_into().unwrap());
            let value = f64::from_bits(bits);
            if !value.is_finite() {
                return Err(corrupt(record, "value: not finite"));
            }
            Mutation::UpsertNumeric {
                entity,
                attr,
                value,
            }
        }
        OP_ADD_ENTITY => Mutation::AddEntity {
            name: r.get_str("entity")?,
        },
        OP_ADD_EDGE => Mutation::AddEdge {
            head: r.get_str("head")?,
            rel: r.get_str("rel")?,
            tail: r.get_str("tail")?,
        },
        other => return Err(corrupt(record, format!("unknown op {other}"))),
    };
    r.finish()?;
    Ok(m)
}

/// The torn tail dropped by recovery: which record index the journal broke
/// at and how many trailing bytes were discarded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DroppedTail {
    /// Index of the first record that did not survive.
    pub record: usize,
    /// Bytes discarded from the end of the file.
    pub bytes: usize,
}

/// Result of recovering a journal: the committed mutations plus the torn
/// tail (if a crash cut the last append short).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Recovery {
    /// Fully committed mutations, journal order.
    pub mutations: Vec<Mutation>,
    /// Torn tail discarded by recovery, if any.
    pub dropped: Option<DroppedTail>,
}

impl Recovery {
    /// Byte length of the valid prefix (`magic` + committed records).
    /// Everything past this offset is the torn tail.
    pub fn valid_len(&self, file_len: usize) -> usize {
        file_len - self.dropped.as_ref().map_or(0, |d| d.bytes)
    }
}

/// Recovers a journal image: committed mutations old-or-new per record.
///
/// A torn tail (any strict prefix of an append, as a crash leaves behind)
/// is truncated and reported in [`Recovery::dropped`]; a complete record
/// whose CRC does not match its payload is a hard [`StoreError::Corrupt`]
/// naming the record index.
pub fn recover_bytes(bytes: &[u8]) -> Result<Recovery, StoreError> {
    if bytes.len() < JOURNAL_MAGIC.len() {
        // A crash while creating the file can leave any prefix of the
        // magic; anything else this short is not a journal.
        if JOURNAL_MAGIC.starts_with(bytes) {
            return Ok(Recovery {
                mutations: Vec::new(),
                dropped: (!bytes.is_empty()).then_some(DroppedTail {
                    record: 0,
                    bytes: bytes.len(),
                }),
            });
        }
        return Err(StoreError::BadMagic);
    }
    if bytes[..8] != JOURNAL_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let mut mutations = Vec::new();
    let mut pos = 8usize;
    let mut record = 0usize;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            // Torn frame header.
            return Ok(Recovery {
                mutations,
                dropped: Some(DroppedTail {
                    record,
                    bytes: remaining,
                }),
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if len > MAX_RECORD {
            return Err(corrupt(record, format!("length {len} exceeds cap")));
        }
        if remaining - 8 < len as usize {
            // Torn payload.
            return Ok(Recovery {
                mutations,
                dropped: Some(DroppedTail {
                    record,
                    bytes: remaining,
                }),
            });
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        if crc32(payload) != crc {
            return Err(corrupt(record, "crc mismatch"));
        }
        mutations.push(decode_payload(payload, record)?);
        pos += 8 + len as usize;
        record += 1;
    }
    Ok(Recovery {
        mutations,
        dropped: None,
    })
}

/// Recovers a journal file (see [`recover_bytes`]). A missing file is an
/// empty journal.
pub fn recover_file(path: impl AsRef<Path>) -> Result<Recovery, StoreError> {
    match std::fs::read(path) {
        Ok(bytes) => recover_bytes(&bytes),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Recovery::default()),
        Err(e) => Err(StoreError::Io(e)),
    }
}

/// Append-only journal writer with batched fsync.
///
/// [`JournalWriter::append`] only buffers; [`JournalWriter::commit`] writes
/// the batch and fsyncs once — the durability point. A mutation must not be
/// acknowledged to a client before the commit that covers it returns.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    pending: Vec<u8>,
    records: u64,
}

impl JournalWriter {
    /// Opens (or creates) a journal for appending, recovering the existing
    /// content first: a torn tail is physically truncated off the file so
    /// subsequent appends extend a valid prefix.
    pub fn open(path: impl AsRef<Path>) -> Result<(Self, Recovery), StoreError> {
        let path = path.as_ref();
        let file_len = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let recovery = if file_len == 0 {
            Recovery::default()
        } else {
            recover_file(path)?
        };
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        let keep = if file_len == 0 {
            0
        } else {
            recovery.valid_len(file_len as usize) as u64
        };
        if keep < file_len {
            file.set_len(keep)?;
            file.sync_data()?;
        }
        let mut w = JournalWriter {
            file,
            pending: Vec::new(),
            records: recovery.mutations.len() as u64,
        };
        if keep == 0 {
            // Fresh (or fully torn) journal: lay down the magic.
            w.file.set_len(0)?;
            w.file.write_all(&JOURNAL_MAGIC)?;
            w.file.sync_data()?;
        } else {
            use std::io::Seek;
            w.file.seek(std::io::SeekFrom::End(0))?;
        }
        Ok((w, recovery))
    }

    /// Buffers one mutation for the next [`commit`](Self::commit).
    pub fn append(&mut self, m: &Mutation) {
        self.pending.extend_from_slice(&encode_record(m));
        self.records += 1;
    }

    /// Writes all buffered records and fsyncs — one durability barrier for
    /// the whole batch.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        self.file.write_all(&self.pending)?;
        self.file.sync_data()?;
        self.pending.clear();
        Ok(())
    }

    /// Committed + pending record count.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Empties the journal (after its mutations were compacted into the
    /// base store). Keeps the magic so the file stays a valid journal.
    pub fn truncate_all(&mut self) -> Result<(), StoreError> {
        self.pending.clear();
        self.file.set_len(JOURNAL_MAGIC.len() as u64)?;
        self.file.sync_data()?;
        use std::io::Seek;
        self.file.seek(std::io::SeekFrom::End(0))?;
        self.records = 0;
        Ok(())
    }
}
