//! Dataset statistics (Tables I and II of the paper).

use crate::graph::KnowledgeGraph;
use crate::ids::AttributeId;

/// Table I row: global counts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct DatasetStats {
    /// `|V|`.
    pub entities: usize,
    /// `|R|`.
    pub relations: usize,
    /// `|A|`.
    pub attributes: usize,
    /// `|E_r|`.
    pub relational_triples: usize,
    /// `|E_a|`.
    pub numeric_triples: usize,
}

/// Table II row: one attribute's value statistics.
#[derive(Clone, Debug)]
pub struct AttributeStats {
    /// Attribute id.
    pub attr: AttributeId,
    /// Attribute name.
    pub name: String,
    /// Number of recorded values.
    pub count: usize,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Mean value.
    pub mean: f64,
}

impl AttributeStats {
    /// Value range `max - min` (Table II's last column).
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// Computes Table I for a graph.
pub fn dataset_stats(g: &KnowledgeGraph) -> DatasetStats {
    DatasetStats {
        entities: g.num_entities(),
        relations: g.num_relations(),
        attributes: g.num_attributes(),
        relational_triples: g.triples().len(),
        numeric_triples: g.numerics().len(),
    }
}

/// Computes Table II: per-attribute min/max/count/mean (attributes with no
/// values are skipped).
pub fn attribute_stats(g: &KnowledgeGraph) -> Vec<AttributeStats> {
    let mut out = Vec::new();
    for a in 0..g.num_attributes() {
        let attr = AttributeId(a as u32);
        let owners = g.entities_with_attribute(attr);
        if owners.is_empty() {
            continue;
        }
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for f in owners {
            min = min.min(f.value);
            max = max.max(f.value);
            sum += f.value;
        }
        out.push(AttributeStats {
            attr,
            name: g.attribute_name(attr).to_string(),
            count: owners.len(),
            min,
            max,
            mean: sum / owners.len() as f64,
        });
    }
    out
}

/// Average number of edges per entity (a proxy for the paper's "average path
/// length" scale notes).
pub fn mean_degree(g: &KnowledgeGraph) -> f64 {
    if g.num_entities() == 0 {
        return 0.0;
    }
    // Each triple contributes two directed edges.
    2.0 * g.triples().len() as f64 / g.num_entities() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_everything() {
        let mut g = KnowledgeGraph::new();
        let e0 = g.add_entity("a");
        let e1 = g.add_entity("b");
        let r = g.add_relation_type("r");
        let at = g.add_attribute_type("x");
        let _unused = g.add_attribute_type("y");
        g.add_triple(e0, r, e1);
        g.add_numeric(e0, at, 1.0);
        g.add_numeric(e1, at, 3.0);
        g.build_index();

        let s = dataset_stats(&g);
        assert_eq!(
            s,
            DatasetStats {
                entities: 2,
                relations: 1,
                attributes: 2,
                relational_triples: 1,
                numeric_triples: 2
            }
        );

        let attrs = attribute_stats(&g);
        assert_eq!(attrs.len(), 1, "empty attribute should be skipped");
        assert_eq!(attrs[0].count, 2);
        assert_eq!(attrs[0].min, 1.0);
        assert_eq!(attrs[0].max, 3.0);
        assert_eq!(attrs[0].mean, 2.0);
        assert_eq!(attrs[0].range(), 2.0);

        assert_eq!(mean_degree(&g), 1.0);
    }
}
