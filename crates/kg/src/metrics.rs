//! Evaluation metrics: per-attribute MAE/RMSE plus the paper's normalized
//! "Average*" (all attributes min-max scaled to [0, 1] first).

use crate::ids::AttributeId;
use crate::norm::MinMaxNormalizer;
use std::collections::BTreeMap;

/// A single prediction vs. ground truth on one attribute.
#[derive(Copy, Clone, Debug)]
pub struct Prediction {
    /// Attribute the prediction is for.
    pub attr: AttributeId,
    /// Ground-truth value.
    pub truth: f64,
    /// Predicted value.
    pub pred: f64,
}

/// Per-attribute and aggregate regression errors.
#[derive(Clone, Debug)]
pub struct RegressionReport {
    /// Attribute → (MAE, RMSE, count), in raw attribute units.
    pub per_attribute: BTreeMap<u32, AttrErrors>,
    /// MAE averaged over attributes after min-max normalization ("Average*").
    pub norm_mae: f64,
    /// RMSE averaged over attributes after min-max normalization.
    pub norm_rmse: f64,
}

/// Errors for one attribute.
#[derive(Copy, Clone, Debug, Default)]
pub struct AttrErrors {
    /// Mean absolute error, raw units.
    pub mae: f64,
    /// Root mean squared error, raw units.
    pub rmse: f64,
    /// Number of predictions behind the averages.
    pub count: usize,
}

impl RegressionReport {
    /// Computes the report; `norm` must be fitted on training data.
    pub fn compute(preds: &[Prediction], norm: &MinMaxNormalizer) -> Self {
        let mut abs: BTreeMap<u32, (f64, f64, usize)> = BTreeMap::new();
        let mut nabs: BTreeMap<u32, (f64, f64, usize)> = BTreeMap::new();
        for p in preds {
            assert!(
                p.pred.is_finite(),
                "non-finite prediction for attr {:?}",
                p.attr
            );
            let e = p.pred - p.truth;
            let slot = abs.entry(p.attr.0).or_insert((0.0, 0.0, 0));
            slot.0 += e.abs();
            slot.1 += e * e;
            slot.2 += 1;
            let ne = norm.normalize(p.attr, p.pred) - norm.normalize(p.attr, p.truth);
            let nslot = nabs.entry(p.attr.0).or_insert((0.0, 0.0, 0));
            nslot.0 += ne.abs();
            nslot.1 += ne * ne;
            nslot.2 += 1;
        }
        let per_attribute = abs
            .iter()
            .map(|(&a, &(sum_abs, sum_sq, n))| {
                (
                    a,
                    AttrErrors {
                        mae: sum_abs / n as f64,
                        rmse: (sum_sq / n as f64).sqrt(),
                        count: n,
                    },
                )
            })
            .collect();
        // "Average*": normalize each class to 0-1, compute the error per
        // class, then average across classes (so rare attributes weigh the
        // same as common ones, matching the paper's table).
        let (mut nm, mut nr, mut classes) = (0.0, 0.0, 0usize);
        for (_, &(sum_abs, sum_sq, n)) in &nabs {
            nm += sum_abs / n as f64;
            nr += (sum_sq / n as f64).sqrt();
            classes += 1;
        }
        let classes = classes.max(1) as f64;
        RegressionReport {
            per_attribute,
            norm_mae: nm / classes,
            norm_rmse: nr / classes,
        }
    }

    /// MAE of one attribute (0 if absent).
    pub fn mae(&self, a: AttributeId) -> f64 {
        self.per_attribute.get(&a.0).map_or(0.0, |e| e.mae)
    }

    /// RMSE of one attribute (0 if absent).
    pub fn rmse(&self, a: AttributeId) -> f64 {
        self.per_attribute.get(&a.0).map_or(0.0, |e| e.rmse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NumTriple;
    use crate::ids::EntityId;

    fn norm_for(ranges: &[(f64, f64)]) -> MinMaxNormalizer {
        let triples: Vec<NumTriple> = ranges
            .iter()
            .enumerate()
            .flat_map(|(i, &(lo, hi))| {
                vec![
                    NumTriple {
                        entity: EntityId(0),
                        attr: AttributeId(i as u32),
                        value: lo,
                    },
                    NumTriple {
                        entity: EntityId(0),
                        attr: AttributeId(i as u32),
                        value: hi,
                    },
                ]
            })
            .collect();
        MinMaxNormalizer::fit(ranges.len(), &triples)
    }

    #[test]
    fn mae_rmse_basic() {
        let norm = norm_for(&[(0.0, 10.0)]);
        let preds = vec![
            Prediction {
                attr: AttributeId(0),
                truth: 0.0,
                pred: 3.0,
            },
            Prediction {
                attr: AttributeId(0),
                truth: 0.0,
                pred: -1.0,
            },
        ];
        let r = RegressionReport::compute(&preds, &norm);
        let e = r.per_attribute[&0];
        assert!((e.mae - 2.0).abs() < 1e-9);
        assert!((e.rmse - (5.0f64).sqrt()).abs() < 1e-9);
        assert_eq!(e.count, 2);
    }

    #[test]
    fn normalized_average_weights_attributes_equally() {
        // Attribute 0 has range 10, attribute 1 range 1000; the same raw
        // error contributes 100x less for the wide attribute.
        let norm = norm_for(&[(0.0, 10.0), (0.0, 1000.0)]);
        let preds = vec![
            Prediction {
                attr: AttributeId(0),
                truth: 0.0,
                pred: 1.0,
            },
            Prediction {
                attr: AttributeId(1),
                truth: 0.0,
                pred: 1.0,
            },
        ];
        let r = RegressionReport::compute(&preds, &norm);
        // per-class normalized MAE: 0.1 and 0.001 -> average 0.0505
        assert!((r.norm_mae - 0.0505).abs() < 1e-9, "{}", r.norm_mae);
    }

    #[test]
    fn perfect_predictions_are_zero_error() {
        let norm = norm_for(&[(0.0, 1.0)]);
        let preds = vec![Prediction {
            attr: AttributeId(0),
            truth: 0.3,
            pred: 0.3,
        }];
        let r = RegressionReport::compute(&preds, &norm);
        assert_eq!(r.norm_mae, 0.0);
        assert_eq!(r.norm_rmse, 0.0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn rejects_nan_predictions() {
        let norm = norm_for(&[(0.0, 1.0)]);
        let preds = vec![Prediction {
            attr: AttributeId(0),
            truth: 0.0,
            pred: f64::NAN,
        }];
        RegressionReport::compute(&preds, &norm);
    }
}
