#![warn(missing_docs)]

//! # cf-kg
//!
//! Multi-relational knowledge-graph substrate for the ChainsFormer
//! reproduction: the graph store (`G = (V, R, A, N)` of the paper's
//! Definition 1), dataset splitting, per-attribute min-max normalization,
//! regression metrics, MMKG-style TSV IO, Table I/II statistics and the
//! synthetic FB15K-237 / YAGO15K twins (see [`synth`] for the substitution
//! rationale).
//!
//! ```
//! use cf_kg::synth::{yago15k_sim, SynthScale};
//! use cf_kg::split::Split;
//! use cf_rand::SeedableRng;
//!
//! let mut rng = cf_rand::rngs::StdRng::seed_from_u64(0);
//! let graph = yago15k_sim(SynthScale::small(), &mut rng);
//! let split = Split::paper_811(&graph, &mut rng);
//! let visible = split.visible_graph(&graph);
//! // Evaluation answers are hidden from the visible graph:
//! let q = split.test[0];
//! assert_eq!(visible.value_of(q.entity, q.attr), None);
//! ```

pub mod categories;
pub mod graph;
pub mod ids;
pub mod index;
pub mod io;
pub mod journal;
pub mod metrics;
pub mod mmapio;
pub mod norm;
pub mod overlay;
pub mod split;
pub mod stats;
pub mod store;
pub mod subgraph;
pub mod synth;
pub mod view;

pub use categories::{categorize, categorize_name, category_mae, AttributeCategory};
pub use graph::{AttrFact, AttrOwner, Edge, KnowledgeGraph, NumTriple, Triple};
pub use ids::{AttributeId, Dir, DirRel, EntityId, RelationId};
pub use index::{
    build_chain_index, graph_fingerprint, write_index, ChainEntry, ChainIndex, ChainIndexStore,
    ChainIndexView, IndexParams, MappedChainIndex,
};
pub use journal::{recover_file, validate_mutation, JournalWriter, Mutation, Recovery};
pub use metrics::{Prediction, RegressionReport};
pub use norm::MinMaxNormalizer;
pub use overlay::{ApplyOutcome, OverlayGraph};
pub use split::Split;
pub use store::{read_store, write_store, MappedGraph, StoreError};
pub use subgraph::{induced_subgraph, k_hop_entities, k_hop_subgraph};
pub use view::{GraphStore, GraphView};
