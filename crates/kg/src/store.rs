//! CFKG1: the binary knowledge-graph store.
//!
//! A CFKG1 file is a flat sequence of 8-byte-aligned little-endian sections,
//! each carrying a CRC32 of its body, closed by an end marker and a footer
//! CRC over all section CRCs (the CFT2 checkpoint discipline):
//!
//! ```text
//! magic "CFKG1\0\0\0"                                       8 bytes
//! section := tag:u32  0:u32  body_len:u64                  16-byte header
//!            body … zero-padded to 8                       body_len bytes
//!            crc32(body):u32  0:u32                         8-byte trailer
//! end     := tag=0xFFFF_FFFF  0:u32  body_len=0:u64
//! footer  := crc32(all section CRCs, LE, file order):u32  0:u32
//! ```
//!
//! Sections (all counts come from COUNTS; every body length is re-derived
//! from the counts and must match exactly):
//!
//! | tag | section          | body                                          |
//! |-----|------------------|-----------------------------------------------|
//! | 1   | counts           | `u64 × 6`: n_e, n_r, n_a, n_t, n_n, flags     |
//! | 2   | entity_names     | `u64` offsets `[n_e+1]` + UTF-8 blob           |
//! | 3   | relation_names   | `u64` offsets `[n_r+1]` + UTF-8 blob           |
//! | 4   | attribute_names  | `u64` offsets `[n_a+1]` + UTF-8 blob           |
//! | 5   | triples          | heads `u32[n_t]`, rels `u32[n_t]`, tails …     |
//! | 6   | numerics         | entities `u32[n_n]`, attrs `u32[n_n]`, values `f64[n_n]` |
//! | 7   | adjacency        | offsets `u64[n_e+1]` + `Edge[2·n_t]` (12 B)    |
//! | 8   | numeric_index    | offsets `u64[n_e+1]` + `AttrFact[n_n]` (16 B)  |
//! | 9   | attribute_index  | offsets `u64[n_a+1]` + `AttrOwner[n_n]` (16 B) |
//!
//! Two load paths:
//! - [`read_store`] copies into an owned [`KnowledgeGraph`] (for training,
//!   splitting, anything that mutates);
//! - [`MappedGraph::open`] validates once — every section CRC, every offset
//!   array monotone and bounded, every id in range, every direction ∈ {0,1},
//!   every value finite, every name UTF-8 — and then serves slices straight
//!   out of the mapping with zero copies. The unsafe casts below are sound
//!   *because* open refuses any file that fails those checks.
//!
//! Corrupt files yield a typed [`StoreError`] naming the failing section;
//! they can never produce a panic or a garbage graph.

use crate::graph::{AttrFact, AttrOwner, Edge, KnowledgeGraph};
use crate::ids::{AttributeId, EntityId, RelationId};
use crate::mmapio::Mmap;
use crate::view::GraphView;
use std::io::Write;
use std::ops::Range;
use std::path::Path;

/// File magic for the graph store.
pub const STORE_MAGIC: [u8; 8] = *b"CFKG1\x00\x00\x00";

const TAG_COUNTS: u32 = 1;
const TAG_ENTITY_NAMES: u32 = 2;
const TAG_REL_NAMES: u32 = 3;
const TAG_ATTR_NAMES: u32 = 4;
const TAG_TRIPLES: u32 = 5;
const TAG_NUMERICS: u32 = 6;
const TAG_ADJ: u32 = 7;
const TAG_NUMIDX: u32 = 8;
const TAG_ATTRIDX: u32 = 9;
const TAG_END: u32 = 0xFFFF_FFFF;

/// Cap on entity/relation/attribute counts (ids are u32).
const MAX_VOCAB: u64 = 1 << 31;
/// Cap on triple/numeric counts.
const MAX_FACTS: u64 = 1 << 33;
/// Hard cap on any single section body (belt-and-braces on top of the
/// actual-file-length bound enforced by the walker).
const MAX_SECTION: u64 = 1 << 37;
/// Cap on a name-table byte blob.
const MAX_NAME_BYTES: u64 = 1 << 32;

fn section_name(tag: u32) -> &'static str {
    match tag {
        TAG_COUNTS => "counts",
        TAG_ENTITY_NAMES => "entity_names",
        TAG_REL_NAMES => "relation_names",
        TAG_ATTR_NAMES => "attribute_names",
        TAG_TRIPLES => "triples",
        TAG_NUMERICS => "numerics",
        TAG_ADJ => "adjacency",
        TAG_NUMIDX => "numeric_index",
        TAG_ATTRIDX => "attribute_index",
        TAG_END => "end",
        _ => "unknown",
    }
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

/// Errors raised while writing or loading a CFKG1 / CFCI1 file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the expected magic.
    BadMagic,
    /// The file ends in the middle of the named structure.
    Truncated {
        /// What was being read when bytes ran out.
        what: &'static str,
    },
    /// A section's body does not match its recorded CRC32.
    BadCrc {
        /// Name of the failing section.
        section: &'static str,
    },
    /// A section is structurally invalid.
    Corrupt {
        /// Name of the failing section.
        section: &'static str,
        /// What was wrong.
        what: String,
    },
    /// A required section is absent.
    Missing {
        /// Name of the absent section.
        section: &'static str,
    },
    /// A section appears more than once.
    Duplicate {
        /// Name of the repeated section.
        section: &'static str,
    },
    /// A declared length exceeds its cap.
    TooLarge {
        /// Name of the offending section.
        section: &'static str,
    },
    /// [`write_store`] was called on a graph without built indexes.
    NotIndexed,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic => write!(f, "bad magic: not a CFKG1/CFCI1 file"),
            StoreError::Truncated { what } => write!(f, "truncated file while reading {what}"),
            StoreError::BadCrc { section } => {
                write!(f, "section {section:?} failed its CRC32 check")
            }
            StoreError::Corrupt { section, what } => {
                write!(f, "section {section:?} is corrupt: {what}")
            }
            StoreError::Missing { section } => write!(f, "section {section:?} is missing"),
            StoreError::Duplicate { section } => {
                write!(f, "section {section:?} appears more than once")
            }
            StoreError::TooLarge { section } => {
                write!(f, "section {section:?} exceeds its length cap")
            }
            StoreError::NotIndexed => {
                write!(
                    f,
                    "graph must be indexed (build_index) before writing a store"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

// ---------------------------------------------------------------------------
// CRC32 (slicing-by-8)
// ---------------------------------------------------------------------------

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        t[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[j - 1][i];
            t[j][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    t
}

static CRC_T: [[u32; 256]; 8] = crc_tables();

/// Incremental CRC32 (IEEE, poly 0xEDB88320 — same stream as the CFT2
/// checkpoint CRC), processing 8 bytes per step.
#[derive(Clone, Copy)]
pub(crate) struct Crc(u32);

impl Crc {
    pub(crate) fn new() -> Self {
        Crc(!0)
    }

    pub(crate) fn update(&mut self, bytes: &[u8]) {
        #[cfg(target_arch = "x86_64")]
        if bytes.len() >= clmul::MIN_LEN {
            match clmul::tier() {
                // SAFETY: the matching feature set was checked at runtime.
                clmul::Tier::Zmm => {
                    self.0 = unsafe { clmul::update_x512(self.0, bytes) };
                    return;
                }
                clmul::Tier::Xmm => {
                    self.0 = unsafe { clmul::update_x128(self.0, bytes) };
                    return;
                }
                clmul::Tier::Table => {}
            }
        }
        self.0 = table_update(self.0, bytes);
    }

    pub(crate) fn finish(self) -> u32 {
        !self.0
    }
}

/// Table-driven (slicing-by-8) CRC state transition — the portable path and
/// the reference the PCLMULQDQ path must match bit for bit.
fn table_update(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]) ^ crc;
        let hi = u32::from_le_bytes([ch[4], ch[5], ch[6], ch[7]]);
        crc = CRC_T[7][(lo & 0xFF) as usize]
            ^ CRC_T[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_T[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_T[4][(lo >> 24) as usize]
            ^ CRC_T[3][(hi & 0xFF) as usize]
            ^ CRC_T[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_T[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_T[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_T[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Carry-less-multiply CRC folding (x86_64 PCLMULQDQ), ~10× the table path.
///
/// Same polynomial, same stream, bitwise-identical result — this is purely a
/// throughput lever for `MappedGraph::open`, which must CRC every section of
/// a multi-hundred-MB store before the zero-copy casts are allowed.
///
/// Scheme (the reflected variant of Intel's CRC folding): four 128-bit
/// accumulators sweep the input 64 bytes per step; each step multiplies an
/// accumulator by `x^512 mod P` (carry-less) and XORs in the next 16 input
/// bytes, which preserves the value of the whole stream mod P. Because the
/// register holds bit-reflected polynomials, the low 64-bit half carries the
/// *high*-degree coefficients and folds by `x^(512+64)`, the high half by
/// `x^512`. The final <64-byte tail and the 64 accumulator bytes go through
/// the table path — no Barrett reduction needed, and the init/finish XORs
/// stay exactly where the table path puts them.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Below this, table overhead beats the SIMD setup.
    pub(super) const MIN_LEN: usize = 256;

    /// `x^n mod P` (P = 0x1_04C1_1DB7), coefficients of degree 31..0.
    const fn xn_mod_p(n: u32) -> u32 {
        let mut r: u32 = 1;
        let mut i = 0;
        while i < n {
            let hi = r & 0x8000_0000;
            r <<= 1;
            if hi != 0 {
                r ^= 0x04C1_1DB7;
            }
            i += 1;
        }
        r
    }

    /// Folding constant in PCLMULQDQ form: bit-reflected and shifted left
    /// one. In reflected bit order `rev128(clmul(u, v)) = rev64(u)·rev64(v)·x`
    /// and `rev64(rk(n)) = (x^n mod P)·x^31`, so multiplying by `rk(n)`
    /// advances a reflected half-register by `x^(n+32)` (mod P) — the +32 is
    /// why the constants below are 32 less than the fold distance.
    const fn rk(n: u32) -> i64 {
        ((xn_mod_p(n).reverse_bits() as u64) << 1) as i64
    }

    /// xmm path: eight accumulators sweep 128 bytes per step, so each folds
    /// across 1024 bits: the low half advances by x^(1024+64), the high by
    /// x^1024.
    const RK_LO: i64 = rk(1024 + 64 - 32);
    const RK_HI: i64 = rk(1024 - 32);

    /// zmm path: four 512-bit accumulators sweep 256 bytes per step; each
    /// 128-bit lane folds across 2048 bits.
    const ZK_LO: i64 = rk(2048 + 64 - 32);
    const ZK_HI: i64 = rk(2048 - 32);

    #[derive(Clone, Copy, PartialEq, Eq)]
    pub(super) enum Tier {
        Zmm,
        Xmm,
        Table,
    }

    /// 0 = unknown, then Tier as u8 + 1.
    static DETECTED: AtomicU8 = AtomicU8::new(0);

    pub(super) fn tier() -> Tier {
        match DETECTED.load(Ordering::Relaxed) {
            1 => Tier::Zmm,
            2 => Tier::Xmm,
            3 => Tier::Table,
            _ => {
                let t = if std::arch::is_x86_feature_detected!("vpclmulqdq")
                    && std::arch::is_x86_feature_detected!("avx512f")
                {
                    Tier::Zmm
                } else if std::arch::is_x86_feature_detected!("pclmulqdq")
                    && std::arch::is_x86_feature_detected!("sse2")
                {
                    Tier::Xmm
                } else {
                    Tier::Table
                };
                DETECTED.store(t as u8 + 1, Ordering::Relaxed);
                t
            }
        }
    }

    /// CRC state transition over `bytes` (len ≥ 128), bitwise identical to
    /// [`super::table_update`].
    ///
    /// # Safety
    /// Caller must ensure pclmulqdq and sse2 are available.
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    pub(super) unsafe fn update_x128(state: u32, bytes: &[u8]) -> u32 {
        debug_assert!(bytes.len() >= MIN_LEN);
        let k = _mm_set_epi64x(RK_HI, RK_LO);
        let p = bytes.as_ptr();
        // First 128 bytes; the running state XORs into the first 4 stream
        // bytes (exactly where the table recurrence applies it). The fixed
        // 0..8 loops fully unroll and the array lives in xmm registers.
        let mut x = [_mm_setzero_si128(); 8];
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = _mm_loadu_si128(p.add(16 * i) as *const __m128i);
        }
        x[0] = _mm_xor_si128(x[0], _mm_cvtsi32_si128(state as i32));
        let mut off = 128usize;
        while off + 128 <= bytes.len() {
            for (i, xi) in x.iter_mut().enumerate() {
                *xi = _mm_xor_si128(
                    _mm_xor_si128(
                        _mm_clmulepi64_si128(*xi, k, 0x00),
                        _mm_clmulepi64_si128(*xi, k, 0x11),
                    ),
                    _mm_loadu_si128(p.add(off + 16 * i) as *const __m128i),
                );
            }
            off += 128;
        }
        // The accumulators are stream-equivalent to 128 literal bytes in
        // front of the unread tail; finish both through the table.
        let mut acc = [0u8; 128];
        for (i, xi) in x.iter().enumerate() {
            _mm_storeu_si128(acc.as_mut_ptr().add(16 * i) as *mut __m128i, *xi);
        }
        let s = super::table_update(0, &acc);
        super::table_update(s, &bytes[off..])
    }

    /// Same contract as [`update_x128`], but VPCLMULQDQ on 512-bit vectors:
    /// each instruction runs four independent 64×64 carry-less multiplies,
    /// one per 128-bit lane.
    ///
    /// # Safety
    /// Caller must ensure vpclmulqdq and avx512f are available.
    #[target_feature(enable = "vpclmulqdq", enable = "avx512f")]
    pub(super) unsafe fn update_x512(state: u32, bytes: &[u8]) -> u32 {
        debug_assert!(bytes.len() >= MIN_LEN);
        // Per-128-lane constant pair [lo = ZK_LO, hi = ZK_HI].
        let k = _mm512_set4_epi64(ZK_HI, ZK_LO, ZK_HI, ZK_LO);
        let p = bytes.as_ptr();
        let mut z = [_mm512_setzero_si512(); 4];
        for (i, zi) in z.iter_mut().enumerate() {
            *zi = _mm512_loadu_si512(p.add(64 * i) as *const _);
        }
        z[0] = _mm512_xor_si512(
            z[0],
            _mm512_zextsi128_si512(_mm_cvtsi32_si128(state as i32)),
        );
        let mut off = 256usize;
        while off + 256 <= bytes.len() {
            for (i, zi) in z.iter_mut().enumerate() {
                *zi = _mm512_xor_si512(
                    _mm512_xor_si512(
                        _mm512_clmulepi64_epi128(*zi, k, 0x00),
                        _mm512_clmulepi64_epi128(*zi, k, 0x11),
                    ),
                    _mm512_loadu_si512(p.add(off + 64 * i) as *const _),
                );
            }
            off += 256;
        }
        let mut acc = [0u8; 256];
        for (i, zi) in z.iter().enumerate() {
            _mm512_storeu_si512(acc.as_mut_ptr().add(64 * i) as *mut _, *zi);
        }
        let s = super::table_update(0, &acc);
        super::table_update(s, &bytes[off..])
    }
}

/// One-shot CRC32 of `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc::new();
    c.update(bytes);
    c.finish()
}

// ---------------------------------------------------------------------------
// section writer
// ---------------------------------------------------------------------------

/// Streams one section: buffers puts, folds them into the running CRC in
/// large chunks, and verifies the declared body length on close.
pub(crate) struct SectionWriter<'w, W: Write> {
    w: &'w mut W,
    buf: Vec<u8>,
    crc: Crc,
    written: u64,
    body_len: u64,
}

const WRITER_CHUNK: usize = 1 << 20;

impl<'w, W: Write> SectionWriter<'w, W> {
    /// Writes the section header and prepares to stream `body_len` bytes.
    pub(crate) fn begin(w: &'w mut W, tag: u32, body_len: u64) -> std::io::Result<Self> {
        w.write_all(&tag.to_le_bytes())?;
        w.write_all(&0u32.to_le_bytes())?;
        w.write_all(&body_len.to_le_bytes())?;
        Ok(SectionWriter {
            w,
            buf: Vec::with_capacity(WRITER_CHUNK.min(body_len as usize + 8)),
            crc: Crc::new(),
            written: 0,
            body_len,
        })
    }

    fn flush_buf(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.crc.update(&self.buf);
            self.w.write_all(&self.buf)?;
            self.written += self.buf.len() as u64;
            self.buf.clear();
        }
        Ok(())
    }

    fn put(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.buf.extend_from_slice(bytes);
        if self.buf.len() >= WRITER_CHUNK {
            self.flush_buf()?;
        }
        Ok(())
    }

    pub(crate) fn put_u32(&mut self, v: u32) -> std::io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    pub(crate) fn put_u64(&mut self, v: u64) -> std::io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    pub(crate) fn put_f64(&mut self, v: f64) -> std::io::Result<()> {
        self.put(&v.to_bits().to_le_bytes())
    }

    pub(crate) fn put_bytes(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.put(bytes)
    }

    /// Pads to 8, writes the CRC trailer, and returns the body CRC.
    pub(crate) fn finish(mut self) -> std::io::Result<u32> {
        self.flush_buf()?;
        assert_eq!(
            self.written, self.body_len,
            "section body length mismatch (writer bug)"
        );
        let crc = self.crc.finish();
        let pad = (8 - (self.body_len % 8) as usize) % 8;
        self.w.write_all(&[0u8; 7][..pad])?;
        self.w.write_all(&crc.to_le_bytes())?;
        self.w.write_all(&0u32.to_le_bytes())?;
        Ok(crc)
    }
}

/// Writes the end marker + footer CRC over the collected section CRCs.
pub(crate) fn write_end<W: Write>(w: &mut W, crcs: &[u32]) -> std::io::Result<()> {
    w.write_all(&TAG_END.to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    w.write_all(&0u64.to_le_bytes())?;
    let mut crc = Crc::new();
    for c in crcs {
        crc.update(&c.to_le_bytes());
    }
    w.write_all(&crc.finish().to_le_bytes())?;
    w.write_all(&0u32.to_le_bytes())?;
    Ok(())
}

/// Atomically replaces `path` with the bytes produced by `write`: stream to
/// a sibling tmp file, fsync it, rename over `path`, fsync the directory
/// (CFT2's old-or-new-never-garbage discipline).
pub(crate) fn atomic_write(
    path: &Path,
    write: impl FnOnce(&mut std::io::BufWriter<std::fs::File>) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let tmp = path.with_extension("tmp");
    {
        let file = std::fs::File::create(&tmp)?;
        let mut w = std::io::BufWriter::new(file);
        write(&mut w)?;
        let file = w.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// section walker (shared by CFKG1 and CFCI1)
// ---------------------------------------------------------------------------

/// One section located in a byte buffer.
pub(crate) struct RawSection {
    pub(crate) tag: u32,
    /// Byte range of the (unpadded) body within the file.
    pub(crate) body: Range<usize>,
    /// The stored body CRC. Verified by the walker when `verify_bodies`,
    /// otherwise the caller must verify it (possibly fused with its own
    /// scan) before trusting the body.
    pub(crate) crc: u32,
}

/// Walks the section stream of `bytes` (after `magic`), verifying the
/// geometry, all padding, and the footer CRC. Returns the located sections
/// in file order. Unknown tags are returned too (forward compat); the
/// caller decides which tags it requires.
///
/// With `verify_bodies` every section body is CRC-checked here; without it
/// the caller takes over body verification (the store open path fuses the
/// CRC with structural scans so the file is read once, not twice).
///
/// Every padding byte (header pad word, body zero-padding, trailer pad
/// word, footer pad word) must be zero and trailing bytes after the footer
/// are rejected, so *any* single-byte corruption in the file is detected.
pub(crate) fn walk_sections(
    bytes: &[u8],
    magic: &[u8; 8],
    names: fn(u32) -> &'static str,
    verify_bodies: bool,
) -> Result<Vec<RawSection>, StoreError> {
    if bytes.len() < 8 || &bytes[..8] != magic {
        return Err(StoreError::BadMagic);
    }
    let mut cursor = 8usize;
    let mut sections = Vec::new();
    let mut crcs = Vec::new();
    loop {
        if bytes.len() - cursor < 16 {
            return Err(StoreError::Truncated {
                what: "section header",
            });
        }
        let tag = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().unwrap());
        let hpad = u32::from_le_bytes(bytes[cursor + 4..cursor + 8].try_into().unwrap());
        let body_len = u64::from_le_bytes(bytes[cursor + 8..cursor + 16].try_into().unwrap());
        if hpad != 0 {
            return Err(StoreError::Corrupt {
                section: names(tag),
                what: "nonzero header padding".into(),
            });
        }
        cursor += 16;
        if tag == TAG_END {
            if body_len != 0 {
                return Err(StoreError::Corrupt {
                    section: "end",
                    what: "end marker with nonzero body".into(),
                });
            }
            if bytes.len() - cursor < 8 {
                return Err(StoreError::Truncated { what: "footer" });
            }
            let stored = u32::from_le_bytes(bytes[cursor..cursor + 4].try_into().unwrap());
            let fpad = u32::from_le_bytes(bytes[cursor + 4..cursor + 8].try_into().unwrap());
            let mut crc = Crc::new();
            for c in &crcs {
                crc.update(&u32::to_le_bytes(*c));
            }
            if crc.finish() != stored {
                return Err(StoreError::BadCrc { section: "footer" });
            }
            if fpad != 0 {
                return Err(StoreError::Corrupt {
                    section: "footer",
                    what: "nonzero footer padding".into(),
                });
            }
            if cursor + 8 != bytes.len() {
                return Err(StoreError::Corrupt {
                    section: "footer",
                    what: "trailing bytes after footer".into(),
                });
            }
            return Ok(sections);
        }
        if body_len > MAX_SECTION {
            return Err(StoreError::TooLarge {
                section: names(tag),
            });
        }
        let padded = body_len
            .checked_add(7)
            .map(|v| v & !7)
            .ok_or(StoreError::TooLarge {
                section: names(tag),
            })? as usize;
        if bytes.len() - cursor < padded + 8 {
            return Err(StoreError::Truncated {
                what: "section body",
            });
        }
        let body = cursor..cursor + body_len as usize;
        if bytes[body.end..cursor + padded].iter().any(|&b| b != 0) {
            return Err(StoreError::Corrupt {
                section: names(tag),
                what: "nonzero body padding".into(),
            });
        }
        let stored = u32::from_le_bytes(
            bytes[cursor + padded..cursor + padded + 4]
                .try_into()
                .unwrap(),
        );
        let tpad = u32::from_le_bytes(
            bytes[cursor + padded + 4..cursor + padded + 8]
                .try_into()
                .unwrap(),
        );
        if verify_bodies && crc32(&bytes[body.clone()]) != stored {
            return Err(StoreError::BadCrc {
                section: names(tag),
            });
        }
        if tpad != 0 {
            return Err(StoreError::Corrupt {
                section: names(tag),
                what: "nonzero trailer padding".into(),
            });
        }
        crcs.push(stored);
        sections.push(RawSection {
            tag,
            body,
            crc: stored,
        });
        cursor += padded + 8;
    }
}

// ---------------------------------------------------------------------------
// typed slice casts
// ---------------------------------------------------------------------------

// All casts below require: the byte range was structurally validated at open
// (length divisible by the element size, contents in range) and the buffer
// base is 8-byte aligned (guaranteed by Mmap). Alignment of the *range* is
// asserted — cheap O(1) checks that stay on in release builds.

pub(crate) fn cast_u64s(bytes: &[u8]) -> &[u64] {
    assert!(bytes.as_ptr() as usize % 8 == 0 && bytes.len() % 8 == 0);
    // SAFETY: alignment and length checked above; u64 has no invalid bits.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) }
}

pub(crate) fn cast_u32s(bytes: &[u8]) -> &[u32] {
    assert!(bytes.as_ptr() as usize % 4 == 0 && bytes.len() % 4 == 0);
    // SAFETY: alignment and length checked above; u32 has no invalid bits.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) }
}

fn cast_edges(bytes: &[u8]) -> &[Edge] {
    assert!(bytes.as_ptr() as usize % 4 == 0 && bytes.len() % 12 == 0);
    // SAFETY: Edge is repr(C) {u32, u32 (Dir), u32}, size 12, align 4. The
    // open-time validation accepted only dir values in {0,1}, so every
    // 12-byte group is a valid Edge.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const Edge, bytes.len() / 12) }
}

fn cast_attr_facts(bytes: &[u8]) -> &[AttrFact] {
    assert!(bytes.as_ptr() as usize % 8 == 0 && bytes.len() % 16 == 0);
    // SAFETY: AttrFact is repr(C) {u32, pad, f64}, size 16, align 8; all bit
    // patterns of the fields are inhabited (padding is never read).
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const AttrFact, bytes.len() / 16) }
}

fn cast_attr_owners(bytes: &[u8]) -> &[AttrOwner] {
    assert!(bytes.as_ptr() as usize % 8 == 0 && bytes.len() % 16 == 0);
    // SAFETY: as cast_attr_facts; AttrOwner has the same layout.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const AttrOwner, bytes.len() / 16) }
}

// ---------------------------------------------------------------------------
// writer
// ---------------------------------------------------------------------------

fn names_body_len(names: &[String]) -> u64 {
    8 * (names.len() as u64 + 1) + names.iter().map(|n| n.len() as u64).sum::<u64>()
}

fn write_names<W: Write>(w: &mut W, tag: u32, names: &[String]) -> Result<u32, StoreError> {
    let blob_len: u64 = names.iter().map(|n| n.len() as u64).sum();
    if blob_len > MAX_NAME_BYTES {
        return Err(StoreError::TooLarge {
            section: section_name(tag),
        });
    }
    let mut s = SectionWriter::begin(w, tag, names_body_len(names))?;
    let mut off = 0u64;
    s.put_u64(0)?;
    for n in names {
        off += n.len() as u64;
        s.put_u64(off)?;
    }
    for n in names {
        s.put_bytes(n.as_bytes())?;
    }
    Ok(s.finish()?)
}

/// Serializes an indexed graph to `path` as CFKG1, atomically.
///
/// The byte output is a pure function of the graph (names, triples and
/// numerics in insertion order, CSR indexes as built by `build_index`) —
/// re-ingesting identical TSV input yields a byte-identical store file.
pub fn write_store(g: &KnowledgeGraph, path: impl AsRef<Path>) -> Result<(), StoreError> {
    let path = path.as_ref();
    if !g.indexed {
        return Err(StoreError::NotIndexed);
    }
    atomic_write(path, |w| {
        w.write_all(&STORE_MAGIC)?;
        let mut crcs = Vec::with_capacity(9);

        let (n_e, n_r, n_a) = (
            g.entity_names.len() as u64,
            g.relation_names.len() as u64,
            g.attribute_names.len() as u64,
        );
        let (n_t, n_n) = (g.triples.len() as u64, g.numerics.len() as u64);
        if n_e > MAX_VOCAB || n_r > MAX_VOCAB || n_a > MAX_VOCAB {
            return Err(StoreError::TooLarge { section: "counts" });
        }
        if n_t > MAX_FACTS || n_n > MAX_FACTS {
            return Err(StoreError::TooLarge { section: "counts" });
        }

        let mut s = SectionWriter::begin(w, TAG_COUNTS, 48)?;
        for v in [n_e, n_r, n_a, n_t, n_n, 0] {
            s.put_u64(v)?;
        }
        crcs.push(s.finish()?);

        crcs.push(write_names(w, TAG_ENTITY_NAMES, &g.entity_names)?);
        crcs.push(write_names(w, TAG_REL_NAMES, &g.relation_names)?);
        crcs.push(write_names(w, TAG_ATTR_NAMES, &g.attribute_names)?);

        let mut s = SectionWriter::begin(w, TAG_TRIPLES, 12 * n_t)?;
        for t in &g.triples {
            s.put_u32(t.head.0)?;
        }
        for t in &g.triples {
            s.put_u32(t.rel.0)?;
        }
        for t in &g.triples {
            s.put_u32(t.tail.0)?;
        }
        crcs.push(s.finish()?);

        let mut s = SectionWriter::begin(w, TAG_NUMERICS, 16 * n_n)?;
        for t in &g.numerics {
            s.put_u32(t.entity.0)?;
        }
        for t in &g.numerics {
            s.put_u32(t.attr.0)?;
        }
        for t in &g.numerics {
            s.put_f64(t.value)?;
        }
        crcs.push(s.finish()?);

        let n_edges = g.adj_edges.len() as u64;
        let mut s = SectionWriter::begin(w, TAG_ADJ, 8 * (n_e + 1) + 12 * n_edges)?;
        for &o in &g.adj_offsets {
            s.put_u64(o as u64)?;
        }
        for e in &g.adj_edges {
            s.put_u32(e.dr.rel.0)?;
            s.put_u32(e.dr.dir as u32)?;
            s.put_u32(e.to.0)?;
        }
        crcs.push(s.finish()?);

        let mut s = SectionWriter::begin(w, TAG_NUMIDX, 8 * (n_e + 1) + 16 * n_n)?;
        for &o in &g.num_offsets {
            s.put_u64(o as u64)?;
        }
        for f in &g.num_facts {
            s.put_u32(f.attr.0)?;
            s.put_u32(0)?;
            s.put_f64(f.value)?;
        }
        crcs.push(s.finish()?);

        let mut s = SectionWriter::begin(w, TAG_ATTRIDX, 8 * (n_a + 1) + 16 * n_n)?;
        for &o in &g.attr_offsets {
            s.put_u64(o as u64)?;
        }
        for f in &g.attr_facts {
            s.put_u32(f.entity.0)?;
            s.put_u32(0)?;
            s.put_f64(f.value)?;
        }
        crcs.push(s.finish()?);

        write_end(w, &crcs)?;
        Ok(())
    })
}

// ---------------------------------------------------------------------------
// layout (validated section ranges)
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug)]
struct Counts {
    n_e: usize,
    n_r: usize,
    n_a: usize,
    n_t: usize,
    n_n: usize,
}

#[derive(Clone, Debug)]
struct StrTable {
    offsets: Range<usize>,
    blob: Range<usize>,
}

#[derive(Clone, Debug)]
struct Layout {
    counts: Counts,
    ent_names: StrTable,
    rel_names: StrTable,
    attr_names: StrTable,
    heads: Range<usize>,
    rels: Range<usize>,
    tails: Range<usize>,
    num_entities_col: Range<usize>,
    num_attrs_col: Range<usize>,
    num_values_col: Range<usize>,
    adj_offsets: Range<usize>,
    adj_edges: Range<usize>,
    num_offsets: Range<usize>,
    num_facts: Range<usize>,
    attr_offsets: Range<usize>,
    attr_facts: Range<usize>,
}

fn corrupt(section: &'static str, what: impl Into<String>) -> StoreError {
    StoreError::Corrupt {
        section,
        what: what.into(),
    }
}

/// Widest vector ISA usable for the structural scan folds, detected once.
/// Separate from [`clmul::Tier`]: CRC folding needs carry-less multiply,
/// the scans only need wide integer max/compare/shift.
#[cfg(target_arch = "x86_64")]
mod wide {
    use std::sync::atomic::{AtomicU8, Ordering};

    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub(super) enum Level {
        Avx512,
        Avx2,
        Baseline,
    }

    /// 0 = unknown, then Level as u8 + 1.
    static DETECTED: AtomicU8 = AtomicU8::new(0);

    pub(super) fn level() -> Level {
        match DETECTED.load(Ordering::Relaxed) {
            1 => Level::Avx512,
            2 => Level::Avx2,
            3 => Level::Baseline,
            _ => {
                let l = if std::arch::is_x86_feature_detected!("avx512f")
                    && std::arch::is_x86_feature_detected!("avx512bw")
                    && std::arch::is_x86_feature_detected!("avx512dq")
                {
                    Level::Avx512
                } else if std::arch::is_x86_feature_detected!("avx2") {
                    Level::Avx2
                } else {
                    Level::Baseline
                };
                DETECTED.store(l as u8 + 1, Ordering::Relaxed);
                l
            }
        }
    }

    /// Pin the dispatch level (tests only — used to run every available
    /// tier against the same reference results).
    #[cfg(test)]
    pub(super) fn force(l: Level) {
        DETECTED.store(l as u8 + 1, Ordering::Relaxed);
    }
}

/// Compiles a portable branchless fold three times — baseline, AVX2 and
/// AVX-512 codegen — and dispatches to the widest ISA the CPU has. The body
/// is identical in every variant; only the registers LLVM autovectorizes
/// with differ, so results are bitwise the same while 512-bit machines scan
/// roughly twice as fast as baseline x86-64 codegen.
macro_rules! wide_dispatch {
    ($(#[$attr:meta])* fn $name:ident($arg:ident: $ty:ty) -> $ret:ty { $($body:tt)* }) => {
        $(#[$attr])*
        fn $name($arg: $ty) -> $ret {
            #[inline(always)]
            fn body($arg: $ty) -> $ret {
                $($body)*
            }
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx512f", enable = "avx512bw", enable = "avx512dq")]
                unsafe fn v512($arg: $ty) -> $ret {
                    body($arg)
                }
                #[target_feature(enable = "avx2")]
                unsafe fn v256($arg: $ty) -> $ret {
                    body($arg)
                }
                // SAFETY: `level()` only reports a tier after detecting the
                // features the corresponding wrapper enables.
                match wide::level() {
                    wide::Level::Avx512 => return unsafe { v512($arg) },
                    wide::Level::Avx2 => return unsafe { v256($arg) },
                    wide::Level::Baseline => {}
                }
            }
            body($arg)
        }
    };
}

wide_dispatch! {
    /// Branchless monotonicity fold: true if any adjacent pair decreases.
    /// No per-element early exit, so the loop vectorizes.
    fn non_monotone_u64(vals: &[u64]) -> bool {
        vals.windows(2).fold(false, |bad, w| bad | (w[0] > w[1]))
    }
}

/// Checks `offsets` is a valid CSR offsets array: starts at 0, monotone,
/// ends exactly at `total`.
fn check_offsets(offsets: &[u64], total: u64, section: &'static str) -> Result<(), StoreError> {
    if offsets.first() != Some(&0) {
        return Err(corrupt(section, "offsets do not start at 0"));
    }
    if non_monotone_u64(offsets) {
        return Err(corrupt(section, "offsets are not monotone"));
    }
    if offsets.last() != Some(&total) {
        return Err(corrupt(
            section,
            format!(
                "offsets end at {} expected {total}",
                offsets.last().unwrap()
            ),
        ));
    }
    Ok(())
}

wide_dispatch! {
    /// Max over a u32 slice (no early exit needed — we compare once).
    fn max_u32(s: &[u32]) -> u32 {
        s.iter().fold(0, |m, &x| m.max(x))
    }
}

/// Verdict half of the old per-column id check: `max` was accumulated by a
/// fused scan, the bound comparison happens once here.
fn check_max_id(
    max: u32,
    nonempty: bool,
    bound: usize,
    section: &'static str,
    what: &str,
) -> Result<(), StoreError> {
    if nonempty && max as usize >= bound {
        return Err(corrupt(section, format!("{what} id out of range")));
    }
    Ok(())
}

wide_dispatch! {
    /// All-ones-exponent fold over raw f64 bits (true = some non-finite value).
    fn fold_non_finite(bits: &[u64]) -> bool {
        bits.iter()
            .fold(false, |acc, &b| acc | ((b >> 52) & 0x7FF == 0x7FF))
    }
}

/// Tile size for fused CRC+scan passes: fits in L2 next to the CRC tables,
/// and is divisible by every record size in the format (4, 8, 12, 16), so
/// `chunks(FUSE_TILE)` keeps every tile record-aligned.
const FUSE_TILE: usize = 192 << 10;

/// Streams the subranges of one section body through the CRC while handing
/// each cache-hot tile to a structural fold — open validates a big section
/// in a single pass over memory instead of a CRC sweep plus a scan sweep.
///
/// Feed the subranges **in body order and covering the whole body**, or the
/// CRC will not match. The folds only accumulate (max/or reductions); their
/// verdicts are checked after [`FusedCrc::check`], so a body is never
/// trusted before its CRC is.
struct FusedCrc<'a> {
    bytes: &'a [u8],
    crc: Crc,
}

impl<'a> FusedCrc<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        FusedCrc {
            bytes,
            crc: Crc::new(),
        }
    }

    fn feed(&mut self, sub: &Range<usize>, fold: &mut dyn FnMut(&[u8])) {
        for tile in self.bytes[sub.clone()].chunks(FUSE_TILE) {
            self.crc.update(tile);
            fold(tile);
        }
    }

    fn check(self, stored: u32, section: &'static str) -> Result<(), StoreError> {
        if self.crc.finish() != stored {
            return Err(StoreError::BadCrc { section });
        }
        Ok(())
    }
}

/// Incremental CSR-offsets validation, fed tile by tile in order; same
/// verdicts and messages as [`check_offsets`].
struct MonoScan {
    first: Option<u64>,
    prev: u64,
    ok: bool,
}

impl MonoScan {
    fn new() -> Self {
        MonoScan {
            first: None,
            prev: 0,
            ok: true,
        }
    }

    fn feed(&mut self, vals: &[u64]) {
        let Some(&v0) = vals.first() else { return };
        if self.first.is_none() {
            self.first = Some(v0);
        } else {
            self.ok &= self.prev <= v0;
        }
        self.ok &= !non_monotone_u64(vals);
        self.prev = *vals.last().unwrap();
    }

    fn check(&self, total: u64, section: &'static str) -> Result<(), StoreError> {
        if self.first != Some(0) {
            return Err(corrupt(section, "offsets do not start at 0"));
        }
        if !self.ok {
            return Err(corrupt(section, "offsets are not monotone"));
        }
        if self.prev != total {
            return Err(corrupt(
                section,
                format!("offsets end at {} expected {total}", self.prev),
            ));
        }
        Ok(())
    }
}

/// One-shot CRC verification for small sections that are validated by
/// dedicated code (counts, name tables) rather than a fused scan.
fn verify_crc(
    bytes: &[u8],
    body: &Range<usize>,
    stored: u32,
    section: &'static str,
) -> Result<(), StoreError> {
    if crc32(&bytes[body.clone()]) != stored {
        return Err(StoreError::BadCrc { section });
    }
    Ok(())
}

wide_dispatch! {
/// Branchless scan of interleaved `[id u32 | pad][f64 bits]` pairs (the
/// AttrFact / AttrOwner wire layout): returns the max id and whether any
/// value word has an all-ones exponent. One pass, no per-element branches.
fn scan_id_value_pairs(raw: &[u64]) -> (u32, bool) {
    // Four independent accumulator lanes (8 words = 4 records per step) so
    // the reduction is not serialized through one max/or chain.
    let mut m = [0u32; 4];
    let mut nf = [false; 4];
    let mut oct = raw.chunks_exact(8);
    for c in &mut oct {
        m[0] = m[0].max(c[0] as u32);
        m[1] = m[1].max(c[2] as u32);
        m[2] = m[2].max(c[4] as u32);
        m[3] = m[3].max(c[6] as u32);
        nf[0] |= (c[1] >> 52) & 0x7FF == 0x7FF;
        nf[1] |= (c[3] >> 52) & 0x7FF == 0x7FF;
        nf[2] |= (c[5] >> 52) & 0x7FF == 0x7FF;
        nf[3] |= (c[7] >> 52) & 0x7FF == 0x7FF;
    }
    let mut max_id = m[0].max(m[1]).max(m[2]).max(m[3]);
    let mut non_finite = nf[0] | nf[1] | nf[2] | nf[3];
    for pair in oct.remainder().chunks_exact(2) {
        max_id = max_id.max(pair[0] as u32);
        non_finite |= (pair[1] >> 52) & 0x7FF == 0x7FF;
    }
    (max_id, non_finite)
}
}

wide_dispatch! {
/// Branchless 3-lane max over raw edge words `[rel, dir, tail]*` — four
/// edges (12 words) per step so the stride-3 reductions are not serialized
/// on one accumulator per field. `raw.len()` must be a multiple of 3.
fn scan_edges(raw: &[u32]) -> (u32, u32, u32) {
    let (mut mr, mut md, mut mt) = (0u32, 0u32, 0u32);
    let mut quads = raw.chunks_exact(12);
    for c in &mut quads {
        mr = mr.max(c[0]).max(c[3]).max(c[6]).max(c[9]);
        md = md.max(c[1]).max(c[4]).max(c[7]).max(c[10]);
        mt = mt.max(c[2]).max(c[5]).max(c[8]).max(c[11]);
    }
    for c in quads.remainder().chunks_exact(3) {
        mr = mr.max(c[0]);
        md = md.max(c[1]);
        mt = mt.max(c[2]);
    }
    (mr, md, mt)
}
}

fn validate_str_table(
    bytes: &[u8],
    body: Range<usize>,
    n: usize,
    section: &'static str,
) -> Result<StrTable, StoreError> {
    let need = 8 * (n + 1);
    if body.len() < need {
        return Err(corrupt(section, "body shorter than offsets table"));
    }
    let offsets = body.start..body.start + need;
    let blob = body.start + need..body.end;
    if blob.len() as u64 > MAX_NAME_BYTES {
        return Err(StoreError::TooLarge { section });
    }
    let offs = cast_u64s(&bytes[offsets.clone()]);
    check_offsets(offs, blob.len() as u64, section)?;
    let blob_bytes = &bytes[blob.clone()];
    // Every name must be valid UTF-8 on its own. Equivalent formulation
    // that avoids a `from_utf8` call per name: the whole blob is valid and
    // every offset lands on a char boundary (no name starts or ends
    // mid-codepoint).
    let blob_str =
        std::str::from_utf8(blob_bytes).map_err(|_| corrupt(section, "name is not valid UTF-8"))?;
    let boundaries_ok = offs
        .iter()
        .fold(true, |ok, &o| ok & blob_str.is_char_boundary(o as usize));
    if !boundaries_ok {
        return Err(corrupt(section, "name is not valid UTF-8"));
    }
    Ok(StrTable { offsets, blob })
}

fn parse_store(bytes: &[u8]) -> Result<Layout, StoreError> {
    // Body CRCs are NOT verified by the walker here: each known section's
    // CRC is verified below, fused with its structural scan for the big
    // array sections, so open reads the file once instead of twice.
    let sections = walk_sections(bytes, &STORE_MAGIC, section_name, false)?;
    let mut found: [Option<(Range<usize>, u32)>; 10] = Default::default();
    for s in sections {
        if (1..=9).contains(&s.tag) {
            let slot = &mut found[s.tag as usize];
            if slot.is_some() {
                return Err(StoreError::Duplicate {
                    section: section_name(s.tag),
                });
            }
            *slot = Some((s.body, s.crc));
        } else {
            // Unknown tags are skipped, but still CRC-verified: forward
            // compat must not weaken the whole-file integrity promise.
            verify_crc(bytes, &s.body, s.crc, section_name(s.tag))?;
        }
    }
    let take = |tag: u32| -> Result<(Range<usize>, u32), StoreError> {
        found[tag as usize].clone().ok_or(StoreError::Missing {
            section: section_name(tag),
        })
    };

    // counts
    let (c, c_crc) = take(TAG_COUNTS)?;
    verify_crc(bytes, &c, c_crc, "counts")?;
    if c.len() != 48 {
        return Err(corrupt("counts", "expected 48-byte body"));
    }
    let vals = cast_u64s(&bytes[c]);
    let (n_e, n_r, n_a, n_t, n_n) = (vals[0], vals[1], vals[2], vals[3], vals[4]);
    if n_e > MAX_VOCAB || n_r > MAX_VOCAB || n_a > MAX_VOCAB {
        return Err(StoreError::TooLarge { section: "counts" });
    }
    if n_t > MAX_FACTS || n_n > MAX_FACTS {
        return Err(StoreError::TooLarge { section: "counts" });
    }
    let counts = Counts {
        n_e: n_e as usize,
        n_r: n_r as usize,
        n_a: n_a as usize,
        n_t: n_t as usize,
        n_n: n_n as usize,
    };

    // name tables (~5% of the file: plain CRC, then the dedicated
    // offsets+UTF-8 validation — fusing the UTF-8 walk isn't worth the
    // chunk-boundary carry logic)
    let (b, crc) = take(TAG_ENTITY_NAMES)?;
    verify_crc(bytes, &b, crc, "entity_names")?;
    let ent_names = validate_str_table(bytes, b, counts.n_e, "entity_names")?;
    let (b, crc) = take(TAG_REL_NAMES)?;
    verify_crc(bytes, &b, crc, "relation_names")?;
    let rel_names = validate_str_table(bytes, b, counts.n_r, "relation_names")?;
    let (b, crc) = take(TAG_ATTR_NAMES)?;
    verify_crc(bytes, &b, crc, "attribute_names")?;
    let attr_names = validate_str_table(bytes, b, counts.n_a, "attribute_names")?;

    // triples: fused CRC + per-column max-id scan
    let (t, t_crc) = take(TAG_TRIPLES)?;
    if t.len() != 12 * counts.n_t {
        return Err(corrupt("triples", "body length does not match counts"));
    }
    let col = 4 * counts.n_t;
    let heads = t.start..t.start + col;
    let rels = t.start + col..t.start + 2 * col;
    let tails = t.start + 2 * col..t.end;
    {
        let mut fused = FusedCrc::new(bytes);
        let (mut mh, mut mr, mut mt) = (0u32, 0u32, 0u32);
        fused.feed(&heads, &mut |t| mh = mh.max(max_u32(cast_u32s(t))));
        fused.feed(&rels, &mut |t| mr = mr.max(max_u32(cast_u32s(t))));
        fused.feed(&tails, &mut |t| mt = mt.max(max_u32(cast_u32s(t))));
        fused.check(t_crc, "triples")?;
        let nonempty = counts.n_t > 0;
        check_max_id(mh, nonempty, counts.n_e, "triples", "head")?;
        check_max_id(mr, nonempty, counts.n_r, "triples", "relation")?;
        check_max_id(mt, nonempty, counts.n_e, "triples", "tail")?;
    }

    // numerics: fused CRC + id columns + finite values
    let (nm, nm_crc) = take(TAG_NUMERICS)?;
    if nm.len() != 16 * counts.n_n {
        return Err(corrupt("numerics", "body length does not match counts"));
    }
    let col = 4 * counts.n_n;
    let num_entities_col = nm.start..nm.start + col;
    let num_attrs_col = nm.start + col..nm.start + 2 * col;
    let num_values_col = nm.start + 2 * col..nm.end;
    {
        let mut fused = FusedCrc::new(bytes);
        let (mut me, mut ma, mut nf) = (0u32, 0u32, false);
        fused.feed(&num_entities_col, &mut |t| {
            me = me.max(max_u32(cast_u32s(t)))
        });
        fused.feed(&num_attrs_col, &mut |t| ma = ma.max(max_u32(cast_u32s(t))));
        fused.feed(&num_values_col, &mut |t| {
            nf |= fold_non_finite(cast_u64s(t))
        });
        fused.check(nm_crc, "numerics")?;
        let nonempty = counts.n_n > 0;
        check_max_id(me, nonempty, counts.n_e, "numerics", "entity")?;
        check_max_id(ma, nonempty, counts.n_a, "numerics", "attribute")?;
        if nf {
            return Err(corrupt("numerics", "non-finite value"));
        }
    }

    // adjacency: fused CRC + offsets monotone + 3-lane edge max scan
    let (a, a_crc) = take(TAG_ADJ)?;
    let off_len = 8 * (counts.n_e + 1);
    let n_edges = 2 * counts.n_t;
    if a.len() != off_len + 12 * n_edges {
        return Err(corrupt("adjacency", "body length does not match counts"));
    }
    let adj_offsets = a.start..a.start + off_len;
    let adj_edges = a.start + off_len..a.end;
    {
        let mut fused = FusedCrc::new(bytes);
        let mut mono = MonoScan::new();
        let (mut mr, mut md, mut mt) = (0u32, 0u32, 0u32);
        fused.feed(&adj_offsets, &mut |t| mono.feed(cast_u64s(t)));
        fused.feed(&adj_edges, &mut |t| {
            let (r, d, e) = scan_edges(cast_u32s(t));
            mr = mr.max(r);
            md = md.max(d);
            mt = mt.max(e);
        });
        fused.check(a_crc, "adjacency")?;
        mono.check(n_edges as u64, "adjacency")?;
        if n_edges > 0 {
            if mr as usize >= counts.n_r {
                return Err(corrupt("adjacency", "relation id out of range"));
            }
            if md > 1 {
                return Err(corrupt("adjacency", "edge direction not in {0,1}"));
            }
            if mt as usize >= counts.n_e {
                return Err(corrupt("adjacency", "neighbor id out of range"));
            }
        }
    }

    // numeric index: fused CRC + offsets monotone + pair scan
    let (ni, ni_crc) = take(TAG_NUMIDX)?;
    if ni.len() != off_len + 16 * counts.n_n {
        return Err(corrupt(
            "numeric_index",
            "body length does not match counts",
        ));
    }
    let num_offsets = ni.start..ni.start + off_len;
    let num_facts = ni.start + off_len..ni.end;
    {
        let mut fused = FusedCrc::new(bytes);
        let mut mono = MonoScan::new();
        let (mut max_attr, mut non_finite) = (0u32, false);
        fused.feed(&num_offsets, &mut |t| mono.feed(cast_u64s(t)));
        // layout: [attr u32 | pad u32] [value f64] — even words hold the id
        // in their low half, odd words the value bits.
        fused.feed(&num_facts, &mut |t| {
            let (m, nf) = scan_id_value_pairs(cast_u64s(t));
            max_attr = max_attr.max(m);
            non_finite |= nf;
        });
        fused.check(ni_crc, "numeric_index")?;
        mono.check(counts.n_n as u64, "numeric_index")?;
        if counts.n_n > 0 && max_attr as usize >= counts.n_a {
            return Err(corrupt("numeric_index", "attribute id out of range"));
        }
        if non_finite {
            return Err(corrupt("numeric_index", "non-finite value"));
        }
    }

    // attribute index: fused CRC + offsets monotone + pair scan
    let (ai, ai_crc) = take(TAG_ATTRIDX)?;
    let aoff_len = 8 * (counts.n_a + 1);
    if ai.len() != aoff_len + 16 * counts.n_n {
        return Err(corrupt(
            "attribute_index",
            "body length does not match counts",
        ));
    }
    let attr_offsets = ai.start..ai.start + aoff_len;
    let attr_facts = ai.start + aoff_len..ai.end;
    {
        let mut fused = FusedCrc::new(bytes);
        let mut mono = MonoScan::new();
        let (mut max_ent, mut non_finite) = (0u32, false);
        fused.feed(&attr_offsets, &mut |t| mono.feed(cast_u64s(t)));
        fused.feed(&attr_facts, &mut |t| {
            let (m, nf) = scan_id_value_pairs(cast_u64s(t));
            max_ent = max_ent.max(m);
            non_finite |= nf;
        });
        fused.check(ai_crc, "attribute_index")?;
        mono.check(counts.n_n as u64, "attribute_index")?;
        if counts.n_n > 0 && max_ent as usize >= counts.n_e {
            return Err(corrupt("attribute_index", "entity id out of range"));
        }
        if non_finite {
            return Err(corrupt("attribute_index", "non-finite value"));
        }
    }

    Ok(Layout {
        counts,
        ent_names,
        rel_names,
        attr_names,
        heads,
        rels,
        tails,
        num_entities_col,
        num_attrs_col,
        num_values_col,
        adj_offsets,
        adj_edges,
        num_offsets,
        num_facts,
        attr_offsets,
        attr_facts,
    })
}

// ---------------------------------------------------------------------------
// owned load
// ---------------------------------------------------------------------------

/// Loads a CFKG1 file into an owned [`KnowledgeGraph`] (full validation,
/// then a copy). The CSR sections are revalidated by rebuilding them via
/// `build_index`, so a loaded-then-rewritten store is byte-identical.
pub fn read_store(path: impl AsRef<Path>) -> Result<KnowledgeGraph, StoreError> {
    let mem = Mmap::open(path)?;
    let bytes = mem.bytes();
    let layout = parse_store(bytes)?;
    let mut g = KnowledgeGraph::new();
    let name_at = |t: &StrTable, i: usize| -> &str {
        let offs = cast_u64s(&bytes[t.offsets.clone()]);
        let blob = &bytes[t.blob.clone()];
        let s = &blob[offs[i] as usize..offs[i + 1] as usize];
        std::str::from_utf8(s).expect("validated at open")
    };
    for i in 0..layout.counts.n_e {
        g.add_entity(name_at(&layout.ent_names, i));
    }
    for i in 0..layout.counts.n_r {
        g.add_relation_type(name_at(&layout.rel_names, i));
    }
    for i in 0..layout.counts.n_a {
        g.add_attribute_type(name_at(&layout.attr_names, i));
    }
    let heads = cast_u32s(&bytes[layout.heads.clone()]);
    let rels = cast_u32s(&bytes[layout.rels.clone()]);
    let tails = cast_u32s(&bytes[layout.tails.clone()]);
    for i in 0..layout.counts.n_t {
        g.add_triple(EntityId(heads[i]), RelationId(rels[i]), EntityId(tails[i]));
    }
    let nent = cast_u32s(&bytes[layout.num_entities_col.clone()]);
    let nattr = cast_u32s(&bytes[layout.num_attrs_col.clone()]);
    let nval = cast_u64s(&bytes[layout.num_values_col.clone()]);
    for i in 0..layout.counts.n_n {
        g.add_numeric(
            EntityId(nent[i]),
            AttributeId(nattr[i]),
            f64::from_bits(nval[i]),
        );
    }
    g.build_index();
    Ok(g)
}

// ---------------------------------------------------------------------------
// zero-copy view
// ---------------------------------------------------------------------------

/// Zero-copy graph view over an mmap'd CFKG1 file.
///
/// All validation happens once in [`MappedGraph::open`]; afterwards every
/// accessor is a bounds-computed slice into the mapping with no parsing, no
/// hashing and no allocation (except name formatting helpers).
#[derive(Debug)]
pub struct MappedGraph {
    mem: Mmap,
    layout: Layout,
}

impl MappedGraph {
    /// Opens and fully validates a CFKG1 file.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedGraph, StoreError> {
        let mem = Mmap::open(path)?;
        let layout = parse_store(mem.bytes())?;
        Ok(MappedGraph { mem, layout })
    }

    /// Whether the kernel zero-copy mapping is in use (vs heap fallback).
    pub fn is_kernel_mapped(&self) -> bool {
        self.mem.is_kernel_mapped()
    }

    /// Total file size in bytes.
    pub fn file_len(&self) -> usize {
        self.mem.bytes().len()
    }

    fn str_at<'a>(&'a self, t: &StrTable, i: usize) -> &'a str {
        let offs = cast_u64s(&self.mem.bytes()[t.offsets.clone()]);
        let blob = &self.mem.bytes()[t.blob.clone()];
        let s = &blob[offs[i] as usize..offs[i + 1] as usize];
        std::str::from_utf8(s).expect("validated at open")
    }

    /// The triples section as its three id columns `(heads, rels, tails)`,
    /// file order — the same insertion order `read_store` would replay.
    pub(crate) fn triples_cols(&self) -> (&[u32], &[u32], &[u32]) {
        let b = self.mem.bytes();
        (
            cast_u32s(&b[self.layout.heads.clone()]),
            cast_u32s(&b[self.layout.rels.clone()]),
            cast_u32s(&b[self.layout.tails.clone()]),
        )
    }
}

impl GraphView for MappedGraph {
    fn num_entities(&self) -> usize {
        self.layout.counts.n_e
    }

    fn num_relations(&self) -> usize {
        self.layout.counts.n_r
    }

    fn num_attributes(&self) -> usize {
        self.layout.counts.n_a
    }

    fn neighbors(&self, e: EntityId) -> &[Edge] {
        let offs = cast_u64s(&self.mem.bytes()[self.layout.adj_offsets.clone()]);
        let i = e.0 as usize;
        let edges = cast_edges(&self.mem.bytes()[self.layout.adj_edges.clone()]);
        &edges[offs[i] as usize..offs[i + 1] as usize]
    }

    fn numerics_of(&self, e: EntityId) -> &[AttrFact] {
        let offs = cast_u64s(&self.mem.bytes()[self.layout.num_offsets.clone()]);
        let i = e.0 as usize;
        let facts = cast_attr_facts(&self.mem.bytes()[self.layout.num_facts.clone()]);
        &facts[offs[i] as usize..offs[i + 1] as usize]
    }

    fn entities_with_attribute(&self, a: AttributeId) -> &[AttrOwner] {
        let offs = cast_u64s(&self.mem.bytes()[self.layout.attr_offsets.clone()]);
        let i = a.0 as usize;
        let owners = cast_attr_owners(&self.mem.bytes()[self.layout.attr_facts.clone()]);
        &owners[offs[i] as usize..offs[i + 1] as usize]
    }

    fn entity_name(&self, e: EntityId) -> &str {
        self.str_at(&self.layout.ent_names, e.0 as usize)
    }

    fn relation_name(&self, r: RelationId) -> &str {
        self.str_at(&self.layout.rel_names, r.0 as usize)
    }

    fn attribute_name(&self, a: AttributeId) -> &str {
        self.str_at(&self.layout.attr_names, a.0 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::DirRel;
    use crate::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cfkg_store_{}_{}.cfkg", std::process::id(), name));
        p
    }

    fn sample_graph() -> KnowledgeGraph {
        let mut rng = StdRng::seed_from_u64(7);
        yago15k_sim(SynthScale::small(), &mut rng)
    }

    #[test]
    fn crc_matches_bytewise_reference() {
        fn reference(bytes: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in bytes {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        0xEDB8_8320 ^ (crc >> 1)
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        for len in [0, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let data: Vec<u8> = (0..len as u32).map(|i| (i * 37 + 11) as u8).collect();
            assert_eq!(crc32(&data), reference(&data), "len {len}");
        }
    }

    /// The PCLMULQDQ fold must agree with the table path on every length
    /// around its thresholds, at every start alignment, and under arbitrary
    /// streaming splits (state handoff mid-buffer). On hosts without
    /// pclmulqdq both sides take the table path and this degrades to a
    /// self-consistency check.
    #[test]
    fn crc_simd_matches_table_path() {
        let mut data = vec![0u8; 5000];
        let mut x = 0x1234_5678_9abc_def0u64;
        for b in data.iter_mut() {
            // xorshift so the buffer exercises all byte values
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        for start in [0usize, 1, 3, 7, 8, 15] {
            for len in [
                0usize, 1, 63, 64, 127, 128, 129, 255, 256, 257, 320, 1024, 4096,
            ] {
                let slice = &data[start..start + len];
                let mut c = Crc::new();
                c.update(slice);
                assert_eq!(
                    c.finish(),
                    !table_update(!0, slice),
                    "start {start} len {len}"
                );
                // Exercise every SIMD tier the host has, not just the one
                // Crc::update dispatches to (zmm hosts also have xmm).
                #[cfg(target_arch = "x86_64")]
                if len >= clmul::MIN_LEN {
                    let want = table_update(0x5A5A_5A5A, slice);
                    if clmul::tier() == clmul::Tier::Zmm {
                        let got = unsafe { clmul::update_x512(0x5A5A_5A5A, slice) };
                        assert_eq!(got, want, "zmm start {start} len {len}");
                    }
                    if clmul::tier() != clmul::Tier::Table {
                        let got = unsafe { clmul::update_x128(0x5A5A_5A5A, slice) };
                        assert_eq!(got, want, "xmm start {start} len {len}");
                    }
                }
            }
        }
        // Streaming: splitting the buffer anywhere must not change the CRC.
        let whole = crc32(&data);
        for split in [1usize, 64, 100, 255, 256, 300, 2048, 4999] {
            let mut c = Crc::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split {split}");
        }
    }

    /// Every `wide_dispatch!` tier the host supports must agree with plain
    /// iterator reference implementations, at lengths around each fold's
    /// unroll width and with the extremum in every position class.
    #[test]
    fn wide_scans_match_reference() {
        let mut words = vec![0u64; 1536];
        let mut x = 0x0dd0_feed_4bad_c0deu64;
        for w in words.iter_mut() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // keep exponents non-all-ones so fold_non_finite defaults false
            *w = x & 0x7FEF_FFFF_FFFF_FFFF;
        }
        let u32s: Vec<u32> = words
            .iter()
            .flat_map(|w| [*w as u32, (*w >> 32) as u32])
            .collect();

        #[cfg(target_arch = "x86_64")]
        let levels: Vec<wide::Level> = {
            let detected = wide::level();
            let mut ls = vec![wide::Level::Baseline];
            if detected != wide::Level::Baseline {
                ls.push(wide::Level::Avx2);
            }
            if detected == wide::Level::Avx512 {
                ls.push(wide::Level::Avx512);
            }
            ls
        };
        #[cfg(not(target_arch = "x86_64"))]
        let levels = [()];

        for level in levels {
            #[cfg(target_arch = "x86_64")]
            wide::force(level);
            #[cfg(not(target_arch = "x86_64"))]
            let () = level;
            for len in [0usize, 1, 2, 3, 7, 8, 9, 12, 24, 36, 95, 96, 97, 1024, 1536] {
                let w = &words[..len];
                let u = &u32s[..len.min(u32s.len())];
                assert_eq!(max_u32(u), u.iter().copied().max().unwrap_or(0), "{len}");
                assert_eq!(
                    non_monotone_u64(w),
                    w.windows(2).any(|p| p[0] > p[1]),
                    "{len}"
                );
                assert!(!fold_non_finite(w), "{len}");
                let pairs = &w[..len & !1];
                let want_max = pairs.chunks(2).map(|p| p[0] as u32).max().unwrap_or(0);
                assert_eq!(scan_id_value_pairs(pairs), (want_max, false), "{len}");
                let edges = &u[..u.len() - u.len() % 3];
                let want = (0..3)
                    .map(|f| edges.chunks(3).map(|e| e[f]).max().unwrap_or(0))
                    .collect::<Vec<_>>();
                assert_eq!(scan_edges(edges), (want[0], want[1], want[2]), "{len}");
            }
            // non-finite detection: NaN planted at each lane position
            for pos in 0..9 {
                let mut v = words[..16].to_vec();
                v[pos] = f64::NAN.to_bits();
                assert!(fold_non_finite(&v), "nan at {pos}");
                if pos % 2 == 1 {
                    let (_, nf) = scan_id_value_pairs(&v);
                    assert!(nf, "pair nan at {pos}");
                }
            }
            // a single inversion at each position must be caught
            for pos in 0..12 {
                let mut v: Vec<u64> = (0..13).collect();
                v[pos] += 2;
                assert!(non_monotone_u64(&v), "inversion at {pos}");
            }
        }
        #[cfg(target_arch = "x86_64")]
        wide::force(wide::level());
    }

    #[test]
    #[ignore = "manual throughput probe"]
    fn crc_throughput_probe() {
        let data = vec![0xA5u8; 64 << 20];
        for _ in 0..3 {
            let t = std::time::Instant::now();
            let c = crc32(&data);
            let s = t.elapsed().as_secs_f64();
            println!(
                "crc32 of {} MB: {:.1} ms ({:.2} GB/s, crc {c:08x})",
                data.len() >> 20,
                s * 1e3,
                data.len() as f64 / s / 1e9
            );
        }
    }

    #[test]
    fn round_trip_owned() {
        let g = sample_graph();
        let p = tmp("roundtrip");
        write_store(&g, &p).unwrap();
        let g2 = read_store(&p).unwrap();
        assert_eq!(g.num_entities(), g2.num_entities());
        assert_eq!(g.triples(), g2.triples());
        assert_eq!(g.numerics(), g2.numerics());
        for e in GraphView::entities(&g) {
            assert_eq!(g.neighbors(e), g2.neighbors(e));
            assert_eq!(g.numerics_of(e), g2.numerics_of(e));
            assert_eq!(g.entity_name(e), g2.entity_name(e));
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn rewrite_is_byte_identical() {
        let g = sample_graph();
        let p1 = tmp("bytes1");
        let p2 = tmp("bytes2");
        write_store(&g, &p1).unwrap();
        let g2 = read_store(&p1).unwrap();
        write_store(&g2, &p2).unwrap();
        let b1 = std::fs::read(&p1).unwrap();
        let b2 = std::fs::read(&p2).unwrap();
        assert_eq!(b1, b2, "load→rewrite must be byte-identical");
        std::fs::remove_file(&p1).unwrap();
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn mapped_view_matches_heap() {
        let g = sample_graph();
        let p = tmp("mapped");
        write_store(&g, &p).unwrap();
        let m = MappedGraph::open(&p).unwrap();
        assert_eq!(GraphView::num_entities(&g), m.num_entities());
        assert_eq!(GraphView::num_relations(&g), m.num_relations());
        assert_eq!(GraphView::num_attributes(&g), m.num_attributes());
        for e in GraphView::entities(&g) {
            assert_eq!(g.neighbors(e), m.neighbors(e));
            assert_eq!(g.numerics_of(e), m.numerics_of(e));
            assert_eq!(g.entity_name(e), m.entity_name(e));
        }
        for a in 0..g.num_attributes() as u32 {
            let a = AttributeId(a);
            assert_eq!(
                GraphView::entities_with_attribute(&g, a),
                m.entities_with_attribute(a)
            );
            assert_eq!(GraphView::attribute_name(&g, a), m.attribute_name(a));
        }
        for r in 0..g.num_relations() as u32 {
            let r = RelationId(r);
            assert_eq!(GraphView::relation_name(&g, r), m.relation_name(r));
            assert_eq!(
                g.dir_rel_name(DirRel::forward(r)),
                GraphView::dir_rel_name(&m, DirRel::forward(r))
            );
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn unindexed_graph_is_rejected() {
        let mut g = KnowledgeGraph::new();
        g.add_entity("x");
        let p = tmp("unindexed");
        match write_store(&g, &p) {
            Err(StoreError::NotIndexed) => {}
            other => panic!("expected NotIndexed, got {other:?}"),
        }
    }

    #[test]
    fn every_section_corruption_is_a_typed_error() {
        let g = sample_graph();
        let p = tmp("corrupt");
        write_store(&g, &p).unwrap();
        let clean = std::fs::read(&p).unwrap();
        // Flip one byte at a spread of offsets covering every section; each
        // must yield Err, never a panic or an Ok garbage graph.
        let step = (clean.len() / 97).max(1);
        for off in (8..clean.len()).step_by(step) {
            let mut bad = clean.clone();
            bad[off] ^= 0xA5;
            std::fs::write(&p, &bad).unwrap();
            let owned = read_store(&p);
            assert!(owned.is_err(), "corruption at {off} not detected (owned)");
            let mapped = MappedGraph::open(&p);
            assert!(mapped.is_err(), "corruption at {off} not detected (mapped)");
        }
        // Truncations at every boundary class.
        for cut in [0, 4, 8, 15, clean.len() / 2, clean.len() - 1] {
            std::fs::write(&p, &clean[..cut]).unwrap();
            assert!(MappedGraph::open(&p).is_err(), "truncation at {cut}");
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn corruption_error_names_the_section() {
        let g = sample_graph();
        let p = tmp("named");
        write_store(&g, &p).unwrap();
        let mut bad = std::fs::read(&p).unwrap();
        // Offset 24 sits inside the counts body (first section starts at 8,
        // header is 16 bytes): corrupting it must fail the counts CRC.
        bad[24] ^= 0xFF;
        std::fs::write(&p, &bad).unwrap();
        match MappedGraph::open(&p) {
            Err(StoreError::BadCrc { section }) => assert_eq!(section, "counts"),
            other => panic!("expected BadCrc(counts), got {other:?}"),
        }
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_graph_round_trips() {
        let mut g = KnowledgeGraph::new();
        g.build_index();
        let p = tmp("empty");
        write_store(&g, &p).unwrap();
        let m = MappedGraph::open(&p).unwrap();
        assert_eq!(m.num_entities(), 0);
        let g2 = read_store(&p).unwrap();
        assert_eq!(g2.num_entities(), 0);
        std::fs::remove_file(&p).unwrap();
    }
}
