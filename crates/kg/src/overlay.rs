//! Delta-capable graph view: an immutable [`GraphStore`] base plus an
//! in-memory overlay of applied [`Mutation`]s, exposed through the same
//! [`GraphView`] trait the retrieval and model layers are generic over —
//! so chains gathered over a mutated graph run the exact same code (and
//! consume the exact same RNG stream) as over a plain store.
//!
//! ## Row semantics
//!
//! `GraphView` hands out *slices*, so the overlay cannot merge base and
//! delta lazily per call. Instead it keeps **copy-on-write rows**: the
//! first mutation touching an entity (or attribute) clones that one CSR
//! row out of the base; every untouched row is served from the base with
//! zero copies. Rows are maintained in exactly the order
//! [`KnowledgeGraph::build_index`] would produce for the equivalent
//! insertion sequence, which is what makes [`OverlayGraph::materialize`]
//! (and therefore compaction) *id-preserving and bitwise round-trippable*:
//! retrieval over the overlay equals retrieval over the compacted store,
//! bit for bit.
//!
//! The base is assumed canonical (`cfkg ingest`/`gen` stores are): its
//! numeric facts are sorted by `(entity, attr)`, so per-attribute owner
//! rows are entity-ordered and sorted insertion keeps them that way.
//!
//! ## Compaction
//!
//! [`OverlayGraph::compact_to`] materializes base + overlay into a heap
//! [`KnowledgeGraph`] — names in id order, base triples in file order plus
//! overlay edges in application order, numeric rows concatenated in entity
//! order — and writes it through the store's atomic tmp → fsync → rename
//! path. Entity/relation/attribute ids are preserved verbatim.

use crate::graph::{AttrFact, AttrOwner, Edge, KnowledgeGraph, Triple};
use crate::ids::{AttributeId, DirRel, EntityId, RelationId};
use crate::journal::Mutation;
use crate::store::StoreError;
use crate::view::{GraphStore, GraphView};
use std::collections::HashMap;
use std::path::Path;

/// What applying one mutation changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ApplyOutcome {
    /// Entities whose rows (adjacency or numeric) changed. Empty for
    /// idempotent no-ops and pure vocabulary additions.
    pub touched: Vec<EntityId>,
    /// False when the mutation was already reflected in the graph.
    pub changed: bool,
}

/// An immutable base graph plus an in-memory mutation overlay.
#[derive(Debug)]
pub struct OverlayGraph {
    base: GraphStore,
    base_entities: usize,
    base_relations: usize,
    base_attributes: usize,

    added_entities: Vec<String>,
    added_relations: Vec<String>,
    added_attributes: Vec<String>,
    added_triples: Vec<Triple>,

    // Copy-on-write merged CSR rows for touched ids.
    adj_over: HashMap<u32, Vec<Edge>>,
    num_over: HashMap<u32, Vec<AttrFact>>,
    attr_over: HashMap<u32, Vec<AttrOwner>>,

    // Lazy name → id map covering base + added entities, built on the
    // first mutation so the apply path is O(1) in the entity count after
    // a one-time scan (the base store itself only supports linear lookup).
    entity_ids: Option<HashMap<String, u32>>,

    mutations_applied: u64,
}

impl OverlayGraph {
    /// Wraps a base store with an empty overlay.
    pub fn new(base: GraphStore) -> Self {
        let (ne, nr, na) = (
            base.num_entities(),
            base.num_relations(),
            base.num_attributes(),
        );
        OverlayGraph {
            base,
            base_entities: ne,
            base_relations: nr,
            base_attributes: na,
            added_entities: Vec::new(),
            added_relations: Vec::new(),
            added_attributes: Vec::new(),
            added_triples: Vec::new(),
            adj_over: HashMap::new(),
            num_over: HashMap::new(),
            attr_over: HashMap::new(),
            entity_ids: None,
            mutations_applied: 0,
        }
    }

    /// The immutable base store.
    pub fn base(&self) -> &GraphStore {
        &self.base
    }

    /// Number of mutations applied that changed the graph.
    pub fn mutations_applied(&self) -> u64 {
        self.mutations_applied
    }

    /// True when the overlay holds any change over the base.
    pub fn is_dirty(&self) -> bool {
        self.mutations_applied > 0
    }

    fn entity_map(&mut self) -> &mut HashMap<String, u32> {
        if self.entity_ids.is_none() {
            let mut map = HashMap::with_capacity(self.base_entities + self.added_entities.len());
            for i in 0..self.base_entities {
                map.insert(
                    self.base.entity_name(EntityId(i as u32)).to_string(),
                    i as u32,
                );
            }
            for (i, name) in self.added_entities.iter().enumerate() {
                map.insert(name.clone(), (self.base_entities + i) as u32);
            }
            self.entity_ids = Some(map);
        }
        self.entity_ids.as_mut().unwrap()
    }

    fn ensure_entity(&mut self, name: &str) -> (EntityId, bool) {
        if let Some(&id) = self.entity_map().get(name) {
            return (EntityId(id), false);
        }
        let id = (self.base_entities + self.added_entities.len()) as u32;
        self.added_entities.push(name.to_string());
        self.entity_map().insert(name.to_string(), id);
        (EntityId(id), true)
    }

    fn ensure_relation(&mut self, name: &str) -> RelationId {
        if let Some(r) = self.relation_by_name(name) {
            return r;
        }
        let id = (self.base_relations + self.added_relations.len()) as u32;
        self.added_relations.push(name.to_string());
        RelationId(id)
    }

    fn ensure_attribute(&mut self, name: &str) -> AttributeId {
        if let Some(a) = self.attribute_by_name(name) {
            return a;
        }
        let id = (self.base_attributes + self.added_attributes.len()) as u32;
        self.added_attributes.push(name.to_string());
        AttributeId(id)
    }

    fn adj_row_mut(&mut self, e: EntityId) -> &mut Vec<Edge> {
        let base = &self.base;
        let n = self.base_entities;
        self.adj_over.entry(e.0).or_insert_with(|| {
            if (e.0 as usize) < n {
                base.neighbors(e).to_vec()
            } else {
                Vec::new()
            }
        })
    }

    fn num_row_mut(&mut self, e: EntityId) -> &mut Vec<AttrFact> {
        let base = &self.base;
        let n = self.base_entities;
        self.num_over.entry(e.0).or_insert_with(|| {
            if (e.0 as usize) < n {
                base.numerics_of(e).to_vec()
            } else {
                Vec::new()
            }
        })
    }

    fn attr_row_mut(&mut self, a: AttributeId) -> &mut Vec<AttrOwner> {
        let base = &self.base;
        let n = self.base_attributes;
        self.attr_over.entry(a.0).or_insert_with(|| {
            if (a.0 as usize) < n {
                base.entities_with_attribute(a).to_vec()
            } else {
                Vec::new()
            }
        })
    }

    /// Applies one mutation, returning which entity rows changed.
    /// Idempotent: re-applying an already-reflected mutation is a no-op.
    pub fn apply(&mut self, m: &Mutation) -> ApplyOutcome {
        let outcome = match m {
            Mutation::AddEntity { name } => {
                let (_, created) = self.ensure_entity(name);
                ApplyOutcome {
                    touched: Vec::new(),
                    changed: created,
                }
            }
            Mutation::UpsertNumeric {
                entity,
                attr,
                value,
            } => {
                let (e, _) = self.ensure_entity(entity);
                let a = self.ensure_attribute(attr);
                let row = self.num_row_mut(e);
                let changed = match row.iter_mut().find(|f| f.attr == a) {
                    Some(f) if f.value.to_bits() == value.to_bits() => false,
                    Some(f) => {
                        f.value = *value;
                        true
                    }
                    None => {
                        row.push(AttrFact {
                            attr: a,
                            value: *value,
                        });
                        true
                    }
                };
                if changed {
                    let owners = self.attr_row_mut(a);
                    match owners.iter_mut().find(|o| o.entity == e) {
                        Some(o) => o.value = *value,
                        None => {
                            // Owner rows are entity-ordered (canonical
                            // base); keep them that way so materialize
                            // round-trips bitwise.
                            let at = owners.partition_point(|o| o.entity.0 <= e.0);
                            owners.insert(
                                at,
                                AttrOwner {
                                    entity: e,
                                    value: *value,
                                },
                            );
                        }
                    }
                }
                ApplyOutcome {
                    touched: if changed { vec![e] } else { Vec::new() },
                    changed,
                }
            }
            Mutation::AddEdge { head, rel, tail } => {
                let (h, _) = self.ensure_entity(head);
                let (t, _) = self.ensure_entity(tail);
                let r = self.ensure_relation(rel);
                let fwd = Edge {
                    dr: DirRel::forward(r),
                    to: t,
                };
                let present = self.neighbors(h).contains(&fwd);
                if present {
                    ApplyOutcome {
                        touched: Vec::new(),
                        changed: false,
                    }
                } else {
                    // Same edge order build_index produces: the forward
                    // edge lands at the head before the inverse lands at
                    // the tail (also for self-loops, same row).
                    self.adj_row_mut(h).push(fwd);
                    self.adj_row_mut(t).push(Edge {
                        dr: DirRel::inverse(r),
                        to: h,
                    });
                    self.added_triples.push(Triple {
                        head: h,
                        rel: r,
                        tail: t,
                    });
                    ApplyOutcome {
                        touched: if h == t { vec![h] } else { vec![h, t] },
                        changed: true,
                    }
                }
            }
        };
        if outcome.changed {
            self.mutations_applied += 1;
        }
        outcome
    }

    /// Applies a batch (journal replay), returning the union of touched
    /// entities in first-touch order.
    pub fn apply_all(&mut self, muts: &[Mutation]) -> Vec<EntityId> {
        let mut touched = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for m in muts {
            for e in self.apply(m).touched {
                if seen.insert(e) {
                    touched.push(e);
                }
            }
        }
        touched
    }

    /// Materializes base + overlay into an indexed heap graph with the
    /// **same ids** and the same CSR row contents as this view — retrieval
    /// over the result is bitwise identical to retrieval over the overlay.
    pub fn materialize(&self) -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        for e in 0..self.num_entities() {
            g.add_entity(self.entity_name(EntityId(e as u32)));
        }
        for r in 0..self.num_relations() {
            g.add_relation_type(self.relation_name(RelationId(r as u32)));
        }
        for a in 0..self.num_attributes() {
            g.add_attribute_type(self.attribute_name(AttributeId(a as u32)));
        }
        match &self.base {
            GraphStore::Heap(b) => {
                for t in b.triples() {
                    g.add_triple(t.head, t.rel, t.tail);
                }
            }
            GraphStore::Mapped(m) => {
                let (heads, rels, tails) = m.triples_cols();
                for i in 0..heads.len() {
                    g.add_triple(EntityId(heads[i]), RelationId(rels[i]), EntityId(tails[i]));
                }
            }
        }
        for t in &self.added_triples {
            g.add_triple(t.head, t.rel, t.tail);
        }
        for e in self.entities() {
            for f in self.numerics_of(e) {
                g.add_numeric(e, f.attr, f.value);
            }
        }
        g.build_index();
        g
    }

    /// Compacts base + overlay to a canonical CFKG1 file via the atomic
    /// tmp → fsync → rename path. The overlay itself is left untouched;
    /// after a restart the compacted store replays any surviving journal
    /// records as no-ops (idempotence).
    pub fn compact_to(&self, path: impl AsRef<Path>) -> Result<(), StoreError> {
        crate::store::write_store(&self.materialize(), path)
    }
}

impl GraphView for OverlayGraph {
    fn num_entities(&self) -> usize {
        self.base_entities + self.added_entities.len()
    }

    fn num_relations(&self) -> usize {
        self.base_relations + self.added_relations.len()
    }

    fn num_attributes(&self) -> usize {
        self.base_attributes + self.added_attributes.len()
    }

    fn neighbors(&self, e: EntityId) -> &[Edge] {
        if let Some(row) = self.adj_over.get(&e.0) {
            return row;
        }
        if (e.0 as usize) < self.base_entities {
            self.base.neighbors(e)
        } else {
            assert!((e.0 as usize) < self.num_entities(), "entity out of range");
            &[]
        }
    }

    fn numerics_of(&self, e: EntityId) -> &[AttrFact] {
        if let Some(row) = self.num_over.get(&e.0) {
            return row;
        }
        if (e.0 as usize) < self.base_entities {
            self.base.numerics_of(e)
        } else {
            assert!((e.0 as usize) < self.num_entities(), "entity out of range");
            &[]
        }
    }

    fn entities_with_attribute(&self, a: AttributeId) -> &[AttrOwner] {
        if let Some(row) = self.attr_over.get(&a.0) {
            return row;
        }
        if (a.0 as usize) < self.base_attributes {
            self.base.entities_with_attribute(a)
        } else {
            assert!(
                (a.0 as usize) < self.num_attributes(),
                "attribute out of range"
            );
            &[]
        }
    }

    fn entity_name(&self, e: EntityId) -> &str {
        if (e.0 as usize) < self.base_entities {
            self.base.entity_name(e)
        } else {
            &self.added_entities[e.0 as usize - self.base_entities]
        }
    }

    fn relation_name(&self, r: RelationId) -> &str {
        if (r.0 as usize) < self.base_relations {
            self.base.relation_name(r)
        } else {
            &self.added_relations[r.0 as usize - self.base_relations]
        }
    }

    fn attribute_name(&self, a: AttributeId) -> &str {
        if (a.0 as usize) < self.base_attributes {
            self.base.attribute_name(a)
        } else {
            &self.added_attributes[a.0 as usize - self.base_attributes]
        }
    }
}
