//! Train/validation/test splitting of numerical triples (the paper's 8:1:1).

use crate::graph::{KnowledgeGraph, NumTriple};
use cf_rand::seq::SliceRandom;
use cf_rand::Rng;

/// A dataset split over numerical triples. Relational triples are never
/// split — only attribute values are predicted.
#[derive(Clone, Debug)]
pub struct Split {
    /// Training triples (visible to models).
    pub train: Vec<NumTriple>,
    /// Validation triples (hidden; used for early stopping).
    pub valid: Vec<NumTriple>,
    /// Test triples (hidden; used for final evaluation).
    pub test: Vec<NumTriple>,
}

impl Split {
    /// Splits the graph's numeric triples by the given fractions
    /// (deterministically, given the RNG). Fractions must sum to ≤ 1; the
    /// remainder goes to train.
    pub fn new(
        graph: &KnowledgeGraph,
        valid_frac: f64,
        test_frac: f64,
        rng: &mut impl Rng,
    ) -> Self {
        assert!(valid_frac >= 0.0 && test_frac >= 0.0 && valid_frac + test_frac < 1.0);
        let mut all: Vec<NumTriple> = graph.numerics().to_vec();
        all.shuffle(rng);
        let n = all.len();
        let n_valid = (n as f64 * valid_frac).round() as usize;
        let n_test = (n as f64 * test_frac).round() as usize;
        let test = all.split_off(n - n_test);
        let valid = all.split_off(all.len() - n_valid);
        Split {
            train: all,
            valid,
            test,
        }
    }

    /// The paper's 8:1:1 split.
    pub fn paper_811(graph: &KnowledgeGraph, rng: &mut impl Rng) -> Self {
        Self::new(graph, 0.1, 0.1, rng)
    }

    /// The graph with validation and test answers removed — what a model is
    /// allowed to see while predicting.
    pub fn visible_graph(&self, full: &KnowledgeGraph) -> KnowledgeGraph {
        let mut hidden = self.valid.clone();
        hidden.extend_from_slice(&self.test);
        full.without_numerics(&hidden)
    }

    /// Total triples across all three parts.
    pub fn total(&self) -> usize {
        self.train.len() + self.valid.len() + self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::EntityId;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn graph_with_numerics(n: usize) -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        let a = g.add_attribute_type("v");
        for i in 0..n {
            let e = g.add_entity(format!("e{i}"));
            g.add_numeric(e, a, i as f64);
        }
        g.build_index();
        g
    }

    #[test]
    fn fractions_are_respected() {
        let g = graph_with_numerics(100);
        let mut rng = StdRng::seed_from_u64(0);
        let s = Split::paper_811(&g, &mut rng);
        assert_eq!(s.total(), 100);
        assert_eq!(s.valid.len(), 10);
        assert_eq!(s.test.len(), 10);
        assert_eq!(s.train.len(), 80);
    }

    #[test]
    fn split_is_a_partition() {
        let g = graph_with_numerics(50);
        let mut rng = StdRng::seed_from_u64(1);
        let s = Split::paper_811(&g, &mut rng);
        let mut seen: Vec<u32> = s
            .train
            .iter()
            .chain(&s.valid)
            .chain(&s.test)
            .map(|t| t.entity.0)
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 50, "splits overlap or drop triples");
    }

    #[test]
    fn deterministic_given_seed() {
        let g = graph_with_numerics(30);
        let s1 = Split::paper_811(&g, &mut StdRng::seed_from_u64(7));
        let s2 = Split::paper_811(&g, &mut StdRng::seed_from_u64(7));
        assert_eq!(s1.test.len(), s2.test.len());
        for (a, b) in s1.test.iter().zip(&s2.test) {
            assert_eq!(a.entity, b.entity);
        }
    }

    #[test]
    fn visible_graph_hides_eval_answers() {
        let g = graph_with_numerics(20);
        let mut rng = StdRng::seed_from_u64(2);
        let s = Split::paper_811(&g, &mut rng);
        let vis = s.visible_graph(&g);
        for t in s.test.iter().chain(&s.valid) {
            assert_eq!(
                vis.value_of(t.entity, t.attr),
                None,
                "leaked {:?}",
                t.entity
            );
        }
        for t in &s.train {
            assert_eq!(vis.value_of(t.entity, t.attr), Some(t.value));
        }
        let _ = EntityId(0);
    }
}
