//! Subgraph extraction: k-hop neighbourhoods and induced subgraphs, for
//! case-study visualisation and for scaling experiments on graph fragments.

use crate::graph::KnowledgeGraph;
use crate::ids::EntityId;
use std::collections::{HashSet, VecDeque};

/// Entities within `hops` undirected steps of `center` (including it).
pub fn k_hop_entities(g: &KnowledgeGraph, center: EntityId, hops: usize) -> HashSet<EntityId> {
    let mut seen: HashSet<EntityId> = HashSet::new();
    seen.insert(center);
    let mut frontier = VecDeque::new();
    frontier.push_back((center, 0usize));
    while let Some((at, depth)) = frontier.pop_front() {
        if depth == hops {
            continue;
        }
        for edge in g.neighbors(at) {
            if seen.insert(edge.to) {
                frontier.push_back((edge.to, depth + 1));
            }
        }
    }
    seen
}

/// The subgraph induced by an entity set: keeps every triple whose endpoints
/// both lie in the set and every numeric fact on a kept entity. Relation and
/// attribute vocabularies are preserved (ids stay comparable); entities are
/// renumbered densely.
///
/// Returns the new graph and the old→new entity mapping.
pub fn induced_subgraph(
    g: &KnowledgeGraph,
    keep: &HashSet<EntityId>,
) -> (
    KnowledgeGraph,
    std::collections::HashMap<EntityId, EntityId>,
) {
    let mut out = KnowledgeGraph::new();
    // Preserve vocabularies verbatim.
    for r in 0..g.num_relations() {
        out.add_relation_type(g.relation_name(crate::ids::RelationId(r as u32)));
    }
    for a in 0..g.num_attributes() {
        out.add_attribute_type(g.attribute_name(crate::ids::AttributeId(a as u32)));
    }
    let mut map = std::collections::HashMap::new();
    let mut ordered: Vec<EntityId> = keep.iter().copied().collect();
    ordered.sort(); // deterministic renumbering
    for e in ordered {
        let new_id = out.add_entity(g.entity_name(e));
        map.insert(e, new_id);
    }
    for t in g.triples() {
        if let (Some(&h), Some(&tl)) = (map.get(&t.head), map.get(&t.tail)) {
            out.add_triple(h, t.rel, tl);
        }
    }
    for n in g.numerics() {
        if let Some(&e) = map.get(&n.entity) {
            out.add_numeric(e, n.attr, n.value);
        }
    }
    out.build_index();
    (out, map)
}

/// Convenience: the k-hop neighbourhood subgraph around `center`.
pub fn k_hop_subgraph(
    g: &KnowledgeGraph,
    center: EntityId,
    hops: usize,
) -> (
    KnowledgeGraph,
    std::collections::HashMap<EntityId, EntityId>,
) {
    induced_subgraph(g, &k_hop_entities(g, center, hops))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn line_graph(n: usize) -> (KnowledgeGraph, Vec<EntityId>) {
        let mut g = KnowledgeGraph::new();
        let es: Vec<_> = (0..n).map(|i| g.add_entity(format!("e{i}"))).collect();
        let r = g.add_relation_type("r");
        let a = g.add_attribute_type("a");
        for w in es.windows(2) {
            g.add_triple(w[0], r, w[1]);
        }
        for (i, &e) in es.iter().enumerate() {
            g.add_numeric(e, a, i as f64);
        }
        g.build_index();
        (g, es)
    }

    #[test]
    fn k_hop_respects_distance() {
        let (g, es) = line_graph(6);
        let near = k_hop_entities(&g, es[0], 2);
        assert_eq!(near.len(), 3); // e0, e1, e2
        assert!(near.contains(&es[2]) && !near.contains(&es[3]));
        let all = k_hop_entities(&g, es[0], 10);
        assert_eq!(all.len(), 6);
    }

    #[test]
    fn induced_subgraph_keeps_internal_structure_only() {
        let (g, es) = line_graph(5);
        let keep: HashSet<EntityId> = [es[1], es[2], es[3]].into_iter().collect();
        let (sub, map) = induced_subgraph(&g, &keep);
        assert_eq!(sub.num_entities(), 3);
        // Edges e1-e2 and e2-e3 survive; boundary edges e0-e1, e3-e4 don't.
        assert_eq!(sub.triples().len(), 2);
        assert_eq!(sub.numerics().len(), 3);
        // Names and vocabularies are preserved.
        assert_eq!(sub.entity_name(map[&es[2]]), "e2");
        assert_eq!(sub.num_relations(), g.num_relations());
        assert_eq!(sub.num_attributes(), g.num_attributes());
    }

    #[test]
    fn subgraph_of_synthetic_world_is_well_formed() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let hub = g.entities().max_by_key(|&e| g.degree(e)).unwrap();
        let (sub, map) = k_hop_subgraph(&g, hub, 2);
        assert!(sub.num_entities() > 1);
        assert!(sub.num_entities() <= g.num_entities());
        // Every kept triple's endpoints exist in the new graph.
        for t in sub.triples() {
            assert!((t.head.0 as usize) < sub.num_entities());
            assert!((t.tail.0 as usize) < sub.num_entities());
        }
        assert!(map.contains_key(&hub));
    }

    #[test]
    fn renumbering_is_deterministic() {
        let (g, es) = line_graph(4);
        let keep: HashSet<EntityId> = es.iter().copied().collect();
        let (_, m1) = induced_subgraph(&g, &keep);
        let (_, m2) = induced_subgraph(&g, &keep);
        assert_eq!(m1, m2);
    }
}
