//! The shared world generator behind both synthetic datasets.

use crate::graph::KnowledgeGraph;
use crate::ids::{AttributeId, EntityId, RelationId};
use cf_rand::seq::SliceRandom;
use cf_rand::Rng;

/// Which dataset's attribute/relation inventory to generate.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Profile {
    /// 7 attributes (temporal + spatial), smaller relation vocabulary.
    Yago15k,
    /// 11 attributes (temporal + spatial + quantity), larger vocabulary.
    Fb15k237,
}

/// Entity-count knobs. The defaults target a CPU-trainable graph (~1.5k
/// entities); `paper()` approaches the real datasets' 15k.
#[derive(Copy, Clone, Debug)]
pub struct SynthScale {
    /// Number of countries.
    pub countries: usize,
    /// Regions generated per country.
    pub regions_per_country: usize,
    /// Cities generated per region.
    pub cities_per_region: usize,
    /// Number of people.
    pub people: usize,
    /// Number of films.
    pub films: usize,
    /// Number of organizations.
    pub orgs: usize,
    /// Number of events.
    pub events: usize,
    /// Number of ethnicity groups (FB profile).
    pub ethnicities: usize,
    /// Number of sports teams (FB profile).
    pub teams: usize,
    /// Probability that an applicable attribute value is actually recorded.
    pub attr_presence: f64,
}

impl SynthScale {
    /// Tiny graph for unit tests (~250 entities). Event count is kept high
    /// enough that rare attributes (`destroyed`, `happened`) still get a
    /// non-degenerate number of training observations after the 8:1:1 split.
    pub fn small() -> Self {
        SynthScale {
            countries: 6,
            regions_per_country: 2,
            cities_per_region: 2,
            people: 80,
            films: 40,
            orgs: 20,
            events: 30,
            ethnicities: 4,
            teams: 8,
            attr_presence: 0.75,
        }
    }

    /// Default experiment scale (~1.5k entities) — substitution S5.
    pub fn default_scale() -> Self {
        SynthScale {
            countries: 24,
            regions_per_country: 3,
            cities_per_region: 4,
            people: 600,
            films: 250,
            orgs: 120,
            events: 60,
            ethnicities: 8,
            teams: 40,
            attr_presence: 0.7,
        }
    }

    /// Paper-scale graph (~15k entities); accepted by the same code but slow
    /// to train on CPU.
    pub fn paper() -> Self {
        SynthScale {
            countries: 80,
            regions_per_country: 5,
            cities_per_region: 6,
            people: 7000,
            films: 3000,
            orgs: 1200,
            events: 600,
            ethnicities: 20,
            teams: 300,
            attr_presence: 0.7,
        }
    }

    /// Rough entity count this scale will generate.
    pub fn approx_entities(&self) -> usize {
        let places = self.countries * (1 + self.regions_per_country * (1 + self.cities_per_region));
        places + self.people + self.films + self.orgs + self.events + self.ethnicities + self.teams
    }
}

/// Generates the YAGO15K-like dataset.
pub fn yago15k_sim(scale: SynthScale, rng: &mut impl Rng) -> KnowledgeGraph {
    World::generate(Profile::Yago15k, scale, rng)
}

/// Generates the FB15K-237-like dataset.
pub fn fb15k_sim(scale: SynthScale, rng: &mut impl Rng) -> KnowledgeGraph {
    World::generate(Profile::Fb15k237, scale, rng)
}

// ---------------------------------------------------------------------------

struct Attrs {
    birth: AttributeId,
    death: AttributeId,
    /// YAGO `created` / FB `film_release` (film-ish temporal attribute).
    created: AttributeId,
    destroyed: Option<AttributeId>,
    happened: Option<AttributeId>,
    org_founded: Option<AttributeId>,
    loc_founded: Option<AttributeId>,
    latitude: AttributeId,
    longitude: AttributeId,
    area: Option<AttributeId>,
    population: Option<AttributeId>,
    height: Option<AttributeId>,
    weight: Option<AttributeId>,
}

struct Rels {
    located_in: RelationId,
    capital: RelationId,
    neighbor: RelationId,
    state_province: Option<RelationId>,
    county: Option<RelationId>,
    sibling: RelationId,
    spouse: RelationId,
    influenced_by: RelationId,
    nationality: RelationId,
    directed: RelationId,
    acted_in: RelationId,
    music_for: Option<RelationId>,
    org_in: RelationId,
    member_states: Option<RelationId>,
    team: Option<RelationId>,
    athlete: Option<RelationId>,
    ethnicity: Option<RelationId>,
    participated_in: Option<RelationId>,
    happened_in: Option<RelationId>,
    film: RelationId,
}

struct World {
    profile: Profile,
    scale: SynthScale,
    g: KnowledgeGraph,
    attrs: Attrs,
    rels: Rels,
    countries: Vec<EntityId>,
    regions: Vec<EntityId>,
    cities: Vec<EntityId>,
    // Latent coordinates per place entity id (even when unobserved).
    coords: std::collections::HashMap<EntityId, (f64, f64)>,
    people: Vec<EntityId>,
    birth_years: Vec<f64>,
    ethnicities: Vec<EntityId>,
    teams: Vec<EntityId>,
}

impl World {
    fn generate(profile: Profile, scale: SynthScale, rng: &mut impl Rng) -> KnowledgeGraph {
        let mut g = KnowledgeGraph::new();
        let attrs = declare_attrs(profile, &mut g);
        let rels = declare_rels(profile, &mut g);
        let mut world = World {
            profile,
            scale,
            g,
            attrs,
            rels,
            countries: Vec::new(),
            regions: Vec::new(),
            cities: Vec::new(),
            coords: std::collections::HashMap::new(),
            people: Vec::new(),
            birth_years: Vec::new(),
            ethnicities: Vec::new(),
            teams: Vec::new(),
        };
        world.build_places(rng);
        world.build_social_groups(rng);
        world.build_people(rng);
        world.build_films(rng);
        world.build_orgs(rng);
        world.build_events(rng);
        let mut g = world.g;
        g.build_index();
        g
    }

    fn observe(&self, rng: &mut impl Rng) -> bool {
        rng.gen::<f64>() < self.scale.attr_presence
    }

    fn maybe_numeric(&mut self, e: EntityId, a: AttributeId, v: f64, rng: &mut impl Rng) {
        if self.observe(rng) {
            self.g.add_numeric(e, a, v);
        }
    }

    // ---- places ----------------------------------------------------------

    fn build_places(&mut self, rng: &mut impl Rng) {
        for c in 0..self.scale.countries {
            let country = self.g.add_entity(format!("country_{c}"));
            let lat = rng.gen_range(-50.0..65.0);
            let lon = rng.gen_range(-170.0..175.0);
            self.coords.insert(country, (lat, lon));
            self.countries.push(country);
            self.maybe_numeric(country, self.attrs.latitude, lat, rng);
            self.maybe_numeric(country, self.attrs.longitude, lon, rng);

            // Quantity attributes for FB-like data.
            let area = 10f64.powf(rng.gen_range(3.5..6.9)); // up to ~8e6
            if let Some(a) = self.attrs.area {
                self.maybe_numeric(country, a, area, rng);
            }
            if let Some(p) = self.attrs.population {
                let density = 10f64.powf(rng.gen_range(0.3..2.3));
                self.maybe_numeric(country, p, (area * density).min(3.1e9), rng);
            }
            if let Some(lf) = self.attrs.loc_founded {
                self.maybe_numeric(country, lf, rng.gen_range(-2999.0..1900.0), rng);
            }

            for r in 0..self.scale.regions_per_country {
                let region = self.g.add_entity(format!("region_{c}_{r}"));
                let rlat = lat + cf_rand::sample_normal(rng) * 2.5;
                let rlon = lon + cf_rand::sample_normal(rng) * 2.5;
                self.coords.insert(region, (rlat, rlon));
                self.regions.push(region);
                self.g.add_triple(region, self.rels.located_in, country);
                if let Some(sp) = self.rels.state_province {
                    self.g.add_triple(region, sp, country);
                }
                self.maybe_numeric(region, self.attrs.latitude, rlat, rng);
                self.maybe_numeric(region, self.attrs.longitude, rlon, rng);
                if let Some(a) = self.attrs.area {
                    let rarea =
                        area / (self.scale.regions_per_country as f64) * rng.gen_range(0.4..1.6);
                    self.maybe_numeric(region, a, rarea.max(1.0), rng);
                }
                if let Some(lf) = self.attrs.loc_founded {
                    self.maybe_numeric(region, lf, rng.gen_range(-1500.0..1950.0), rng);
                }

                for ci in 0..self.scale.cities_per_region {
                    let city = self.g.add_entity(format!("city_{c}_{r}_{ci}"));
                    let clat = rlat + cf_rand::sample_normal(rng) * 1.2;
                    let clon = rlon + cf_rand::sample_normal(rng) * 1.2;
                    self.coords.insert(city, (clat, clon));
                    self.cities.push(city);
                    self.g.add_triple(city, self.rels.located_in, region);
                    if let Some(county) = self.rels.county {
                        self.g.add_triple(city, county, region);
                    }
                    self.maybe_numeric(city, self.attrs.latitude, clat, rng);
                    self.maybe_numeric(city, self.attrs.longitude, clon, rng);
                    if let Some(a) = self.attrs.area {
                        self.maybe_numeric(city, a, 10f64.powf(rng.gen_range(0.0..3.3)), rng);
                    }
                    if let Some(p) = self.attrs.population {
                        self.maybe_numeric(city, p, 10f64.powf(rng.gen_range(3.0..7.2)), rng);
                    }
                    if let Some(lf) = self.attrs.loc_founded {
                        self.maybe_numeric(city, lf, rng.gen_range(-800.0..2011.0), rng);
                    }
                    if ci == 0 {
                        // First city of the first region is the capital.
                        if r == 0 {
                            self.g.add_triple(country, self.rels.capital, city);
                        }
                    }
                }
            }
        }
        // Neighbour relations between geographically close countries/cities.
        self.link_neighbors(rng);
    }

    fn link_neighbors(&mut self, rng: &mut impl Rng) {
        let mut link = |entities: &[EntityId],
                        k: usize,
                        g: &mut KnowledgeGraph,
                        coords: &std::collections::HashMap<EntityId, (f64, f64)>,
                        rel: RelationId| {
            for &e in entities {
                let (lat, lon) = coords[&e];
                let mut others: Vec<(f64, EntityId)> = entities
                    .iter()
                    .filter(|&&o| o != e)
                    .map(|&o| {
                        let (la, lo) = coords[&o];
                        (((la - lat).powi(2) + (lo - lon).powi(2)).sqrt(), o)
                    })
                    .collect();
                others.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                for &(_, o) in others.iter().take(k) {
                    if rng.gen::<f64>() < 0.8 {
                        g.add_triple(e, rel, o);
                    }
                }
            }
        };
        link(
            &self.countries.clone(),
            2,
            &mut self.g,
            &self.coords,
            self.rels.neighbor,
        );
        link(
            &self.cities.clone(),
            2,
            &mut self.g,
            &self.coords,
            self.rels.neighbor,
        );
    }

    // ---- social groups -----------------------------------------------------

    fn build_social_groups(&mut self, rng: &mut impl Rng) {
        for i in 0..self.scale.ethnicities {
            let e = self.g.add_entity(format!("ethnicity_{i}"));
            self.ethnicities.push(e);
        }
        for i in 0..self.scale.teams {
            let t = self.g.add_entity(format!("team_{i}"));
            self.teams.push(t);
            // Teams are located in cities.
            if let Some(&city) = pick(&self.cities, rng) {
                self.g.add_triple(t, self.rels.org_in, city);
            }
        }
    }

    // ---- people -----------------------------------------------------------

    fn build_people(&mut self, rng: &mut impl Rng) {
        // Per-ethnicity latent height offsets plant the Table-V weight chain
        // (ethnicity, ethnicity_inv, weight).
        let eth_height: Vec<f64> = (0..self.scale.ethnicities.max(1))
            .map(|_| rng.gen_range(-0.06..0.06))
            .collect();
        for i in 0..self.scale.people {
            let p = self.g.add_entity(format!("person_{i}"));
            self.people.push(p);
            // Mostly modern, with an ancient tail matching Table II ranges.
            let birth = if rng.gen::<f64>() < 0.05 {
                rng.gen_range(-380.0..1800.0)
            } else {
                rng.gen_range(1850.0..2000.0)
            };
            self.birth_years.push(birth);
            self.maybe_numeric(p, self.attrs.birth, birth, rng);
            // Death for a subset (older people).
            if birth < 1945.0 && rng.gen::<f64>() < 0.7 {
                let death = birth + rng.gen_range(35.0..95.0);
                self.maybe_numeric(p, self.attrs.death, death, rng);
            }
            // Nationality.
            if let Some(&c) = pick(&self.countries, rng) {
                self.g.add_triple(p, self.rels.nationality, c);
            }
            // Body stats (FB only).
            if let (Some(h), Some(w)) = (self.attrs.height, self.attrs.weight) {
                let eth_idx = rng.gen_range(0..self.scale.ethnicities.max(1));
                if !self.ethnicities.is_empty() {
                    if let Some(er) = self.rels.ethnicity {
                        self.g.add_triple(p, er, self.ethnicities[eth_idx]);
                    }
                }
                let height = (1.74 + eth_height[eth_idx] + cf_rand::sample_normal(rng) * 0.07)
                    .clamp(1.34, 2.18);
                let weight =
                    ((height - 1.0) * 95.0 + cf_rand::sample_normal(rng) * 7.0).clamp(44.0, 147.0);
                // Only athletes (team members) have recorded weights, like FB.
                let is_athlete = rng.gen::<f64>() < 0.15 && !self.teams.is_empty();
                self.maybe_numeric(p, h, height, rng);
                if is_athlete {
                    if let Some(tr) = self.rels.team {
                        let &team = pick(&self.teams, rng).unwrap();
                        self.g.add_triple(p, tr, team);
                        if let Some(ar) = self.rels.athlete {
                            self.g.add_triple(team, ar, p);
                        }
                    }
                    self.maybe_numeric(p, w, weight, rng);
                }
            }
        }
        // Family/influence relations with planted temporal correlations.
        let n = self.people.len();
        for i in 0..n {
            let birth = self.birth_years[i];
            // Sibling: close birth year.
            if rng.gen::<f64>() < 0.4 {
                if let Some(j) = nearest_by_birth(&self.birth_years, i, 6.0, rng) {
                    self.g
                        .add_triple(self.people[i], self.rels.sibling, self.people[j]);
                }
            }
            // Spouse: close birth year (slightly wider).
            if rng.gen::<f64>() < 0.3 {
                if let Some(j) = nearest_by_birth(&self.birth_years, i, 10.0, rng) {
                    self.g
                        .add_triple(self.people[i], self.rels.spouse, self.people[j]);
                }
            }
            // Influenced_by: someone ~20-60 years older.
            if rng.gen::<f64>() < 0.3 {
                let target = birth - rng.gen_range(20.0..60.0);
                if let Some(j) = closest_to(&self.birth_years, target, i) {
                    self.g
                        .add_triple(self.people[i], self.rels.influenced_by, self.people[j]);
                }
            }
        }
    }

    // ---- films --------------------------------------------------------------

    fn build_films(&mut self, rng: &mut impl Rng) {
        let (created_lo, created_hi) = match self.profile {
            Profile::Yago15k => (100.0, 2018.0),
            Profile::Fb15k237 => (1927.0, 2013.5),
        };
        for i in 0..self.scale.films {
            let f = self.g.add_entity(format!("film_{i}"));
            // Director: a person whose birth predates the film by 25-55y.
            let di = rng.gen_range(0..self.people.len());
            let director = self.people[di];
            let created =
                (self.birth_years[di] + rng.gen_range(25.0..55.0)).clamp(created_lo, created_hi);
            self.g.add_triple(director, self.rels.directed, f);
            self.g.add_triple(director, self.rels.film, f);
            self.maybe_numeric(f, self.attrs.created, created, rng);
            // Actors: born 20-60 years before creation.
            for _ in 0..rng.gen_range(1..4usize) {
                let target = created - rng.gen_range(20.0..60.0);
                if let Some(ai) = closest_to(&self.birth_years, target, di) {
                    self.g.add_triple(self.people[ai], self.rels.acted_in, f);
                }
            }
            if let Some(mr) = self.rels.music_for {
                if rng.gen::<f64>() < 0.4 {
                    let target = created - rng.gen_range(25.0..55.0);
                    if let Some(mi) = closest_to(&self.birth_years, target, di) {
                        self.g.add_triple(self.people[mi], mr, f);
                    }
                }
            }
        }
    }

    // ---- orgs -----------------------------------------------------------------

    fn build_orgs(&mut self, rng: &mut impl Rng) {
        for i in 0..self.scale.orgs {
            let o = self.g.add_entity(format!("org_{i}"));
            let founded = rng.gen_range(1088.0..2013.0);
            if let Some(of) = self.attrs.org_founded {
                self.maybe_numeric(o, of, founded, rng);
            } else {
                // YAGO folds org creation into `created`.
                self.maybe_numeric(o, self.attrs.created, founded, rng);
            }
            if let Some(&city) = pick(&self.cities, rng) {
                self.g.add_triple(o, self.rels.org_in, city);
            }
            // Orgs with member states (planting the Table-V
            // member_states→org_founded chain: members share era).
            if let Some(ms) = self.rels.member_states {
                if rng.gen::<f64>() < 0.3 {
                    for _ in 0..rng.gen_range(2..5usize) {
                        if let Some(&c) = pick(&self.countries, rng) {
                            self.g.add_triple(o, ms, c);
                        }
                    }
                }
            }
        }
    }

    // ---- events ----------------------------------------------------------------

    fn build_events(&mut self, rng: &mut impl Rng) {
        for i in 0..self.scale.events {
            let e = self.g.add_entity(format!("event_{i}"));
            let happened = rng.gen_range(218.0..2018.0);
            if let Some(h) = self.attrs.happened {
                self.maybe_numeric(e, h, happened, rng);
            }
            if let Some(hi) = self.rels.happened_in {
                if let Some(&place) = pick(&self.cities, rng) {
                    self.g.add_triple(e, hi, place);
                }
            }
            if let Some(pi) = self.rels.participated_in {
                // Participants are adults alive at the event (modern events).
                if happened > 1800.0 {
                    for _ in 0..rng.gen_range(1..4usize) {
                        let target = happened - rng.gen_range(20.0..60.0);
                        if let Some(j) = closest_to(&self.birth_years, target, usize::MAX) {
                            self.g.add_triple(self.people[j], pi, e);
                        }
                    }
                }
            }
            // Destroyed structures (YAGO): tie to the event era.
            if let Some(d) = self.attrs.destroyed {
                if rng.gen::<f64>() < 0.6 {
                    let s = self.g.add_entity(format!("structure_{i}"));
                    self.maybe_numeric(
                        s,
                        d,
                        (happened + cf_rand::sample_normal(rng) * 5.0).clamp(476.0, 2017.0),
                        rng,
                    );
                    if let Some(hi) = self.rels.happened_in {
                        self.g.add_triple(e, hi, s);
                    }
                }
            }
        }
    }
}

fn declare_attrs(profile: Profile, g: &mut KnowledgeGraph) -> Attrs {
    match profile {
        Profile::Yago15k => Attrs {
            birth: g.add_attribute_type("birth"),
            death: g.add_attribute_type("death"),
            created: g.add_attribute_type("created"),
            destroyed: Some(g.add_attribute_type("destroyed")),
            happened: Some(g.add_attribute_type("happened")),
            org_founded: None,
            loc_founded: None,
            latitude: g.add_attribute_type("latitude"),
            longitude: g.add_attribute_type("longitude"),
            area: None,
            population: None,
            height: None,
            weight: None,
        },
        Profile::Fb15k237 => Attrs {
            birth: g.add_attribute_type("birth"),
            death: g.add_attribute_type("death"),
            created: g.add_attribute_type("film_release"),
            destroyed: None,
            happened: None,
            org_founded: Some(g.add_attribute_type("org_founded")),
            loc_founded: Some(g.add_attribute_type("loc_founded")),
            latitude: g.add_attribute_type("latitude"),
            longitude: g.add_attribute_type("longitude"),
            area: Some(g.add_attribute_type("area")),
            population: Some(g.add_attribute_type("population")),
            height: Some(g.add_attribute_type("height")),
            weight: Some(g.add_attribute_type("weight")),
        },
    }
}

fn declare_rels(profile: Profile, g: &mut KnowledgeGraph) -> Rels {
    let yago = profile == Profile::Yago15k;
    Rels {
        located_in: g.add_relation_type("located_in"),
        capital: g.add_relation_type(if yago { "has_capital" } else { "capital" }),
        neighbor: g.add_relation_type(if yago { "has_neighbor" } else { "adjoins" }),
        state_province: (!yago).then(|| g.add_relation_type("state_province")),
        county: (!yago).then(|| g.add_relation_type("county")),
        sibling: g.add_relation_type("sibling"),
        spouse: g.add_relation_type(if yago { "is_married_to" } else { "spouse" }),
        influenced_by: g.add_relation_type("influenced_by"),
        nationality: g.add_relation_type(if yago { "is_citizen_of" } else { "nationality" }),
        directed: g.add_relation_type("directed"),
        acted_in: g.add_relation_type("acted_in"),
        music_for: yago.then(|| g.add_relation_type("music_for")),
        org_in: g.add_relation_type("org_located_in"),
        member_states: (!yago).then(|| g.add_relation_type("member_states")),
        team: (!yago).then(|| g.add_relation_type("team")),
        athlete: (!yago).then(|| g.add_relation_type("athlete")),
        ethnicity: (!yago).then(|| g.add_relation_type("ethnicity")),
        participated_in: yago.then(|| g.add_relation_type("participated_in")),
        happened_in: yago.then(|| g.add_relation_type("happened_in")),
        film: g.add_relation_type("film"),
    }
}

fn pick<'a, T>(v: &'a [T], rng: &mut impl Rng) -> Option<&'a T> {
    v.choose(rng)
}

/// A random person whose birth year is within `window` of person `i`'s.
fn nearest_by_birth(births: &[f64], i: usize, window: f64, rng: &mut impl Rng) -> Option<usize> {
    let mine = births[i];
    let candidates: Vec<usize> = births
        .iter()
        .enumerate()
        .filter(|&(j, &b)| j != i && (b - mine).abs() <= window)
        .map(|(j, _)| j)
        .collect();
    candidates.choose(rng).copied()
}

/// The person whose birth year is closest to `target`, excluding `exclude`.
fn closest_to(births: &[f64], target: f64, exclude: usize) -> Option<usize> {
    births
        .iter()
        .enumerate()
        .filter(|&(j, _)| j != exclude)
        .min_by(|a, b| {
            (a.1 - target)
                .abs()
                .partial_cmp(&(b.1 - target).abs())
                .unwrap()
        })
        .map(|(j, _)| j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{attribute_stats, dataset_stats};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn yago_sim_has_expected_attribute_inventory() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        assert_eq!(g.num_attributes(), 7);
        for name in [
            "birth",
            "death",
            "created",
            "destroyed",
            "happened",
            "latitude",
            "longitude",
        ] {
            assert!(g.attribute_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn fb_sim_has_expected_attribute_inventory() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = fb15k_sim(SynthScale::small(), &mut rng);
        assert_eq!(g.num_attributes(), 11);
        for name in [
            "birth",
            "death",
            "film_release",
            "org_founded",
            "loc_founded",
            "latitude",
            "longitude",
            "area",
            "population",
            "height",
            "weight",
        ] {
            assert!(g.attribute_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = yago15k_sim(SynthScale::small(), &mut StdRng::seed_from_u64(7));
        let g2 = yago15k_sim(SynthScale::small(), &mut StdRng::seed_from_u64(7));
        assert_eq!(g1.num_entities(), g2.num_entities());
        assert_eq!(g1.triples().len(), g2.triples().len());
        assert_eq!(g1.numerics().len(), g2.numerics().len());
        for (a, b) in g1.numerics().iter().zip(g2.numerics()) {
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn entity_count_matches_scale_estimate() {
        let mut rng = StdRng::seed_from_u64(1);
        let scale = SynthScale::small();
        let g = fb15k_sim(scale, &mut rng);
        // Structures (YAGO only) may add a few extra; FB should be close.
        let approx = scale.approx_entities();
        assert!(
            g.num_entities() >= approx && g.num_entities() <= approx + scale.events,
            "entities {} vs approx {approx}",
            g.num_entities()
        );
    }

    #[test]
    fn planted_sibling_birth_correlation() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = fb15k_sim(SynthScale::default_scale(), &mut rng);
        let birth = g.attribute_by_name("birth").unwrap();
        let sibling = g.relation_by_name("sibling").unwrap();
        let mut diffs = Vec::new();
        for t in g.triples().iter().filter(|t| t.rel == sibling) {
            if let (Some(a), Some(b)) = (g.value_of(t.head, birth), g.value_of(t.tail, birth)) {
                diffs.push((a - b).abs());
            }
        }
        assert!(diffs.len() > 10, "not enough observed sibling pairs");
        let mean_diff = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(
            mean_diff < 8.0,
            "sibling births not correlated: mean |Δ| = {mean_diff}"
        );
    }

    #[test]
    fn planted_location_coordinates_correlation() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = yago15k_sim(SynthScale::default_scale(), &mut rng);
        let lat = g.attribute_by_name("latitude").unwrap();
        let located = g.relation_by_name("located_in").unwrap();
        let mut diffs = Vec::new();
        for t in g.triples().iter().filter(|t| t.rel == located) {
            if let (Some(a), Some(b)) = (g.value_of(t.head, lat), g.value_of(t.tail, lat)) {
                diffs.push((a - b).abs());
            }
        }
        assert!(diffs.len() > 20);
        let mean_diff = diffs.iter().sum::<f64>() / diffs.len() as f64;
        assert!(
            mean_diff < 6.0,
            "located_in latitudes not correlated: {mean_diff}"
        );
    }

    #[test]
    fn value_ranges_stay_in_table2_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = fb15k_sim(SynthScale::default_scale(), &mut rng);
        for s in attribute_stats(&g) {
            match s.name.as_str() {
                "height" => {
                    assert!(s.min >= 1.34 && s.max <= 2.18, "height out of range: {s:?}")
                }
                "weight" => {
                    assert!(
                        s.min >= 44.0 && s.max <= 147.0,
                        "weight out of range: {s:?}"
                    )
                }
                "latitude" => assert!(s.min >= -90.0 && s.max <= 90.0),
                "longitude" => assert!(s.min >= -180.0 && s.max <= 180.0),
                "population" => assert!(s.max <= 3.1e9),
                "film_release" => assert!(s.min >= 1927.0 && s.max <= 2013.5),
                _ => {}
            }
        }
    }

    #[test]
    fn graph_is_well_connected() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = fb15k_sim(SynthScale::default_scale(), &mut rng);
        let stats = dataset_stats(&g);
        assert!(
            stats.relational_triples as f64 / stats.entities as f64 > 1.0,
            "{stats:?}"
        );
        // Most entities should be reachable (have at least one edge).
        let isolated = g.entities().filter(|&e| g.degree(e) == 0).count();
        assert!(
            (isolated as f64) < 0.1 * stats.entities as f64,
            "{isolated} isolated of {}",
            stats.entities
        );
    }
}
