//! Synthetic twins of the paper's datasets (substitution S1 in DESIGN.md).
//!
//! The real FB15K-237 / YAGO15K numeric dumps (MMKG) are not available in
//! this offline environment, so these generators reproduce their
//! *statistical shape*: the same attribute inventories and value ranges
//! (Table II), comparable relation vocabularies, and — crucially — *planted
//! relational correlations* that make multi-hop numerical reasoning
//! meaningful:
//!
//! - siblings/spouses are born within a few years of each other;
//! - a film's creation year trails its director's birth by 25–55 years;
//! - cities sit near their region, regions near their country, neighbours
//!   near each other (latitude/longitude);
//! - population ≈ density × area (log-normally);
//! - height/weight cluster by ethnicity and team.
//!
//! These are exactly the chains the paper's Table V reports as the learned
//! key RA-Chains, so a model that exploits multi-hop structure can win here
//! for the same reasons it wins on the real data.

mod large;
mod world;

pub use large::{large_sim, LargeScale};
pub use world::{fb15k_sim, yago15k_sim, Profile, SynthScale};
