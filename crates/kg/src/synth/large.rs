//! The million-entity zipfian generator (`large_sim`).
//!
//! The world generator (`world.rs`) plants its correlations with O(n²)
//! nearest-neighbor scans, which is fine at 15K entities and hopeless at
//! 1M–10M. This generator is strictly O(V + E): entities live in
//! `n_communities` latent communities, each with its own latent scalar
//! `θ_c`; edges are drawn with a zipfian-degree head (a few hubs, a long
//! low-degree tail, like real KG degree distributions) and a strong
//! intra-community bias; numeric attributes are noisy affine functions of
//! the community latent. The planted numeric structure is therefore exactly
//! the kind RA-Chains exploit: an entity's missing value is predictable
//! from the values carried by its ≤3-hop neighborhood, because neighbors
//! overwhelmingly share a community and the community pins the value.

use crate::graph::KnowledgeGraph;
use crate::ids::{AttributeId, EntityId, RelationId};
use cf_rand::Rng;

/// Parameters of the large zipfian world.
#[derive(Copy, Clone, Debug)]
pub struct LargeScale {
    /// Number of entities (1M–10M is the design range; any value works).
    pub entities: usize,
    /// Average *directed* edges per entity (total triples = entities × this).
    pub avg_degree: usize,
    /// Number of relation types.
    pub relations: usize,
    /// Number of numeric attribute types.
    pub attributes: usize,
    /// Number of latent communities pinning the numeric structure.
    pub communities: usize,
    /// Zipf exponent of the hub-degree distribution (≈1.1 matches real KGs).
    pub zipf_exponent: f64,
    /// Probability that each (entity, attribute) numeric fact is present.
    pub attr_presence: f64,
}

impl LargeScale {
    /// A 1M-entity world (≈4M triples, ≈2.4M numeric facts).
    pub fn million() -> Self {
        LargeScale {
            entities: 1_000_000,
            avg_degree: 4,
            relations: 24,
            attributes: 8,
            communities: 1 << 12,
            zipf_exponent: 1.1,
            attr_presence: 0.3,
        }
    }

    /// A small smoke-test variant of the same distribution (15K entities).
    pub fn smoke() -> Self {
        LargeScale {
            entities: 15_000,
            avg_degree: 4,
            relations: 24,
            attributes: 8,
            communities: 1 << 7,
            zipf_exponent: 1.1,
            attr_presence: 0.3,
        }
    }

    /// Approximate number of relational triples generated.
    pub fn approx_triples(&self) -> usize {
        self.entities * self.avg_degree
    }
}

/// Samples a zipfian rank in `0..n` with exponent `s` by inverting the
/// truncated zeta CDF approximation (bounded rejection, O(1) expected).
fn zipf_rank(n: usize, s: f64, rng: &mut impl Rng) -> usize {
    // Inverse-CDF on the continuous envelope f(x) = x^-s over [1, n+1),
    // accepted against the discrete mass — standard rejection sampler.
    let n = n as f64;
    loop {
        let u: f64 = rng.gen::<f64>();
        let t = ((n + 1.0).powf(1.0 - s) - 1.0) * u + 1.0;
        let x = t.powf(1.0 / (1.0 - s));
        let k = x.floor();
        if k >= 1.0 && k <= n {
            // Acceptance ratio of discrete pmf vs continuous envelope.
            let ratio = (k / x).powf(s);
            if rng.gen::<f64>() < ratio {
                return (k as usize) - 1;
            }
        }
    }
}

/// Generates the large zipfian world. O(V + E) time and memory; entity
/// names are compact (`e<idx>`), so a 1M-entity graph stays ≈10 bytes of
/// name per entity.
pub fn large_sim(scale: LargeScale, rng: &mut impl Rng) -> KnowledgeGraph {
    assert!(scale.entities > 1 && scale.communities >= 1);
    assert!(scale.zipf_exponent > 1.0, "zipf exponent must exceed 1");
    let mut g = KnowledgeGraph::new();

    // Vocabularies.
    for r in 0..scale.relations {
        g.add_relation_type(format!("rel_{r}"));
    }
    for a in 0..scale.attributes {
        g.add_attribute_type(format!("attr_{a}"));
    }
    let mut name = String::with_capacity(16);
    for i in 0..scale.entities {
        use std::fmt::Write as _;
        name.clear();
        let _ = write!(name, "e{i}");
        g.add_entity(name.as_str());
    }

    // Latent structure: community assignment and per-community scalar.
    // Entities are striped over communities so communities are equal-sized;
    // hubs (low ids, by the zipf head) spread across communities.
    let thetas: Vec<f64> = (0..scale.communities)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let community = |e: usize| e % scale.communities;

    // Per-attribute affine maps (offset, span, noise) over the latent, with
    // ranges loosely shaped like Table II magnitudes.
    let attr_maps: Vec<(f64, f64, f64)> = (0..scale.attributes)
        .map(|a| {
            let span = 10f64.powi((a % 4) as i32 + 1); // 10, 100, 1k, 10k
            let offset = rng.gen_range(0.0..span);
            let noise = span * 0.02;
            (offset, span, noise)
        })
        .collect();

    // Edges: one endpoint uniform (every entity gets coverage), the other
    // zipfian (hubs), biased to stay inside the community. Relation type is
    // a deterministic function of the community pair so relation identity
    // correlates with value structure (chains carry signal, like the
    // world generator's planted correlations).
    let n_triples = scale.approx_triples();
    for _ in 0..n_triples {
        let head = rng.gen_range(0..scale.entities);
        let tail = if rng.gen::<f64>() < 0.8 {
            // Intra-community: jump a random multiple of the stripe width.
            let hops = rng.gen_range(1..=((scale.entities / scale.communities).max(2) - 1));
            (head + hops * scale.communities) % scale.entities
        } else {
            // Cross-community long-range edge to a zipfian hub.
            zipf_rank(scale.entities, scale.zipf_exponent, rng)
        };
        if tail == head {
            continue;
        }
        let rel = (community(head) + 3 * community(tail)) % scale.relations;
        g.add_triple(
            EntityId(head as u32),
            RelationId(rel as u32),
            EntityId(tail as u32),
        );
    }

    // Numeric facts: value = offset + span · σ(θ_c + ε) with attribute-
    // specific noise; entities in the same community (i.e. most 1–3 hop
    // neighborhoods) share values up to noise.
    for e in 0..scale.entities {
        let theta = thetas[community(e)];
        for (a, &(offset, span, noise)) in attr_maps.iter().enumerate() {
            if rng.gen::<f64>() >= scale.attr_presence {
                continue;
            }
            let eps: f64 = rng.gen_range(-1.0..1.0) * noise / span;
            let latent = theta + eps;
            // Logistic squash keeps every value inside [offset, offset+span].
            let v = offset + span / (1.0 + (-2.0 * latent).exp());
            g.add_numeric(EntityId(e as u32), AttributeId(a as u32), v);
        }
    }

    g.build_index();
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::GraphView;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    #[test]
    fn smoke_scale_has_expected_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let scale = LargeScale::smoke();
        let g = large_sim(scale, &mut rng);
        assert_eq!(g.num_entities(), scale.entities);
        assert_eq!(g.num_relations(), scale.relations);
        assert_eq!(g.num_attributes(), scale.attributes);
        // Self-loops are skipped, so triples land slightly under the target.
        assert!(g.triples().len() > scale.approx_triples() * 9 / 10);
        assert!(!g.numerics().is_empty());
        for t in g.numerics() {
            assert!(t.value.is_finite());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g1 = large_sim(LargeScale::smoke(), &mut StdRng::seed_from_u64(42));
        let g2 = large_sim(LargeScale::smoke(), &mut StdRng::seed_from_u64(42));
        assert_eq!(g1.triples(), g2.triples());
        assert_eq!(g1.numerics(), g2.numerics());
    }

    #[test]
    fn degree_distribution_has_hubs_and_tail() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = large_sim(LargeScale::smoke(), &mut rng);
        let mut degrees: Vec<usize> = GraphView::entities(&g).map(|e| g.degree(e)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs: the top entity should be far above the mean degree.
        let mean = degrees.iter().sum::<usize>() as f64 / degrees.len() as f64;
        assert!(
            degrees[0] as f64 > mean * 8.0,
            "no zipfian head: max {} mean {mean:.1}",
            degrees[0]
        );
    }

    #[test]
    fn community_values_are_correlated_across_edges() {
        // The planted structure: 1-hop neighbors usually share a community,
        // so their attribute values correlate much more than random pairs.
        let mut rng = StdRng::seed_from_u64(2);
        let g = large_sim(LargeScale::smoke(), &mut rng);
        let a = AttributeId(0);
        let mut neighbor_gap = 0.0;
        let mut neighbor_n = 0usize;
        for t in g.triples().iter().take(20_000) {
            if let (Some(v1), Some(v2)) = (g.value_of(t.head, a), g.value_of(t.tail, a)) {
                neighbor_gap += (v1 - v2).abs();
                neighbor_n += 1;
            }
        }
        let owners = g.entities_with_attribute(a);
        let mut random_gap = 0.0;
        let mut random_n = 0usize;
        for i in 0..owners.len().min(20_000) {
            let j = (i * 7919 + 13) % owners.len();
            if i != j {
                random_gap += (owners[i].value - owners[j].value).abs();
                random_n += 1;
            }
        }
        let neighbor_mean = neighbor_gap / neighbor_n.max(1) as f64;
        let random_mean = random_gap / random_n.max(1) as f64;
        assert!(
            neighbor_mean < random_mean * 0.7,
            "planted correlation missing: neighbor {neighbor_mean:.2} vs random {random_mean:.2}"
        );
    }

    #[test]
    fn zipf_rank_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let k = zipf_rank(1000, 1.1, &mut rng);
            assert!(k < 1000);
        }
    }
}
