//! Strongly-typed identifiers for graph elements.
//!
//! Newtype wrappers keep entity/relation/attribute index spaces from being
//! mixed up at compile time; all are plain `u32` indices into the owning
//! [`crate::graph::KnowledgeGraph`]'s arenas.

/// An entity (node) id.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(transparent)]
pub struct EntityId(pub u32);

/// A relation *type* id (direction-less; see [`Dir`]).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(transparent)]
pub struct RelationId(pub u32);

/// A numerical attribute type id.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(transparent)]
pub struct AttributeId(pub u32);

/// Traversal direction of a relation. The paper's chains freely use inverse
/// relations (rendered `_inv` in Table V), so every edge is walkable both
/// ways with the direction recorded.
///
/// `repr(u32)` with pinned discriminants: the CFKG1 graph store serializes
/// directions as raw `u32`s and the mmap view casts validated section bytes
/// straight back to [`crate::Edge`] slices (see `crate::store`).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(u32)]
pub enum Dir {
    /// Traverse head → tail.
    Forward,
    /// Traverse tail → head (rendered `_inv`).
    Inverse,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::Forward => Dir::Inverse,
            Dir::Inverse => Dir::Forward,
        }
    }
}

/// A relation type together with a traversal direction — one "step token"
/// of an RA-Chain.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
#[repr(C)]
pub struct DirRel {
    /// The relation type.
    pub rel: RelationId,
    /// The traversal direction.
    pub dir: Dir,
}

impl DirRel {
    /// Forward traversal of `rel`.
    pub fn forward(rel: RelationId) -> Self {
        DirRel {
            rel,
            dir: Dir::Forward,
        }
    }

    /// Inverse traversal of `rel`.
    pub fn inverse(rel: RelationId) -> Self {
        DirRel {
            rel,
            dir: Dir::Inverse,
        }
    }

    /// Dense token index: forward relations occupy even slots, inverses odd.
    pub fn token(&self) -> usize {
        (self.rel.0 as usize) * 2
            + match self.dir {
                Dir::Forward => 0,
                Dir::Inverse => 1,
            }
    }

    /// Inverse of [`Self::token`].
    pub fn from_token(token: usize) -> Self {
        DirRel {
            rel: RelationId((token / 2) as u32),
            dir: if token % 2 == 0 {
                Dir::Forward
            } else {
                Dir::Inverse
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dir_flip_is_involution() {
        assert_eq!(Dir::Forward.flip(), Dir::Inverse);
        assert_eq!(Dir::Forward.flip().flip(), Dir::Forward);
    }

    #[test]
    fn token_round_trip() {
        for rel in 0..5u32 {
            for dir in [Dir::Forward, Dir::Inverse] {
                let dr = DirRel {
                    rel: RelationId(rel),
                    dir,
                };
                assert_eq!(DirRel::from_token(dr.token()), dr);
            }
        }
    }

    #[test]
    fn tokens_are_dense_and_distinct() {
        let toks: Vec<usize> = (0..4u32)
            .flat_map(|r| {
                [
                    DirRel::forward(RelationId(r)).token(),
                    DirRel::inverse(RelationId(r)).token(),
                ]
            })
            .collect();
        let mut sorted = toks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 8);
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }
}
