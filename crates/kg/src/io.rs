//! TSV serialization in the MMKG convention, so real FB15K-237/YAGO15K dumps
//! (when available) drop into the same pipeline the synthetic twins use.
//!
//! Formats:
//! - relational triples: `head<TAB>relation<TAB>tail`
//! - numeric triples: `entity<TAB>attribute<TAB>value`

use crate::graph::KnowledgeGraph;
use std::collections::HashMap;
use std::io::{BufRead, Write};

/// Errors raised while parsing TSV dumps.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// `(line_number, message)`
    Malformed(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Streaming loader that interns entity/relation/attribute names on the fly.
pub struct TsvLoader {
    graph: KnowledgeGraph,
    entities: HashMap<String, crate::ids::EntityId>,
    relations: HashMap<String, crate::ids::RelationId>,
    attributes: HashMap<String, crate::ids::AttributeId>,
}

impl Default for TsvLoader {
    fn default() -> Self {
        Self::new()
    }
}

impl TsvLoader {
    /// A loader with empty vocabularies.
    pub fn new() -> Self {
        TsvLoader {
            graph: KnowledgeGraph::new(),
            entities: HashMap::new(),
            relations: HashMap::new(),
            attributes: HashMap::new(),
        }
    }

    fn entity(&mut self, name: &str) -> crate::ids::EntityId {
        if let Some(&id) = self.entities.get(name) {
            return id;
        }
        let id = self.graph.add_entity(name);
        self.entities.insert(name.to_string(), id);
        id
    }

    /// Reads relational triples from a TSV reader.
    pub fn load_triples(&mut self, reader: impl BufRead) -> Result<usize, LoadError> {
        let mut n = 0;
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (h, r, t) = match (parts.next(), parts.next(), parts.next()) {
                (Some(h), Some(r), Some(t)) => (h, r, t),
                _ => {
                    return Err(LoadError::Malformed(
                        lineno + 1,
                        format!("expected 3 fields, got {line:?}"),
                    ))
                }
            };
            let h = self.entity(h);
            let rel = if let Some(&id) = self.relations.get(r) {
                id
            } else {
                let id = self.graph.add_relation_type(r);
                self.relations.insert(r.to_string(), id);
                id
            };
            let t = self.entity(t);
            self.graph.add_triple(h, rel, t);
            n += 1;
        }
        Ok(n)
    }

    /// Reads numeric triples from a TSV reader.
    pub fn load_numerics(&mut self, reader: impl BufRead) -> Result<usize, LoadError> {
        let mut n = 0;
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (e, a, v) = match (parts.next(), parts.next(), parts.next()) {
                (Some(e), Some(a), Some(v)) => (e, a, v),
                _ => {
                    return Err(LoadError::Malformed(
                        lineno + 1,
                        format!("expected 3 fields, got {line:?}"),
                    ))
                }
            };
            let value: f64 = v
                .parse()
                .map_err(|_| LoadError::Malformed(lineno + 1, format!("bad number {v:?}")))?;
            if !value.is_finite() {
                return Err(LoadError::Malformed(
                    lineno + 1,
                    format!("non-finite number {v:?}"),
                ));
            }
            let e = self.entity(e);
            let attr = if let Some(&id) = self.attributes.get(a) {
                id
            } else {
                let id = self.graph.add_attribute_type(a);
                self.attributes.insert(a.to_string(), id);
                id
            };
            self.graph.add_numeric(e, attr, value);
            n += 1;
        }
        Ok(n)
    }

    /// Finishes loading: builds indexes and returns the graph.
    pub fn finish(mut self) -> KnowledgeGraph {
        self.graph.build_index();
        self.graph
    }
}

/// Writes relational triples as TSV.
pub fn write_triples(g: &KnowledgeGraph, mut w: impl Write) -> std::io::Result<()> {
    for t in g.triples() {
        writeln!(
            w,
            "{}\t{}\t{}",
            g.entity_name(t.head),
            g.relation_name(t.rel),
            g.entity_name(t.tail)
        )?;
    }
    Ok(())
}

/// Writes numeric triples as TSV.
pub fn write_numerics(g: &KnowledgeGraph, mut w: impl Write) -> std::io::Result<()> {
    for t in g.numerics() {
        writeln!(
            w,
            "{}\t{}\t{}",
            g.entity_name(t.entity),
            g.attribute_name(t.attr),
            t.value
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_tsv() {
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("alice");
        let b = g.add_entity("bob");
        let r = g.add_relation_type("knows");
        let at = g.add_attribute_type("age");
        g.add_triple(a, r, b);
        g.add_numeric(a, at, 31.5);
        g.build_index();

        let mut t_buf = Vec::new();
        write_triples(&g, &mut t_buf).unwrap();
        let mut n_buf = Vec::new();
        write_numerics(&g, &mut n_buf).unwrap();

        let mut loader = TsvLoader::new();
        loader.load_triples(&t_buf[..]).unwrap();
        loader.load_numerics(&n_buf[..]).unwrap();
        let g2 = loader.finish();

        assert_eq!(g2.num_entities(), 2);
        assert_eq!(g2.triples().len(), 1);
        let alice = g2.entity_by_name("alice").unwrap();
        let age = g2.attribute_by_name("age").unwrap();
        assert_eq!(g2.value_of(alice, age), Some(31.5));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = b"# comment\n\nalice\tknows\tbob\n";
        let mut loader = TsvLoader::new();
        let n = loader.load_triples(&input[..]).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn reports_malformed_lines_with_numbers() {
        let input = b"alice\tknows\n";
        let mut loader = TsvLoader::new();
        match loader.load_triples(&input[..]) {
            Err(LoadError::Malformed(1, _)) => {}
            other => panic!("expected Malformed(1), got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_numbers() {
        let input = b"alice\tage\tNaN\n";
        let mut loader = TsvLoader::new();
        assert!(loader.load_numerics(&input[..]).is_err());
        let input2 = b"alice\tage\tabc\n";
        let mut loader2 = TsvLoader::new();
        assert!(loader2.load_numerics(&input2[..]).is_err());
    }

    #[test]
    fn interning_reuses_ids() {
        let input = b"a\tr\tb\nb\tr\ta\n";
        let mut loader = TsvLoader::new();
        loader.load_triples(&input[..]).unwrap();
        let g = loader.finish();
        assert_eq!(g.num_entities(), 2);
        assert_eq!(g.num_relations(), 1);
    }
}
