//! TSV serialization in the MMKG convention, so real FB15K-237/YAGO15K dumps
//! (when available) drop into the same pipeline the synthetic twins use.
//!
//! Formats:
//! - relational triples: `head<TAB>relation<TAB>tail`
//! - numeric triples: `entity<TAB>attribute<TAB>value`

use crate::graph::KnowledgeGraph;
use std::collections::HashMap;
use std::io::{BufRead, Read, Write};

/// Cap on a single TSV line, enforced *before* the line is buffered — the
/// same length-cap-before-allocation discipline as the CFT2/CFKG1 binary
/// readers. A malicious or corrupt dump can therefore never balloon memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Cap on a single token (entity/relation/attribute name or number).
pub const MAX_TOKEN_BYTES: usize = 1 << 16;

/// Errors raised while parsing TSV dumps.
#[derive(Debug)]
pub enum LoadError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// `(line_number, message)`
    Malformed(usize, String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Streaming loader that interns entity/relation/attribute names on the fly.
pub struct TsvLoader {
    graph: KnowledgeGraph,
    entities: HashMap<String, crate::ids::EntityId>,
    relations: HashMap<String, crate::ids::RelationId>,
    attributes: HashMap<String, crate::ids::AttributeId>,
}

impl Default for TsvLoader {
    fn default() -> Self {
        Self::new()
    }
}

impl TsvLoader {
    /// A loader with empty vocabularies.
    pub fn new() -> Self {
        TsvLoader {
            graph: KnowledgeGraph::new(),
            entities: HashMap::new(),
            relations: HashMap::new(),
            attributes: HashMap::new(),
        }
    }

    fn entity(&mut self, name: &str) -> crate::ids::EntityId {
        if let Some(&id) = self.entities.get(name) {
            return id;
        }
        let id = self.graph.add_entity(name);
        self.entities.insert(name.to_string(), id);
        id
    }

    /// Reads one line into `buf` with the [`MAX_LINE_BYTES`] cap applied
    /// before buffering. Returns false at EOF.
    fn read_capped_line(
        reader: &mut impl BufRead,
        buf: &mut String,
        lineno: usize,
    ) -> Result<bool, LoadError> {
        buf.clear();
        // Reading through a Take means an overlong line stops growing the
        // buffer at the cap instead of allocating without bound.
        let n = reader
            .by_ref()
            .take(MAX_LINE_BYTES as u64 + 1)
            .read_line(buf)
            .map_err(|e| {
                if e.kind() == std::io::ErrorKind::InvalidData {
                    LoadError::Malformed(lineno, "line is not valid UTF-8".into())
                } else {
                    LoadError::Io(e)
                }
            })?;
        if n > MAX_LINE_BYTES {
            return Err(LoadError::Malformed(
                lineno,
                format!("line exceeds {MAX_LINE_BYTES} bytes"),
            ));
        }
        Ok(n > 0)
    }

    /// Checks a token against [`MAX_TOKEN_BYTES`] before it is interned.
    fn check_token(tok: &str, lineno: usize) -> Result<&str, LoadError> {
        if tok.len() > MAX_TOKEN_BYTES {
            return Err(LoadError::Malformed(
                lineno,
                format!("token exceeds {MAX_TOKEN_BYTES} bytes"),
            ));
        }
        Ok(tok)
    }

    /// Reads relational triples from a TSV reader.
    pub fn load_triples(&mut self, mut reader: impl BufRead) -> Result<usize, LoadError> {
        let mut n = 0;
        let mut buf = String::new();
        let mut lineno = 0usize;
        loop {
            lineno += 1;
            if !Self::read_capped_line(&mut reader, &mut buf, lineno)? {
                break;
            }
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (h, r, t) = match (parts.next(), parts.next(), parts.next()) {
                (Some(h), Some(r), Some(t)) => (h, r, t),
                _ => {
                    return Err(LoadError::Malformed(
                        lineno,
                        format!("expected 3 fields, got {line:?}"),
                    ))
                }
            };
            let h = Self::check_token(h, lineno)?;
            let r = Self::check_token(r, lineno)?;
            let t = Self::check_token(t, lineno)?;
            let h = self.entity(h);
            let rel = if let Some(&id) = self.relations.get(r) {
                id
            } else {
                let id = self.graph.add_relation_type(r);
                self.relations.insert(r.to_string(), id);
                id
            };
            let t = self.entity(t);
            self.graph.add_triple(h, rel, t);
            n += 1;
        }
        Ok(n)
    }

    /// Reads numeric triples from a TSV reader.
    pub fn load_numerics(&mut self, mut reader: impl BufRead) -> Result<usize, LoadError> {
        let mut n = 0;
        let mut buf = String::new();
        let mut lineno = 0usize;
        loop {
            lineno += 1;
            if !Self::read_capped_line(&mut reader, &mut buf, lineno)? {
                break;
            }
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split('\t');
            let (e, a, v) = match (parts.next(), parts.next(), parts.next()) {
                (Some(e), Some(a), Some(v)) => (e, a, v),
                _ => {
                    return Err(LoadError::Malformed(
                        lineno,
                        format!("expected 3 fields, got {line:?}"),
                    ))
                }
            };
            let e = Self::check_token(e, lineno)?;
            let a = Self::check_token(a, lineno)?;
            let v = Self::check_token(v, lineno)?;
            let value: f64 = v
                .parse()
                .map_err(|_| LoadError::Malformed(lineno, format!("bad number {v:?}")))?;
            if !value.is_finite() {
                return Err(LoadError::Malformed(
                    lineno,
                    format!("non-finite number {v:?}"),
                ));
            }
            let e = self.entity(e);
            let attr = if let Some(&id) = self.attributes.get(a) {
                id
            } else {
                let id = self.graph.add_attribute_type(a);
                self.attributes.insert(a.to_string(), id);
                id
            };
            self.graph.add_numeric(e, attr, value);
            n += 1;
        }
        Ok(n)
    }

    /// Finishes loading: builds indexes and returns the graph.
    pub fn finish(mut self) -> KnowledgeGraph {
        self.graph.build_index();
        self.graph
    }
}

/// Writes relational triples as TSV.
pub fn write_triples(g: &KnowledgeGraph, mut w: impl Write) -> std::io::Result<()> {
    for t in g.triples() {
        writeln!(
            w,
            "{}\t{}\t{}",
            g.entity_name(t.head),
            g.relation_name(t.rel),
            g.entity_name(t.tail)
        )?;
    }
    Ok(())
}

/// Writes numeric triples as TSV.
pub fn write_numerics(g: &KnowledgeGraph, mut w: impl Write) -> std::io::Result<()> {
    for t in g.numerics() {
        writeln!(
            w,
            "{}\t{}\t{}",
            g.entity_name(t.entity),
            g.attribute_name(t.attr),
            t.value
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_tsv() {
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("alice");
        let b = g.add_entity("bob");
        let r = g.add_relation_type("knows");
        let at = g.add_attribute_type("age");
        g.add_triple(a, r, b);
        g.add_numeric(a, at, 31.5);
        g.build_index();

        let mut t_buf = Vec::new();
        write_triples(&g, &mut t_buf).unwrap();
        let mut n_buf = Vec::new();
        write_numerics(&g, &mut n_buf).unwrap();

        let mut loader = TsvLoader::new();
        loader.load_triples(&t_buf[..]).unwrap();
        loader.load_numerics(&n_buf[..]).unwrap();
        let g2 = loader.finish();

        assert_eq!(g2.num_entities(), 2);
        assert_eq!(g2.triples().len(), 1);
        let alice = g2.entity_by_name("alice").unwrap();
        let age = g2.attribute_by_name("age").unwrap();
        assert_eq!(g2.value_of(alice, age), Some(31.5));
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let input = b"# comment\n\nalice\tknows\tbob\n";
        let mut loader = TsvLoader::new();
        let n = loader.load_triples(&input[..]).unwrap();
        assert_eq!(n, 1);
    }

    #[test]
    fn reports_malformed_lines_with_numbers() {
        let input = b"alice\tknows\n";
        let mut loader = TsvLoader::new();
        match loader.load_triples(&input[..]) {
            Err(LoadError::Malformed(1, _)) => {}
            other => panic!("expected Malformed(1), got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_numbers() {
        let input = b"alice\tage\tNaN\n";
        let mut loader = TsvLoader::new();
        assert!(loader.load_numerics(&input[..]).is_err());
        let input2 = b"alice\tage\tabc\n";
        let mut loader2 = TsvLoader::new();
        assert!(loader2.load_numerics(&input2[..]).is_err());
    }

    #[test]
    fn reports_line_numbers_after_skipped_lines() {
        // Comments and blanks still advance the reported line number.
        let input = b"# header\n\na\tr\tb\nbroken line\n";
        let mut loader = TsvLoader::new();
        match loader.load_triples(&input[..]) {
            Err(LoadError::Malformed(4, msg)) => assert!(msg.contains("3 fields"), "{msg}"),
            other => panic!("expected Malformed(4), got {other:?}"),
        }
    }

    #[test]
    fn overlong_line_is_rejected_before_buffering() {
        let mut input = Vec::new();
        input.extend_from_slice(b"a\tr\t");
        input.resize(input.len() + MAX_LINE_BYTES + 10, b'x');
        input.push(b'\n');
        let mut loader = TsvLoader::new();
        match loader.load_triples(&input[..]) {
            Err(LoadError::Malformed(1, msg)) => assert!(msg.contains("exceeds"), "{msg}"),
            other => panic!("expected Malformed(1), got {other:?}"),
        }
        // The graph must not have interned anything from the bad line.
        assert_eq!(loader.finish().num_entities(), 0);
    }

    #[test]
    fn overlong_token_is_rejected() {
        let mut input = Vec::new();
        input.extend_from_slice(b"a\t");
        input.resize(input.len() + MAX_TOKEN_BYTES + 1, b'r');
        input.extend_from_slice(b"\tb\n");
        let mut loader = TsvLoader::new();
        match loader.load_triples(&input[..]) {
            Err(LoadError::Malformed(1, msg)) => assert!(msg.contains("token"), "{msg}"),
            other => panic!("expected Malformed(1), got {other:?}"),
        }
    }

    #[test]
    fn invalid_utf8_is_a_parse_error_not_io() {
        let input: &[u8] = b"a\tr\t\xFF\xFE\n";
        let mut loader = TsvLoader::new();
        match loader.load_triples(input) {
            Err(LoadError::Malformed(1, msg)) => assert!(msg.contains("UTF-8"), "{msg}"),
            other => panic!("expected Malformed(1), got {other:?}"),
        }
    }

    #[test]
    fn malformed_numeric_rows_keep_line_numbers() {
        let input = b"e\tage\t1.0\ne\tage\n";
        let mut loader = TsvLoader::new();
        match loader.load_numerics(&input[..]) {
            Err(LoadError::Malformed(2, _)) => {}
            other => panic!("expected Malformed(2), got {other:?}"),
        }
    }

    #[test]
    fn interning_reuses_ids() {
        let input = b"a\tr\tb\nb\tr\ta\n";
        let mut loader = TsvLoader::new();
        loader.load_triples(&input[..]).unwrap();
        let g = loader.finish();
        assert_eq!(g.num_entities(), 2);
        assert_eq!(g.num_relations(), 1);
    }
}
