//! Minimal in-tree read-only memory mapping, `libc`-free.
//!
//! On x86_64 Linux the file is mapped with raw `mmap`/`munmap` syscalls
//! (`std::arch::asm!`); everywhere else [`Mmap::open`] transparently falls
//! back to reading the file into an 8-byte-aligned heap buffer, so callers
//! get the same `&[u8]` API (just without the zero-copy page sharing).
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: the process can never write
//! through it, and writes by other processes to already-CoW'd pages are not
//! observed. The CFKG1 reader validates every section CRC once at open; the
//! documented contract is that the file must not be truncated or rewritten
//! while mapped (standard mmap caveat — see DESIGN.md §13).

use std::fs::File;
use std::io::Read;
use std::path::Path;

/// A read-only byte view of a file, page-mapped where supported.
pub struct Mmap {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

enum Backing {
    /// Kernel mapping; unmapped on drop.
    #[cfg_attr(
        not(all(target_os = "linux", target_arch = "x86_64")),
        allow(dead_code)
    )]
    Mapped,
    /// Heap fallback. `u64` backing guarantees the base pointer is 8-byte
    /// aligned, which the CFKG1 layout relies on for zero-copy casts.
    Heap(#[allow(dead_code)] Vec<u64>),
}

// SAFETY: the view is read-only for its whole lifetime; sharing immutable
// bytes across threads is sound.
unsafe impl Send for Mmap {}
unsafe impl Sync for Mmap {}

impl Mmap {
    /// Maps `path` read-only. Returns the mapping and whether the zero-copy
    /// kernel path was used (false = heap fallback).
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Mmap> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "file too large to map",
            ));
        }
        let len = len as usize;
        if len == 0 {
            return Ok(Mmap {
                ptr: std::ptr::NonNull::<u64>::dangling().as_ptr() as *const u8,
                len: 0,
                backing: Backing::Heap(Vec::new()),
            });
        }
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        {
            match sys::mmap_readonly(&file, len) {
                Ok(ptr) => {
                    return Ok(Mmap {
                        ptr,
                        len,
                        backing: Backing::Mapped,
                    })
                }
                Err(_) => { /* fall through to the heap path */ }
            }
        }
        Self::read_heap(file, len)
    }

    /// Heap fallback: reads the whole file into a `u64`-backed buffer.
    fn read_heap(mut file: File, len: usize) -> std::io::Result<Mmap> {
        let words = len.div_ceil(8);
        let mut buf: Vec<u64> = vec![0u64; words];
        // SAFETY: the Vec owns `words * 8 >= len` initialized bytes; u64 has
        // no invalid bit patterns, so writing file bytes through the u8 view
        // is sound.
        let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
        file.read_exact(bytes)?;
        Ok(Mmap {
            ptr: buf.as_ptr() as *const u8,
            len,
            backing: Backing::Heap(buf),
        })
    }

    /// Whether this view is a kernel mapping (vs the heap fallback).
    pub fn is_kernel_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped)
    }

    /// The mapped bytes. Base pointer is 8-byte aligned (page-aligned for
    /// kernel mappings, `Vec<u64>`-aligned for the fallback).
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe either a live kernel mapping or the heap
        // buffer owned by `self.backing`, both valid for `self`'s lifetime.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl std::ops::Deref for Mmap {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes()
    }
}

impl std::fmt::Debug for Mmap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mmap")
            .field("len", &self.len)
            .field("kernel_mapped", &self.is_kernel_mapped())
            .finish()
    }
}

impl Drop for Mmap {
    fn drop(&mut self) {
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        if matches!(self.backing, Backing::Mapped) {
            // SAFETY: ptr/len came from a successful mmap and are unmapped
            // exactly once.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod sys {
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const SYS_MMAP: usize = 9;
    const SYS_MUNMAP: usize = 11;
    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;
    /// Populate page tables up front: the store reader touches every byte
    /// immediately (per-section CRC), so eager population trades ~70K minor
    /// faults per GB for one readahead pass inside the syscall.
    const MAP_POPULATE: usize = 0x8000;

    /// Raw 6-argument syscall.
    ///
    /// SAFETY: caller must pass a valid syscall number and arguments; the
    /// kernel ABI clobbers rcx/r11 only (declared below).
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    /// Maps `len` bytes of `file` read-only + private. Returns the base
    /// pointer (page-aligned) or the negated errno.
    pub(super) fn mmap_readonly(file: &File, len: usize) -> Result<*const u8, i32> {
        let fd = file.as_raw_fd();
        // SAFETY: addr=0 lets the kernel choose placement; fd is a live
        // file descriptor; PROT_READ|MAP_PRIVATE cannot corrupt memory.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE | MAP_POPULATE,
                fd as usize,
                0,
            )
        };
        // Errors are returned as -errno in [-4095, -1].
        if (-4095..0).contains(&ret) {
            Err(-ret as i32)
        } else {
            Ok(ret as *const u8)
        }
    }

    /// Unmaps a region previously returned by [`mmap_readonly`].
    ///
    /// SAFETY: `ptr`/`len` must describe a live mapping; it must not be used
    /// afterwards.
    pub(super) unsafe fn munmap(ptr: *const u8, len: usize) {
        let _ = syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn tmpfile(name: &str, contents: &[u8]) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cfkg_mmapio_{}_{}", std::process::id(), name));
        let mut f = File::create(&p).unwrap();
        f.write_all(contents).unwrap();
        p
    }

    #[test]
    fn maps_file_contents() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let p = tmpfile("contents", &data);
        let m = Mmap::open(&p).unwrap();
        assert_eq!(&m[..], &data[..]);
        #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
        assert!(m.is_kernel_mapped());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn base_pointer_is_8_aligned() {
        let p = tmpfile("align", &[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let m = Mmap::open(&p).unwrap();
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let p = tmpfile("empty", b"");
        let m = Mmap::open(&p).unwrap();
        assert!(m.bytes().is_empty());
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn heap_fallback_matches() {
        let data = b"heap fallback must see identical bytes".to_vec();
        let p = tmpfile("heap", &data);
        let f = File::open(&p).unwrap();
        let m = Mmap::read_heap(f, data.len()).unwrap();
        assert_eq!(&m[..], &data[..]);
        assert!(!m.is_kernel_mapped());
        assert_eq!(m.bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&p).unwrap();
    }

    #[test]
    fn missing_file_errors() {
        assert!(Mmap::open(Path::new("/nonexistent/cfkg_mmap_test")).is_err());
    }
}
