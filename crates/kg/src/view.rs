//! [`GraphView`]: the read-only graph-access trait shared by the heap-built
//! [`KnowledgeGraph`] and the zero-copy [`crate::store::MappedGraph`].
//!
//! Chain retrieval, enumeration and the model's gather path are generic over
//! this trait so the exact same code (and therefore the exact same RNG
//! consumption) runs against either backend — the bit-equality property
//! "retrieve over heap == retrieve over mmap" is structural, not tested into
//! existence.

use crate::graph::{AttrFact, AttrOwner, Edge, KnowledgeGraph};
use crate::ids::{AttributeId, Dir, DirRel, EntityId, RelationId};

/// Read-only access to an indexed knowledge graph.
///
/// All slice-returning methods must present facts in the same canonical
/// order as [`KnowledgeGraph::build_index`] (triple insertion order within
/// each CSR row); the CFKG1 writer serializes exactly that order, which is
/// what makes retrieval bitwise identical across backends.
pub trait GraphView {
    /// Number of entities.
    fn num_entities(&self) -> usize;
    /// Number of relation types.
    fn num_relations(&self) -> usize;
    /// Number of attribute types.
    fn num_attributes(&self) -> usize;

    /// All traversable edges at `e` (forward and inverse).
    fn neighbors(&self, e: EntityId) -> &[Edge];
    /// Numeric facts attached to `e`.
    fn numerics_of(&self, e: EntityId) -> &[AttrFact];
    /// All `(entity, value)` owners of an attribute.
    fn entities_with_attribute(&self, a: AttributeId) -> &[AttrOwner];

    /// Name of an entity.
    fn entity_name(&self, e: EntityId) -> &str;
    /// Name of a relation type.
    fn relation_name(&self, r: RelationId) -> &str;
    /// Name of an attribute type.
    fn attribute_name(&self, a: AttributeId) -> &str;

    // ---- provided --------------------------------------------------------

    /// Degree of `e` counting both directions.
    fn degree(&self, e: EntityId) -> usize {
        self.neighbors(e).len()
    }

    /// The value of attribute `a` at entity `e`, if present.
    fn value_of(&self, e: EntityId, a: AttributeId) -> Option<f64> {
        self.numerics_of(e)
            .iter()
            .find(|f| f.attr == a)
            .map(|f| f.value)
    }

    /// Human-readable name of a directed relation, `_inv`-suffixed for
    /// inverse traversal (Table V style).
    fn dir_rel_name(&self, dr: DirRel) -> String {
        match dr.dir {
            Dir::Forward => self.relation_name(dr.rel).to_string(),
            Dir::Inverse => format!("{}_inv", self.relation_name(dr.rel)),
        }
    }

    /// Iterates over all entity ids.
    fn entities(&self) -> std::iter::Map<std::ops::Range<u32>, fn(u32) -> EntityId> {
        (0..self.num_entities() as u32).map(EntityId as fn(u32) -> EntityId)
    }

    /// Looks up an entity id by name (linear scan).
    fn entity_by_name(&self, name: &str) -> Option<EntityId> {
        (0..self.num_entities() as u32)
            .map(EntityId)
            .find(|&e| self.entity_name(e) == name)
    }

    /// Looks up a relation id by name (linear scan).
    fn relation_by_name(&self, name: &str) -> Option<RelationId> {
        (0..self.num_relations() as u32)
            .map(RelationId)
            .find(|&r| self.relation_name(r) == name)
    }

    /// Looks up an attribute id by name (linear scan).
    fn attribute_by_name(&self, name: &str) -> Option<AttributeId> {
        (0..self.num_attributes() as u32)
            .map(AttributeId)
            .find(|&a| self.attribute_name(a) == name)
    }
}

impl GraphView for KnowledgeGraph {
    fn num_entities(&self) -> usize {
        KnowledgeGraph::num_entities(self)
    }
    fn num_relations(&self) -> usize {
        KnowledgeGraph::num_relations(self)
    }
    fn num_attributes(&self) -> usize {
        KnowledgeGraph::num_attributes(self)
    }
    fn neighbors(&self, e: EntityId) -> &[Edge] {
        KnowledgeGraph::neighbors(self, e)
    }
    fn numerics_of(&self, e: EntityId) -> &[AttrFact] {
        KnowledgeGraph::numerics_of(self, e)
    }
    fn entities_with_attribute(&self, a: AttributeId) -> &[AttrOwner] {
        KnowledgeGraph::entities_with_attribute(self, a)
    }
    fn entity_name(&self, e: EntityId) -> &str {
        KnowledgeGraph::entity_name(self, e)
    }
    fn relation_name(&self, r: RelationId) -> &str {
        KnowledgeGraph::relation_name(self, r)
    }
    fn attribute_name(&self, a: AttributeId) -> &str {
        KnowledgeGraph::attribute_name(self, a)
    }
}

/// Either graph backend behind one concrete type, for layers (cf-serve, the
/// CLI) that choose the backend at runtime.
#[derive(Debug)]
pub enum GraphStore {
    /// Heap-built [`KnowledgeGraph`].
    Heap(KnowledgeGraph),
    /// Zero-copy mmap view over a CFKG1 file.
    Mapped(crate::store::MappedGraph),
}

impl From<KnowledgeGraph> for GraphStore {
    fn from(g: KnowledgeGraph) -> Self {
        GraphStore::Heap(g)
    }
}

impl From<crate::store::MappedGraph> for GraphStore {
    fn from(g: crate::store::MappedGraph) -> Self {
        GraphStore::Mapped(g)
    }
}

macro_rules! dispatch {
    ($self:ident, $g:ident => $e:expr) => {
        match $self {
            GraphStore::Heap($g) => $e,
            GraphStore::Mapped($g) => $e,
        }
    };
}

impl GraphView for GraphStore {
    fn num_entities(&self) -> usize {
        dispatch!(self, g => g.num_entities())
    }
    fn num_relations(&self) -> usize {
        dispatch!(self, g => g.num_relations())
    }
    fn num_attributes(&self) -> usize {
        dispatch!(self, g => g.num_attributes())
    }
    fn neighbors(&self, e: EntityId) -> &[Edge] {
        dispatch!(self, g => g.neighbors(e))
    }
    fn numerics_of(&self, e: EntityId) -> &[AttrFact] {
        dispatch!(self, g => g.numerics_of(e))
    }
    fn entities_with_attribute(&self, a: AttributeId) -> &[AttrOwner] {
        dispatch!(self, g => g.entities_with_attribute(a))
    }
    fn entity_name(&self, e: EntityId) -> &str {
        dispatch!(self, g => g.entity_name(e))
    }
    fn relation_name(&self, r: RelationId) -> &str {
        dispatch!(self, g => g.relation_name(r))
    }
    fn attribute_name(&self, a: AttributeId) -> &str {
        dispatch!(self, g => g.attribute_name(a))
    }
}
