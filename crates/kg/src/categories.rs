//! Attribute categories (temporal / spatial / quantity), the grouping the
//! paper's RQ1 analysis reasons in ("the improvement in spatial attributes
//! is particularly notable", "for quantity attributes ChainsFormer
//! outperforms…", "for temporal attributes…").

use crate::graph::KnowledgeGraph;
use crate::ids::AttributeId;
use crate::metrics::RegressionReport;
use std::collections::BTreeMap;

/// The paper's three attribute families.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub enum AttributeCategory {
    /// Dates and years: birth, death, created, destroyed, happened,
    /// film_release, org_founded, loc_founded.
    Temporal,
    /// Coordinates: latitude, longitude.
    Spatial,
    /// Physical quantities: area, population, height, weight.
    Quantity,
    /// Anything not recognized by name.
    Other,
}

impl AttributeCategory {
    /// Human-readable category name.
    pub fn label(&self) -> &'static str {
        match self {
            AttributeCategory::Temporal => "temporal",
            AttributeCategory::Spatial => "spatial",
            AttributeCategory::Quantity => "quantity",
            AttributeCategory::Other => "other",
        }
    }
}

/// Classifies an attribute by its (dataset-twin / MMKG) name.
pub fn categorize_name(name: &str) -> AttributeCategory {
    match name {
        "birth" | "death" | "created" | "destroyed" | "happened" | "film_release"
        | "org_founded" | "loc_founded" | "birth_year" | "release_year" => {
            AttributeCategory::Temporal
        }
        "latitude" | "longitude" => AttributeCategory::Spatial,
        "area" | "population" | "height" | "weight" => AttributeCategory::Quantity,
        _ => AttributeCategory::Other,
    }
}

/// Classifies an attribute of a graph.
pub fn categorize(g: &KnowledgeGraph, attr: AttributeId) -> AttributeCategory {
    categorize_name(g.attribute_name(attr))
}

/// Per-category normalized MAE, averaged over the category's attributes —
/// the numbers behind the paper's "spatial/temporal/quantity improvement"
/// statements.
pub fn category_mae(
    g: &KnowledgeGraph,
    report: &RegressionReport,
    norm: &crate::norm::MinMaxNormalizer,
) -> BTreeMap<AttributeCategory, f64> {
    let mut sums: BTreeMap<AttributeCategory, (f64, usize)> = BTreeMap::new();
    for (&attr, errs) in &report.per_attribute {
        let a = AttributeId(attr);
        let cat = categorize(g, a);
        // Normalize the raw MAE by the attribute's training range so
        // categories mixing scales (years vs degrees) average sensibly.
        let scaled = errs.mae / norm.range(a);
        let slot = sums.entry(cat).or_insert((0.0, 0));
        slot.0 += scaled;
        slot.1 += 1;
    }
    sums.into_iter()
        .map(|(c, (s, n))| (c, s / n as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NumTriple;
    use crate::metrics::Prediction;
    use crate::norm::MinMaxNormalizer;

    #[test]
    fn names_map_to_paper_categories() {
        assert_eq!(categorize_name("birth"), AttributeCategory::Temporal);
        assert_eq!(categorize_name("film_release"), AttributeCategory::Temporal);
        assert_eq!(categorize_name("latitude"), AttributeCategory::Spatial);
        assert_eq!(categorize_name("population"), AttributeCategory::Quantity);
        assert_eq!(categorize_name("shoe_size"), AttributeCategory::Other);
    }

    #[test]
    fn category_mae_averages_within_category() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("e");
        let lat = g.add_attribute_type("latitude");
        let lon = g.add_attribute_type("longitude");
        g.build_index();
        let train = vec![
            NumTriple {
                entity: e,
                attr: lat,
                value: 0.0,
            },
            NumTriple {
                entity: e,
                attr: lat,
                value: 10.0,
            },
            NumTriple {
                entity: e,
                attr: lon,
                value: 0.0,
            },
            NumTriple {
                entity: e,
                attr: lon,
                value: 100.0,
            },
        ];
        let norm = MinMaxNormalizer::fit(2, &train);
        let preds = vec![
            Prediction {
                attr: lat,
                truth: 0.0,
                pred: 1.0,
            }, // MAE 1 on range 10 -> 0.1
            Prediction {
                attr: lon,
                truth: 0.0,
                pred: 30.0,
            }, // MAE 30 on range 100 -> 0.3
        ];
        let report = RegressionReport::compute(&preds, &norm);
        let cats = category_mae(&g, &report, &norm);
        let spatial = cats[&AttributeCategory::Spatial];
        assert!((spatial - 0.2).abs() < 1e-9, "got {spatial}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(AttributeCategory::Spatial.label(), "spatial");
        assert_eq!(AttributeCategory::Other.label(), "other");
    }
}
