//! The seeded case loop: generate, execute, shrink, report.

use crate::{CaseError, CaseResult, Config, Strategy};
use cf_rand::rngs::StdRng;
use cf_rand::{RngCore, SeedableRng};

/// FNV-1a over the test name: a stable, platform-independent default seed,
/// so every run of a given property sees the same case stream.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Resolves the stream seed: `CF_CHECK_SEED` env var, then explicit
/// config, then the name hash.
fn resolve_seed(name: &str, cfg: &Config) -> u64 {
    if let Ok(s) = std::env::var("CF_CHECK_SEED") {
        return s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CF_CHECK_SEED={s:?} is not a u64"));
    }
    cfg.seed.unwrap_or_else(|| name_seed(name))
}

/// Resolves the case budget: `CF_CHECK_CASES` env var overrides config.
fn resolve_cases(cfg: &Config) -> u32 {
    match std::env::var("CF_CHECK_CASES") {
        Ok(s) => s
            .trim()
            .parse()
            .unwrap_or_else(|_| panic!("CF_CHECK_CASES={s:?} is not a u32")),
        Err(_) => cfg.cases,
    }
}

/// Runs `property` against `cases` generated inputs, shrinking and
/// panicking with a reproducible report on the first failure.
///
/// This is the engine behind [`property!`](crate::property); call it
/// directly to drive a property from plain code.
pub fn run<S, F>(name: &str, cfg: Config, strategy: S, property: F)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let seed = resolve_seed(name, &cfg);
    let cases = resolve_cases(&cfg);
    let max_rejects = cfg.max_rejects.max(cases.saturating_mul(16));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed: u32 = 0;
    let mut rejected: u32 = 0;
    let mut case_index: u32 = 0;

    while passed < cases {
        case_index += 1;
        let value = strategy.generate(&mut rng);
        match property(value.clone()) {
            Ok(()) => passed += 1,
            Err(CaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property `{name}`: gave up after {rejected} rejected cases \
                     ({passed}/{cases} passed; seed {seed}) — loosen the strategy \
                     or the check_assume! preconditions"
                );
            }
            Err(CaseError::Fail(msg)) => {
                let original = format!("{value:?}");
                let (minimal, minimal_msg, steps) =
                    shrink_failure(&strategy, value, msg, &property, cfg.max_shrink_steps);
                panic!(
                    "property `{name}` failed at case {case_index} \
                     ({passed} passed, {rejected} rejected; seed {seed})\n\
                     original input: {original}\n\
                     shrunk input ({steps} shrink steps): {minimal:?}\n\
                     failure: {minimal_msg}\n\
                     reproduce with: CF_CHECK_SEED={seed} cargo test -- {short}\n",
                    short = name.rsplit("::").next().unwrap_or(name),
                );
            }
        }
    }
    // Consume one word so back-to-back runs in one process cannot alias
    // even if a caller reuses the rng; also keeps `rng` observably used.
    let _ = rng.next_u64();
}

/// Greedy halving descent: repeatedly replace the failing value with its
/// first shrink candidate that still fails, until no candidate fails or
/// the step budget runs out. Returns `(minimal value, its failure message,
/// steps evaluated)`.
fn shrink_failure<S, F>(
    strategy: &S,
    mut value: S::Value,
    mut msg: String,
    property: &F,
    max_steps: u32,
) -> (S::Value, String, u32)
where
    S: Strategy,
    F: Fn(S::Value) -> CaseResult,
{
    let mut steps: u32 = 0;
    'descend: loop {
        let candidates = strategy.shrink(&value);
        for candidate in candidates {
            if steps >= max_steps {
                break 'descend;
            }
            steps += 1;
            // Rejected candidates (assumption violations) do not count as
            // failures: shrinking must stay inside the property's domain.
            if let Err(CaseError::Fail(m)) = property(candidate.clone()) {
                value = candidate;
                msg = m;
                continue 'descend;
            }
        }
        break;
    }
    (value, msg, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::vec;

    #[test]
    fn passing_property_runs_to_completion() {
        run(
            "runner::always_true",
            Config::with_cases(64),
            (0usize..100,),
            |(_n,)| Ok(()),
        );
    }

    #[test]
    fn failing_property_shrinks_to_threshold() {
        // Fails for n >= 10; halving from any failing draw must land on
        // exactly 10 (origin 0 passes, midpoints bisect).
        let hit = std::panic::catch_unwind(|| {
            run(
                "runner::threshold",
                Config::with_cases(64),
                (0usize..1000,),
                |(n,)| {
                    if n >= 10 {
                        Err(CaseError::fail(format!("{n} too big")))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *hit.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("shrunk input"), "no shrink report: {msg}");
        assert!(
            msg.contains("(10,)"),
            "did not shrink to minimal counterexample 10: {msg}"
        );
        assert!(msg.contains("CF_CHECK_SEED="), "no repro line: {msg}");
    }

    #[test]
    fn vector_failures_shrink_structurally() {
        let hit = std::panic::catch_unwind(|| {
            run(
                "runner::vec_len",
                Config::with_cases(64),
                (vec(0i64..100, 0..20),),
                |(xs,)| {
                    if xs.len() >= 3 {
                        Err(CaseError::fail("too long"))
                    } else {
                        Ok(())
                    }
                },
            );
        });
        let msg = *hit.unwrap_err().downcast::<String>().unwrap();
        // Truncation + drop-last descent must land on exactly 3 elements,
        // and element-wise halving then zeroes them all.
        assert!(msg.contains("shrunk input"), "{msg}");
        let shrunk = msg
            .lines()
            .find(|l| l.contains("shrunk input"))
            .unwrap()
            .to_string();
        assert!(
            shrunk.contains("[0, 0, 0]"),
            "expected minimal 3-element zero vector: {shrunk}"
        );
    }

    #[test]
    fn rejection_does_not_consume_case_budget() {
        let counter = std::cell::Cell::new(0u32);
        run(
            "runner::rejects",
            Config::with_cases(32),
            (0usize..100,),
            |(n,)| {
                if n % 2 == 0 {
                    Err(CaseError::reject())
                } else {
                    counter.set(counter.get() + 1);
                    Ok(())
                }
            },
        );
        assert_eq!(counter.get(), 32, "odd-only cases must still reach 32");
    }

    #[test]
    fn same_name_same_cases() {
        let collect = || {
            let mut seen = Vec::new();
            // The property records its inputs; both runs must agree.
            let seen_cell = std::cell::RefCell::new(&mut seen);
            run(
                "runner::determinism_probe",
                Config::with_cases(16),
                (0u64..1_000_000,),
                |(n,)| {
                    seen_cell.borrow_mut().push(n);
                    Ok(())
                },
            );
            seen
        };
        assert_eq!(collect(), collect());
    }

    #[test]
    fn explicit_config_seed_changes_the_stream() {
        let collect = |seed: Option<u64>| {
            let mut seen = Vec::new();
            let cell = std::cell::RefCell::new(&mut seen);
            run(
                "runner::seed_probe",
                Config {
                    seed,
                    ..Config::with_cases(8)
                },
                (0u64..1_000_000,),
                |(n,)| {
                    cell.borrow_mut().push(n);
                    Ok(())
                },
            );
            seen
        };
        assert_ne!(collect(Some(1)), collect(Some(2)));
        assert_eq!(collect(Some(7)), collect(Some(7)));
    }
}
