//! Fault injection for durability testing.
//!
//! Two tools, matching the two places a checkpoint write can die:
//!
//! * [`FaultyWriter`] wraps any `Write` and kills the stream at an exact
//!   byte offset — either loudly ([`FaultMode::Error`], a failed syscall)
//!   or silently ([`FaultMode::Truncate`], bytes accepted but never hitting
//!   the platter, the page-cache lie a power cut exposes). Sweeping the
//!   offset over every byte of a serialized artifact exercises every
//!   partial-write the serializer can produce.
//!
//! * [`crash_states`] enumerates the on-disk states reachable when a crash
//!   interrupts the atomic save protocol (write `*.tmp` → fsync → rename →
//!   fsync dir) at any point. A recovery property then materializes each
//!   state and asserts the reader yields the old artifact or the new one —
//!   never garbage, never a panic.

use std::io::{self, Write};

/// What [`FaultyWriter`] does when the budget runs out.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail the write syscall with an injected `io::Error` (disk full,
    /// EIO, a yanked USB stick).
    Error,
    /// Report success but drop the bytes — the write reached the page
    /// cache, the power failed before writeback.
    Truncate,
}

/// A `Write` adapter that forwards exactly `budget` bytes to the inner
/// writer and then injects the configured fault. Deterministic: the same
/// budget always kills the stream at the same offset.
pub struct FaultyWriter<W> {
    inner: W,
    budget: usize,
    mode: FaultMode,
    written: usize,
    faulted: bool,
}

impl<W: Write> FaultyWriter<W> {
    /// Wraps `inner`, letting `budget` bytes through before injecting
    /// `mode`.
    pub fn new(inner: W, budget: usize, mode: FaultMode) -> Self {
        FaultyWriter {
            inner,
            budget,
            mode,
            written: 0,
            faulted: false,
        }
    }

    /// Bytes actually forwarded to the inner writer (≤ budget).
    pub fn written(&self) -> usize {
        self.written
    }

    /// True once the fault has been injected.
    pub fn faulted(&self) -> bool {
        self.faulted
    }

    /// Consumes the adapter, returning the inner writer (holding only the
    /// bytes that "survived the crash").
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let remaining = self.budget.saturating_sub(self.written);
        let pass = remaining.min(buf.len());
        if pass > 0 {
            self.inner.write_all(&buf[..pass])?;
            self.written += pass;
        }
        if pass < buf.len() {
            self.faulted = true;
            match self.mode {
                FaultMode::Error => {
                    return Err(io::Error::new(
                        io::ErrorKind::Other,
                        format!("injected fault after {} bytes", self.budget),
                    ))
                }
                // Claim full success; the tail silently never lands.
                FaultMode::Truncate => return Ok(buf.len()),
            }
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// One on-disk state a crash can leave behind during an atomic
/// write-tmp-then-rename save.
#[derive(Clone, Debug)]
pub struct CrashState {
    /// Contents of the final path (`None` = file absent).
    pub path_bytes: Option<Vec<u8>>,
    /// Contents of the stale `*.tmp` file, if the crash left one.
    pub tmp_bytes: Option<Vec<u8>>,
    /// Human-readable label for assertion messages.
    pub label: String,
}

/// Enumerates every on-disk state reachable when a crash interrupts the
/// protocol *write `tmp` → fsync → rename(tmp, path)* at an arbitrary
/// byte: the final path still holds `old` (or is absent) while `tmp`
/// carries any prefix of `new`, or the rename completed and the path holds
/// `new` exactly. POSIX rename is atomic, so no state interleaves the two.
pub fn crash_states(old: Option<&[u8]>, new: &[u8]) -> Vec<CrashState> {
    let mut states = Vec::with_capacity(new.len() + 2);
    for cut in 0..=new.len() {
        states.push(CrashState {
            path_bytes: old.map(<[u8]>::to_vec),
            tmp_bytes: Some(new[..cut].to_vec()),
            label: format!("crash with {cut}/{} bytes in tmp", new.len()),
        });
    }
    states.push(CrashState {
        path_bytes: Some(new.to_vec()),
        tmp_bytes: None,
        label: "crash after rename".into(),
    });
    states
}

/// Enumerates every on-disk state reachable when a crash interrupts an
/// *append* to an existing file (a journal commit): the stable prefix
/// `base` always survives — appends never rewrite it — while any prefix of
/// the `appended` bytes may have landed, including none and all of them.
/// Unlike [`crash_states`] there is no rename step: append-mode recovery
/// must handle a torn tail *in place* (scan, validate, truncate).
pub fn append_crash_states(base: &[u8], appended: &[u8]) -> Vec<CrashState> {
    let mut states = Vec::with_capacity(appended.len() + 1);
    for cut in 0..=appended.len() {
        let mut bytes = base.to_vec();
        bytes.extend_from_slice(&appended[..cut]);
        states.push(CrashState {
            path_bytes: Some(bytes),
            tmp_bytes: None,
            label: format!("crash with {cut}/{} appended bytes", appended.len()),
        });
    }
    states
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_mode_stops_at_exact_offset() {
        for budget in 0..20 {
            let mut w = FaultyWriter::new(Vec::new(), budget, FaultMode::Error);
            let payload = [7u8; 20];
            // Write in awkward chunk sizes to cross the budget mid-chunk.
            let mut err = None;
            for chunk in payload.chunks(3) {
                if let Err(e) = w.write_all(chunk) {
                    err = Some(e);
                    break;
                }
            }
            assert!(err.is_some(), "budget {budget}: fault never fired");
            assert!(w.faulted());
            assert_eq!(w.written(), budget);
            assert_eq!(w.into_inner().len(), budget);
        }
    }

    #[test]
    fn truncate_mode_lies_about_success() {
        let mut w = FaultyWriter::new(Vec::new(), 5, FaultMode::Truncate);
        w.write_all(&[1u8; 12])
            .expect("truncate mode reports success");
        w.write_all(&[2u8; 4]).expect("still lying");
        assert!(w.faulted());
        let survived = w.into_inner();
        assert_eq!(survived, vec![1u8; 5], "only the budget hit the disk");
    }

    #[test]
    fn crash_states_cover_old_every_prefix_and_new() {
        let states = crash_states(Some(b"OLD"), b"NEWDATA");
        assert_eq!(states.len(), b"NEWDATA".len() + 2);
        assert!(states
            .iter()
            .take(b"NEWDATA".len() + 1)
            .all(|s| s.path_bytes.as_deref() == Some(b"OLD".as_slice())));
        let last = states.last().unwrap();
        assert_eq!(last.path_bytes.as_deref(), Some(b"NEWDATA".as_slice()));
        assert_eq!(last.tmp_bytes, None);
        // First-save case: no old file yet.
        let fresh = crash_states(None, b"X");
        assert!(fresh[0].path_bytes.is_none());
    }

    #[test]
    fn append_crash_states_keep_the_base_and_sweep_the_tail() {
        let states = append_crash_states(b"BASE", b"TAIL");
        assert_eq!(states.len(), b"TAIL".len() + 1);
        for (cut, s) in states.iter().enumerate() {
            let bytes = s.path_bytes.as_deref().expect("append never unlinks");
            assert!(bytes.starts_with(b"BASE"), "{}: base damaged", s.label);
            assert_eq!(&bytes[4..], &b"TAIL"[..cut], "{}", s.label);
            assert!(s.tmp_bytes.is_none(), "appends have no tmp file");
        }
    }
}
