//! Input strategies: how cases are generated and shrunk.

use cf_rand::rngs::StdRng;
use cf_rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of test inputs with an attached shrinker.
///
/// `generate` draws one value from the seeded stream; `shrink` proposes
/// strictly "smaller" variants of a failing value, best candidates first.
/// The runner greedily walks shrink candidates while they keep failing, so
/// proposals must make progress (halving, truncating) rather than
/// enumerating neighbours.
pub trait Strategy {
    /// The produced input type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Candidate simplifications of `value`, most aggressive first. An
    /// empty vector means the value is minimal.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Shrink candidates for a numeric value toward `origin` (the in-range
/// point closest to zero): jump to the origin, halve the distance, and —
/// for integers, where greedy halving alone can stall one short of the
/// true boundary — step a single unit closer.
macro_rules! shrink_candidates {
    ($t:ty, $value:expr, $origin:expr, step) => {{
        let value = $value;
        let origin = $origin;
        let mut out: Vec<$t> = Vec::new();
        if value != origin {
            out.push(origin);
            let half = origin + (value - origin) / 2;
            if half != value && half != origin {
                out.push(half);
            }
            let step = if value > origin { value - 1 } else { value + 1 };
            if step != origin && step != half {
                out.push(step);
            }
        }
        out
    }};
    ($t:ty, $value:expr, $origin:expr, nostep) => {{
        let value = $value;
        let origin = $origin;
        let mut out: Vec<$t> = Vec::new();
        if value != origin {
            out.push(origin);
            let half = origin + (value - origin) / 2.0;
            if half != value && half != origin {
                out.push(half);
            }
        }
        out
    }};
}

macro_rules! numeric_range_strategy {
    ($($t:ty => $mode:tt),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let zero: $t = Default::default();
                let origin = if self.start <= zero && zero < self.end {
                    zero
                } else {
                    self.start
                };
                shrink_candidates!($t, *value, origin, $mode)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let zero: $t = Default::default();
                let origin = if *self.start() <= zero && zero <= *self.end() {
                    zero
                } else {
                    *self.start()
                };
                shrink_candidates!($t, *value, origin, $mode)
            }
        }
    )*};
}
numeric_range_strategy!(
    f32 => nostep, f64 => nostep,
    u8 => step, u16 => step, u32 => step, u64 => step, usize => step,
    i8 => step, i16 => step, i32 => step, i64 => step, isize => step
);

/// Length specification for [`vec`]: a fixed `usize`, a half-open
/// `Range<usize>`, or an inclusive `RangeInclusive<usize>`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound; always `> min`.
    max_excl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_excl: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range {r:?}");
        SizeRange {
            min: r.start,
            max_excl: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec length range {r:?}");
        SizeRange {
            min: *r.start(),
            max_excl: *r.end() + 1,
        }
    }
}

/// Strategy over `Vec<T>`: independent element draws with a length drawn
/// from `size`. Built by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Lifts an element strategy to vectors: `vec(-1f64..1.0, 8)` (fixed
/// length) or `vec(0usize..10, 1..30)` (length drawn per case).
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = if self.size.min + 1 == self.size.max_excl {
            self.size.min
        } else {
            rng.gen_range(self.size.min..self.size.max_excl)
        };
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        let len = value.len();
        // Structural shrinks first: halve, then drop one.
        let half = len / 2;
        if half >= self.size.min && half < len {
            out.push(value[..half].to_vec());
        }
        if len > self.size.min && len >= 1 && len - 1 != half {
            out.push(value[..len - 1].to_vec());
        }
        // Then element-wise: each element's best candidate, in place.
        for (i, v) in value.iter().enumerate() {
            if let Some(simpler) = self.elem.shrink(v).into_iter().next() {
                let mut next = value.clone();
                next[i] = simpler;
                out.push(next);
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident / $v:ident / $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($( self.$idx.generate(rng), )+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut next = value.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}
tuple_strategy!(
    (S0 / v0 / 0);
    (S0 / v0 / 0, S1 / v1 / 1);
    (S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2);
    (S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2, S3 / v3 / 3);
    (S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2, S3 / v3 / 3, S4 / v4 / 4);
    (S0 / v0 / 0, S1 / v1 / 1, S2 / v2 / 2, S3 / v3 / 3, S4 / v4 / 4, S5 / v5 / 5);
);

#[cfg(test)]
mod tests {
    use super::*;
    use cf_rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn ranges_generate_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-2f32..2.0).generate(&mut r);
            assert!((-2.0..2.0).contains(&v));
            let n = (1usize..20).generate(&mut r);
            assert!((1..20).contains(&n));
        }
    }

    #[test]
    fn numeric_shrink_halves_toward_zero() {
        let s = -100f64..100.0;
        let shrunk = s.shrink(&80.0);
        assert_eq!(shrunk[0], 0.0);
        assert_eq!(shrunk[1], 40.0);
        // Zero is minimal.
        assert!(s.shrink(&0.0).is_empty());
        // Positive-only ranges shrink toward their low end instead, with a
        // unit step so greedy descent can land exactly on a boundary.
        let p = 10usize..20;
        assert_eq!(p.shrink(&16), [10, 13, 15]);
    }

    #[test]
    fn vec_generates_lengths_in_range_and_shrinks_structurally() {
        let s = vec(0usize..5, 2..6);
        let mut r = rng();
        for _ in 0..200 {
            let v = s.generate(&mut r);
            assert!((2..6).contains(&v.len()));
        }
        let shrunk = s.shrink(&std::vec![4, 3, 2, 1, 0]);
        // Halving would go below min=2? 5/2 = 2, allowed.
        assert_eq!(shrunk[0], std::vec![4, 3]);
        assert_eq!(shrunk[1], std::vec![4, 3, 2, 1]);
        // Element shrinks preserve length.
        assert!(shrunk[2..].iter().all(|v| v.len() == 5));
    }

    #[test]
    fn fixed_len_vec_never_changes_length() {
        let s = vec(-1f64..1.0, 4);
        let mut r = rng();
        let v = s.generate(&mut r);
        assert_eq!(v.len(), 4);
        for candidate in s.shrink(&v) {
            assert_eq!(candidate.len(), 4, "fixed-length vec shrank structurally");
        }
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0usize..10, -4i64..4);
        let shrunk = s.shrink(&(6, -3));
        assert!(shrunk.contains(&(0, -3)));
        assert!(shrunk.contains(&(6, 0)));
        assert!(!shrunk.contains(&(0, 0)), "two components moved at once");
    }

    #[test]
    fn nested_vec_of_tuples_composes() {
        let s = vec((0usize..8, 0usize..8), 0..16);
        let mut r = rng();
        for _ in 0..50 {
            let v = s.generate(&mut r);
            assert!(v.len() < 16);
            assert!(v.iter().all(|&(a, b)| a < 8 && b < 8));
        }
    }
}
