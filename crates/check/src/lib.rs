//! Minimal property-based testing for the ChainsFormer workspace.
//!
//! A drop-in, offline replacement for the slice of `proptest` this
//! repository used: seeded case generation, composable strategies and
//! counterexample shrinking, in a few hundred auditable lines with no
//! dependencies beyond [`cf_rand`].
//!
//! # Writing a property
//!
//! ```
//! use cf_check::prelude::*;
//!
//! property! {
//!     #![config(cases = 64)]
//!
//!     /// Reversing twice is the identity.
//!     #[test]
//!     fn double_reverse_is_identity(xs in vec(-100i64..100, 0..20)) {
//!         let mut ys = xs.clone();
//!         ys.reverse();
//!         ys.reverse();
//!         check_assert_eq!(xs, ys);
//!     }
//! }
//! # fn main() {}
//! ```
//!
//! Strategies compose: ranges (`-2f32..2.0`, `0usize..10`) are strategies,
//! tuples of strategies are strategies, and [`vec`](strategy::vec) lifts a
//! strategy over elements to one over vectors (fixed or ranged length).
//! Inside the body, [`check_assert!`] / [`check_assert_eq!`] fail the case
//! and [`check_assume!`] rejects it without counting against the budget.
//!
//! # Determinism and reproduction
//!
//! Every run is deterministic: the case stream is seeded from a stable
//! hash of the fully qualified test name (or `CF_CHECK_SEED` when set), so
//! CI and laptops see identical cases with no persistence files. A failure
//! report prints the seed, the case index, the original and shrunk inputs,
//! and a ready-to-paste `CF_CHECK_SEED=… cargo test …` line; replaying
//! with that seed regenerates the identical failing case. `CF_CHECK_CASES`
//! scales every suite's case count up (soak) or down (smoke) without code
//! changes.
//!
//! Shrinking halves its way toward a minimal counterexample: vectors
//! shrink by truncation then element-wise, numbers halve toward zero (or
//! the in-range point closest to it), tuples shrink one component at a
//! time. The loop is bounded by [`Config::max_shrink_steps`].

pub mod fault;
pub mod runner;
pub mod strategy;

pub use strategy::{vec, Strategy};

/// Per-property configuration, normally set through
/// `#![config(cases = N)]` in [`property!`].
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of passing cases required (default 32).
    pub cases: u32,
    /// Upper bound on shrink candidates evaluated after a failure.
    pub max_shrink_steps: u32,
    /// Upper bound on rejected ([`check_assume!`]) cases before giving up.
    pub max_rejects: u32,
    /// Explicit stream seed; `None` derives one from the test name.
    pub seed: Option<u64>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 32,
            max_shrink_steps: 2048,
            max_rejects: 32 * 64,
            seed: None,
        }
    }
}

impl Config {
    /// A default configuration requiring `cases` passing cases.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            max_rejects: cases.saturating_mul(64),
            ..Config::default()
        }
    }
}

/// Why a single case did not pass.
#[derive(Clone, Debug)]
pub enum CaseError {
    /// The case violated a precondition ([`check_assume!`]); generate a
    /// replacement without counting it.
    Reject,
    /// The property is false for this input.
    Fail(String),
}

impl CaseError {
    /// A failed assertion with its message.
    pub fn fail(msg: impl Into<String>) -> Self {
        CaseError::Fail(msg.into())
    }

    /// A rejected (assumption-violating) case.
    pub fn reject() -> Self {
        CaseError::Reject
    }
}

/// Outcome of one property invocation on one input.
pub type CaseResult = Result<(), CaseError>;

/// Everything a property module needs: the [`property!`] macro family, the
/// [`Strategy`] trait and the [`vec`](strategy::vec) combinator.
pub mod prelude {
    pub use crate::strategy::vec;
    pub use crate::{
        check_assert, check_assert_eq, check_assume, property, CaseError, CaseResult, Config,
        Strategy,
    };
}

/// Declares property tests.
///
/// Grammar (deliberately close to `proptest!` so suites port mechanically):
/// an optional `#![config(cases = N)]` header, then `fn` items whose
/// arguments are `name in strategy` bindings. Each becomes a plain
/// `#[test]` (the attribute is written at the call site and passed
/// through) that runs the seeded case loop.
#[macro_export]
macro_rules! property {
    (@fns ($cfg:expr) ) => {};
    (@fns ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategy = ( $( $strat, )+ );
            $crate::runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                $cfg,
                __strategy,
                |__case| {
                    let ( $( $arg, )+ ) = __case;
                    $body
                    $crate::CaseResult::Ok(())
                },
            );
        }
        $crate::property! { @fns ($cfg) $($rest)* }
    };
    (
        #![config(cases = $cases:expr)]
        $($rest:tt)*
    ) => {
        $crate::property! { @fns ($crate::Config::with_cases($cases)) $($rest)* }
    };
    (
        $($rest:tt)*
    ) => {
        $crate::property! { @fns ($crate::Config::default()) $($rest)* }
    };
}

/// Asserts a condition inside a [`property!`] body; on failure the case is
/// reported (and shrunk) with the formatted message.
#[macro_export]
macro_rules! check_assert {
    ($cond:expr $(,)?) => {
        $crate::check_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return $crate::CaseResult::Err($crate::CaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`property!`] body, reporting both sides.
#[macro_export]
macro_rules! check_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return $crate::CaseResult::Err($crate::CaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Rejects the current case when its precondition does not hold; rejected
/// cases are regenerated and do not count toward the case budget.
#[macro_export]
macro_rules! check_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return $crate::CaseResult::Err($crate::CaseError::reject());
        }
    };
}
