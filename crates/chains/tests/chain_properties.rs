//! Property-based invariants of the chain machinery.

use cf_chains::{exact_chain_count, retrieve, ChainVocab, Query, RetrievalConfig};
use cf_check::prelude::*;
use cf_kg::{AttributeId, DirRel, EntityId, KnowledgeGraph, RelationId};
use cf_rand::SeedableRng;

fn build(n: usize, edges: &[(usize, usize)], facts: &[usize]) -> KnowledgeGraph {
    let mut g = KnowledgeGraph::new();
    for i in 0..n {
        g.add_entity(format!("e{i}"));
    }
    let r = g.add_relation_type("r");
    let a = g.add_attribute_type("a");
    for &(h, t) in edges {
        let (h, t) = (h % n, t % n);
        if h != t {
            g.add_triple(EntityId(h as u32), r, EntityId(t as u32));
        }
    }
    for &e in facts {
        g.add_numeric(EntityId((e % n) as u32), a, (e % n) as f64);
    }
    g.build_index();
    g
}

property! {
    #![config(cases = 48)]

    /// Chain counting is monotone in the hop budget.
    #[test]
    fn chain_count_monotone_in_hops(
        edges in vec((0usize..10, 0usize..10), 1..30),
        facts in vec(0usize..10, 1..10),
    ) {
        let g = build(10, &edges, &facts);
        let mut last = 0;
        for h in 1..=4 {
            let c = exact_chain_count(&g, EntityId(0), h, 1_000_000);
            check_assert!(c >= last, "count dropped from {last} to {c} at {h} hops");
            last = c;
        }
    }

    /// Retrieval returns a subset of what exact counting says exists:
    /// if the exact count is zero, retrieval must be empty too (modulo
    /// 0-hop chains, disabled here).
    #[test]
    fn retrieval_agrees_with_counting(
        edges in vec((0usize..8, 0usize..8), 0..20),
        facts in vec(0usize..8, 1..8),
        seed in 0u64..100,
    ) {
        let g = build(8, &edges, &facts);
        let exact = exact_chain_count(&g, EntityId(0), 3, 1_000_000);
        let mut rng = cf_rand::rngs::StdRng::seed_from_u64(seed);
        let cfg = RetrievalConfig { num_walks: 64, max_hops: 3, allow_zero_hop: false, ..Default::default() };
        let toc = retrieve(&g, Query { entity: EntityId(0), attr: AttributeId(0) }, &cfg, &mut rng);
        if exact == 0 {
            // Only the query's own other-attribute facts could exist, and
            // zero-hop is off — with a single attribute there are none.
            check_assert!(toc.is_empty(), "retrieved {} chains where none exist", toc.len());
        }
        check_assert!((toc.len() as u64) <= exact.max(64), "retrieved more than exists");
    }

    /// Vocabulary tokens are dense and reversible for any (R, A) size.
    #[test]
    fn vocab_tokens_dense(rels in 1usize..20, attrs in 1usize..20) {
        let v = ChainVocab::new(rels, attrs);
        let mut seen = std::collections::HashSet::new();
        for r in 0..rels as u32 {
            seen.insert(v.rel_token(DirRel::forward(RelationId(r))));
            seen.insert(v.rel_token(DirRel::inverse(RelationId(r))));
        }
        for a in 0..attrs as u32 {
            seen.insert(v.attr_token(AttributeId(a)));
        }
        seen.insert(v.end_token());
        seen.insert(v.pad_token());
        check_assert_eq!(seen.len(), v.size());
        check_assert_eq!(seen.iter().max().copied().unwrap(), v.size() - 1);
    }

    /// Tokens of a chain always frame with [attr, …, attr, end] and every
    /// interior token is a relation token.
    #[test]
    fn chain_token_framing(hops in 0usize..5, rels in 1usize..4, attrs in 1usize..4) {
        let v = ChainVocab::new(rels, attrs);
        let chain = cf_chains::RaChain {
            known_attr: AttributeId(0),
            rels: (0..hops).map(|i| DirRel::forward(RelationId((i % rels) as u32))).collect(),
            query_attr: AttributeId((attrs - 1) as u32),
        };
        let toks = chain.tokens(&v);
        check_assert_eq!(toks.len(), hops + 3);
        check_assert!(toks[0] >= 2 * rels && toks[0] < 2 * rels + attrs, "first token not an attr");
        check_assert_eq!(toks[toks.len() - 1], v.end_token());
        for &t in &toks[1..toks.len() - 2] {
            check_assert!(t < 2 * rels, "interior token {t} not a relation");
        }
    }
}
