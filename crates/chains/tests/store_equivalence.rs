//! Retrieval must not care where the graph bytes live: the heap-loaded and
//! mmapped views of one CFKG1 store, and the heap-built and mmapped views
//! of one CFCI1 index, must produce bitwise-identical Trees of Chains for
//! the same per-query RNG seed. These tests pin the ISSUE-7 equivalence
//! contract end to end through `cf_chains::retrieve` / `retrieve_indexed`.

use cf_chains::{
    enumerate_chains, retrieve, retrieve_indexed, Query, RetrievalConfig, TreeOfChains,
};
use cf_kg::synth::{yago15k_sim, SynthScale};
use cf_kg::{
    build_chain_index, read_store, write_index, write_store, ChainIndexView, IndexParams,
    KnowledgeGraph, MappedChainIndex, MappedGraph,
};
use cf_rand::rngs::StdRng;
use cf_rand::SeedableRng;

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cf_chains_eq_{}_{}", std::process::id(), name));
    p
}

fn sample_graph() -> KnowledgeGraph {
    let mut rng = StdRng::seed_from_u64(7);
    yago15k_sim(SynthScale::small(), &mut rng)
}

/// Some queries with evidence: entities that carry a fact and have edges.
fn sample_queries(g: &KnowledgeGraph, n: usize) -> Vec<Query> {
    g.numerics()
        .iter()
        .filter(|t| g.degree(t.entity) > 0)
        .step_by(97)
        .take(n)
        .map(|t| Query {
            entity: t.entity,
            attr: t.attr,
        })
        .collect()
}

/// Bitwise comparison of two trees: same chains, same sources, same value
/// *bits* — `assert_eq!` on f64 would accept -0.0 == 0.0.
fn assert_trees_identical(a: &TreeOfChains, b: &TreeOfChains, what: &str) {
    assert_eq!(a.query, b.query, "{what}: query differs");
    assert_eq!(a.len(), b.len(), "{what}: chain count differs");
    for (ca, cb) in a.chains.iter().zip(&b.chains) {
        assert_eq!(ca.chain, cb.chain, "{what}: chain pattern differs");
        assert_eq!(ca.source, cb.source, "{what}: source differs");
        assert_eq!(
            ca.value.to_bits(),
            cb.value.to_bits(),
            "{what}: value bits differ"
        );
    }
}

#[test]
fn retrieve_is_bitwise_identical_over_heap_and_mmap() {
    let g = sample_graph();
    let path = tmp("heap_vs_mmap.cfkg");
    write_store(&g, &path).unwrap();
    let heap = read_store(&path).unwrap();
    let mapped = MappedGraph::open(&path).unwrap();
    let cfg = RetrievalConfig::default();
    for (i, q) in sample_queries(&g, 12).into_iter().enumerate() {
        // One fixed seed per query, consumed identically by both arms —
        // the serve engine's query_rng_seed discipline.
        let seed = 0x5EED_0000 + i as u64;
        let toc_heap = retrieve(&heap, q, &cfg, &mut StdRng::seed_from_u64(seed));
        let toc_mapped = retrieve(&mapped, q, &cfg, &mut StdRng::seed_from_u64(seed));
        assert!(!toc_heap.is_empty(), "query {i} retrieved nothing");
        assert_trees_identical(&toc_heap, &toc_mapped, "heap vs mmap");
        // The original in-memory graph is a third equivalent view.
        let toc_orig = retrieve(&g, q, &cfg, &mut StdRng::seed_from_u64(seed));
        assert_trees_identical(&toc_orig, &toc_heap, "original vs reloaded");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn retrieve_indexed_is_bitwise_identical_over_built_and_mmapped_index() {
    let g = sample_graph();
    let ix = build_chain_index(&g, IndexParams::default());
    let path = tmp("index_eq.cfci");
    write_index(&ix, &path).unwrap();
    let mapped = MappedChainIndex::open(&path).unwrap();
    mapped.check_matches(&g).unwrap();
    let cfg = RetrievalConfig::default();
    for (i, q) in sample_queries(&g, 12).into_iter().enumerate() {
        let seed = 0xA11CE + i as u64;
        let t_built = retrieve_indexed(&ix, q, &cfg, &mut StdRng::seed_from_u64(seed));
        let t_mapped = retrieve_indexed(&mapped, q, &cfg, &mut StdRng::seed_from_u64(seed));
        assert_trees_identical(&t_built, &t_mapped, "built vs mmapped index");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn indexed_retrieval_is_a_subset_of_enumeration() {
    let g = sample_graph();
    let ix = build_chain_index(&g, IndexParams::default());
    let cfg = RetrievalConfig {
        num_walks: 64,
        ..Default::default()
    };
    let mut checked = 0usize;
    for (i, q) in sample_queries(&g, 6).into_iter().enumerate() {
        let toc = retrieve_indexed(&ix, q, &cfg, &mut StdRng::seed_from_u64(i as u64));
        let all = enumerate_chains(&g, q, 3, true, usize::MAX);
        let keys: std::collections::HashSet<String> = all
            .iter()
            .map(|c| format!("{:?}|{:?}", c.chain, c.source))
            .collect();
        for c in &toc.chains {
            let key = format!("{:?}|{:?}", c.chain, c.source);
            assert!(
                keys.contains(&key),
                "indexed chain not in exhaustive set: {key}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no indexed chains were produced at all");
}

#[test]
fn indexed_retrieval_respects_budget_and_hop_limit() {
    let g = sample_graph();
    let ix = build_chain_index(&g, IndexParams::default());
    let cfg = RetrievalConfig {
        num_walks: 16,
        max_hops: 2,
        ..Default::default()
    };
    for (i, q) in sample_queries(&g, 6).into_iter().enumerate() {
        let toc = retrieve_indexed(&ix, q, &cfg, &mut StdRng::seed_from_u64(i as u64));
        assert!(toc.len() <= 16, "budget exceeded: {}", toc.len());
        for c in &toc.chains {
            assert!(c.chain.hops() <= 2, "hop limit exceeded");
            assert!(
                !(c.source == q.entity && c.chain.known_attr == q.attr),
                "query answer leaked into its own evidence"
            );
        }
    }
}
