//! Chain counting for Figure 2: the number of logic chains connected to a
//! query explodes with reasoning depth.

use cf_kg::{EntityId, GraphView, KnowledgeGraph};
use cf_rand::Rng;

/// Exact number of logic chains of exactly `hops` relation steps rooted at
/// `entity`: simple paths (no node revisits) whose endpoint carries at least
/// one numeric fact, counted once per (path, fact) pair — the same
/// definition the retrieval samples from.
///
/// DFS cost grows exponentially; `cap` bounds the count (returns
/// `min(count, cap)`), letting callers fall back to sampling estimates.
pub fn exact_chain_count(g: &impl GraphView, entity: EntityId, hops: usize, cap: u64) -> u64 {
    let mut visited = vec![false; g.num_entities()];
    visited[entity.0 as usize] = true;
    let mut count = 0u64;
    dfs(g, entity, hops, &mut visited, &mut count, cap);
    count
}

fn dfs(
    g: &impl GraphView,
    at: EntityId,
    remaining: usize,
    visited: &mut [bool],
    count: &mut u64,
    cap: u64,
) {
    if *count >= cap {
        return;
    }
    if remaining == 0 {
        return;
    }
    for edge in g.neighbors(at) {
        let next = edge.to;
        if visited[next.0 as usize] {
            continue;
        }
        *count = (*count + g.numerics_of(next).len() as u64).min(cap);
        if *count >= cap {
            return;
        }
        visited[next.0 as usize] = true;
        dfs(g, next, remaining - 1, visited, count, cap);
        visited[next.0 as usize] = false;
    }
}

/// Chains of *up to* `hops` steps (what Figure 2 plots per hop count).
pub fn chain_count_by_hops(
    g: &impl GraphView,
    entity: EntityId,
    max_hops: usize,
    cap: u64,
) -> Vec<u64> {
    (1..=max_hops)
        .map(|h| exact_chain_count(g, entity, h, cap))
        .collect()
}

/// Mean chain count over a sample of query entities (Figure 2 reports the
/// average per query).
pub fn mean_chain_count(
    g: &KnowledgeGraph,
    max_hops: usize,
    sample: usize,
    cap: u64,
    rng: &mut impl Rng,
) -> Vec<f64> {
    let numerics = g.numerics();
    assert!(!numerics.is_empty(), "graph has no numeric facts to query");
    let mut sums = vec![0.0f64; max_hops];
    let n = sample.min(numerics.len());
    for _ in 0..n {
        let q = numerics[rng.gen_range(0..numerics.len())].entity;
        for (h, c) in chain_count_by_hops(g, q, max_hops, cap)
            .into_iter()
            .enumerate()
        {
            sums[h] += c as f64;
        }
    }
    sums.iter().map(|s| s / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    /// Path graph a-b-c with facts everywhere: from a, 1 hop reaches b
    /// (1 fact), 2 hops adds c (1 fact).
    #[test]
    fn exact_count_on_path_graph() {
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        let c = g.add_entity("c");
        let r = g.add_relation_type("r");
        let attr = g.add_attribute_type("v");
        g.add_triple(a, r, b);
        g.add_triple(b, r, c);
        for (e, v) in [(a, 1.0), (b, 2.0), (c, 3.0)] {
            g.add_numeric(e, attr, v);
        }
        g.build_index();
        assert_eq!(exact_chain_count(&g, a, 1, u64::MAX), 1);
        assert_eq!(exact_chain_count(&g, a, 2, u64::MAX), 2);
        // No simple path of length 3 exists.
        assert_eq!(exact_chain_count(&g, a, 3, u64::MAX), 2);
    }

    #[test]
    fn count_respects_cap() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let e = g.numerics()[0].entity;
        let capped = exact_chain_count(&g, e, 3, 10);
        assert!(capped <= 10);
    }

    #[test]
    fn counts_grow_with_hops() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::default_scale(), &mut rng);
        let means = mean_chain_count(&g, 3, 20, 1_000_000, &mut rng);
        assert!(means[0] < means[1], "{means:?}");
        assert!(means[1] < means[2], "{means:?}");
        // The Figure-2 point: 3-hop chains are orders of magnitude more
        // numerous than 1-hop ones.
        assert!(means[2] > 10.0 * means[0], "no chain explosion: {means:?}");
    }

    #[test]
    fn multiple_facts_per_endpoint_count_separately() {
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        let r = g.add_relation_type("r");
        let x = g.add_attribute_type("x");
        let y = g.add_attribute_type("y");
        g.add_triple(a, r, b);
        g.add_numeric(b, x, 1.0);
        g.add_numeric(b, y, 2.0);
        g.build_index();
        assert_eq!(exact_chain_count(&g, a, 1, u64::MAX), 2);
    }
}
