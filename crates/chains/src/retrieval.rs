//! Query-guided retrieval: random walks building the Tree of Chains
//! (§IV-B, Eq. 6).

use crate::chain::{ChainInstance, ChainVocab, Query, RaChain};
use cf_kg::{ChainIndexView, DirRel, EntityId, GraphView};
use cf_rand::seq::SliceRandom;
use cf_rand::Rng;

/// Retrieval hyperparameters.
#[derive(Copy, Clone, Debug)]
pub struct RetrievalConfig {
    /// Number of random walks `N_s` (the paper uses 2048).
    pub num_walks: usize,
    /// Maximum walk length `l` (the paper uses 3).
    pub max_hops: usize,
    /// Whether 0-hop chains (other attributes of the query entity itself)
    /// may be emitted.
    pub allow_zero_hop: bool,
    /// Hard cap on retrieval attempts per query, to bound work on
    /// disconnected entities.
    pub max_attempts_factor: usize,
}

impl Default for RetrievalConfig {
    fn default() -> Self {
        RetrievalConfig {
            num_walks: 256,
            max_hops: 3,
            allow_zero_hop: true,
            max_attempts_factor: 4,
        }
    }
}

impl RetrievalConfig {
    /// The paper's full-scale setting (substitution S5 scales this down by
    /// default).
    pub fn paper() -> Self {
        RetrievalConfig {
            num_walks: 2048,
            max_hops: 3,
            allow_zero_hop: true,
            max_attempts_factor: 4,
        }
    }
}

/// The Tree of Chains for one query: retrieved chain instances plus the
/// query itself (Eq. 6).
#[derive(Clone, Debug)]
pub struct TreeOfChains {
    /// The query this tree was retrieved for.
    pub query: Query,
    /// Retrieved chain instances (Eq. 6's union).
    pub chains: Vec<ChainInstance>,
}

impl TreeOfChains {
    /// Number of retrieved chains.
    pub fn len(&self) -> usize {
        self.chains.len()
    }

    /// True when no chains were retrievable.
    pub fn is_empty(&self) -> bool {
        self.chains.is_empty()
    }

    /// Longest chain (in tokens per Eq. 11) — used to size padded batches.
    pub fn max_token_len(&self, vocab: &ChainVocab) -> usize {
        self.chains
            .iter()
            .map(|c| c.chain.tokens(vocab).len())
            .max()
            .unwrap_or(0)
    }
}

/// Performs query-guided retrieval: `cfg.num_walks` random walks from the
/// query entity over the *visible* graph, emitting one chain per visited
/// node that carries numeric facts. Walks never revisit a node (cycle
/// removal) and the query's own `(entity, attr)` fact is never used as
/// evidence.
pub fn retrieve(
    graph: &impl GraphView,
    query: Query,
    cfg: &RetrievalConfig,
    rng: &mut impl Rng,
) -> TreeOfChains {
    let mut chains = Vec::with_capacity(cfg.num_walks);
    let mut seen = std::collections::HashSet::new();
    let max_attempts = cfg.num_walks * cfg.max_attempts_factor;
    let mut attempts = 0;

    // 0-hop chains: the query entity's other attributes.
    if cfg.allow_zero_hop {
        for f in graph.numerics_of(query.entity) {
            if f.attr == query.attr {
                continue;
            }
            let chain = RaChain {
                known_attr: f.attr,
                rels: Vec::new(),
                query_attr: query.attr,
            };
            if seen.insert((chain.clone(), query.entity)) {
                chains.push(ChainInstance {
                    chain,
                    source: query.entity,
                    value: f.value,
                });
            }
        }
    }

    let mut path: Vec<EntityId> = Vec::with_capacity(cfg.max_hops + 1);
    while chains.len() < cfg.num_walks && attempts < max_attempts {
        attempts += 1;
        path.clear();
        path.push(query.entity);
        let mut rels = Vec::with_capacity(cfg.max_hops);
        let mut current = query.entity;
        let target_hops = rng.gen_range(1..=cfg.max_hops);
        for _ in 0..target_hops {
            let edges = graph.neighbors(current);
            if edges.is_empty() {
                break;
            }
            // Choose an edge that does not close a cycle; give up after a
            // few tries (dense cycles are rare at these path lengths).
            let mut next = None;
            for _ in 0..4 {
                let e = edges.choose(rng).expect("non-empty");
                if !path.contains(&e.to) {
                    next = Some(*e);
                    break;
                }
            }
            let Some(edge) = next else { break };
            rels.push(edge.dr);
            current = edge.to;
            path.push(current);

            // Emit a chain from the current node if it has usable facts.
            let facts = graph.numerics_of(current);
            if facts.is_empty() {
                continue;
            }
            let f = *facts.choose(rng).expect("non-empty");
            if current == query.entity && f.attr == query.attr {
                continue;
            }
            let chain = RaChain {
                known_attr: f.attr,
                rels: rels.clone(),
                query_attr: query.attr,
            };
            if seen.insert((chain.clone(), current)) {
                chains.push(ChainInstance {
                    chain,
                    source: current,
                    value: f.value,
                });
                if chains.len() >= cfg.num_walks {
                    break;
                }
            }
        }
    }
    TreeOfChains { query, chains }
}

/// Index-backed retrieval: builds the Tree of Chains from the precomputed
/// per-entity chain index (`cf_kg::index`) instead of walking the graph.
///
/// Every index entry is a (pattern, source, value) triple the random walks
/// of [`retrieve`] could have sampled, already deduplicated and in canonical
/// order, so this reduces to filtering plus weighted sampling:
///
/// - entries beyond `cfg.max_hops` are skipped (the index may have been
///   built deeper than the query wants);
/// - 0-hop entries are all emitted first when `cfg.allow_zero_hop` is set,
///   mirroring [`retrieve`]'s zero-hop pass;
/// - if more deep candidates remain than the `cfg.num_walks` budget, a
///   weighted sample without replacement keeps each with weight
///   `2^-(hops-1)` — the same geometric bias toward short chains the
///   uniform-hop-count random walks exhibit — otherwise all are kept.
///
/// The result is a deterministic function of the index bytes and the RNG
/// stream, so heap-built and mmapped indexes yield bitwise-identical trees
/// for the same seed.
pub fn retrieve_indexed(
    index: &impl ChainIndexView,
    query: Query,
    cfg: &RetrievalConfig,
    rng: &mut impl Rng,
) -> TreeOfChains {
    let mut chains = Vec::new();
    let entries = index.entries_of(query.entity);

    // Zero-hop pass: identical candidate set to `retrieve`'s first loop.
    if cfg.allow_zero_hop {
        for e in entries.iter().filter(|e| e.hops == 0) {
            if e.attr == query.attr {
                continue;
            }
            chains.push(instance_of(e, query));
            if chains.len() >= cfg.num_walks {
                return TreeOfChains { query, chains };
            }
        }
    }

    let budget = cfg.num_walks - chains.len();
    let deep: Vec<&cf_kg::ChainEntry> = entries
        .iter()
        .filter(|e| e.hops >= 1 && e.hops as usize <= cfg.max_hops)
        .filter(|e| !(e.source == query.entity && e.attr == query.attr))
        .collect();

    if deep.len() <= budget {
        chains.extend(deep.into_iter().map(|e| instance_of(e, query)));
        return TreeOfChains { query, chains };
    }

    // Weighted sampling without replacement via exponential keys: candidate
    // i survives with probability proportional to w_i = 2^-(hops-1). Keys
    // are `Exp(w)` draws; the `budget` smallest win. Ties (never expected
    // from a real RNG, but possible with a constant one) break by position
    // so the outcome stays deterministic.
    let mut keyed: Vec<(f64, usize)> = deep
        .iter()
        .enumerate()
        .map(|(i, e)| {
            let w = 1.0f64 / (1u64 << (e.hops - 1)) as f64;
            let u: f64 = rng.gen();
            (-(1.0 - u).ln() / w, i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut picked: Vec<usize> = keyed[..budget].iter().map(|&(_, i)| i).collect();
    // Emit in canonical index order, not selection order, so the tree is
    // independent of the sort's internals.
    picked.sort_unstable();
    chains.extend(picked.into_iter().map(|i| instance_of(deep[i], query)));
    TreeOfChains { query, chains }
}

fn instance_of(e: &cf_kg::ChainEntry, query: Query) -> ChainInstance {
    ChainInstance {
        chain: RaChain {
            known_attr: e.attr,
            rels: e.rels().collect::<Vec<DirRel>>(),
            query_attr: query.attr,
        },
        source: e.source,
        value: e.value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::KnowledgeGraph;
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn sample_query(g: &KnowledgeGraph, rng: &mut impl Rng) -> Query {
        // Pick an entity with a numeric fact and decent connectivity.
        let triples = g.numerics();
        loop {
            let t = triples[rng.gen_range(0..triples.len())];
            if g.degree(t.entity) > 0 {
                return Query {
                    entity: t.entity,
                    attr: t.attr,
                };
            }
        }
    }

    #[test]
    fn retrieval_respects_hop_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let q = sample_query(&g, &mut rng);
        let cfg = RetrievalConfig {
            num_walks: 64,
            max_hops: 2,
            ..Default::default()
        };
        let toc = retrieve(&g, q, &cfg, &mut rng);
        assert!(!toc.is_empty());
        for c in &toc.chains {
            assert!(
                c.chain.hops() <= 2,
                "chain exceeded hop budget: {:?}",
                c.chain
            );
            assert_eq!(c.chain.query_attr, q.attr);
        }
    }

    #[test]
    fn never_uses_query_fact_as_evidence() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        for _ in 0..10 {
            let q = sample_query(&g, &mut rng);
            let toc = retrieve(&g, q, &RetrievalConfig::default(), &mut rng);
            for c in &toc.chains {
                assert!(
                    !(c.source == q.entity && c.chain.known_attr == q.attr),
                    "query answer leaked into its own evidence"
                );
            }
        }
    }

    #[test]
    fn chains_are_deduplicated() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let q = sample_query(&g, &mut rng);
        let cfg = RetrievalConfig {
            num_walks: 128,
            ..Default::default()
        };
        let toc = retrieve(&g, q, &cfg, &mut rng);
        let mut keys: Vec<_> = toc
            .chains
            .iter()
            .map(|c| (c.chain.clone(), c.source))
            .collect();
        let before = keys.len();
        keys.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate (chain, source) emitted");
    }

    #[test]
    fn zero_hop_can_be_disabled() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let q = sample_query(&g, &mut rng);
        let cfg = RetrievalConfig {
            allow_zero_hop: false,
            ..Default::default()
        };
        let toc = retrieve(&g, q, &cfg, &mut rng);
        assert!(toc.chains.iter().all(|c| c.chain.hops() >= 1));
    }

    #[test]
    fn disconnected_entity_terminates() {
        let mut g = KnowledgeGraph::new();
        let e = g.add_entity("lonely");
        let a = g.add_attribute_type("x");
        g.add_numeric(e, a, 1.0);
        g.build_index();
        let mut rng = StdRng::seed_from_u64(4);
        let toc = retrieve(
            &g,
            Query { entity: e, attr: a },
            &RetrievalConfig::default(),
            &mut rng,
        );
        assert!(
            toc.is_empty(),
            "no evidence should exist for an isolated entity"
        );
    }

    #[test]
    fn walks_do_not_revisit_nodes() {
        // On a triangle graph every 3-hop simple path is impossible; chains
        // of length 3 would require a revisit, so max observed hops is 2.
        let mut g = KnowledgeGraph::new();
        let a = g.add_entity("a");
        let b = g.add_entity("b");
        let c = g.add_entity("c");
        let r = g.add_relation_type("r");
        let attr = g.add_attribute_type("v");
        g.add_triple(a, r, b);
        g.add_triple(b, r, c);
        g.add_triple(c, r, a);
        for (e, v) in [(a, 1.0), (b, 2.0), (c, 3.0)] {
            g.add_numeric(e, attr, v);
        }
        g.build_index();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = RetrievalConfig {
            num_walks: 200,
            max_hops: 3,
            ..Default::default()
        };
        let toc = retrieve(&g, Query { entity: a, attr }, &cfg, &mut rng);
        assert!(
            toc.chains.iter().all(|ci| ci.chain.hops() <= 2),
            "cycle was not removed"
        );
    }

    #[test]
    fn max_token_len_accounts_for_framing() {
        let mut rng = StdRng::seed_from_u64(6);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let vocab = ChainVocab::for_graph(&g);
        let q = sample_query(&g, &mut rng);
        let toc = retrieve(&g, q, &RetrievalConfig::default(), &mut rng);
        let max_hops = toc.chains.iter().map(|c| c.chain.hops()).max().unwrap();
        assert_eq!(toc.max_token_len(&vocab), max_hops + 3);
    }
}
