//! Relation-Attribute Chains (§IV-A, Eq. 5).

use cf_kg::{AttributeId, DirRel, EntityId, GraphView};

/// A numerical-reasoning query `(v_q, a_q, ?)`.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Query {
    /// The entity being queried (`v_q`).
    pub entity: EntityId,
    /// The attribute whose value is missing (`a_q`).
    pub attr: AttributeId,
}

/// An RA-Chain `c = (a_p, r_1, …, r_l, a_q)`: the tokenized reasoning
/// pattern of one logic chain, with entities abstracted away (Eq. 5).
///
/// `rels` is stored in *walk order from the query entity*: `rels[0]` is the
/// first step taken from `v_q`, so it corresponds to the paper's `r_l` and
/// the last element to `r_1`. This matches the Transformer input order of
/// Eq. 11 (`a_p ‖ r_l ‖ … ‖ r_1 ‖ a_q ‖ end`) when the sequence is read as
/// `[known_attr, rels reversed, query_attr, end]`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct RaChain {
    /// The known attribute `a_p` at the far end of the chain.
    pub known_attr: AttributeId,
    /// Directed relation steps from the query entity to the known entity.
    pub rels: Vec<DirRel>,
    /// The queried attribute `a_q`.
    pub query_attr: AttributeId,
}

impl RaChain {
    /// Number of relation hops `l` (0 = the known attribute sits on the
    /// query entity itself).
    pub fn hops(&self) -> usize {
        self.rels.len()
    }

    /// Token sequence per Eq. 11: `[a_p, r_l, …, r_1, a_q, end]`, where
    /// `r_l` is the step adjacent to the query entity. Padding is appended
    /// by the encoder, not here.
    pub fn tokens(&self, vocab: &ChainVocab) -> Vec<usize> {
        let mut toks = Vec::with_capacity(self.token_len());
        self.tokens_into(vocab, &mut toks);
        toks
    }

    /// Number of tokens [`Self::tokens`] produces: `hops + 3` framing.
    pub fn token_len(&self) -> usize {
        self.rels.len() + 3
    }

    /// Appends the token sequence to `out` without allocating — the
    /// steady-state encoder path writes straight into a pooled flat buffer.
    pub fn tokens_into(&self, vocab: &ChainVocab, out: &mut Vec<usize>) {
        out.push(vocab.attr_token(self.known_attr));
        for dr in &self.rels {
            out.push(vocab.rel_token(*dr));
        }
        out.push(vocab.attr_token(self.query_attr));
        out.push(vocab.end_token());
    }

    /// Writes the token sequence into `out`, which must be exactly
    /// [`Self::token_len`] long. Unlike [`Self::tokens_into`] this never
    /// grows the destination, so the encoder can hand each chain its own
    /// pre-padded row of a shared flat buffer and tokenize chains in
    /// parallel.
    pub fn tokens_into_slice(&self, vocab: &ChainVocab, out: &mut [usize]) {
        assert_eq!(out.len(), self.token_len(), "tokens_into_slice length");
        out[0] = vocab.attr_token(self.known_attr);
        for (slot, dr) in out[1..=self.rels.len()].iter_mut().zip(&self.rels) {
            *slot = vocab.rel_token(*dr);
        }
        out[self.rels.len() + 1] = vocab.attr_token(self.query_attr);
        out[self.rels.len() + 2] = vocab.end_token();
    }

    /// Human-readable rendering in the paper's Table-V style, e.g.
    /// `(sibling, birth)` or `(team, team_inv, weight)`.
    pub fn render(&self, g: &impl GraphView) -> String {
        let mut parts: Vec<String> = self.rels.iter().map(|&dr| g.dir_rel_name(dr)).collect();
        parts.push(g.attribute_name(self.known_attr).to_string());
        format!("({})", parts.join(", "))
    }
}

/// One retrieved chain instance: the abstract RA-Chain plus the concrete
/// source fact that grounds it.
#[derive(Clone, PartialEq, Debug)]
pub struct ChainInstance {
    /// The abstract reasoning pattern.
    pub chain: RaChain,
    /// Entity carrying the known attribute (`v_p`), kept for explainability.
    pub source: EntityId,
    /// The known value `n_p`.
    pub value: f64,
}

/// Token vocabulary shared by every RA-Chain of a graph:
/// `2·|R|` directed-relation tokens, `|A|` attribute tokens, END and PAD.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ChainVocab {
    num_relations: usize,
    num_attributes: usize,
}

impl ChainVocab {
    /// Vocabulary sized for a graph's relation/attribute inventories.
    pub fn for_graph(g: &impl GraphView) -> Self {
        ChainVocab {
            num_relations: g.num_relations(),
            num_attributes: g.num_attributes(),
        }
    }

    /// Vocabulary for explicit inventory sizes.
    pub fn new(num_relations: usize, num_attributes: usize) -> Self {
        ChainVocab {
            num_relations,
            num_attributes,
        }
    }

    /// Total vocabulary size (including END and PAD).
    pub fn size(&self) -> usize {
        2 * self.num_relations + self.num_attributes + 2
    }

    /// Token of a directed relation.
    pub fn rel_token(&self, dr: DirRel) -> usize {
        let t = dr.token();
        assert!(t < 2 * self.num_relations, "relation out of vocabulary");
        t
    }

    /// Token of an attribute.
    pub fn attr_token(&self, a: AttributeId) -> usize {
        let i = a.0 as usize;
        assert!(i < self.num_attributes, "attribute out of vocabulary");
        2 * self.num_relations + i
    }

    /// The shared end-of-chain token (`e_end` of Eq. 11).
    pub fn end_token(&self) -> usize {
        2 * self.num_relations + self.num_attributes
    }

    /// The padding token used when batching chains of unequal length.
    pub fn pad_token(&self) -> usize {
        2 * self.num_relations + self.num_attributes + 1
    }

    /// Number of directed-relation tokens (the hyperbolic table covers
    /// these plus attributes).
    pub fn num_rel_tokens(&self) -> usize {
        2 * self.num_relations
    }

    /// Number of attribute types in the vocabulary.
    pub fn num_attributes(&self) -> usize {
        self.num_attributes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cf_kg::KnowledgeGraph;
    use cf_kg::{Dir, RelationId};

    fn vocab() -> ChainVocab {
        ChainVocab::new(3, 2)
    }

    fn chain(hops: usize) -> RaChain {
        RaChain {
            known_attr: AttributeId(0),
            rels: (0..hops)
                .map(|i| DirRel {
                    rel: RelationId(i as u32 % 3),
                    dir: Dir::Forward,
                })
                .collect(),
            query_attr: AttributeId(1),
        }
    }

    #[test]
    fn token_layout_is_disjoint() {
        let v = vocab();
        let mut seen = std::collections::HashSet::new();
        for r in 0..3u32 {
            for dir in [Dir::Forward, Dir::Inverse] {
                assert!(seen.insert(v.rel_token(DirRel {
                    rel: RelationId(r),
                    dir
                })));
            }
        }
        for a in 0..2u32 {
            assert!(seen.insert(v.attr_token(AttributeId(a))));
        }
        assert!(seen.insert(v.end_token()));
        assert!(seen.insert(v.pad_token()));
        assert_eq!(seen.len(), v.size());
        assert_eq!(
            *seen.iter().max().unwrap(),
            v.size() - 1,
            "tokens not dense"
        );
    }

    #[test]
    fn tokens_follow_eq11_order() {
        let v = vocab();
        let c = chain(2);
        let toks = c.tokens(&v);
        assert_eq!(toks.len(), 5);
        assert_eq!(toks[0], v.attr_token(AttributeId(0)));
        assert_eq!(toks[3], v.attr_token(AttributeId(1)));
        assert_eq!(toks[4], v.end_token());
    }

    #[test]
    fn zero_hop_chain_has_three_tokens() {
        let v = vocab();
        let c = chain(0);
        assert_eq!(c.hops(), 0);
        assert_eq!(c.tokens(&v).len(), 3);
    }

    #[test]
    fn render_matches_table5_style() {
        let mut g = KnowledgeGraph::new();
        let _r0 = g.add_relation_type("sibling");
        let _a0 = g.add_attribute_type("birth");
        let a1 = g.add_attribute_type("death");
        let c = RaChain {
            known_attr: AttributeId(0),
            rels: vec![DirRel {
                rel: RelationId(0),
                dir: Dir::Inverse,
            }],
            query_attr: a1,
        };
        assert_eq!(c.render(&g), "(sibling_inv, birth)");
    }
}
