#![warn(missing_docs)]

//! # cf-chains
//!
//! The chain machinery of ChainsFormer's §IV-A/§IV-B: Relation-Attribute
//! Chains (RA-Chains), query-guided random-walk retrieval building a Tree of
//! Chains (ToC), the chain token vocabulary, and the chain-count
//! measurements behind Figure 2.
//!
//! ```
//! use cf_chains::{retrieve, Query, RetrievalConfig};
//! use cf_kg::synth::{yago15k_sim, SynthScale};
//! use cf_rand::SeedableRng;
//!
//! let mut rng = cf_rand::rngs::StdRng::seed_from_u64(0);
//! let g = yago15k_sim(SynthScale::small(), &mut rng);
//! let fact = g.numerics()[0];
//! let toc = retrieve(
//!     &g,
//!     Query { entity: fact.entity, attr: fact.attr },
//!     &RetrievalConfig::default(),
//!     &mut rng,
//! );
//! for ci in &toc.chains {
//!     assert!(ci.chain.hops() <= 3);
//! }
//! ```

pub mod chain;
pub mod count;
pub mod enumerate;
pub mod retrieval;

pub use chain::{ChainInstance, ChainVocab, Query, RaChain};
pub use count::{chain_count_by_hops, exact_chain_count, mean_chain_count};
pub use enumerate::enumerate_chains;
pub use retrieval::{retrieve, retrieve_indexed, RetrievalConfig, TreeOfChains};
