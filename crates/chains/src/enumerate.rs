//! Exhaustive chain enumeration: every logic chain the retrieval *could*
//! sample, for exact analyses on small graphs and as ground truth in tests
//! (`retrieve ⊆ enumerate`).

use crate::chain::{ChainInstance, Query, RaChain};
use cf_kg::{EntityId, GraphView};

/// Enumerates every chain instance of at most `max_hops` relation steps for
/// a query: all simple paths from the query entity crossed with every
/// numeric fact at each path's endpoint (plus 0-hop chains over the query
/// entity's own other attributes when `zero_hop` is set). The query's own
/// fact is excluded, mirroring retrieval.
///
/// Instances are deduplicated on `(pattern, source)` exactly like
/// retrieval: two distinct paths that abstract to the same RA-Chain and end
/// at the same fact are one instance. The raw path×fact count of
/// [`crate::count::exact_chain_count`] is therefore an upper bound on the
/// result size (equal on graphs without parallel path patterns); `cap`
/// bounds memory on dense graphs.
pub fn enumerate_chains(
    graph: &impl GraphView,
    query: Query,
    max_hops: usize,
    zero_hop: bool,
    cap: usize,
) -> Vec<ChainInstance> {
    let mut out = Vec::new();
    if zero_hop {
        for f in graph.numerics_of(query.entity) {
            if f.attr != query.attr {
                out.push(ChainInstance {
                    chain: RaChain {
                        known_attr: f.attr,
                        rels: Vec::new(),
                        query_attr: query.attr,
                    },
                    source: query.entity,
                    value: f.value,
                });
            }
        }
    }
    let mut visited = vec![false; graph.num_entities()];
    visited[query.entity.0 as usize] = true;
    let mut rels = Vec::with_capacity(max_hops);
    let mut seen: std::collections::HashSet<(RaChain, EntityId)> = std::collections::HashSet::new();
    walk(
        graph,
        query,
        query.entity,
        max_hops,
        &mut visited,
        &mut rels,
        &mut out,
        &mut seen,
        cap,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn walk(
    graph: &impl GraphView,
    query: Query,
    at: EntityId,
    remaining: usize,
    visited: &mut [bool],
    rels: &mut Vec<cf_kg::DirRel>,
    out: &mut Vec<ChainInstance>,
    seen: &mut std::collections::HashSet<(RaChain, EntityId)>,
    cap: usize,
) {
    if remaining == 0 || out.len() >= cap {
        return;
    }
    for edge in graph.neighbors(at) {
        if out.len() >= cap {
            return;
        }
        let next = edge.to;
        if visited[next.0 as usize] {
            continue;
        }
        rels.push(edge.dr);
        for f in graph.numerics_of(next) {
            if next == query.entity && f.attr == query.attr {
                continue;
            }
            if out.len() >= cap {
                break;
            }
            let chain = RaChain {
                known_attr: f.attr,
                rels: rels.clone(),
                query_attr: query.attr,
            };
            if seen.insert((chain.clone(), next)) {
                out.push(ChainInstance {
                    chain,
                    source: next,
                    value: f.value,
                });
            }
        }
        visited[next.0 as usize] = true;
        walk(
            graph,
            query,
            next,
            remaining - 1,
            visited,
            rels,
            out,
            seen,
            cap,
        );
        visited[next.0 as usize] = false;
        rels.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::count::exact_chain_count;
    use crate::retrieval::{retrieve, RetrievalConfig};
    use cf_kg::synth::{yago15k_sim, SynthScale};
    use cf_kg::{AttributeId, KnowledgeGraph};
    use cf_rand::rngs::StdRng;
    use cf_rand::SeedableRng;

    fn path_graph() -> (KnowledgeGraph, Vec<EntityId>, AttributeId) {
        let mut g = KnowledgeGraph::new();
        let es: Vec<_> = (0..4).map(|i| g.add_entity(format!("e{i}"))).collect();
        let r = g.add_relation_type("r");
        let a = g.add_attribute_type("a");
        for w in es.windows(2) {
            g.add_triple(w[0], r, w[1]);
        }
        for (i, &e) in es.iter().enumerate() {
            g.add_numeric(e, a, i as f64);
        }
        g.build_index();
        (g, es, a)
    }

    #[test]
    fn enumeration_matches_exact_count() {
        let (g, es, a) = path_graph();
        let q = Query {
            entity: es[0],
            attr: a,
        };
        for hops in 1..=3 {
            let chains = enumerate_chains(&g, q, hops, false, usize::MAX);
            let count = exact_chain_count(&g, es[0], hops, u64::MAX);
            // On a simple path graph every path pattern is unique, so the
            // deduplicated enumeration equals the raw path×fact count.
            assert_eq!(chains.len() as u64, count, "mismatch at {hops} hops");
        }
    }

    #[test]
    fn enumeration_is_duplicate_free() {
        let mut rng = StdRng::seed_from_u64(0);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let fact = g
            .numerics()
            .iter()
            .find(|t| g.degree(t.entity) > 1)
            .unwrap();
        let q = Query {
            entity: fact.entity,
            attr: fact.attr,
        };
        let chains = enumerate_chains(&g, q, 2, true, 100_000);
        let mut keys: Vec<String> = chains
            .iter()
            .map(|c| format!("{:?}|{:?}", c.chain, c.source))
            .collect();
        let n = keys.len();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), n, "duplicate chains enumerated");
    }

    #[test]
    fn retrieval_is_a_subset_of_enumeration() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = yago15k_sim(SynthScale::small(), &mut rng);
        let fact = g
            .numerics()
            .iter()
            .find(|t| g.degree(t.entity) > 1)
            .unwrap();
        let q = Query {
            entity: fact.entity,
            attr: fact.attr,
        };
        let all = enumerate_chains(&g, q, 3, true, usize::MAX);
        let keys: std::collections::HashSet<String> = all
            .iter()
            .map(|c| format!("{:?}|{:?}", c.chain, c.source))
            .collect();
        let toc = retrieve(
            &g,
            q,
            &RetrievalConfig {
                num_walks: 64,
                ..Default::default()
            },
            &mut rng,
        );
        for c in &toc.chains {
            let key = format!("{:?}|{:?}", c.chain, c.source);
            assert!(
                keys.contains(&key),
                "retrieved chain not in exhaustive set: {key}"
            );
        }
    }

    #[test]
    fn cap_bounds_output() {
        let (g, es, a) = path_graph();
        let q = Query {
            entity: es[0],
            attr: a,
        };
        assert_eq!(enumerate_chains(&g, q, 3, false, 2).len(), 2);
    }

    #[test]
    fn excludes_query_fact() {
        let (g, es, a) = path_graph();
        let q = Query {
            entity: es[0],
            attr: a,
        };
        for c in enumerate_chains(&g, q, 3, true, usize::MAX) {
            assert!(!(c.source == q.entity && c.chain.known_attr == q.attr));
        }
    }
}
