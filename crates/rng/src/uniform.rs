//! Uniform sampling over ranges and "standard" draws.
//!
//! Integers use Lemire's widening-multiply method with rejection, so draws
//! are exactly uniform (no modulo bias). Floats scale a 53-bit (f64) or
//! 24-bit (f32) mantissa, so `lo..hi` can never return `hi` and `lo..=hi`
//! covers both endpoints.

use crate::RngCore;
use std::ops::{Range, RangeInclusive};

/// Types drawable by [`Rng::gen`](crate::Rng::gen) without a range.
pub trait StandardSample {
    /// One standard draw from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform in `[0, 1)` from the top 53 bits of one word.
#[inline]
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform in `[0, 1)` from the top 24 bits of one word.
#[inline]
pub(crate) fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Uniform in `[lo, hi)`; the rounding guard keeps `hi` unreachable even
/// when `lo + u·(hi−lo)` rounds up.
pub(crate) fn f64_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo < hi, "gen_range called with empty range {lo}..{hi}");
    let v = lo + unit_f64(rng) * (hi - lo);
    if v < hi {
        v
    } else {
        lo
    }
}

/// See [`f64_half_open`].
pub(crate) fn f32_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32) -> f32 {
    assert!(lo < hi, "gen_range called with empty range {lo}..{hi}");
    let v = lo + unit_f32(rng) * (hi - lo);
    if v < hi {
        v
    } else {
        lo
    }
}

/// Unbiased uniform draw below `width` (Lemire's method). `width` must be
/// nonzero.
fn below<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    debug_assert!(width > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (width as u128);
        let low = m as u64;
        if low < width {
            // Threshold = 2^64 mod width; rejecting below it removes bias.
            let threshold = width.wrapping_neg() % width;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Types with uniform range sampling; the object of
/// [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform in `[lo, hi]`. Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "gen_range called with empty range {lo}..{hi}");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(below(rng, width) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo <= hi, "gen_range called with empty range {lo}..={hi}");
                let width = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if width == u64::MAX {
                    // Full-width range: every word is a valid draw.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(below(rng, width + 1) as $t)
            }
        }
    )*};
}
uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f64_half_open(rng, lo, hi)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range called with empty range {lo}..={hi}");
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64; // [0, 1]
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        f32_half_open(rng, lo, hi)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo <= hi, "gen_range called with empty range {lo}..={hi}");
        let u = (rng.next_u64() >> 40) as f32 / ((1u32 << 24) - 1) as f32; // [0, 1]
        (lo + u * (hi - lo)).clamp(lo, hi)
    }
}

/// Range arguments accepted by [`Rng::gen_range`](crate::Rng::gen_range).
pub trait SampleRange<T> {
    /// Draws one uniform sample from this range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

#[cfg(test)]
mod tests {
    use crate::rngs::StdRng;
    use crate::{Rng, SeedableRng};

    #[test]
    fn lemire_is_unbiased_enough_to_cover_uneven_widths() {
        // Width 3 does not divide 2^64; every bucket must still appear at
        // roughly 1/3 frequency.
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            let rate = c as f64 / 30_000.0;
            assert!((rate - 1.0 / 3.0).abs() < 0.02, "bucket rate {rate}");
        }
    }

    #[test]
    fn inclusive_reaches_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match rng.gen_range(0u32..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn negative_float_ranges() {
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5_000 {
            let v: f64 = rng.gen_range(-1e6..-1e3);
            assert!((-1e6..-1e3).contains(&v));
        }
    }
}
