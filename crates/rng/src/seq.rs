//! Sequence helpers (module layout mirrors the rand crate's `seq`).

use crate::{Rng, RngCore};

/// Random operations on slices: Fisher–Yates shuffling and uniform element
/// choice.
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Uniform in-place shuffle (Fisher–Yates, high-to-low, matching the
    /// classic `rand` ordering so one pass consumes exactly `len − 1`
    /// draws).
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let i = rng.gen_range(0..self.len());
            Some(&self[i])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "identity shuffle of 100 elements is ~impossible"
        );
    }

    #[test]
    fn shuffle_is_seed_deterministic() {
        let run = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut v: Vec<usize> = (0..32).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(21);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(22);
        let dynamic: &mut dyn RngCore = &mut rng;
        let mut v = vec![1, 2, 3];
        v.shuffle(dynamic);
        assert!(v.choose(dynamic).is_some());
    }
}
