//! The generator core: xoshiro256++ with splitmix64 state expansion.
//!
//! xoshiro256++ (Blackman & Vigna, 2019) passes BigCrush, has a 2^256 − 1
//! period and needs four rotate/xor/add operations per draw — plenty for
//! simulation workloads, and far cheaper than the ChaCha block cipher the
//! `rand` crate's `StdRng` uses. splitmix64 expands a single `u64` seed into
//! the four state words so that nearby seeds (0, 1, 2, …) produce
//! uncorrelated streams and the all-zero state is unreachable.

/// splitmix64 step — the recommended seeder for the xoshiro family.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ state. `Clone` lets callers fork a stream checkpoint.
#[derive(Clone, Debug)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands `seed` into a full 256-bit state via splitmix64.
    pub fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256PlusPlus { s }
    }

    /// The four raw state words, for checkpointing a stream mid-flight.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from words saved by [`Self::state`], resuming
    /// the stream exactly where the snapshot was taken.
    ///
    /// The all-zero state is xoshiro's one fixed point (it would emit zeros
    /// forever) and can never be produced by [`Self::from_u64`]; it is
    /// mapped to `from_u64(0)` so a corrupt snapshot cannot wedge the
    /// generator.
    pub fn from_state(s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            Self::from_u64(0)
        } else {
            Xoshiro256PlusPlus { s }
        }
    }

    /// One generator step.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_is_never_all_zero() {
        // splitmix64 of any seed cannot produce four zero words.
        for seed in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
            let g = Xoshiro256PlusPlus::from_u64(seed);
            assert_ne!(g.s, [0, 0, 0, 0]);
        }
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = Xoshiro256PlusPlus::from_u64(11);
        for _ in 0..5 {
            a.next_u64();
        }
        let words = a.state();
        let mut b = Xoshiro256PlusPlus::from_state(words);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn all_zero_state_is_sanitized() {
        let mut z = Xoshiro256PlusPlus::from_state([0; 4]);
        let mut reference = Xoshiro256PlusPlus::from_u64(0);
        assert_eq!(z.next_u64(), reference.next_u64());
    }

    #[test]
    fn forked_clone_diverges_only_by_use() {
        let mut a = Xoshiro256PlusPlus::from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
