//! Deterministic, dependency-free random numbers for the ChainsFormer
//! reproduction.
//!
//! This crate exists so the workspace builds and tests **offline**: it
//! replaces the `rand` crate with a small, auditable implementation that
//! exposes the exact API surface the codebase uses —
//!
//! * [`rngs::StdRng`] — xoshiro256++ seeded through splitmix64, constructed
//!   with [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer/float ranges
//!   (Lemire rejection sampling for integers, 53-bit mantissa scaling for
//!   floats);
//! * [`Rng::gen`] for standard draws (`f64`/`f32` in `[0, 1)`, raw words,
//!   `bool`) and [`Rng::gen_bool`] for Bernoulli trials;
//! * [`seq::SliceRandom`] — Fisher–Yates [`shuffle`](seq::SliceRandom::shuffle)
//!   and uniform [`choose`](seq::SliceRandom::choose);
//! * [`sample_normal`] / [`sample_normal_f32`] — Box–Muller standard
//!   normals for the Gaussian initializers and noise models.
//!
//! Every stream is a pure function of its `u64` seed, on every platform:
//! there is no global state, no OS entropy, and no version drift from an
//! external crate. That property is what the reproducibility story of the
//! paper experiments (and the `cf-check` property harness) is built on.
//!
//! The module layout deliberately mirrors `rand` (`rngs::StdRng`,
//! `seq::SliceRandom`), so migrating a call site is an import swap, not a
//! rewrite.

pub mod rngs;
pub mod seq;
mod uniform;
mod xoshiro;

pub use uniform::{SampleRange, SampleUniform, StandardSample};

/// Minimal core of a random generator: a source of uniform `u64` words.
///
/// Object-safe on purpose — baseline predictors take `&mut dyn RngCore` so
/// heterogeneous predictor lists can share one stream.
pub trait RngCore {
    /// The next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniformly distributed 32-bit word (upper half of
    /// [`next_u64`](Self::next_u64), which carries the best-mixed bits).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes (little-endian word stream).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every [`RngCore`].
///
/// The generic methods make `Rng` non-object-safe; code that needs a trait
/// object takes `&mut dyn RngCore`, which itself implements `RngCore` (and
/// therefore `Rng`), so it still gets the full surface.
pub trait Rng: RngCore {
    /// A standard draw: `f64`/`f32` uniform in `[0, 1)`, full-width integer
    /// words, or a fair `bool`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range. Panics on empty ranges, like `rand`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p ∈ [0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0, 1]"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Generators whose complete state fits in four `u64` words and can be
/// exported and restored losslessly — the contract checkpointing needs:
/// restoring the words resumes the stream at exactly the draw where the
/// snapshot was taken, so a crashed run replays bit-for-bit.
pub trait SnapshotRng: RngCore {
    /// The generator's full state as four words.
    fn state_words(&self) -> [u64; 4];

    /// Restores state saved by [`Self::state_words`]; the next draw equals
    /// what the snapshotted generator would have produced next.
    fn restore_state_words(&mut self, words: [u64; 4]);
}

impl<R: SnapshotRng + ?Sized> SnapshotRng for &mut R {
    fn state_words(&self) -> [u64; 4] {
        (**self).state_words()
    }

    fn restore_state_words(&mut self, words: [u64; 4]) {
        (**self).restore_state_words(words)
    }
}

/// Standard normal (mean 0, variance 1) via the Box–Muller transform.
///
/// `u1` is drawn from `[EPSILON, 1)` so the logarithm never sees zero.
pub fn sample_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u1 = uniform::f64_half_open(rng, f64::EPSILON, 1.0);
    let u2 = uniform::f64_half_open(rng, 0.0, 1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Single-precision standard normal via Box–Muller; draws its own `f32`
/// uniforms so streams match the historical `f32` initializer exactly.
pub fn sample_normal_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    let u1 = uniform::f32_half_open(rng, f32::EPSILON, 1.0);
    let u2 = uniform::f32_half_open(rng, 0.0, 1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_different_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds should decorrelate via splitmix64");
    }

    #[test]
    fn gen_range_floats_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.5..7.5);
            assert!((-2.5..7.5).contains(&v), "{v} escaped");
            let w: f32 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w), "{w} escaped");
        }
    }

    #[test]
    fn gen_range_ints_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never drawn: {seen:?}");
        for _ in 0..1_000 {
            let v = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&v));
        }
    }

    #[test]
    fn gen_range_signed_and_degenerate() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&v));
        }
        assert_eq!(rng.gen_range(7usize..=7), 7);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5usize..5);
    }

    #[test]
    fn standard_f64_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(6);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        for _ in 0..1_000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(7);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn box_muller_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
        assert!(xs.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn normal_works_through_dyn_rngcore() {
        let mut rng = StdRng::seed_from_u64(9);
        let dynamic: &mut dyn RngCore = &mut rng;
        let v = sample_normal(dynamic);
        assert!(v.is_finite());
        // Rng's generic methods are also available on the trait object.
        let u: f64 = dynamic.gen_range(0.0..1.0);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is ~impossible");
    }

    /// Pinned algorithm: seeding must be splitmix64 state expansion and the
    /// output function must be xoshiro256++. Any change here silently breaks
    /// every recorded experiment seed, so this test re-derives the first
    /// output from the published reference algorithms.
    #[test]
    fn stream_is_pinned_to_reference_algorithm() {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut sm = seed;
            let s: Vec<u64> = (0..4).map(|_| splitmix64(&mut sm)).collect();
            let expected = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let mut rng = StdRng::seed_from_u64(seed);
            assert_eq!(rng.next_u64(), expected, "seed {seed}");
        }
    }
}
