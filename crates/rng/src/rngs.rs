//! Named generator types (module layout mirrors the rand crate's `rngs`).

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng};

/// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
///
/// Deterministic across platforms and releases — the stream for a given
/// seed is pinned by tests in the crate root. Construct with
/// [`SeedableRng::seed_from_u64`]; there is deliberately no
/// entropy-from-the-OS constructor, because every experiment and test in
/// this repository must be replayable from a recorded seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: Xoshiro256PlusPlus,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            core: Xoshiro256PlusPlus::from_u64(seed),
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

/// Non-random generators for tests.
pub mod mock {
    use crate::RngCore;

    /// An arithmetic-progression "generator": yields `initial`,
    /// `initial + increment`, … Useful for exercising code that consumes
    /// randomness with a fully predictable stream.
    #[derive(Clone, Debug)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// A stream starting at `initial` and advancing by `increment`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let v = self.value;
            self.value = self.value.wrapping_add(self.increment);
            v
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn step_rng_counts() {
            let mut r = StepRng::new(5, 3);
            assert_eq!([r.next_u64(), r.next_u64(), r.next_u64()], [5, 8, 11]);
        }
    }
}
