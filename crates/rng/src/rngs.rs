//! Named generator types (module layout mirrors the rand crate's `rngs`).

use crate::xoshiro::Xoshiro256PlusPlus;
use crate::{RngCore, SeedableRng, SnapshotRng};

/// The workspace's standard generator: xoshiro256++ seeded via splitmix64.
///
/// Deterministic across platforms and releases — the stream for a given
/// seed is pinned by tests in the crate root. Construct with
/// [`SeedableRng::seed_from_u64`]; there is deliberately no
/// entropy-from-the-OS constructor, because every experiment and test in
/// this repository must be replayable from a recorded seed.
#[derive(Clone, Debug)]
pub struct StdRng {
    core: Xoshiro256PlusPlus,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng {
            core: Xoshiro256PlusPlus::from_u64(seed),
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.core.next_u64()
    }
}

impl SnapshotRng for StdRng {
    fn state_words(&self) -> [u64; 4] {
        self.core.state()
    }

    fn restore_state_words(&mut self, words: [u64; 4]) {
        self.core = Xoshiro256PlusPlus::from_state(words);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn std_rng_snapshot_resumes_bitwise() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let words = a.state_words();
        // Keep drawing from `a`, then rewind a fresh generator to the
        // snapshot: both streams must agree from the snapshot point on,
        // across every sampling method.
        let mut b = StdRng::seed_from_u64(0);
        b.restore_state_words(words);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
    }
}

/// Non-random generators for tests.
pub mod mock {
    use crate::RngCore;

    /// An arithmetic-progression "generator": yields `initial`,
    /// `initial + increment`, … Useful for exercising code that consumes
    /// randomness with a fully predictable stream.
    #[derive(Clone, Debug)]
    pub struct StepRng {
        value: u64,
        increment: u64,
    }

    impl StepRng {
        /// A stream starting at `initial` and advancing by `increment`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                value: initial,
                increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            let v = self.value;
            self.value = self.value.wrapping_add(self.increment);
            v
        }
    }

    impl crate::SnapshotRng for StepRng {
        fn state_words(&self) -> [u64; 4] {
            [self.value, self.increment, 0, 0]
        }

        fn restore_state_words(&mut self, words: [u64; 4]) {
            self.value = words[0];
            self.increment = words[1];
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn step_rng_counts() {
            let mut r = StepRng::new(5, 3);
            assert_eq!([r.next_u64(), r.next_u64(), r.next_u64()], [5, 8, 11]);
        }
    }
}
