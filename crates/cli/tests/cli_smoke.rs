//! End-to-end smoke test of the `cfkg` workflow: generate → stats → train →
//! eval → predict, all through the public command functions.

use std::process::Command;

fn cfkg() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cfkg"))
}

fn out_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cfkg_smoke_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_workflow() {
    let dir = out_dir();
    let triples = dir.join("yago15k_sim_triples.tsv");
    let numerics = dir.join("yago15k_sim_numerics.tsv");
    let ckpt = dir.join("model.ckpt");

    // generate
    let st = cfkg()
        .args([
            "generate",
            "--dataset",
            "yago",
            "--scale",
            "small",
            "--seed",
            "3",
        ])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .expect("run generate");
    assert!(
        st.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&st.stderr)
    );
    assert!(triples.exists() && numerics.exists());

    // stats
    let st = cfkg()
        .args(["stats", "--triples", triples.to_str().unwrap()])
        .args(["--numerics", numerics.to_str().unwrap()])
        .output()
        .expect("run stats");
    assert!(st.status.success());
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(
        stdout.contains("latitude"),
        "stats missing attribute rows: {stdout}"
    );

    // train (tiny budget)
    let st = cfkg()
        .args(["train", "--triples", triples.to_str().unwrap()])
        .args(["--numerics", numerics.to_str().unwrap()])
        .args(["--ckpt", ckpt.to_str().unwrap()])
        .args([
            "--epochs", "1", "--dim", "16", "--layers", "1", "--walks", "32", "--top-k", "8",
        ])
        .args(["--seed", "3"])
        .output()
        .expect("run train");
    assert!(
        st.status.success(),
        "train failed: {}",
        String::from_utf8_lossy(&st.stderr)
    );
    assert!(ckpt.exists());

    // eval with the same flags
    let st = cfkg()
        .args(["eval", "--triples", triples.to_str().unwrap()])
        .args(["--numerics", numerics.to_str().unwrap()])
        .args(["--ckpt", ckpt.to_str().unwrap()])
        .args([
            "--epochs", "1", "--dim", "16", "--layers", "1", "--walks", "32", "--top-k", "8",
        ])
        .args(["--seed", "3"])
        .output()
        .expect("run eval");
    assert!(
        st.status.success(),
        "eval failed: {}",
        String::from_utf8_lossy(&st.stderr)
    );
    assert!(String::from_utf8_lossy(&st.stdout).contains("Average*"));

    // predict a named entity
    let st = cfkg()
        .args(["predict", "--triples", triples.to_str().unwrap()])
        .args(["--numerics", numerics.to_str().unwrap()])
        .args(["--ckpt", ckpt.to_str().unwrap()])
        .args([
            "--epochs", "1", "--dim", "16", "--layers", "1", "--walks", "32", "--top-k", "8",
        ])
        .args(["--seed", "3", "--entity", "person_0", "--attr", "birth"])
        .output()
        .expect("run predict");
    assert!(
        st.status.success(),
        "predict failed: {}",
        String::from_utf8_lossy(&st.stderr)
    );
    let stdout = String::from_utf8_lossy(&st.stdout);
    assert!(
        stdout.contains("birth of person_0"),
        "unexpected predict output: {stdout}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_exits_nonzero() {
    let st = cfkg().arg("frobnicate").output().expect("run");
    assert!(!st.status.success());
}

#[test]
fn help_prints_usage() {
    let st = cfkg().arg("help").output().expect("run");
    assert!(st.status.success());
    assert!(String::from_utf8_lossy(&st.stdout).contains("USAGE"));
}

#[test]
fn mismatched_architecture_fails_cleanly() {
    let dir = out_dir();
    let triples = dir.join("yago15k_sim_triples.tsv");
    let numerics = dir.join("yago15k_sim_numerics.tsv");
    let ckpt = dir.join("model.ckpt");
    assert!(cfkg()
        .args([
            "generate",
            "--dataset",
            "yago",
            "--scale",
            "small",
            "--seed",
            "4"
        ])
        .args(["--out", dir.to_str().unwrap()])
        .status()
        .unwrap()
        .success());
    assert!(cfkg()
        .args(["train", "--triples", triples.to_str().unwrap()])
        .args(["--numerics", numerics.to_str().unwrap()])
        .args(["--ckpt", ckpt.to_str().unwrap()])
        .args(["--epochs", "1", "--dim", "16", "--layers", "1", "--walks", "32", "--top-k", "8"])
        .args(["--seed", "4"])
        .status()
        .unwrap()
        .success());
    // eval with a different --dim: checkpoint shapes no longer match.
    let st = cfkg()
        .args(["eval", "--triples", triples.to_str().unwrap()])
        .args(["--numerics", numerics.to_str().unwrap()])
        .args(["--ckpt", ckpt.to_str().unwrap()])
        .args([
            "--epochs", "1", "--dim", "32", "--layers", "1", "--walks", "32", "--top-k", "8",
        ])
        .args(["--seed", "4"])
        .output()
        .expect("run eval");
    assert!(!st.status.success(), "architecture mismatch must fail");
    assert!(String::from_utf8_lossy(&st.stderr).contains("mismatch"));
    std::fs::remove_dir_all(&dir).ok();
}
