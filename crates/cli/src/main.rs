#![warn(missing_docs)]

//! `cfkg` — the ChainsFormer command line.
//!
//! ```text
//! cfkg generate --dataset yago --scale default --out data/           write TSV twins
//! cfkg stats    --triples data/triples.tsv --numerics data/num.tsv  Table-I/II stats
//! cfkg train    --triples … --numerics … --ckpt model.ckpt          train + save
//! cfkg eval     --triples … --numerics … --ckpt model.ckpt          test-set report
//! cfkg predict  --triples … --numerics … --ckpt model.ckpt \
//!               --entity person_17 --attr birth                     explained answer
//! cfkg serve    --triples … --numerics … --ckpt model.ckpt \
//!               --port 7777                                         TCP inference server
//! ```
//!
//! Graphs are MMKG-style TSV (`head<TAB>rel<TAB>tail`,
//! `entity<TAB>attr<TAB>value`); checkpoints use `cf_tensor::serialize`.
//! Train/eval/predict must share `--seed` so the 8:1:1 split and the model
//! architecture line up with the checkpoint.
//!
//! Every command accepts `--threads N` (or the `CF_THREADS` env var) to run
//! the numeric kernels on an in-tree thread pool. Results are bitwise
//! identical at every thread count, so the flag never has to match between
//! train and resume, or between machines.

mod args;
mod commands;

use args::Args;

const USAGE: &str = "\
cfkg — chain-based numerical reasoning on knowledge graphs (ChainsFormer)

USAGE: cfkg <COMMAND> [--flag value]…

GLOBAL FLAGS
  --threads N   numeric-kernel thread count (default: CF_THREADS env var,
                else auto-detect; output is bitwise identical at any N)

COMMANDS
  generate   write a synthetic dataset twin as TSV
             --dataset yago|fb   --scale small|default|paper   --seed N
             --out DIR
  gen        write a large zipfian world with planted numeric structure
             (1M+ entities; O(V+E)) as TSV and/or a CFKG1 binary store
             --entities N [--avg-degree N] [--seed N]
             [--out DIR (TSV)] [--store FILE (binary store)]
  ingest     compile MMKG TSV into a CFKG1 binary store (CRC-protected,
             mmap-ready; byte-identical for identical input)
             --triples FILE --numerics FILE --out FILE
  index      precompute the per-entity chain index (CFCI1) for fast
             retrieval; defaults to the --seed split's visible graph so it
             pairs with `serve --index`, --full indexes the raw graph
             --store FILE (or --triples/--numerics) --out FILE
             [--max-hops N] [--fanout N] [--per-entity-cap N]
             [--seed N | --full]
  stats      print Table-I/II statistics for a graph
             --triples FILE --numerics FILE   (or --store FILE)
  train      train ChainsFormer, checkpointing durably every epoch
             (SIGINT stops gracefully and still saves the best model)
             --triples FILE --numerics FILE (or --store FILE) --ckpt FILE
             [--resume (continue a killed run bit-for-bit from --ckpt)]
             [--epochs N] [--dim N] [--layers N] [--walks N] [--top-k N]
             [--seed N] [--quality]
  eval       evaluate a checkpoint on the held-out test split
             --triples FILE --numerics FILE --ckpt FILE [--seed N] [flags as train]
  predict    answer queries with their reasoning chains (resident engine)
             --triples FILE --numerics FILE --ckpt FILE
             --entity NAME[,NAME…] --attr NAME [--seed N]
             [--retries N (retry shed queries with deterministic backoff)]
             [--quantize f32|int8 (int8: quantized linear layers, accuracy
              pinned by the cargo-test gate)] [flags as train]
  compact    fold a CFJ1 mutation journal into its CFKG1 store offline
             (torn tails dropped, replay idempotent; journal left intact)
             --store FILE --journal FILE --out FILE
  serve      run the TCP inference server (line-delimited JSON protocol;
             \"GET /metrics\" returns serving metrics; SIGTERM or stdin
             close shuts down gracefully)
             --triples FILE --numerics FILE (or --store FILE) --ckpt FILE
             [--index FILE (serve retrieval from a chain index)]
             [--port N (0 = ephemeral)] [--max-batch N] [--max-wait-us N]
             [--queue-cap N] [--workers N (per shard)]
             [--shards N (model replicas; 0 = one per pool thread;
              responses are bitwise identical at every N)]
             [--cache-cap N (per shard)] [--seed N]
             [--quantize f32|int8 (int8: per-shard int8 weight twins,
              rebuilt on hot-reload; responses stay deterministic)]
             [--journal FILE (CFJ1 crash-safe mutation journal: {\"mutate\":…}
              requests are fsynced before visible and replayed on restart)]
             [--compact-to FILE --compact-every N (fold the journal into a
              canonical store every N records; atomic tmp+fsync+rename)]
             [flags as train]
  loadtest   open-loop load generator against a running serve (fixed
             arrival schedule: overload sheds instead of throttling the
             client; identical --seed ⇒ identical request stream)
             --addr HOST:PORT  --triples FILE --numerics FILE (or --store)
             [--rate REQ_PER_S] [--requests N] [--warmup N]
             [--arrivals poisson|uniform] [--zipf S] [--conns N]
             [--deadline-ms N] [--seed N]
             [--reload CKPT --reload-every N (mix in hot-reloads)]
             [--mutate-every N (mix in live-graph mutations; needs a
              server running with --journal)]
             [--retries N (retry shed requests with deterministic backoff;
              reported separately as retried/retried-ok)]
             [--dump FILE (canonical response bytes, diffable across
              --shards settings)]
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{USAGE}");
        return;
    }
    let args = match Args::parse(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    // Numeric-kernel thread count: --threads beats the CF_THREADS env var,
    // which beats auto-detection. Results are bitwise identical at every
    // width, so this is purely a speed knob.
    match args.get_parse("threads", 0usize, "thread count") {
        Ok(0) => {} // fall through to CF_THREADS / auto-detect
        Ok(n) => cf_tensor::pool::set_threads(n),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "gen" => commands::gen(&args),
        "ingest" => commands::ingest(&args),
        "index" => commands::index(&args),
        "stats" => commands::stats(&args),
        "train" => commands::train(&args),
        "eval" => commands::eval(&args),
        "predict" => commands::predict(&args),
        "compact" => commands::compact(&args),
        "serve" => commands::serve(&args),
        "loadtest" => commands::loadtest(&args),
        other => {
            eprintln!("error: unknown command {other:?}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
