//! Tiny dependency-free flag parser: `--key value` and `--flag` switches
//! after a subcommand.

use std::collections::HashMap;

/// Parsed command line: subcommand + flags.
#[derive(Debug, Clone)]
pub struct Args {
    pub command: String,
    flags: HashMap<String, String>,
    switches: Vec<String>,
}

/// Errors produced while parsing or reading flags.
#[derive(Debug)]
pub enum ArgError {
    MissingCommand,
    Missing(String),
    Invalid {
        flag: String,
        value: String,
        expected: &'static str,
    },
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given"),
            ArgError::Missing(flag) => write!(f, "required flag --{flag} is missing"),
            ArgError::Invalid {
                flag,
                value,
                expected,
            } => {
                write!(f, "--{flag} {value:?} is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv[1..]`: first token is the subcommand, the rest are
    /// `--key value` pairs (a `--key` followed by another `--…` or nothing
    /// is a boolean switch).
    pub fn parse(argv: &[String]) -> Result<Args, ArgError> {
        let mut it = argv.iter().peekable();
        let command = it.next().ok_or(ArgError::MissingCommand)?.clone();
        let mut flags = HashMap::new();
        let mut switches = Vec::new();
        while let Some(tok) = it.next() {
            let Some(name) = tok.strip_prefix("--") else {
                return Err(ArgError::Invalid {
                    flag: tok.clone(),
                    value: tok.clone(),
                    expected: "--flag",
                });
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    flags.insert(name.to_string(), it.next().expect("peeked").clone());
                }
                _ => switches.push(name.to_string()),
            }
        }
        Ok(Args {
            command,
            flags,
            switches,
        })
    }

    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    pub fn require(&self, flag: &str) -> Result<&str, ArgError> {
        self.get(flag)
            .ok_or_else(|| ArgError::Missing(flag.to_string()))
    }

    pub fn switch(&self, flag: &str) -> bool {
        self.switches.iter().any(|s| s == flag)
    }

    pub fn get_parse<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
        expected: &'static str,
    ) -> Result<T, ArgError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::Invalid {
                flag: flag.to_string(),
                value: v.to_string(),
                expected,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_flags_and_switches() {
        let a = Args::parse(&sv(&[
            "train",
            "--epochs",
            "10",
            "--quality",
            "--seed",
            "7",
        ]))
        .unwrap();
        assert_eq!(a.command, "train");
        assert_eq!(a.get("epochs"), Some("10"));
        assert_eq!(a.get("seed"), Some("7"));
        assert!(a.switch("quality"));
        assert!(!a.switch("missing"));
    }

    #[test]
    fn get_parse_defaults_and_validates() {
        let a = Args::parse(&sv(&["x", "--n", "5"])).unwrap();
        assert_eq!(a.get_parse("n", 1usize, "integer").unwrap(), 5);
        assert_eq!(a.get_parse("m", 3usize, "integer").unwrap(), 3);
        let bad = Args::parse(&sv(&["x", "--n", "five"])).unwrap();
        assert!(bad.get_parse("n", 1usize, "integer").is_err());
    }

    #[test]
    fn missing_command_is_an_error() {
        assert!(matches!(Args::parse(&[]), Err(ArgError::MissingCommand)));
    }

    #[test]
    fn rejects_positional_arguments() {
        assert!(Args::parse(&sv(&["x", "oops"])).is_err());
    }

    #[test]
    fn require_reports_flag_name() {
        let a = Args::parse(&sv(&["x"])).unwrap();
        let err = a.require("input").unwrap_err();
        assert!(err.to_string().contains("input"));
    }
}
