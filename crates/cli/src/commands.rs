//! Subcommand implementations for `cfkg`.

use crate::args::{ArgError, Args};
use cf_chains::Query;
use cf_kg::io::{write_numerics, write_triples, TsvLoader};
use cf_kg::stats::{attribute_stats, dataset_stats};
use cf_kg::synth::{fb15k_sim, large_sim, yago15k_sim, LargeScale, SynthScale};
use cf_kg::{
    build_chain_index, read_store, write_index, write_store, ChainIndexStore, ChainIndexView,
    GraphView, IndexParams, KnowledgeGraph, MappedChainIndex, Split,
};
use cf_rand::rngs::StdRng;
use cf_rand::{Rng, SeedableRng};
use cf_serve::{Engine, EngineConfig, QuantMode, ServeError, ServedPrediction};
use chainsformer::{evaluate_model, ChainsFormer, ChainsFormerConfig, TrainOptions, Trainer};
use std::error::Error;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

type CmdResult = Result<(), Box<dyn Error>>;

fn scale_from(args: &Args) -> Result<SynthScale, ArgError> {
    match args.get("scale").unwrap_or("default") {
        "small" => Ok(SynthScale::small()),
        "default" => Ok(SynthScale::default_scale()),
        "paper" => Ok(SynthScale::paper()),
        other => Err(ArgError::Invalid {
            flag: "scale".into(),
            value: other.into(),
            expected: "small|default|paper",
        }),
    }
}

/// `cfkg generate`: write a synthetic twin as TSV files.
pub fn generate(args: &Args) -> CmdResult {
    let seed: u64 = args.get_parse("seed", 7, "integer")?;
    let scale = scale_from(args)?;
    let out = Path::new(args.require("out")?);
    std::fs::create_dir_all(out)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let (name, graph) = match args.get("dataset").unwrap_or("yago") {
        "yago" => ("yago15k_sim", yago15k_sim(scale, &mut rng)),
        "fb" => ("fb15k237_sim", fb15k_sim(scale, &mut rng)),
        other => {
            return Err(Box::new(ArgError::Invalid {
                flag: "dataset".into(),
                value: other.into(),
                expected: "yago|fb",
            }))
        }
    };
    let triples_path = out.join(format!("{name}_triples.tsv"));
    let numerics_path = out.join(format!("{name}_numerics.tsv"));
    write_triples(&graph, std::fs::File::create(&triples_path)?)?;
    write_numerics(&graph, std::fs::File::create(&numerics_path)?)?;
    let s = dataset_stats(&graph);
    println!(
        "generated {name}: {} entities, {} relations, {} attributes, {} triples, {} numeric facts",
        s.entities, s.relations, s.attributes, s.relational_triples, s.numeric_triples
    );
    println!("  {}", triples_path.display());
    println!("  {}", numerics_path.display());
    Ok(())
}

/// Loads the working graph: either a CFKG1 binary store (`--store`, one
/// mmap-validated read) or the MMKG TSV pair (`--triples`/`--numerics`).
fn load_graph(args: &Args) -> Result<KnowledgeGraph, Box<dyn Error>> {
    if let Some(store) = args.get("store") {
        return Ok(read_store(store)?);
    }
    let triples = args.require("triples")?;
    let numerics = args.require("numerics")?;
    let mut loader = TsvLoader::new();
    loader.load_triples(BufReader::new(std::fs::File::open(triples)?))?;
    loader.load_numerics(BufReader::new(std::fs::File::open(numerics)?))?;
    Ok(loader.finish())
}

/// `cfkg stats`: Table-I/II statistics for a TSV graph.
pub fn stats(args: &Args) -> CmdResult {
    let graph = load_graph(args)?;
    let s = dataset_stats(&graph);
    println!(
        "entities {}  relations {}  attributes {}  triples {}  numeric facts {}",
        s.entities, s.relations, s.attributes, s.relational_triples, s.numeric_triples
    );
    println!(
        "{:<20} {:>7} {:>14} {:>14} {:>14}",
        "attribute", "count", "min", "max", "mean"
    );
    for a in attribute_stats(&graph) {
        println!(
            "{:<20} {:>7} {:>14.3} {:>14.3} {:>14.3}",
            a.name, a.count, a.min, a.max, a.mean
        );
    }
    Ok(())
}

fn config_from(args: &Args) -> Result<ChainsFormerConfig, Box<dyn Error>> {
    let mut cfg = ChainsFormerConfig::default();
    cfg.epochs = args.get_parse("epochs", cfg.epochs, "integer")?;
    cfg.dim = args.get_parse("dim", cfg.dim, "integer")?;
    cfg.ff_dim = 2 * cfg.dim;
    cfg.layers = args.get_parse("layers", cfg.layers, "integer")?;
    cfg.retrieval_walks = args.get_parse("walks", cfg.retrieval_walks, "integer")?;
    cfg.top_k = args.get_parse("top-k", cfg.top_k, "integer")?;
    cfg.chain_quality = args.switch("quality");
    cfg.seed = args.get_parse("seed", 7, "integer")?;
    cfg.validate().map_err(|e| -> Box<dyn Error> { e.into() })?;
    Ok(cfg)
}

/// Builds graph/split/model deterministically from the shared flags, so a
/// checkpoint saved by `train` lines up bit-for-bit in `eval`/`predict`.
fn setup(args: &Args) -> Result<(KnowledgeGraph, Split, ChainsFormer, StdRng), Box<dyn Error>> {
    let cfg = config_from(args)?;
    let graph = load_graph(args)?;
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let split = Split::paper_811(&graph, &mut rng);
    let visible = split.visible_graph(&graph);
    let model = ChainsFormer::new(&visible, &split.train, cfg, &mut rng);
    Ok((visible, split, model, rng))
}

/// `cfkg train`: crash-safe training. A full CFT2 checkpoint (params +
/// optimizer + RNG + early-stopping cursor) is written atomically to
/// `--ckpt` at every epoch boundary; `--resume` continues a killed run
/// bit-for-bit from that file; SIGINT/SIGTERM stops at the next batch
/// boundary and still saves the best checkpoint durably.
pub fn train(args: &Args) -> CmdResult {
    let ckpt = args.require("ckpt")?.to_string();
    let resume = args.switch("resume");
    let (visible, split, mut model, mut rng) = setup(args)?;
    println!(
        "{} on {} queries ({} validation) for up to {} epochs …",
        if resume { "resuming" } else { "training" },
        split.train.len(),
        split.valid.len(),
        model.cfg.epochs
    );
    cf_serve::install_signals();
    let interrupt = Arc::new(AtomicBool::new(false));
    {
        // Bridge the async-signal-safe static flag into the trainer's
        // cooperative interrupt: a watcher thread polls it so the handler
        // itself never does more than one atomic store.
        let interrupt = Arc::clone(&interrupt);
        std::thread::spawn(move || loop {
            if cf_serve::signalled() {
                interrupt.store(true, std::sync::atomic::Ordering::SeqCst);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    let opts = TrainOptions {
        checkpoint_path: Some(ckpt.clone().into()),
        resume,
        interrupt: Some(interrupt),
        stop_after_epochs: None,
    };
    let result = Trainer::new(&mut model, &visible).train_opts(&split, &mut rng, &opts)?;
    for e in &result.epochs {
        match e.valid_mae {
            Some(v) => println!(
                "epoch {:>3}  loss {:.4}  valid MAE {:.4}",
                e.epoch, e.train_loss, v
            ),
            None => println!("epoch {:>3}  loss {:.4}", e.epoch, e.train_loss),
        }
    }
    if result.interrupted {
        println!("interrupted — best checkpoint saved durably to {ckpt}");
        return Ok(());
    }
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    println!(
        "test normalized MAE {:.4}, RMSE {:.4}",
        report.norm_mae, report.norm_rmse
    );
    println!("saved checkpoint to {ckpt}");
    Ok(())
}

fn load_model(
    args: &Args,
) -> Result<(KnowledgeGraph, Split, ChainsFormer, StdRng), Box<dyn Error>> {
    let ckpt = args.require("ckpt")?.to_string();
    let (visible, split, mut model, rng) = setup(args)?;
    model.load_params_from(&ckpt)?;
    Ok((visible, split, model, rng))
}

/// `cfkg eval`: evaluate a checkpoint on the test split.
pub fn eval(args: &Args) -> CmdResult {
    let (visible, split, model, mut rng) = load_model(args)?;
    let report = evaluate_model(&model, &visible, &split.test, &mut rng);
    println!(
        "{:<20} {:>10} {:>10} {:>7}",
        "attribute", "MAE", "RMSE", "n"
    );
    for (attr, e) in &report.per_attribute {
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>7}",
            visible.attribute_name(cf_kg::AttributeId(*attr)),
            e.mae,
            e.rmse,
            e.count
        );
    }
    println!(
        "\nAverage* MAE {:.4}   RMSE {:.4}",
        report.norm_mae, report.norm_rmse
    );
    Ok(())
}

/// Bounded retry with deterministic backoff for shed requests: only
/// [`ServeError::Overloaded`] is retried (deadline and shutdown failures
/// are final), sleeping `2^attempt · base ± jitter` between attempts with
/// the jitter drawn from a seeded [`StdRng`] — the retry *schedule* is a
/// pure function of the seed, so runs are reproducible.
fn predict_with_retries(
    engine: &Engine,
    q: Query,
    retries: u32,
    rng: &mut StdRng,
) -> Result<(ServedPrediction, u32), ServeError> {
    let mut attempt = 0u32;
    loop {
        match engine.predict(q) {
            Ok(served) => return Ok((served, attempt)),
            Err(ServeError::Overloaded) if attempt < retries => {
                let base_us = 1000u64 << attempt.min(10);
                let jitter = rng.gen_range(0..=base_us / 2);
                std::thread::sleep(std::time::Duration::from_micros(base_us + jitter));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// `cfkg predict`: answer one or more queries (comma-separated entities)
/// with their reasoning traces, through the resident serving engine — the
/// model loads once per process and repeated predictions share the chain
/// cache. `--retries N` retries shed (`overloaded`) queries with
/// deterministic backoff instead of failing.
pub fn predict(args: &Args) -> CmdResult {
    let entity_arg = args.require("entity")?.to_string();
    let attr_name = args.require("attr")?.to_string();
    let seed: u64 = args.get_parse("seed", 7, "integer")?;
    let retries: u32 = args.get_parse("retries", 0u32, "integer")?;
    let quantize: QuantMode = args.get_parse("quantize", QuantMode::F32, "f32|int8")?;
    let (visible, _split, model, _rng) = load_model(args)?;
    let engine = Engine::new(
        model,
        visible,
        EngineConfig {
            workers: 1,
            seed,
            quantize,
            ..EngineConfig::default()
        },
    );
    let mut backoff_rng = StdRng::seed_from_u64(seed ^ 0xBACC_0FF5);
    for entity_name in entity_arg.split(',') {
        // Resolve names in a scope of their own: holding the live-graph
        // read guard across `predict` (which waits on a worker that takes
        // the same lock) could deadlock behind a queued mutation writer.
        let (entity, attr) = {
            let graph = engine.graph();
            let entity = graph
                .entity_by_name(entity_name)
                .ok_or_else(|| format!("entity {entity_name:?} not found"))?;
            let attr = graph
                .attribute_by_name(&attr_name)
                .ok_or_else(|| format!("attribute {attr_name:?} not found"))?;
            (entity, attr)
        };
        let (served, retried) =
            predict_with_retries(&engine, Query { entity, attr }, retries, &mut backoff_rng)
                .map_err(Box::new)?;
        if retried > 0 {
            println!("(shed {retried} time(s), answered on retry)");
        }
        let graph = engine.graph();
        let detail = served.detail;
        println!("{attr_name} of {entity_name}: {:.4}", detail.value);
        if detail.used_fallback {
            println!("(no evidence chains retrievable — training-mean fallback)");
            continue;
        }
        println!(
            "retrieved {} chains, {} after filtering; top evidence:",
            detail.retrieved,
            detail.chains.len()
        );
        let mut chains = detail.chains;
        chains.sort_by(|a, b| b.weight.partial_cmp(&a.weight).expect("finite"));
        for c in chains.iter().take(8) {
            println!(
                "  ω={:.3}  {}  via {}  (n_p={:.2}, n̂={:.2})",
                c.weight,
                c.chain.render(&*graph),
                graph.entity_name(c.source),
                c.known_value,
                c.prediction
            );
        }
    }
    engine.shutdown();
    Ok(())
}

/// `cfkg compact`: offline journal compaction. Reads a CFKG1 store and a
/// CFJ1 mutation journal, replays the journal over an overlay (recovery
/// drops a torn tail, replay is idempotent), and writes the merged graph
/// as a canonical store to `--out`. The journal file itself is left
/// untouched, so the command is safe to re-run and safe to point at a
/// live server's journal for a consistent offline snapshot.
pub fn compact(args: &Args) -> CmdResult {
    let store = args.require("store")?;
    let journal = args.require("journal")?;
    let out = args.require("out")?;
    let graph = read_store(store)?;
    let mut overlay = cf_kg::OverlayGraph::new(graph.into());
    let rec = cf_kg::recover_file(journal)?;
    if let Some(d) = &rec.dropped {
        println!(
            "journal: dropped torn tail at record {} ({} bytes)",
            d.record, d.bytes
        );
    }
    let mut changed = 0usize;
    for m in &rec.mutations {
        if overlay.apply(m).changed {
            changed += 1;
        }
    }
    overlay.compact_to(out)?;
    println!(
        "compacted {} journaled mutation(s) ({} effective) into {}",
        rec.mutations.len(),
        changed,
        out
    );
    println!("  {} ({} bytes)", out, std::fs::metadata(out)?.len());
    Ok(())
}

/// `cfkg serve`: run the TCP inference server until SIGTERM/SIGINT or
/// stdin close, then drain and exit 0.
pub fn serve(args: &Args) -> CmdResult {
    let port: u16 = args.get_parse("port", 0, "integer")?;
    let cfg = EngineConfig {
        max_batch: args.get_parse("max-batch", 8, "integer")?,
        max_wait_us: args.get_parse("max-wait-us", 2000, "integer")?,
        queue_cap: args.get_parse("queue-cap", 256, "integer")?,
        workers: args.get_parse("workers", 1, "integer")?,
        // 0 = auto: one model replica per numeric-pool thread. Responses
        // are bitwise identical at every shard count (entity-hash routing
        // + per-query retrieval RNG), so this is purely a throughput knob.
        shards: args.get_parse("shards", 0, "integer")?,
        cache_cap: args.get_parse("cache-cap", 4096, "integer")?,
        seed: args.get_parse("seed", 7, "integer")?,
        quantize: args.get_parse("quantize", QuantMode::F32, "f32|int8")?,
    };
    let (visible, _split, model, _rng) = load_model(args)?;
    let index = match args.get("index") {
        Some(path) => {
            let ix = ChainIndexStore::from(MappedChainIndex::open(path)?);
            // Check here (not in the engine) so a stale index is a clean
            // CLI error instead of a panic.
            ix.check_matches(&visible)?;
            Some(ix)
        }
        None => None,
    };
    let quantize = cfg.quantize;
    let journal = args.get("journal").map(str::to_string);
    let compact_to = args.get("compact-to").map(PathBuf::from);
    let compact_every: u64 = args.get_parse("compact-every", 0u64, "integer")?;
    if journal.is_none() && (compact_to.is_some() || compact_every > 0) {
        return Err("--compact-to/--compact-every need --journal PATH".into());
    }
    if compact_to.is_some() != (compact_every > 0) {
        return Err("--compact-to FILE and --compact-every N (> 0) must be given together".into());
    }
    let engine = Arc::new(Engine::new_with_index(model, visible, index, cfg));
    if let Some(jpath) = journal {
        // Attached after the index check above: the index pairs with the
        // pristine base store; journaled mutations land in the overlay and
        // mark their neighborhoods stale, which bypasses the index.
        let replayed = engine.attach_journal(&jpath, compact_to.map(|p| (p, compact_every)))?;
        if replayed > 0 {
            println!("journal {jpath}: replayed {replayed} mutation(s)");
        } else {
            println!("journal {jpath}: clean");
        }
    }
    println!(
        "serving with {} shard(s), {} worker(s) each, {} inference",
        engine.shards(),
        args.get_parse("workers", 1usize, "integer")?.max(1),
        quantize
    );
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    // Scripts parse this line to learn the ephemeral port (--port 0).
    println!("listening on {addr}");
    use std::io::Write as _;
    std::io::stdout().flush()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    cf_serve::install_signals();
    cf_serve::shutdown_on_stdin_close(Arc::clone(&shutdown));
    cf_serve::run(Arc::clone(&engine), listener, shutdown)?;
    // Releasing the last engine reference drains already-enqueued jobs and
    // joins the workers (idle connections may keep theirs briefly; exit
    // proceeds regardless).
    drop(engine);
    println!("shutdown complete");
    Ok(())
}

/// `cfkg loadtest`: open-loop load against a running `cfkg serve`.
///
/// The arrival schedule (Poisson or uniform), zipfian entity popularity,
/// and optional reload mix are all fixed up front from `--seed` and the
/// loaded graph — requests go out at their scheduled instants whether or
/// not earlier ones were answered, so overload shows up as shed requests
/// and honest tail latency instead of a silently throttled client. The
/// same plan replayed against servers at different `--shards` settings
/// produces byte-identical `--dump` files (CI diffs them).
pub fn loadtest(args: &Args) -> CmdResult {
    let addr = args.require("addr")?.to_string();
    // Only names and counts are needed: the split hides facts, not
    // entities, so the raw graph names exactly what the server resolves.
    let graph = load_graph(args)?;
    let plan_cfg = cf_load::PlanConfig {
        arrivals: args.get("arrivals").unwrap_or("poisson").parse()?,
        rate_hz: args.get_parse("rate", 2000.0, "number")?,
        requests: args.get_parse("requests", 2000, "integer")?,
        warmup: args.get_parse("warmup", 200, "integer")?,
        zipf_s: args.get_parse("zipf", 1.0, "number")?,
        reload_every: args.get_parse("reload-every", 0, "integer")?,
        mutate_every: args.get_parse("mutate-every", 0, "integer")?,
        seed: args.get_parse("seed", 1, "integer")?,
    };
    let deadline_ms = match args.get("deadline-ms") {
        None => None,
        Some(_) => Some(args.get_parse("deadline-ms", 0u64, "integer")?),
    };
    let reload_path = args.get("reload");
    if plan_cfg.reload_every > 0 && reload_path.is_none() {
        return Err(
            "--reload-every needs --reload PATH (a checkpoint on the server's filesystem)".into(),
        );
    }
    let conns: usize = args.get_parse("conns", 8, "integer")?;
    let plan = cf_load::build_plan(
        GraphView::num_entities(&graph),
        GraphView::num_attributes(&graph),
        &plan_cfg,
    );
    let events = cf_load::render_events(&plan, &graph, deadline_ms, reload_path);
    println!(
        "loadtest {addr}: {} events ({} warmup) at {:.0}/s {:?} over {} conns, zipf {}",
        events.len(),
        plan_cfg.warmup,
        plan_cfg.rate_hz,
        plan_cfg.arrivals,
        conns.clamp(1, events.len().max(1)),
        plan_cfg.zipf_s,
    );
    let retry = cf_load::RetryPolicy {
        retries: args.get_parse("retries", 0u32, "integer")?,
        seed: plan_cfg.seed,
        ..cf_load::RetryPolicy::none()
    };
    let outcome = cf_load::run_tcp_with(&addr, &events, conns, retry)?;
    println!("{}", outcome.report.render());
    if let Some(dump) = args.get("dump") {
        std::fs::write(dump, cf_load::canonical_dump(&outcome.responses))?;
        println!("canonical responses → {dump}");
    }
    Ok(())
}

fn large_scale_from(args: &Args) -> Result<LargeScale, Box<dyn Error>> {
    let mut scale = LargeScale::million();
    scale.entities = args
        .get_parse("entities", scale.entities, "integer")?
        .max(2);
    scale.avg_degree = args.get_parse("avg-degree", scale.avg_degree, "integer")?;
    // Communities must stay well under the entity count or the planted
    // intra-community structure degenerates to uniform noise.
    scale.communities = scale.communities.min((scale.entities / 8).max(1));
    Ok(scale)
}

/// `cfkg gen`: the million-entity zipfian world (`synth::large_sim`),
/// written as TSV (`--out DIR`) and/or directly as a CFKG1 store
/// (`--store FILE`, skipping the TSV round trip).
pub fn gen(args: &Args) -> CmdResult {
    let seed: u64 = args.get_parse("seed", 7, "integer")?;
    let scale = large_scale_from(args)?;
    if args.get("out").is_none() && args.get("store").is_none() {
        return Err("gen needs --out DIR (TSV) and/or --store FILE (binary)".into());
    }
    let t0 = std::time::Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut graph = large_sim(scale, &mut rng);
    // Canonical id order makes the emitted store byte-comparable with a
    // store ingested from the emitted TSVs (CI cmp's the two).
    graph.canonicalize();
    let s = dataset_stats(&graph);
    println!(
        "generated large_sim in {:.2}s: {} entities, {} relations, {} attributes, {} triples, {} numeric facts",
        t0.elapsed().as_secs_f64(),
        s.entities, s.relations, s.attributes, s.relational_triples, s.numeric_triples
    );
    if let Some(dir) = args.get("out") {
        let out = Path::new(dir);
        std::fs::create_dir_all(out)?;
        let triples_path = out.join("large_triples.tsv");
        let numerics_path = out.join("large_numerics.tsv");
        write_triples(
            &graph,
            std::io::BufWriter::new(std::fs::File::create(&triples_path)?),
        )?;
        write_numerics(
            &graph,
            std::io::BufWriter::new(std::fs::File::create(&numerics_path)?),
        )?;
        println!("  {}", triples_path.display());
        println!("  {}", numerics_path.display());
    }
    if let Some(store) = args.get("store") {
        let t = std::time::Instant::now();
        write_store(&graph, store)?;
        println!(
            "  {} ({} bytes, {:.2}s)",
            store,
            std::fs::metadata(store)?.len(),
            t.elapsed().as_secs_f64()
        );
    }
    Ok(())
}

/// `cfkg ingest`: TSV → CFKG1 binary store. The graph is canonicalized
/// (name-sorted ids, sorted fact lists) before writing, so the output is a
/// pure function of the graph *content* — re-ingesting the same TSV, or any
/// row-permutation of it, is byte-identical. CI diffs a re-ingested store
/// and a `gen --store` twin against it.
pub fn ingest(args: &Args) -> CmdResult {
    let out = args.require("out")?;
    let t0 = std::time::Instant::now();
    let mut graph = load_graph(args)?;
    // Store bytes must be a function of graph content, not TSV row order:
    // renumber into canonical (name-sorted) order before writing.
    graph.canonicalize();
    let parse_s = t0.elapsed().as_secs_f64();
    let t1 = std::time::Instant::now();
    write_store(&graph, out)?;
    let s = dataset_stats(&graph);
    println!(
        "ingested {} entities / {} triples / {} numeric facts (parse {:.2}s, write {:.2}s)",
        s.entities,
        s.relational_triples,
        s.numeric_triples,
        parse_s,
        t1.elapsed().as_secs_f64()
    );
    println!("  {} ({} bytes)", out, std::fs::metadata(out)?.len());
    Ok(())
}

/// `cfkg index`: precompute the per-entity chain index (CFCI1).
///
/// By default the index covers the *visible* graph of the 8:1:1 split for
/// `--seed` — exactly the graph `serve --index` runs retrieval against. With
/// `--full` it covers the raw graph as loaded (the bench / determinism
/// path; such an index pairs with the store itself, not with a split).
pub fn index(args: &Args) -> CmdResult {
    let out = args.require("out")?;
    let params = IndexParams {
        max_hops: args.get_parse("max-hops", 3u32, "integer")?,
        fanout: args.get_parse("fanout", IndexParams::default().fanout, "integer")?,
        per_entity_cap: args.get_parse(
            "per-entity-cap",
            IndexParams::default().per_entity_cap,
            "integer",
        )?,
    };
    let graph = load_graph(args)?;
    let graph = if args.switch("full") {
        graph
    } else {
        let seed: u64 = args.get_parse("seed", 7, "integer")?;
        let mut rng = StdRng::seed_from_u64(seed);
        let split = Split::paper_811(&graph, &mut rng);
        split.visible_graph(&graph)
    };
    let t0 = std::time::Instant::now();
    let ix = build_chain_index(&graph, params);
    let build_s = t0.elapsed().as_secs_f64();
    write_index(&ix, out)?;
    println!(
        "indexed {} entities: {} chain entries in {:.2}s ({} threads)",
        ix.num_entities(),
        ix.total_entries(),
        build_s,
        cf_tensor::pool::threads(),
    );
    println!("  {} ({} bytes)", out, std::fs::metadata(out)?.len());
    Ok(())
}
