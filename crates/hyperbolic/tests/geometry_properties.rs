//! Property-based checks of the Poincaré-ball geometry.

use cf_check::prelude::*;
use cf_hyperbolic::{distance_grad_x, riemannian_rescale, PoincareBall};

fn pt(dim: usize) -> impl Strategy<Value = Vec<f64>> {
    vec(-0.4f64..0.4, dim)
}

property! {
    #![config(cases = 64)]

    /// Triangle inequality on sampled triples.
    #[test]
    fn triangle_inequality(x in pt(3), y in pt(3), z in pt(3)) {
        let b = PoincareBall::default();
        let dxz = b.distance_arcosh(&x, &z);
        let dxy = b.distance_arcosh(&x, &y);
        let dyz = b.distance_arcosh(&y, &z);
        check_assert!(dxz <= dxy + dyz + 1e-9, "{dxz} > {dxy} + {dyz}");
    }

    /// Möbius chains of arbitrary length stay inside the ball.
    #[test]
    fn mobius_chain_stays_inside(points in vec(pt(3), 0..8)) {
        let b = PoincareBall::default();
        let refs: Vec<&[f64]> = points.iter().map(Vec::as_slice).collect();
        let c = b.mobius_chain(&refs, 3);
        check_assert!(b.contains(&c), "chain escaped: {c:?}");
    }

    /// Hyperbolic distance dominates (scaled) Euclidean distance and the
    /// gap grows near the rim (variable resolution).
    #[test]
    fn distance_dominates_euclidean(x in pt(2), y in pt(2)) {
        let b = PoincareBall::default();
        let hyper = b.distance_arcosh(&x, &y);
        let eucl: f64 = x.iter().zip(&y).map(|(a, c)| (a - c) * (a - c)).sum::<f64>().sqrt();
        check_assert!(hyper + 1e-12 >= 2.0 * eucl * 0.999, "hyper {hyper} < 2·eucl {eucl}");
    }

    /// The analytic distance gradient always points "away" from the other
    /// point: stepping along −grad reduces the distance.
    #[test]
    fn gradient_descends_distance(x in pt(3), y in pt(3)) {
        let b = PoincareBall::default();
        let d0 = b.distance_arcosh(&x, &y);
        check_assume!(d0 > 1e-3);
        let g = distance_grad_x(&x, &y);
        let step = 1e-4;
        let moved: Vec<f64> = x.iter().zip(&g).map(|(&xi, &gi)| xi - step * gi).collect();
        let d1 = b.distance_arcosh(&moved, &y);
        check_assert!(d1 < d0 + 1e-9, "gradient ascent direction: {d0} -> {d1}");
    }

    /// Riemannian rescaling shrinks but never flips gradients.
    #[test]
    fn riemannian_rescale_preserves_direction(x in pt(4), g in pt(4)) {
        let rg = riemannian_rescale(&x, &g);
        let dot: f64 = rg.iter().zip(&g).map(|(a, b)| a * b).sum();
        let g_norm: f64 = g.iter().map(|v| v * v).sum();
        if g_norm > 1e-12 {
            check_assert!(dot >= 0.0, "rescale flipped the gradient");
        }
    }

    /// Projection is idempotent and always lands inside.
    #[test]
    fn projection_idempotent(scale in 0.0f64..5.0, dir in pt(3)) {
        let b = PoincareBall::default();
        let mut x: Vec<f64> = dir.iter().map(|v| v * scale).collect();
        b.project(&mut x);
        check_assert!(b.contains(&x));
        let before = x.clone();
        b.project(&mut x);
        for (a, c) in x.iter().zip(&before) {
            check_assert!((a - c).abs() < 1e-12);
        }
    }
}
